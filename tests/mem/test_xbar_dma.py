"""Crossbar routing and DMA engines."""

import pytest

from repro.mem.dma import BlockDMA, DMAError
from repro.mem.dram import DRAM
from repro.mem.spm import Scratchpad
from repro.mem.xbar import Crossbar
from repro.sim.packet import read_packet, write_packet
from repro.sim.ports import MasterPort, PortError
from repro.sim.simobject import AddrRange


def _fabric(system):
    """xbar with a DRAM at 0x8000_0000 and an SPM at 0x1000."""
    xbar = Crossbar("xbar", system)
    dram = DRAM("dram", system, base=0x8000_0000, size=1 << 16)
    spm = Scratchpad("spm", system, base=0x1000, size=4096)
    xbar.attach_slave(dram.port, dram.range, label="dram")
    xbar.attach_slave(spm.make_port(), spm.range, label="spm")
    return xbar, dram, spm


def test_routing_by_address(system):
    xbar, dram, spm = _fabric(system)
    responses = []
    master = MasterPort("m", recv_timing_resp=responses.append)
    master.bind(xbar.slave_port())
    master.send_timing_req(write_packet(0x8000_0100, b"\x01" * 8))
    master.send_timing_req(write_packet(0x1008, b"\x02" * 8))
    system.run()
    assert dram.image.read(0x8000_0100, 8) == b"\x01" * 8
    assert spm.image.read(0x1008, 8) == b"\x02" * 8
    assert len(responses) == 2


def test_functional_routing(system):
    xbar, dram, spm = _fabric(system)
    master = MasterPort("m", recv_timing_resp=lambda p: None)
    master.bind(xbar.slave_port())
    dram.image.write(0x8000_0000, b"\x55" * 8)
    resp = master.send_functional(read_packet(0x8000_0000, 8))
    assert resp.data == b"\x55" * 8


def test_unrouteable_address_raises(system):
    xbar, __, __ = _fabric(system)
    master = MasterPort("m", recv_timing_resp=lambda p: None)
    master.bind(xbar.slave_port())
    with pytest.raises(PortError):
        master.send_functional(read_packet(0xDEAD_0000, 8))


def test_overlapping_ranges_rejected(system):
    xbar, dram, __ = _fabric(system)
    other = Scratchpad("other", system, base=0x8000_0000, size=64)
    with pytest.raises(PortError):
        xbar.attach_slave(other.make_port(), other.range)


def test_responses_return_to_correct_master(system):
    xbar, dram, spm = _fabric(system)
    got = {0: [], 1: []}
    masters = []
    for i in range(2):
        m = MasterPort(f"m{i}", recv_timing_resp=got[i].append)
        m.bind(xbar.slave_port(str(i)))
        masters.append(m)
    dram.image.write(0x8000_0000, bytes([1] * 8))
    spm.image.write(0x1000, bytes([2] * 8))
    masters[0].send_timing_req(read_packet(0x8000_0000, 8))
    masters[1].send_timing_req(read_packet(0x1000, 8))
    system.run()
    assert got[0][0].data[0] == 1
    assert got[1][0].data[0] == 2


def test_block_dma_copies(system):
    xbar, dram, spm = _fabric(system)
    dma = BlockDMA("dma", system, burst_bytes=64)
    dma.port.bind(xbar.slave_port("dma"))
    payload = bytes(range(256))
    dram.image.write(0x8000_0000, payload)
    done = []
    dma.start(0x8000_0000, 0x1000, 256, on_done=lambda: done.append(system.cur_tick))
    system.run()
    assert done, "DMA never completed"
    assert spm.image.read(0x1000, 256) == payload
    assert dma.stat_bytes.value() == 256
    assert not dma.busy


def test_dma_partial_tail_burst(system):
    xbar, dram, spm = _fabric(system)
    dma = BlockDMA("dma", system, burst_bytes=64)
    dma.port.bind(xbar.slave_port("dma"))
    payload = bytes((i * 7) % 256 for i in range(100))  # not burst aligned
    dram.image.write(0x8000_0000, payload)
    dma.start(0x8000_0000, 0x1000, 100)
    system.run()
    assert spm.image.read(0x1000, 100) == payload


def test_dma_busy_rejected(system):
    xbar, dram, spm = _fabric(system)
    dma = BlockDMA("dma", system)
    dma.port.bind(xbar.slave_port("dma"))
    dma.start(0x8000_0000, 0x1000, 64)
    with pytest.raises(DMAError):
        dma.start(0x8000_0000, 0x1000, 64)
    system.run()


def test_dma_bad_size(system):
    dma = BlockDMA("dma", system)
    with pytest.raises(ValueError):
        dma.start(0, 0, 0)


def test_bigger_bursts_fewer_cycles(system):
    """Larger DMA bursts amortize DRAM row activations."""
    import repro.sim.simobject as so

    times = {}
    for burst in (16, 128):
        sys2 = so.System(f"s{burst}")
        xbar = Crossbar("xbar", sys2)
        dram = DRAM("dram", sys2, base=0x8000_0000, size=1 << 16)
        spm = Scratchpad("spm", sys2, base=0x1000, size=4096)
        xbar.attach_slave(dram.port, dram.range)
        xbar.attach_slave(spm.make_port(), spm.range)
        dma = BlockDMA("dma", sys2, burst_bytes=burst)
        dma.port.bind(xbar.slave_port("dma"))
        dma.start(0x8000_0000, 0x1000, 1024)
        sys2.run()
        times[burst] = sys2.cur_tick
    assert times[128] < times[16]
