"""Cycle-level occupancy and stall profiling (Sec. III-C2).

The runtime engine reports, each cycle, what it issued and what it is
waiting on; the tracker aggregates the counters behind Figs. 14 and 15:
stalled-vs-new-execution cycles, stall-source breakdown (which kinds of
unfinished operations a stalled cycle was waiting for), per-class issue
mix, and functional-unit occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OccupancyTracker:
    cycles: int = 0
    issue_cycles: int = 0          # cycles that scheduled >= 1 new operation
    stall_cycles: int = 0          # active cycles with no new issue
    idle_cycles: int = 0           # nothing outstanding (e.g. waiting on start)
    issued_ops: int = 0
    issued_by_class: dict[str, int] = field(default_factory=dict)
    # Stall-source histogram: frozenset of outstanding kinds -> cycles.
    # Kinds: 'load', 'store', 'compute'.
    stall_sources: dict[frozenset, int] = field(default_factory=dict)
    # Busy unit-cycles per FU class (for occupancy percentages).
    fu_busy_cycles: dict[str, int] = field(default_factory=dict)
    # Issue mix: cycles in which >=1 load / store / fp op issued.
    issue_kind_cycles: dict[str, int] = field(default_factory=dict)
    # Entry-level accounting: ready-but-blocked operation-cycles, per kind.
    blocked_op_cycles: int = 0
    blocked_by_kind: dict[str, int] = field(default_factory=dict)
    issued_op_total: int = 0

    # ------------------------------------------------------------------
    def record_cycle(
        self,
        issued: list[str],
        outstanding_kinds: frozenset,
        busy_units: dict[str, int],
        issued_kinds: frozenset,
        blocked_kinds: dict[str, int] | None = None,
        issued_total: int = 0,
    ) -> None:
        """Record one engine cycle.

        ``issued`` lists the FU classes of newly scheduled compute ops
        (may be empty); ``outstanding_kinds`` says what in-flight work
        exists ('load'/'store'/'compute'); ``busy_units`` counts busy
        units per class this cycle; ``issued_kinds`` classifies what
        was scheduled ('load'/'store'/'fp'/'int').
        """
        self.cycles += 1
        self.issued_op_total += issued_total or len(issued)
        for kind, count in (blocked_kinds or {}).items():
            self.blocked_op_cycles += count
            self.blocked_by_kind[kind] = self.blocked_by_kind.get(kind, 0) + count
        for fu_class, count in busy_units.items():
            self.fu_busy_cycles[fu_class] = self.fu_busy_cycles.get(fu_class, 0) + count
        if issued or issued_kinds:
            self.issue_cycles += 1
            self.issued_ops += len(issued)
            for fu_class in issued:
                self.issued_by_class[fu_class] = self.issued_by_class.get(fu_class, 0) + 1
            for kind in issued_kinds:
                self.issue_kind_cycles[kind] = self.issue_kind_cycles.get(kind, 0) + 1
        elif outstanding_kinds:
            self.stall_cycles += 1
            self.stall_sources[outstanding_kinds] = (
                self.stall_sources.get(outstanding_kinds, 0) + 1
            )
        else:
            self.idle_cycles += 1

    # -- derived metrics ---------------------------------------------------
    # Fractions are explicitly 0.0 for zero-active-cycle trackers (a run
    # that never started, was fault-killed, or timed out) so failed sweep
    # points still serialize valid rows instead of dividing by zero.
    def stall_fraction(self) -> float:
        active = self.cycles - self.idle_cycles
        return self.stall_cycles / active if active > 0 else 0.0

    def issue_fraction(self) -> float:
        active = self.cycles - self.idle_cycles
        return self.issue_cycles / active if active > 0 else 0.0

    def fu_occupancy(self, fu_class: str, unit_count: int) -> float:
        """Average fraction of ``fu_class`` units busy per active cycle."""
        active = self.cycles - self.idle_cycles
        if active <= 0:
            return 0.0
        busy = self.fu_busy_cycles.get(fu_class, 0)
        return busy / (active * max(1, unit_count))

    def stall_breakdown(self) -> dict[str, float]:
        """Fraction of stalled cycles per waiting-reason combination.

        Keys are sorted '+'-joined kind names, e.g. ``'compute+load'``
        (the paper's "Load and Computation" bands in Fig. 14b).
        """
        total = max(1, self.stall_cycles)
        result: dict[str, float] = {}
        for kinds, count in self.stall_sources.items():
            key = "+".join(sorted(kinds)) if kinds else "none"
            result[key] = result.get(key, 0.0) + count / total
        return result

    def entry_stall_fraction(self) -> float:
        """Ready-but-blocked operation-cycles as a fraction of all
        scheduling slots — the paper's Fig. 14(a) 'stalled cycle' metric
        at instruction granularity."""
        total = self.blocked_op_cycles + self.issued_op_total
        return self.blocked_op_cycles / total if total else 0.0

    def blocked_breakdown(self) -> dict[str, float]:
        """Which kinds of operations the blocked entry-cycles were
        (Fig. 14(b)'s unfinished-operation breakdown)."""
        total = max(1, self.blocked_op_cycles)
        return {k: v / total for k, v in self.blocked_by_kind.items()}

    def issue_mix(self) -> dict[str, float]:
        """Fraction of issue cycles that scheduled each kind of work."""
        total = max(1, self.issue_cycles)
        return {kind: count / total for kind, count in self.issue_kind_cycles.items()}

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe representation; frozenset histogram keys become
        sorted '+'-joined strings (empty set -> '')."""
        return {
            "cycles": self.cycles,
            "issue_cycles": self.issue_cycles,
            "stall_cycles": self.stall_cycles,
            "idle_cycles": self.idle_cycles,
            "issued_ops": self.issued_ops,
            "issued_by_class": dict(self.issued_by_class),
            "stall_sources": {
                "+".join(sorted(kinds)): count
                for kinds, count in sorted(
                    self.stall_sources.items(), key=lambda item: sorted(item[0])
                )
            },
            "fu_busy_cycles": dict(self.fu_busy_cycles),
            "issue_kind_cycles": dict(self.issue_kind_cycles),
            "blocked_op_cycles": self.blocked_op_cycles,
            "blocked_by_kind": dict(self.blocked_by_kind),
            "issued_op_total": self.issued_op_total,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OccupancyTracker":
        data = dict(data)
        data["stall_sources"] = {
            frozenset(key.split("+")) if key else frozenset(): count
            for key, count in data.get("stall_sources", {}).items()
        }
        return cls(**data)
