"""Version is declared in two places; they must agree.

`repro --version` reports `repro.__version__`; packaging metadata lives
in ``pyproject.toml``.  A release that bumps one but not the other ships
a lying ``/v1/version`` endpoint, so the suite pins them together.
"""

import tomllib
from pathlib import Path

import pytest

import repro
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_pyproject_and_package_versions_agree():
    pyproject = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
    assert pyproject["project"]["version"] == repro.__version__


def test_cli_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"
