"""Declarative, seed-deterministic fault plans.

A :class:`FaultPlan` is data, not behaviour: a list of
:class:`FaultEvent` records plus a seed.  Each event names a *kind*
(what goes wrong), a *target* (which SimObject it happens to), and a
*trigger* (an absolute tick, or the Nth access to the target).  Any
field the user leaves unspecified — the flipped address, the flipped
bit, the corruption mask — is resolved from ``random.Random(seed)``
when the plan is armed, so the same plan + seed always injects the
same faults, while ``seed`` sweeps explore the fault space.

Plans are plain picklable dataclasses: `ParallelSweep` ships them to
worker processes, and `run_cache_key` never sees them (faulty runs
bypass the cache entirely).

The CLI grammar (``--inject``) is ``kind@target[:key=val,...]``::

    bit_flip@spm:access=1,addr=0x20000007,bit=6
    port_stall@memctrl:tick=5000,cycles=200
    dma_drop@dma0:access=2
    mmr_corrupt@mmr:tick=100,reg=1,mask=0xff
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

#: The supported fault kinds.
#:
#: * ``bit_flip``     — flip one bit of one byte in a memory (SPM, DRAM,
#:   cache line via functional RMW, or an MMR file).
#: * ``mmr_corrupt``  — XOR a mask into one 64-bit MMR register.
#: * ``dma_drop``     — a DMA transfer completes without moving data
#:   (silent data loss; the device still signals done).
#: * ``dma_delay``    — a DMA transfer starts ``cycles`` late.
#: * ``port_stall``   — a memory controller issues nothing for
#:   ``cycles`` cycles (or forever when ``cycles`` is unset).
#: * ``mem_drop``     — a queued memory request vanishes: its completion
#:   callback never fires (the classic lost-transaction hang).
FAULT_KINDS = ("bit_flip", "mmr_corrupt", "dma_drop", "dma_delay",
               "port_stall", "mem_drop")


class FaultConfigError(ValueError):
    """Raised for malformed fault events / specs / targets."""


@dataclass
class FaultEvent:
    """One declarative fault.

    Exactly one trigger must be set: ``at_tick`` (absolute simulation
    tick) or ``after_accesses`` (fire on the Nth access to the target,
    1-based; for DMA targets an "access" is a programmed transfer).
    ``count`` repeats the fault on subsequent triggers (access-triggered
    events re-fire on each following access until exhausted).
    """

    kind: str
    target: str
    at_tick: Optional[int] = None
    after_accesses: Optional[int] = None
    addr: Optional[int] = None      # bit_flip: absolute byte address
    bit: Optional[int] = None       # bit_flip: bit index 0-7
    mask: Optional[int] = None      # mmr_corrupt: XOR mask
    reg: Optional[int] = None       # mmr_corrupt: argument register index
    cycles: Optional[int] = None    # port_stall / dma_delay duration
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultConfigError(
                f"unknown fault kind '{self.kind}' "
                f"(expected one of {', '.join(FAULT_KINDS)})"
            )
        if not self.target:
            raise FaultConfigError("fault event needs a target object name")
        if (self.at_tick is None) == (self.after_accesses is None):
            raise FaultConfigError(
                f"{self.kind}@{self.target}: specify exactly one trigger "
                "(at_tick or after_accesses)"
            )
        if self.at_tick is not None and self.at_tick < 0:
            raise FaultConfigError(f"{self.kind}@{self.target}: at_tick must be >= 0")
        if self.after_accesses is not None and self.after_accesses < 1:
            raise FaultConfigError(
                f"{self.kind}@{self.target}: after_accesses is 1-based (>= 1)"
            )
        if self.bit is not None and not 0 <= self.bit <= 7:
            raise FaultConfigError(f"{self.kind}@{self.target}: bit must be 0-7")
        if self.cycles is not None and self.cycles < 1:
            raise FaultConfigError(f"{self.kind}@{self.target}: cycles must be >= 1")
        if self.count < 1:
            raise FaultConfigError(f"{self.kind}@{self.target}: count must be >= 1")

    def describe(self) -> str:
        trigger = (f"tick={self.at_tick}" if self.at_tick is not None
                   else f"access={self.after_accesses}")
        extras = []
        for name in ("addr", "bit", "mask", "reg", "cycles"):
            value = getattr(self, name)
            if value is not None:
                extras.append(f"{name}={value:#x}" if name in ("addr", "mask")
                              else f"{name}={value}")
        if self.count != 1:
            extras.append(f"count={self.count}")
        detail = ("," + ",".join(extras)) if extras else ""
        return f"{self.kind}@{self.target}:{trigger}{detail}"


@dataclass
class FaultPlan:
    """A seedable list of fault events — the unit `FaultInjector` arms."""

    events: list[FaultEvent] = field(default_factory=list)
    seed: int = 0

    def __bool__(self) -> bool:
        return bool(self.events)

    @classmethod
    def coerce(cls, value: Union["FaultPlan", FaultEvent, str,
                                 Sequence, None]) -> Optional["FaultPlan"]:
        """Normalize the accepted plan forms.

        ``None`` stays ``None``; a plan passes through; a single
        `FaultEvent` or faultspec string becomes a one-event plan; a
        sequence of events/specs becomes a plan with seed 0.
        """
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, FaultEvent):
            return cls(events=[value])
        if isinstance(value, str):
            return cls(events=[parse_faultspec(value)])
        if isinstance(value, (list, tuple)):
            events = [event if isinstance(event, FaultEvent) else parse_faultspec(event)
                      for event in value]
            return cls(events=events)
        raise FaultConfigError(
            f"cannot build a FaultPlan from {type(value).__name__!r}"
        )

    @classmethod
    def parse(cls, specs: Iterable[str], seed: int = 0) -> "FaultPlan":
        """Build a plan from CLI ``--inject`` faultspec strings."""
        return cls(events=[parse_faultspec(spec) for spec in specs], seed=seed)

    def describe(self) -> list[str]:
        return [event.describe() for event in self.events]


#: CLI key aliases -> FaultEvent field names.
_SPEC_KEYS = {
    "tick": "at_tick",
    "at_tick": "at_tick",
    "access": "after_accesses",
    "after_accesses": "after_accesses",
    "addr": "addr",
    "bit": "bit",
    "mask": "mask",
    "reg": "reg",
    "cycles": "cycles",
    "count": "count",
}


def parse_faultspec(spec: str) -> FaultEvent:
    """Parse one ``kind@target[:key=val,...]`` faultspec string.

    Values are integers in any Python base notation (``0x...`` hex is
    the natural form for addresses and masks).
    """
    head, __, tail = spec.partition(":")
    kind, sep, target = head.partition("@")
    if not sep or not kind or not target:
        raise FaultConfigError(
            f"bad faultspec '{spec}' (expected kind@target[:key=val,...])"
        )
    kwargs: dict[str, int] = {}
    if tail:
        for part in tail.split(","):
            part = part.strip()
            if not part:
                continue
            key, eq, value = part.partition("=")
            if not eq:
                raise FaultConfigError(f"bad faultspec field '{part}' in '{spec}'")
            field_name = _SPEC_KEYS.get(key.strip())
            if field_name is None:
                raise FaultConfigError(
                    f"unknown faultspec key '{key.strip()}' in '{spec}' "
                    f"(known: {', '.join(sorted(set(_SPEC_KEYS)))})"
                )
            try:
                kwargs[field_name] = int(value.strip(), 0)
            except ValueError:
                raise FaultConfigError(
                    f"bad integer '{value.strip()}' for '{key.strip()}' in '{spec}'"
                ) from None
    return FaultEvent(kind=kind.strip(), target=target.strip(), **kwargs)
