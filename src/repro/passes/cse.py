"""Common-subexpression elimination (dominator-scoped value numbering).

Two instructions with the same opcode and the same operands compute the
same value; the later one is replaced by the earlier one when the
earlier dominates it.  On accelerator datapaths this directly removes
duplicated functional units under the default 1-to-1 mapping — the
``benchmarks/test_ablation_passes.py`` ablation quantifies the effect.

Loads, stores, phis and calls are never value-numbered (memory state
and control dependence make them non-pure).
"""

from __future__ import annotations

from repro.ir.dominance import DominatorTree
from repro.ir.instructions import (
    BinaryOp,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Select,
)
from repro.ir.module import Function
from repro.ir.values import Argument, Constant, Instruction, Value
from repro.passes.pass_manager import FunctionPass

_COMMUTATIVE = frozenset(["add", "mul", "and", "or", "xor", "fadd", "fmul"])


def _operand_key(operand: Value):
    if isinstance(operand, Constant):
        return ("const", str(operand.type), operand.value)
    return ("val", id(operand))


def _value_key(inst: Instruction):
    """Hashable identity of a pure computation, or None if not pure."""
    if isinstance(inst, BinaryOp):
        operands = [_operand_key(inst.lhs), _operand_key(inst.rhs)]
        if inst.opcode in _COMMUTATIVE:
            operands.sort()
        return ("bin", inst.opcode, str(inst.type), tuple(operands))
    if isinstance(inst, ICmp):
        return ("icmp", inst.pred, _operand_key(inst.operands[0]),
                _operand_key(inst.operands[1]))
    if isinstance(inst, FCmp):
        return ("fcmp", inst.pred, _operand_key(inst.operands[0]),
                _operand_key(inst.operands[1]))
    if isinstance(inst, Select):
        return ("select", tuple(_operand_key(op) for op in inst.operands))
    if isinstance(inst, Cast):
        return ("cast", inst.opcode, str(inst.type), _operand_key(inst.src))
    if isinstance(inst, GetElementPtr):
        return ("gep", str(inst.type), tuple(_operand_key(op) for op in inst.operands))
    return None


class CommonSubexpressionElimination(FunctionPass):
    name = "cse"

    def run(self, func: Function) -> bool:
        dt = DominatorTree(func)
        replacements: dict[Instruction, Value] = {}

        def visit(block, scope: dict) -> None:
            local = dict(scope)
            for inst in list(block.instructions):
                for operand in list(inst.operands):
                    if operand in replacements:
                        inst.replace_operand(operand, replacements[operand])
                key = _value_key(inst)
                if key is None:
                    continue
                existing = local.get(key)
                if existing is not None:
                    replacements[inst] = existing
                    block.remove(inst)
                else:
                    local[key] = inst
            for child in dt.children(block):
                visit(child, local)

        visit(func.entry, {})

        if not replacements:
            return False
        # Phis in blocks visited before their incoming values may still
        # reference removed instructions.
        for block in func.blocks:
            for inst in block.instructions:
                for operand in list(inst.operands):
                    if operand in replacements:
                        inst.replace_operand(operand, replacements[operand])
        return True
