"""Compile-once sweeps: the tentpole regression guard.

Pre-refactor, every sweep point recompiled the kernel from source —
O(points x compile).  Now the parent process builds each *distinct*
(source, function, pipeline) combination exactly once and ships the
compiled module to the workers, so the frontend cost is O(distinct
kernels).  These tests pin that down with the process-wide
`STAGE_COUNTERS` and check the results stayed byte-identical.
"""

import json

import pytest

from repro.build import ArtifactStore
from repro.build.pipeline import STAGE_COUNTERS
from repro.core.config import DeviceConfig
from repro.exec import ParallelSweep, SimContext
from repro.exec.cache import run_cache_key
from repro.workloads import get_workload


@pytest.fixture(autouse=True)
def fresh_counters():
    STAGE_COUNTERS.reset()
    yield
    STAGE_COUNTERS.reset()


@pytest.fixture(scope="module")
def workload():
    return get_workload("gemm_dse")


def _configure_ports(params):
    return dict(
        config=DeviceConfig(read_ports=params["ports"],
                            write_ports=max(1, params["ports"] // 2)),
        memory="spm", spm_bytes=1 << 15, spm_read_ports=params["ports"],
    )


def _configure_unroll(params):
    return dict(config=DeviceConfig(read_ports=2, write_ports=2),
                memory="spm", spm_bytes=1 << 15,
                unroll_factor=params["unroll"])


def _rows(points):
    return [json.dumps(p.record(), sort_keys=True) for p in points]


# -- the acceptance criterion ----------------------------------------------
def test_four_point_sweep_compiles_exactly_once(workload):
    # Four configuration points, one kernel: parse/lower/optimize must
    # each run exactly once, not four times.
    points = ParallelSweep(workers=1).run(
        workload, {"ports": [1, 2, 4, 8]}, _configure_ports, seed=7)
    assert len(points) == 4 and all(p.ok for p in points)
    assert STAGE_COUNTERS.parse == 1
    assert STAGE_COUNTERS.lower == 1
    assert STAGE_COUNTERS.optimize == 1


def test_parallel_workers_reuse_parent_compile(workload):
    # With real worker processes the parent still compiles exactly once
    # (workers receive the prebuilt module, so they never re-parse).
    points = ParallelSweep(workers=2).run(
        workload, {"ports": [1, 2, 4, 8]}, _configure_ports, seed=7)
    assert len(points) == 4 and all(p.ok for p in points)
    assert STAGE_COUNTERS.compiles() == 1


def test_distinct_kernels_compile_distinctly(workload):
    # Frontend cost is O(distinct kernels): two unroll factors are two
    # different pass pipelines, hence exactly two compiles for 4 points.
    def configure(params):
        return dict(
            config=DeviceConfig(read_ports=params["ports"], write_ports=2),
            memory="spm", spm_bytes=1 << 15, spm_read_ports=params["ports"],
            unroll_factor=params["unroll"],
        )

    points = ParallelSweep(workers=1).run(
        workload, {"unroll": [1, 2], "ports": [2, 4]}, configure, seed=7)
    assert len(points) == 4 and all(p.ok for p in points)
    assert STAGE_COUNTERS.parse == 2
    assert STAGE_COUNTERS.optimize == 2


def test_sweep_rows_match_pointwise_simulation(workload):
    # Byte-identical to the pre-refactor behaviour: each sweep row
    # reports exactly what a standalone SimContext computes for the
    # same configuration (which is how the serial path used to run).
    points = ParallelSweep(workers=2).run(
        workload, {"ports": [2, 8]}, _configure_ports, seed=7)
    for point in points:
        solo = SimContext(workload, seed=7,
                          **_configure_ports(point.params)).run()
        assert point.result.cycles == solo.cycles
        assert point.result.runtime_ns == solo.runtime_ns
        assert point.result.power.total_mw == solo.power.total_mw


def test_parallel_and_serial_rows_byte_identical(workload):
    grid = {"ports": [1, 2, 4, 8]}
    serial = ParallelSweep(workers=1).run(workload, grid, _configure_ports,
                                          seed=7)
    parallel = ParallelSweep(workers=4).run(workload, grid, _configure_ports,
                                            seed=7)
    assert _rows(parallel) == _rows(serial)


# -- artifact store in sweeps ----------------------------------------------
def test_second_sweep_is_all_artifact_hits(workload, tmp_path):
    grid = {"ports": [1, 2, 4, 8]}
    first_store = ArtifactStore(tmp_path)
    ParallelSweep(workers=1, artifact_store=first_store).run(
        workload, grid, _configure_ports, seed=7)
    assert first_store.misses == 1 and first_store.hits == 0
    # A later invocation (fresh store object, same directory) never
    # touches the frontend.
    STAGE_COUNTERS.reset()
    second_store = ArtifactStore(tmp_path)
    points = ParallelSweep(workers=1, artifact_store=second_store).run(
        workload, grid, _configure_ports, seed=7)
    assert all(p.ok for p in points)
    assert second_store.hits == 1 and second_store.misses == 0
    assert STAGE_COUNTERS.parse == 0


def test_store_does_not_change_results(workload):
    grid = {"unroll": [1, 2]}
    plain = ParallelSweep(workers=1).run(workload, grid, _configure_unroll,
                                         seed=7)
    stored = ParallelSweep(workers=1, artifact_store=ArtifactStore()).run(
        workload, grid, _configure_unroll, seed=7)
    assert _rows(stored) == _rows(plain)


# -- explicit pipelines in sweeps ------------------------------------------
def test_sweep_pipeline_joins_run_cache_key(workload):
    base = run_cache_key(workload.source, workload.func_name, seed=7)
    # Back-compat: pipeline=None must not perturb pre-existing keys.
    assert run_cache_key(workload.source, workload.func_name, seed=7,
                         pipeline=None) == base
    assert run_cache_key(workload.source, workload.func_name, seed=7,
                         pipeline="o1") != base
    # Equivalent spellings share a key.
    assert (run_cache_key(workload.source, workload.func_name, seed=7,
                          pipeline="o1:2")
            == run_cache_key(workload.source, workload.func_name, seed=7,
                             pipeline="inline,mem2reg,constfold,dce,"
                                      "unroll:2,constfold,simplifycfg,dce"))


def test_sweep_with_explicit_pipeline(workload):
    points = ParallelSweep(workers=1, pipeline="o1:2").run(
        workload, {"ports": [2]}, _configure_ports, seed=7)
    (point,) = points
    assert point.ok
    baseline = SimContext(workload, seed=7, unroll_factor=2,
                          **_configure_ports({"ports": 2})).run()
    assert point.result.cycles == baseline.cycles
