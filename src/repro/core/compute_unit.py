"""Compute Unit: the accelerator datapath SimObject (Sec. III-D1).

Binds a statically elaborated `LLVMInterface` to a `RuntimeEngine` and
a `CommInterface`.  The host launches it by writing argument MMRs and
setting the START bit; on completion the unit sets DONE and raises its
interrupt.  Also collects the per-accelerator power report, combining
datapath energy from the engine with SPM access energy from an
(optional) private scratchpad.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.comm_interface import CommInterface
from repro.core.config import DeviceConfig
from repro.core.llvm_interface import LLVMInterface
from repro.core.runtime import RuntimeEngine
from repro.hw.power import AreaReport, PowerReport
from repro.hw.profile import HardwareProfile
from repro.ir.module import Module
from repro.mem.spm import Scratchpad
from repro.sim.clock import ClockDomain
from repro.sim.simobject import SimObject, System


class ComputeUnit(SimObject):
    def __init__(
        self,
        name: str,
        system: System,
        module: Module,
        func_name: str,
        profile: HardwareProfile,
        config: Optional[DeviceConfig] = None,
        mmr_base: int = 0x1000_0000,
        clock: Optional[ClockDomain] = None,
    ) -> None:
        super().__init__(name, system, clock)
        self.config = config or DeviceConfig(name=name)
        if clock is None and self.config.clock_freq_hz:
            clock = ClockDomain(f"{name}.clk", self.config.clock_freq_hz)
            self.clock = clock
        self.iface = LLVMInterface(module, func_name, profile, self.config)
        self.comm = CommInterface(
            f"{name}.comm",
            system,
            mmr_base=mmr_base,
            config=self.config,
            num_args=max(8, len(self.iface.func.args)),
            clock=clock,
        )
        self.engine = RuntimeEngine(
            f"{name}.engine",
            system,
            self.iface,
            self.comm.memctrl,
            clock=clock,
        )
        self.comm.on_start(self._launch)
        self.private_spm: Optional[Scratchpad] = None
        self._run_callbacks: list[Callable[[], None]] = []
        self.invocations = 0
        self.total_busy_cycles = 0
        #: (tick, args) per launch — replayed by the concurrency
        #: analysis to recover each invocation's pointer arguments.
        self.launch_log: list[tuple[int, list]] = []

    # ------------------------------------------------------------------
    def attach_private_spm(self, spm: Scratchpad) -> None:
        """Register a private SPM so its energy joins this unit's report."""
        self.private_spm = spm

    def on_done(self, callback: Callable[[], None]) -> None:
        self._run_callbacks.append(callback)

    # -- launch path ---------------------------------------------------------
    def _launch(self) -> None:
        arg_types = [a.type for a in self.iface.func.args]
        args = self.comm.read_arguments(arg_types)
        self.invocations += 1
        self.launch_log.append((self.cur_tick, list(args)))
        self.engine.start(args, on_done=self._finished)

    def _finished(self) -> None:
        self.total_busy_cycles += self.engine.total_cycles
        self.comm.mmr.set_done()
        self.comm.raise_interrupt()
        for callback in self._run_callbacks:
            callback()

    # -- direct (host-less) programming, for standalone harnesses -------------
    def launch(self, args: list, on_done: Optional[Callable[[], None]] = None) -> None:
        """Start directly with python argument values (no host involved)."""
        self.invocations += 1
        self.launch_log.append((self.cur_tick, list(args)))
        def _done():
            self.total_busy_cycles += self.engine.total_cycles
            self.comm.mmr.set_done()
            self.comm.raise_interrupt()
            for callback in self._run_callbacks:
                callback()
            if on_done is not None:
                on_done()
        self.engine.start(args, on_done=_done)

    def launch_compiled(self, graph, args: list,
                        on_done: Optional[Callable[[], None]] = None,
                        max_ticks: Optional[int] = None,
                        capture=None, replay=None) -> bool:
        """Run ``args`` through the graph-compiled backend instead of the
        dynamic engine (`repro.engine`).  Stats, energy, and the DONE /
        interrupt protocol land exactly where :meth:`launch` puts them.
        Returns False when ``max_ticks`` ended the run early (mirroring
        the event queue's ``max_tick`` exit).

        ``capture``/``replay`` are forwarded to the scheduler for the
        incremental re-simulation machinery (`repro.engine.retime`)."""
        from repro.engine.scheduler import GraphScheduler

        self.invocations += 1
        self.launch_log.append((self.cur_tick, list(args)))
        scheduler = GraphScheduler(graph, self)
        completed = scheduler.run(args, max_ticks=max_ticks,
                                  capture=capture, replay=replay)
        if completed:
            self.total_busy_cycles += self.engine.total_cycles
            self.comm.mmr.set_done()
            self.comm.raise_interrupt()
            for callback in self._run_callbacks:
                callback()
            if on_done is not None:
                on_done()
        return completed

    # -- reporting --------------------------------------------------------------
    def power_report(self) -> PowerReport:
        runtime_ns = self.engine.runtime_ns()
        report = PowerReport(
            runtime_ns=runtime_ns,
            fu_dynamic_pj=self.engine.fu_energy_pj,
            register_dynamic_pj=self.engine.register_energy_pj,
            fu_leakage_mw=self.iface.static.fu_leakage_mw,
            register_leakage_mw=self.iface.static.register_leakage_mw,
        )
        if self.private_spm is not None:
            report.spm_read_pj = self.private_spm.read_energy_pj()
            report.spm_write_pj = self.private_spm.write_energy_pj()
            report.spm_leakage_mw = self.private_spm.leakage_mw()
        return report

    def area_report(self) -> AreaReport:
        spm_area = self.private_spm.area_um2() if self.private_spm else 0.0
        return self.iface.area_report(spm_um2=spm_area)

    def summary(self) -> dict:
        info = self.iface.summary()
        info.update(
            {
                "cycles": self.engine.total_cycles,
                "runtime_ns": self.engine.runtime_ns(),
                "invocations": self.invocations,
            }
        )
        return info
