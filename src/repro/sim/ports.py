"""Master/slave port pairs, gem5-style.

A :class:`MasterPort` is bound to exactly one :class:`SlavePort`.  Timing
requests flow master→slave and may be refused (backpressure); the slave
then owes the master a retry notification.  Responses flow slave→master
and are always accepted.  Functional accesses complete immediately and
are used for debugging and for host-initiated data movement that is
accounted for separately.

Owners implement the protocol by passing callbacks at construction:

* slave owner: ``recv_timing_req(pkt) -> bool`` and optionally
  ``recv_functional(pkt) -> Packet``
* master owner: ``recv_timing_resp(pkt) -> None`` and optionally
  ``recv_retry() -> None``
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.packet import Packet


class PortError(RuntimeError):
    """Raised on port protocol violations (unbound ports, bad packets)."""


class _Port:
    def __init__(self, name: str, owner=None) -> None:
        self.name = name
        self.owner = owner
        self.peer: Optional[_Port] = None

    def is_bound(self) -> bool:
        return self.peer is not None

    def _require_peer(self) -> "_Port":
        if self.peer is None:
            raise PortError(f"port '{self.name}' is not bound")
        return self.peer

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        peer = self.peer.name if self.peer else "unbound"
        return f"<{type(self).__name__} {self.name} <-> {peer}>"


class MasterPort(_Port):
    """Requesting side of a port pair."""

    def __init__(
        self,
        name: str,
        recv_timing_resp: Callable[[Packet], None],
        recv_retry: Optional[Callable[[], None]] = None,
        owner=None,
    ) -> None:
        super().__init__(name, owner)
        self._recv_timing_resp = recv_timing_resp
        self._recv_retry = recv_retry
        self.reqs_sent = 0
        self.resps_received = 0
        self.retries = 0

    def bind(self, slave: "SlavePort") -> None:
        if self.peer is not None or slave.peer is not None:
            raise PortError(f"rebinding port '{self.name}' or '{slave.name}'")
        self.peer = slave
        slave.peer = self

    # master -> slave
    def send_timing_req(self, pkt: Packet) -> bool:
        if not pkt.is_request:
            raise PortError(f"send_timing_req called with non-request {pkt}")
        slave = self._require_peer()
        assert isinstance(slave, SlavePort)
        accepted = slave._recv_timing_req(pkt)
        if accepted:
            self.reqs_sent += 1
        return accepted

    def send_functional(self, pkt: Packet) -> Packet:
        slave = self._require_peer()
        assert isinstance(slave, SlavePort)
        if slave._recv_functional is None:
            raise PortError(f"slave '{slave.name}' has no functional path")
        return slave._recv_functional(pkt)

    # called by the slave side
    def _deliver_resp(self, pkt: Packet) -> None:
        self.resps_received += 1
        self._recv_timing_resp(pkt)

    def _deliver_retry(self) -> None:
        self.retries += 1
        if self._recv_retry is not None:
            self._recv_retry()


class SlavePort(_Port):
    """Responding side of a port pair."""

    def __init__(
        self,
        name: str,
        recv_timing_req: Callable[[Packet], bool],
        recv_functional: Optional[Callable[[Packet], Packet]] = None,
        owner=None,
    ) -> None:
        super().__init__(name, owner)
        self._recv_timing_req = recv_timing_req
        self._recv_functional = recv_functional
        self.resps_sent = 0

    def bind(self, master: MasterPort) -> None:
        master.bind(self)

    # slave -> master
    def send_timing_resp(self, pkt: Packet) -> None:
        if pkt.is_request:
            raise PortError(f"send_timing_resp called with request {pkt}")
        master = self._require_peer()
        assert isinstance(master, MasterPort)
        self.resps_sent += 1
        master._deliver_resp(pkt)

    def send_retry(self) -> None:
        master = self._require_peer()
        assert isinstance(master, MasterPort)
        master._deliver_retry()


def connect(master: MasterPort, slave: SlavePort) -> None:
    """Bind a master/slave pair (readable wiring helper)."""
    master.bind(slave)
