"""repro: a Python reproduction of gem5-SALAM (MICRO 2020).

LLVM-based pre-RTL modeling and simulation of custom hardware
accelerators: compile a C kernel to SSA IR, statically elaborate it
into a datapath (CDFG + functional units + registers), then execute it
cycle by cycle inside an event-driven full-system simulation with
scratchpads, caches, DMAs, stream buffers, and a host driver agent.

Quick start::

    from repro import StandaloneAccelerator
    import numpy as np

    SRC = '''
    void vecadd(double a[64], double b[64], double c[64]) {
      for (int i = 0; i < 64; i++) { c[i] = a[i] + b[i]; }
    }
    '''
    acc = StandaloneAccelerator(SRC, "vecadd", memory="spm", spm_bytes=1 << 14)
    a, b = np.arange(64.0), np.ones(64)
    pa, pb, pc = acc.alloc_array(a), acc.alloc_array(b), acc.alloc(512)
    result = acc.run([pa, pb, pc])
    print(result.cycles, result.power.total_mw)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-experiment index.
"""

from repro.analysis import (
    AnalysisReport,
    Diagnostic,
    PassDivergenceError,
    Severity,
    dependence_report,
    lint_module,
    lint_system,
)
from repro.build import (
    Artifact,
    ArtifactStore,
    BuildPipeline,
    ElaboratedDesign,
    PipelineSpec,
    build_design,
    build_module,
)
from repro.core.config import DeviceConfig
from repro.core.compute_unit import ComputeUnit
from repro.core.cluster import AcceleratorCluster
from repro.frontend import compile_c
from repro.hw.default_profile import default_profile
from repro.exec import (
    FailureRecord,
    ParallelSweep,
    RunCache,
    SimContext,
    Simulation,
    SweepPointError,
)
from repro.faults import FaultPlan, SimWatchdog, SimulationHang
from repro.system.soc import (
    RunResult,
    SoC,
    StandaloneAccelerator,
    build_soc,
    run_standalone,
)
from repro.serve import JobServer, ServeClient, start_server_thread
from repro.trace import TraceConfig, TraceHub
from repro.workloads import all_workload_names, get_workload

__version__ = "1.1.0"

__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "PassDivergenceError",
    "Severity",
    "dependence_report",
    "lint_module",
    "lint_system",
    "Artifact",
    "ArtifactStore",
    "BuildPipeline",
    "ElaboratedDesign",
    "PipelineSpec",
    "build_design",
    "build_module",
    "DeviceConfig",
    "ComputeUnit",
    "AcceleratorCluster",
    "compile_c",
    "default_profile",
    "StandaloneAccelerator",
    "RunResult",
    "SimContext",
    "Simulation",
    "ParallelSweep",
    "RunCache",
    "FailureRecord",
    "SweepPointError",
    "FaultPlan",
    "SimWatchdog",
    "SimulationHang",
    "SoC",
    "build_soc",
    "run_standalone",
    "JobServer",
    "ServeClient",
    "start_server_thread",
    "TraceConfig",
    "TraceHub",
    "get_workload",
    "all_workload_names",
    "__version__",
]
