#!/usr/bin/env python
"""Design-space exploration of a GEMM accelerator (the Sec. IV-D flow).

Sweeps functional-unit limits x memory ports x memory type through the
execution layer (`repro.exec`): the grid fans out over worker
processes, results land in a content-addressed run cache (so re-running
the sweep is near-free), and the table marks the Pareto-optimal points
with the stall/occupancy introspection the paper uses for co-design
(Figs 13-15).

Run:  python examples/design_space_exploration.py
"""

import os

from repro.core.config import DeviceConfig
from repro.dse import format_table, pareto_front, to_csv
from repro.exec import ParallelSweep, RunCache
from repro.workloads import get_workload


def configure(params: dict) -> dict:
    """Map one sweep point to a StandaloneAccelerator configuration."""
    kwargs = dict(
        config=DeviceConfig(
            read_ports=params["ports"],
            write_ports=max(1, params["ports"] // 2),
            fu_limits={"fp_add": params["fus"], "fp_mul": params["fus"]},
        ),
        unroll_factor=8,
        memory=params["memory"],
    )
    if params["memory"] == "spm":
        kwargs.update(spm_bytes=1 << 15, spm_read_ports=params["ports"])
    elif params["memory"] == "cache":
        kwargs.update(cache_kwargs=dict(size=4096, line_size=64, assoc=4))
    return kwargs


def main() -> None:
    gemm = get_workload("gemm")
    executor = ParallelSweep(
        workers=min(4, os.cpu_count() or 1),
        cache=RunCache(),  # pass RunCache("path/") to persist across runs
    )
    points = executor.run(
        gemm,
        {"memory": ["spm", "cache"], "fus": [2, 8, 32], "ports": [2, 8]},
        configure=configure,
    )

    front = pareto_front(points, objectives=lambda p: (p.runtime_us, p.power_mw))
    rows = []
    for point in points:
        row = point.record()
        row["pareto"] = "*" if point in front else ""
        rows.append(row)
    print(format_table(rows, title="GEMM design-space sweep", float_fmt="{:.3f}"))

    print("\nPareto-optimal configurations:")
    for point in front:
        print(f"  {point.params}  ->  {point.runtime_us:.1f} us @ {point.power_mw:.2f} mW")

    best = min(front, key=lambda p: p.runtime_us)
    occ = best.result.occupancy
    print(f"\nfastest point {best.params}:")
    print(f"  stall sources: {occ.stall_breakdown()}")
    print(f"  issue mix    : {occ.issue_mix()}")

    print("\nCSV export:\n" + to_csv(rows))

    # A second pass over the same grid never touches the simulator: every
    # point is served from the content-addressed run cache.
    executor.run(
        gemm,
        {"memory": ["spm", "cache"], "fus": [2, 8, 32], "ports": [2, 8]},
        configure=configure,
    )
    print(f"\nrun cache: {executor.cache.hits} hits / {executor.cache.misses} misses")


if __name__ == "__main__":
    main()
