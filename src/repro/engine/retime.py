"""Memory re-timing: replay a captured schedule trace, skip the datapath.

The LightningSim observation, applied to this simulator: for a fixed
datapath configuration (kernel, pass pipeline, dataset seed, FU
structure — see `repro.exec.params.DATAPATH_PARAMS`), the *content* of
a run is invariant under memory-system changes.  Every computed value,
every branch outcome, and every resolved address is decided by the
dataflow alone; memory parameters (SPM ports/banks, queue depths,
issue widths, ideal-memory latency) only move events in time.  The
graph scheduler's conflict logic guarantees this: overlapping accesses
always commit in program order, so reordering legal under one memory
configuration never changes the bytes another configuration observes.

So the expensive half of a run — evaluating instruction thunks,
encoding/decoding memory bytes, computing branch conditions — can be
done **once** per datapath configuration and captured as a
`ScheduleTrace`:

* ``block_seq`` — the block-level control path (entry block followed by
  every branch target, in branch-issue order, which is exactly block
  fetch order);
* ``addrs`` — resolved address per memory instruction, keyed by the
  instruction's dynamic sequence number (fetch order is deterministic,
  so sequence numbers line up between capture and replay);
* ``store_data`` — the encoded bytes of every store, keyed the same way
  (replay still performs the image writes, so the final memory image —
  and golden-model verification — is byte-identical).

Replay (`GraphScheduler.run(..., replay=trace)`) re-runs the *timing*
machinery in full — dependency tracking, conflict scanning, FU
allocation, the memory pump, occupancy accounting — against the current
memory configuration, consuming captured content instead of computing
it.  The result is byte-identical to a full simulation at that
configuration, at a fraction of the cost.

Traces are content-addressed by the **datapath key** (the first half of
`repro.exec.cache.split_cache_key`) and stored as ``trace`` artifacts
via `repro.build.pipeline.BuildPipeline.trace`, so they are shared
across sweep points, processes, and program invocations exactly like
compiled kernels and lowered graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

#: Bump when the trace layout (or anything replay reads from it)
#: changes; stored traces with a different version are ignored, so a
#: stale artifact dir degrades to re-capture instead of misbehaving.
TRACE_FORMAT_VERSION = 1


class RetimeError(Exception):
    """A schedule trace that cannot re-time the requested run (wrong
    datapath shape, stale format, truncated capture).  Callers fall
    back to a full simulation."""


@dataclass
class ScheduleTrace:
    """The memory-parameter-independent content of one run."""

    func_name: str
    n_nodes: int
    entry_block: int
    #: Block fetch order: ``[entry] + [target of i-th branch issue]``.
    block_seq: list[int]
    #: Dynamic sequence number -> resolved address (memory ops only).
    addrs: dict[int, int]
    #: Dynamic sequence number -> encoded store bytes (stores only).
    store_data: dict[int, bytes]
    #: Dynamic instruction count of the captured run (sanity check).
    n_dyn: int = 0
    version: int = TRACE_FORMAT_VERSION
    #: Provenance: the datapath key the trace was captured under.
    datapath_key: str = ""

    def validate(self, graph, func_name: str) -> None:
        """Cheap structural checks before a replay starts.

        Content addressing (the datapath key) already guarantees the
        trace matches the design; this guards against store corruption
        and format drift.  Raises `RetimeError` on any mismatch.
        """
        if self.version != TRACE_FORMAT_VERSION:
            raise RetimeError(
                f"trace format v{self.version} != v{TRACE_FORMAT_VERSION}")
        if self.func_name != func_name:
            raise RetimeError(
                f"trace captured for '{self.func_name}', "
                f"replaying '{func_name}'")
        if self.n_nodes != graph.n_nodes:
            raise RetimeError(
                f"trace captured over {self.n_nodes} nodes, "
                f"graph has {graph.n_nodes}")
        if not self.block_seq or self.block_seq[0] != graph.entry_block:
            raise RetimeError("trace entry block does not match the graph")


class TraceCapture:
    """Capture hooks handed to `GraphScheduler.run(capture=...)`.

    The scheduler records into the three plain containers at issue time
    (the only point where addresses and store bytes are final); the
    capture is turned into a `ScheduleTrace` only when the run
    completed — a truncated run (``max_ticks``) must never publish a
    partial trace.
    """

    def __init__(self) -> None:
        self.targets: list[int] = []
        self.addrs: dict[int, int] = {}
        self.store_data: dict[int, bytes] = {}
        self.n_dyn = 0

    def to_trace(self, graph, func_name: str,
                 datapath_key: str = "") -> ScheduleTrace:
        return ScheduleTrace(
            func_name=func_name,
            n_nodes=graph.n_nodes,
            entry_block=graph.entry_block,
            block_seq=[graph.entry_block] + self.targets,
            addrs=self.addrs,
            store_data=self.store_data,
            n_dyn=self.n_dyn,
            datapath_key=datapath_key,
        )


@dataclass
class TraceCounters:
    """Process-wide trace-cache accounting (the retime sibling of
    `repro.build.pipeline.STAGE_COUNTERS`).  The serve layer surfaces a
    snapshot under ``/v1/stats`` as ``trace_cache``."""

    hits: int = 0
    misses: int = 0
    captures: int = 0
    retimed_runs: int = 0

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: Every trace-store probe / capture / replay in this process bumps these.
TRACE_COUNTERS = TraceCounters()


def trace_cache_key(datapath_key: str) -> str:
    """Artifact-store key of the trace for one datapath configuration."""
    return f"trace:v{TRACE_FORMAT_VERSION}:{datapath_key}"


__all__ = [
    "TRACE_FORMAT_VERSION",
    "TRACE_COUNTERS",
    "RetimeError",
    "ScheduleTrace",
    "TraceCapture",
    "TraceCounters",
    "trace_cache_key",
]
