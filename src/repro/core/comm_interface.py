"""Communications Interface (Sec. III-D1, Fig. 5).

Provides an accelerator's window onto the system: memory-mapped
registers for control/status/arguments, master memory ports (routed
through the accelerator memory controller so SPM and cache can be
accessed in parallel), and an interrupt line.  Interfaces are
interchangeable without touching the Compute Unit — the decoupling the
paper contrasts against gem5-Aladdin and PARADE.
"""

from __future__ import annotations

import struct
from typing import Callable, Optional

from repro.core.config import DeviceConfig
from repro.core.mmr import CTRL_IRQ_EN, CTRL_START, MMRFile
from repro.ir.types import Type
from repro.mem.memctrl import AcceleratorMemController
from repro.sim.ports import MasterPort, SlavePort
from repro.sim.simobject import AddrRange, SimObject, System


class CommInterface(SimObject):
    """MMRs + memory master ports + interrupt line."""

    def __init__(
        self,
        name: str,
        system: System,
        mmr_base: int,
        config: Optional[DeviceConfig] = None,
        num_args: int = 8,
        clock=None,
    ) -> None:
        super().__init__(name, system, clock)
        config = config or DeviceConfig()
        # The agent identity shared by this interface and its memory
        # controller: the owning compute unit's name (comm interfaces
        # are conventionally named "<unit>.comm").
        self.agent = name[: -len(".comm")] if name.endswith(".comm") else name
        self.mmr = MMRFile(
            f"{name}.mmr",
            system,
            base=mmr_base,
            num_args=num_args,
            on_write=self._mmr_written,
            clock=clock,
        )
        self.memctrl = AcceleratorMemController(
            f"{name}.memctrl",
            system,
            read_ports=config.read_ports,
            write_ports=config.write_ports,
            ideal=config.ideal_memory,
            clock=clock,
            agent=self.agent,
        )
        self._on_start: Optional[Callable[[], None]] = None
        self._irq_handlers: list[Callable[[], None]] = []
        #: IRQ numbers this interface raises (recovered from connected
        #: controller lines) — lets the concurrency analysis map a host
        #: ``wait_irq(n)`` back to the accelerator that signals ``n``.
        self.irq_lines: list[int] = []
        self.stat_interrupts = self.stats.scalar("interrupts_raised")

    # -- wiring --------------------------------------------------------------
    def add_memory_route(
        self,
        addr_range: AddrRange,
        slave: SlavePort,
        label: str = "",
        strict: bool = False,
    ) -> MasterPort:
        """Route accesses in ``addr_range`` to ``slave`` (SPM port, cache
        cpu-side, or a crossbar slave port).

        ``strict`` marks a device region with strictly-ordered access
        semantics (stream windows): the runtime scheduler will never
        reorder same-address loads within it.
        """
        port = self.memctrl.add_route(addr_range, label)
        port.bind(slave)
        if strict:
            self.memctrl.add_strict_range(addr_range)
        return port

    def on_start(self, callback: Callable[[], None]) -> None:
        """Register the compute unit's launch hook."""
        self._on_start = callback

    def connect_irq(self, handler: Callable[[], None]) -> None:
        """Attach an interrupt destination (GIC line / host waiter)."""
        self._irq_handlers.append(handler)
        irq = getattr(handler, "irq", None)
        if irq is not None:
            self.irq_lines.append(irq)

    # -- control ----------------------------------------------------------------
    def _mmr_written(self, offset: int, value: int) -> None:
        if offset == 0 and value & CTRL_START and self._on_start is not None:
            if self._san is not None:
                # The starter (host) released this key when its control
                # write landed; acquiring orders the launch after every
                # host access that preceded the start.
                self._san.acquire(self.agent, ("mmr", self.mmr.name))
            self._on_start()

    def raise_interrupt(self) -> None:
        if self.mmr.control & CTRL_IRQ_EN or not self._irq_handlers:
            self.stat_interrupts.inc()
        if self._san is not None:
            # Publish the accelerator's finished work before any waiter
            # resumes on these lines.
            for irq in self.irq_lines:
                self._san.release(self.agent, ("irq", irq))
        for handler in self._irq_handlers:
            handler()

    # -- argument marshalling ------------------------------------------------------
    def read_arguments(self, arg_types: list[Type]) -> list:
        """Decode MMR argument registers per the kernel signature."""
        values = []
        for index, type_ in enumerate(arg_types):
            raw = self.mmr.arg(index)
            if type_.is_float:
                if type_.bit_width() == 64:
                    values.append(struct.unpack("<d", raw.to_bytes(8, "little"))[0])
                else:
                    values.append(
                        struct.unpack("<f", (raw & 0xFFFFFFFF).to_bytes(4, "little"))[0]
                    )
            elif type_.is_int:
                values.append(raw & type_.mask)
            else:  # pointer
                values.append(raw)
        return values

    @staticmethod
    def encode_argument(value, type_: Type) -> int:
        """Encode a python value into a 64-bit MMR payload."""
        if type_.is_float:
            if type_.bit_width() == 64:
                return int.from_bytes(struct.pack("<d", value), "little")
            return int.from_bytes(struct.pack("<f", value), "little")
        return int(value) & ((1 << 64) - 1)
