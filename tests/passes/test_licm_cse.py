"""LICM and CSE: correctness and effect."""

import numpy as np

from repro.frontend import compile_c, lower_to_ir, parse_c
from repro.ir.instructions import BinaryOp
from repro.ir.interpreter import Interpreter
from repro.ir.memory import MemoryImage
from repro.ir.verifier import verify_module
from repro.passes import (
    CommonSubexpressionElimination,
    ConstantFold,
    DeadCodeElimination,
    LoopInvariantCodeMotion,
    Mem2Reg,
)
from repro.passes.loop_analysis import find_loops


def _prep(src, func="f"):
    module = lower_to_ir(parse_c(src))
    f = module.get_function(func)
    Mem2Reg().run(f)
    ConstantFold().run(f)
    DeadCodeElimination().run(f)
    return module, f


def _run(module, func, arrays=(), scalars=()):
    mem = MemoryImage(1 << 14, base=0x100)
    args = [mem.alloc_array(a) for a in arrays] + list(scalars)
    result = Interpreter(module, mem).run(func, args)
    return result, mem, args


# -- LICM -------------------------------------------------------------------
def test_licm_hoists_invariant_multiply():
    src = """
    void f(double a[16], double out[16], int n) {
      for (int i = 0; i < 16; i++) { out[i] = a[i] * (n * 7); }
    }
    """
    module, f = _prep(src)
    loop = find_loops(f)[0]
    in_loop_muls_before = sum(
        1 for b in loop.blocks for i in b.instructions
        if isinstance(i, BinaryOp) and i.opcode == "mul"
    )
    assert LoopInvariantCodeMotion().run(f)
    verify_module(module)
    loop = find_loops(f)[0]
    in_loop_muls_after = sum(
        1 for b in loop.blocks for i in b.instructions
        if isinstance(i, BinaryOp) and i.opcode == "mul"
    )
    assert in_loop_muls_after < in_loop_muls_before


def test_licm_preserves_semantics(rng):
    src = """
    void f(double a[16], double out[16], int n) {
      for (int i = 0; i < 16; i++) { out[i] = a[i] * (n * 7) + (n - 2); }
    }
    """
    data = rng.uniform(-1, 1, 16)

    def run(module):
        __, mem, args = _run(module, "f", arrays=[data, np.zeros(16)], scalars=[3])
        return mem.read_array(args[1], np.float64, 16)

    module, f = _prep(src)
    before = run(module)
    LoopInvariantCodeMotion().run(f)
    verify_module(module)
    assert np.allclose(run(module), before)


def test_licm_does_not_hoist_division():
    src = """
    void f(int a[16], int out[16], int n) {
      for (int i = 0; i < 16; i++) {
        if (n != 0) { out[i] = a[i] + 100 / n; }
      }
    }
    """
    module, f = _prep(src)
    LoopInvariantCodeMotion().run(f)
    verify_module(module)
    # 100/n stays inside the guard: running with n=0 must not trap.
    _run(module, "f", arrays=[np.zeros(16, np.int32), np.zeros(16, np.int32)],
         scalars=[0])


def test_licm_does_not_hoist_guarded_code():
    src = """
    void f(double a[16], double out[16], double n_arr[1]) {
      double n = n_arr[0];
      for (int i = 0; i < 16; i++) {
        if (a[i] > 0.0) { out[i] = n * 2.0; } else { out[i] = 0.0; }
      }
    }
    """
    module, f = _prep(src)
    loops_before = find_loops(f)
    LoopInvariantCodeMotion().run(f)
    verify_module(module)
    data = np.array([1.0, -1.0] * 8)
    __, mem, args = _run(module, "f",
                         arrays=[data, np.zeros(16), np.array([5.0])])
    out = mem.read_array(args[1], np.float64, 16)
    assert np.allclose(out, np.where(data > 0, 10.0, 0.0))


def test_licm_nested_loops(rng):
    src = """
    void f(double a[64], double out[64], int n) {
      for (int i = 0; i < 8; i++) {
        for (int j = 0; j < 8; j++) {
          out[i * 8 + j] = a[i * 8 + j] * (n * n);
        }
      }
    }
    """
    module, f = _prep(src)
    LoopInvariantCodeMotion().run(f)
    verify_module(module)
    data = rng.uniform(-1, 1, 64)
    __, mem, args = _run(module, "f", arrays=[data, np.zeros(64)], scalars=[4])
    assert np.allclose(mem.read_array(args[1], np.float64, 64), data * 16)


# -- CSE ---------------------------------------------------------------------
def test_cse_removes_duplicate_expression():
    src = "int f(int a, int b) { return (a + b) * (a + b); }"
    module, f = _prep(src)
    adds_before = sum(1 for i in f.instructions() if i.opcode == "add")
    assert CommonSubexpressionElimination().run(f)
    verify_module(module)
    adds_after = sum(1 for i in f.instructions() if i.opcode == "add")
    assert adds_after == adds_before - 1
    result, __, __ = _run(module, "f", scalars=[3, 4])
    assert result.return_value == 49


def test_cse_commutative_matching():
    src = "int f(int a, int b) { return a * b + b * a; }"
    module, f = _prep(src)
    CommonSubexpressionElimination().run(f)
    muls = sum(1 for i in f.instructions() if i.opcode == "mul")
    assert muls == 1
    result, __, __ = _run(module, "f", scalars=[6, 7])
    assert result.return_value == 84


def test_cse_respects_dominance():
    src = """
    int f(int a, int b) {
      int x;
      if (a > 0) { x = a + b; } else { x = a - b; }
      return x + (a + b);
    }
    """
    module, f = _prep(src)
    CommonSubexpressionElimination().run(f)
    verify_module(module)
    # (a+b) in the then-arm does NOT dominate the final use; semantics hold.
    result, __, __ = _run(module, "f", scalars=[5, 2])
    assert result.return_value == 14
    result, __, __ = _run(module, "f", scalars=[(-5) & 0xFFFFFFFF, 2])
    from repro.ir.semantics import to_signed
    from repro.ir.types import I32
    assert to_signed(result.return_value, I32) == (-5 - 2) + (-5 + 2)


def test_cse_does_not_merge_loads():
    src = """
    int f(int p[4]) {
      int a = p[0];
      p[0] = a + 1;
      int b = p[0];
      return a + b;
    }
    """
    module, f = _prep(src)
    CommonSubexpressionElimination().run(f)
    data = np.array([10, 0, 0, 0], dtype=np.int32)
    result, __, __ = _run(module, "f", arrays=[data])
    assert result.return_value == 21  # second load sees the store


def test_cse_shrinks_datapath_fu_count():
    from repro.core.cdfg import StaticCDFG

    src = """
    void f(double a[8], double out[8], double s_arr[1]) {
      double s = s_arr[0];
      for (int i = 0; i < 8; i++) {
        out[i] = a[i] * (s * s) + (s * s);
      }
    }
    """
    level1 = compile_c(src, opt_level=1)
    level2 = compile_c(src, opt_level=2)
    fu1 = StaticCDFG(level1.get_function("f")).fu_counts
    fu2 = StaticCDFG(level2.get_function("f")).fu_counts
    assert fu2.get("fp_mul", 0) < fu1.get("fp_mul", 0)


def test_opt_level2_preserves_all_workloads():
    """Every benchmark kernel compiled at -O2 still matches its golden."""
    from repro.ir.interpreter import Interpreter as Interp
    from repro.workloads import all_workload_names, get_workload

    for name in ["gemm", "fft", "spmv", "nw", "stencil3d"]:
        w = get_workload(name)
        data = w.make_data(np.random.default_rng(5))
        module = compile_c(w.source, w.name, opt_level=2)
        mem = MemoryImage(1 << 20, base=0x10000)
        addresses, args = {}, []
        for arg_name in w.arg_order:
            if arg_name in data.inputs:
                addr = mem.alloc_array(np.ascontiguousarray(data.inputs[arg_name]))
                addresses[arg_name] = addr
                args.append(addr)
            else:
                args.append(data.scalars[arg_name])
        Interp(module, mem).run(w.func_name, args)
        for out_name in data.output_names:
            expected = data.golden[out_name]
            actual = mem.read_array(addresses[out_name], expected.dtype, expected.size)
            assert np.allclose(actual, expected.ravel(), rtol=1e-6, atol=1e-9), (
                name, out_name,
            )
