"""Analytical SRAM model (CACTI/McPAT stand-in).

gem5-SALAM shells out to McPAT's CACTI to price private scratchpads and
caches; offline we use an analytical model with the standard scaling
behaviour CACTI exhibits at 40 nm:

* area grows linearly in capacity plus a decoder/sense-amp term that
  grows with the square root of the number of words;
* access energy grows with word width and with sqrt(capacity)
  (bitline/wordline length);
* leakage is proportional to capacity;
* extra ports multiply area/energy superlinearly (dual-port cells),
  and banking trades a small area overhead for lower per-bank energy.

The constants were fit so that representative points (a 4 KiB
single-port SPM, a 64 KiB cache array) land in the range CACTI 6.5
reports for 40 nm SRAM.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class SRAMConfig:
    size_bytes: int
    word_bytes: int = 8
    read_ports: int = 1
    write_ports: int = 1
    banks: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"SRAM size must be positive, got {self.size_bytes}")
        if self.word_bytes <= 0:
            raise ValueError("word size must be positive")
        if self.read_ports < 1 or self.write_ports < 1:
            raise ValueError("SRAM needs at least one read and one write port")
        if self.banks < 1:
            raise ValueError("bank count must be >= 1")


@dataclass(frozen=True)
class SRAMMetrics:
    area_um2: float
    leakage_mw: float
    read_energy_pj: float
    write_energy_pj: float
    access_latency_cycles: int


# Fitted 40 nm constants.
_AREA_PER_BIT_UM2 = 0.485
_AREA_PERIPHERY_UM2 = 1850.0
_LEAKAGE_PER_BIT_MW = 1.45e-6
_ENERGY_PER_WORD_BIT_PJ = 0.011
_ENERGY_BITLINE_FACTOR = 0.0135
_WRITE_ENERGY_RATIO = 1.18
_PORT_AREA_FACTOR = 0.72  # each extra port adds 72% cell area
_PORT_ENERGY_FACTOR = 0.32
_BANK_AREA_OVERHEAD = 0.06
_BANK_ENERGY_EXPONENT = 0.5


def cacti_model(config: SRAMConfig) -> SRAMMetrics:
    """Price an SRAM macro.

    Returns area (um^2), leakage (mW), per-access read/write energy (pJ),
    and access latency in cycles (1 for small arrays, growing with bank
    size as wordlines lengthen).
    """
    bits = config.size_bytes * 8
    word_bits = config.word_bytes * 8
    words = max(1, config.size_bytes // config.word_bytes)
    total_ports = config.read_ports + config.write_ports

    port_area_mult = 1.0 + _PORT_AREA_FACTOR * (total_ports - 2)
    port_energy_mult = 1.0 + _PORT_ENERGY_FACTOR * (total_ports - 2)
    bank_area_mult = 1.0 + _BANK_AREA_OVERHEAD * (config.banks - 1)

    area = (
        bits * _AREA_PER_BIT_UM2 * port_area_mult * bank_area_mult
        + _AREA_PERIPHERY_UM2 * config.banks
        + 28.0 * math.sqrt(words) * config.banks
    )
    leakage = bits * _LEAKAGE_PER_BIT_MW * port_area_mult

    words_per_bank = max(1, words // config.banks)
    read_energy = (
        word_bits * _ENERGY_PER_WORD_BIT_PJ
        + _ENERGY_BITLINE_FACTOR * word_bits * math.sqrt(words_per_bank) ** _BANK_ENERGY_EXPONENT
    ) * port_energy_mult
    write_energy = read_energy * _WRITE_ENERGY_RATIO

    bank_bytes = config.size_bytes / config.banks
    if bank_bytes <= 16 * 1024:
        latency = 1
    elif bank_bytes <= 128 * 1024:
        latency = 2
    else:
        latency = 3
    return SRAMMetrics(
        area_um2=area,
        leakage_mw=leakage,
        read_energy_pj=read_energy,
        write_energy_pj=write_energy,
        access_latency_cycles=latency,
    )
