"""Instruction constructors and their type checking."""

import pytest

from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.module import BasicBlock
from repro.ir.types import DOUBLE, I1, I32, I64, array_of, ptr_to
from repro.ir.values import Constant


def c32(v):
    return Constant(I32, v)


def cd(v):
    return Constant(DOUBLE, v)


def test_binop_type_checks():
    assert BinaryOp("add", c32(1), c32(2)).type == I32
    with pytest.raises(TypeError):
        BinaryOp("add", c32(1), Constant(I64, 2))  # width mismatch
    with pytest.raises(TypeError):
        BinaryOp("fadd", c32(1), c32(2))  # float op on ints
    with pytest.raises(TypeError):
        BinaryOp("add", cd(1), cd(2))  # int op on floats
    with pytest.raises(ValueError):
        BinaryOp("bogus", c32(1), c32(2))


def test_icmp_produces_i1():
    cmp_ = ICmp("slt", c32(1), c32(2))
    assert cmp_.type == I1
    assert cmp_.pred == "slt"
    with pytest.raises(ValueError):
        ICmp("oeq", c32(1), c32(2))
    with pytest.raises(TypeError):
        ICmp("eq", cd(1), cd(1))


def test_fcmp_validation():
    assert FCmp("olt", cd(1), cd(2)).type == I1
    with pytest.raises(ValueError):
        FCmp("slt", cd(1), cd(2))


def test_select_arms_must_match():
    cond = Constant(I1, 1)
    assert Select(cond, c32(1), c32(2)).type == I32
    with pytest.raises(TypeError):
        Select(cond, c32(1), cd(2))
    with pytest.raises(TypeError):
        Select(c32(1), c32(1), c32(2))  # condition must be i1


def test_load_store_pointer_checks():
    ptr = Constant(ptr_to(I32), 0x100)
    assert Load(ptr).type == I32
    Store(c32(5), ptr)  # ok
    with pytest.raises(TypeError):
        Load(c32(5))
    with pytest.raises(TypeError):
        Store(cd(1.0), ptr)  # type mismatch through pointer


def test_gep_type_walking():
    scalar_ptr = Constant(ptr_to(DOUBLE), 0)
    gep = GetElementPtr(scalar_ptr, [Constant(I64, 3)])
    assert gep.type == ptr_to(DOUBLE)

    array_ptr = Constant(ptr_to(array_of(DOUBLE, 8)), 0)
    gep2 = GetElementPtr(array_ptr, [Constant(I64, 0), Constant(I64, 2)])
    assert gep2.type == ptr_to(DOUBLE)

    with pytest.raises(TypeError):
        GetElementPtr(scalar_ptr, [Constant(I64, 0), Constant(I64, 1)])


def test_branch_targets():
    b1, b2 = BasicBlock("a"), BasicBlock("b")
    br = Branch(b1)
    assert not br.is_conditional
    assert br.targets() == [b1]
    cbr = Branch(b1, cond=Constant(I1, 1), if_false=b2)
    assert cbr.is_conditional
    assert cbr.true_target is b1 and cbr.false_target is b2
    with pytest.raises(TypeError):
        Branch(b1, cond=c32(1), if_false=b2)
    with pytest.raises(ValueError):
        Branch(b1, cond=Constant(I1, 1))


def test_ret():
    assert Ret().return_value is None
    assert Ret(c32(3)).return_value.value == 3
    assert Ret().is_terminator


def test_phi_incoming():
    b1, b2 = BasicBlock("a"), BasicBlock("b")
    phi = Phi(I32)
    phi.add_incoming(c32(1), b1)
    phi.add_incoming(c32(2), b2)
    assert phi.incoming_for(b1).value == 1
    assert phi.incoming_for(b2).value == 2
    with pytest.raises(KeyError):
        phi.incoming_for(BasicBlock("c"))
    with pytest.raises(TypeError):
        phi.add_incoming(cd(1.0), b1)


def test_call_intrinsic_flag():
    assert Call("sqrt", DOUBLE, [cd(4.0)]).is_intrinsic
    assert not Call("helper", DOUBLE, [cd(4.0)]).is_intrinsic


def test_alloca_result_is_pointer():
    alloca = Alloca(array_of(I32, 4))
    assert alloca.type == ptr_to(array_of(I32, 4))
    assert alloca.is_memory
