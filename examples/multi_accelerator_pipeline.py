#!/usr/bin/env python
"""Multi-accelerator integration study (the Fig. 16 experiment).

Runs one CNN layer (3x3 conv -> ReLU -> 2x2 max-pool) through three
system integrations and reports the end-to-end times:

  private SPM + DMA + host sync   (what trace-based simulators support)
  shared SPM + host sync          (PARADE-style central controller)
  stream buffers, self-synced     (only expressible in gem5-SALAM)

Run:  python examples/multi_accelerator_pipeline.py
"""

from repro.system.cnn_scenarios import run_all_scenarios


def main() -> None:
    results = run_all_scenarios()
    base = results["private_spm"].total_us
    print(f"{'scenario':14s} {'end-to-end':>12s} {'speedup':>8s}  verified")
    for result in results.values():
        print(
            f"{result.name:14s} {result.total_us:10.2f} us "
            f"{base / result.total_us:7.2f}x  {result.verified}"
        )
    print("\nper-accelerator busy cycles:")
    for result in results.values():
        print(f"  {result.name:14s} {result.acc_cycles}")
    print(
        "\nAll three produce bit-identical outputs; only the system\n"
        "integration (and therefore time) differs — the decoupling of\n"
        "computation from communication the paper demonstrates."
    )


if __name__ == "__main__":
    main()
