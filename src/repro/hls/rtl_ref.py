"""Design-Compiler-style area/power reference.

Prices the *same* datapath a second, more detailed way: on top of the
per-unit characterization it adds the synthesis effects a gate-level
flow sees but a first-order pre-RTL model omits —

* operand-steering interconnect: multiplexers in front of shared units
  grow with the number of units and the register count;
* clock tree and control logic overhead, proportional to sequential
  area;
* dynamic glitching: spurious transitions in deep combinational clouds,
  strongest for mux/compare-heavy irregular datapaths (which is why the
  paper's MD-KNN / MD-Grid / NW show the largest power errors).

The reproduction's reported "validation error" is the genuine gap
between the simulator's first-order estimate and this gate-level-style
reference.
"""

from __future__ import annotations

import math

from repro.hw.power import AreaReport, PowerReport
from repro.hw.profile import HardwareProfile, MUX

# Synthesis-effect coefficients (40 nm flavoured).
_MUX_AREA_PER_INPUT_BIT_UM2 = 0.62
_CLOCK_TREE_AREA_FRACTION = 0.021
_CTRL_AREA_PER_OP_UM2 = 9.5
_CLOCK_TREE_POWER_FRACTION = 0.024
_GLITCH_BASE = 0.012
_GLITCH_IRREGULARITY = 0.045
_LEAKAGE_WIRING_FRACTION = 0.018


def _irregularity(fu_counts: dict[str, int]) -> float:
    """0..1: how mux/compare/control heavy the datapath is."""
    total = sum(fu_counts.values())
    if total == 0:
        return 0.0
    irregular = sum(
        count
        for fu_class, count in fu_counts.items()
        if fu_class in (MUX, "fp_cmp", "int_div", "fp_div", "fp_special", "shifter")
    )
    return irregular / total


def rtl_area_reference(
    salam_area: AreaReport,
    fu_counts: dict[str, int],
    register_bits: int,
    profile: HardwareProfile,
) -> float:
    """Reference total area in um^2 (datapath + interconnect)."""
    total_units = sum(fu_counts.values())
    # Steering muxes: every shared unit input is selected from registers.
    mux_area = (
        _MUX_AREA_PER_INPUT_BIT_UM2
        * total_units
        * math.log2(max(2, total_units))
        * 8.0  # average selected operand width in bytes
    )
    ctrl_area = _CTRL_AREA_PER_OP_UM2 * total_units
    base = salam_area.datapath_um2 + mux_area + ctrl_area
    clock_tree = _CLOCK_TREE_AREA_FRACTION * salam_area.registers_um2
    return base + clock_tree + salam_area.spm_um2


def rtl_power_reference(
    salam_power: PowerReport,
    fu_counts: dict[str, int],
) -> float:
    """Reference total power in mW."""
    irregularity = _irregularity(fu_counts)
    glitch_factor = _GLITCH_BASE + _GLITCH_IRREGULARITY * irregularity
    dynamic = salam_power.dynamic_mw * (1.0 + glitch_factor)
    dynamic += salam_power.register_dynamic_mw * _CLOCK_TREE_POWER_FRACTION / max(
        1e-12, 1.0
    )
    static = salam_power.static_mw * (1.0 + _LEAKAGE_WIRING_FRACTION)
    clock_tree = _CLOCK_TREE_POWER_FRACTION * (
        salam_power.register_dynamic_mw + salam_power.register_leakage_mw
    )
    return dynamic + static + clock_tree
