"""Natural-loop detection and canonical induction analysis.

Finds back edges via the dominator tree, builds :class:`Loop` regions,
and recognises the canonical counted-loop shape the frontend emits::

    header:  %i = phi [ start, preheader ], [ %i.next, latch ]
             ...body...
    latch:   %i.next = add %i, step
             %cond  = icmp slt %i.next, bound      ; or in header
             br %cond, header, exit

`trip_count` returns the exact iteration count when start/step/bound
are constants — the precondition for full unrolling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ir.dominance import DominatorTree
from repro.ir.instructions import BinaryOp, Branch, ICmp, Phi
from repro.ir.module import BasicBlock, Function
from repro.ir.semantics import to_signed
from repro.ir.types import IntType
from repro.ir.values import Constant, Value


@dataclass
class InductionVariable:
    phi: Phi
    start: Value
    step: Value
    update: BinaryOp
    compare: Optional[ICmp]


@dataclass
class Loop:
    header: BasicBlock
    latch: BasicBlock
    blocks: list[BasicBlock]
    exits: list[BasicBlock] = field(default_factory=list)
    induction: Optional[InductionVariable] = None

    @property
    def is_canonical(self) -> bool:
        """Single latch that is also the sole exiting block, with an IV."""
        return self.induction is not None and self.exits_from_latch

    @property
    def exits_from_latch(self) -> bool:
        term = self.latch.terminator
        if not isinstance(term, Branch) or not term.is_conditional:
            return False
        targets = term.targets()
        return self.header in targets and any(t not in self.blocks for t in targets)

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks


def find_loops(func: Function) -> list[Loop]:
    """All natural loops, innermost first."""
    dt = DominatorTree(func)
    pred_map = func.predecessor_map()
    loops: list[Loop] = []
    for block in func.blocks:
        if not dt.is_reachable(block):
            continue
        for succ in block.successors():
            if dt.dominates(succ, block):  # back edge block -> succ
                loops.append(_build_loop(succ, block, pred_map))
    # Innermost first == smaller body first.
    loops.sort(key=lambda loop: len(loop.blocks))
    return loops


def _build_loop(header: BasicBlock, latch: BasicBlock, pred_map: dict) -> Loop:
    blocks = [header]
    work = [latch]
    while work:
        block = work.pop()
        if block in blocks:
            continue
        blocks.append(block)
        work.extend(p for p in pred_map.get(block, ()) if p not in blocks)
    exits: list[BasicBlock] = []
    for block in blocks:
        for succ in block.successors():
            if succ not in blocks and succ not in exits:
                exits.append(succ)
    loop = Loop(header=header, latch=latch, blocks=blocks, exits=exits)
    loop.induction = _find_induction(loop)
    return loop


def _find_induction(loop: Loop) -> Optional[InductionVariable]:
    for phi in loop.header.phis():
        if len(phi.incoming) != 2:
            continue
        start = step = update = None
        for value, pred in phi.incoming:
            if pred in loop.blocks:
                if (
                    isinstance(value, BinaryOp)
                    and value.opcode in ("add", "sub")
                    and value.parent in loop.blocks
                ):
                    operands = value.operands
                    if operands[0] is phi and isinstance(operands[1], Constant):
                        update, step = value, operands[1]
                    elif (
                        value.opcode == "add"
                        and operands[1] is phi
                        and isinstance(operands[0], Constant)
                    ):
                        update, step = value, operands[0]
            else:
                start = value
        if update is None or start is None:
            continue
        compare = _find_compare(loop, phi, update)
        return InductionVariable(phi=phi, start=start, step=step, update=update, compare=compare)
    return None


def _find_compare(loop: Loop, phi: Phi, update: BinaryOp) -> Optional[ICmp]:
    term = loop.latch.terminator
    if isinstance(term, Branch) and term.is_conditional:
        cond = term.condition
        if isinstance(cond, ICmp) and (
            cond.operands[0] in (phi, update) or cond.operands[1] in (phi, update)
        ):
            return cond
    return None


def trip_count(loop: Loop) -> Optional[int]:
    """Exact trip count for canonical loops with constant bounds."""
    iv = loop.induction
    if iv is None or iv.compare is None or not loop.exits_from_latch:
        return None
    if not isinstance(iv.start, Constant) or not isinstance(iv.step, Constant):
        return None
    cmp_ = iv.compare
    lhs, rhs = cmp_.operands
    if lhs in (iv.phi, iv.update) and isinstance(rhs, Constant):
        bound_const, tested = rhs, lhs
        pred = cmp_.pred
    elif rhs in (iv.phi, iv.update) and isinstance(lhs, Constant):
        bound_const, tested = lhs, rhs
        pred = _swap_pred(cmp_.pred)
    else:
        return None

    term = loop.latch.terminator
    assert isinstance(term, Branch)
    continue_on_true = term.true_target is loop.header
    type_ = iv.phi.type
    if not isinstance(type_, IntType):
        return None
    start = to_signed(iv.start.value, type_)
    step = to_signed(iv.step.value, type_)
    if iv.update.opcode == "sub":
        step = -step
    bound = to_signed(bound_const.value, type_)
    if step == 0:
        return None

    # Simulate the exit test; bail out on pathological loops.
    count = 0
    value = start
    limit = 10_000_000
    while count <= limit:
        count += 1
        next_value = value + step
        tested_value = next_value if tested is iv.update else value
        taken = _eval_pred(pred, tested_value, bound)
        if taken != continue_on_true:
            return count
        value = next_value
    return None


def _eval_pred(pred: str, a: int, b: int) -> bool:
    table = {
        "eq": a == b,
        "ne": a != b,
        "slt": a < b,
        "sle": a <= b,
        "sgt": a > b,
        "sge": a >= b,
        "ult": a < b,
        "ule": a <= b,
        "ugt": a > b,
        "uge": a >= b,
    }
    return table[pred]


def _swap_pred(pred: str) -> str:
    swap = {
        "eq": "eq",
        "ne": "ne",
        "slt": "sgt",
        "sle": "sge",
        "sgt": "slt",
        "sge": "sle",
        "ult": "ugt",
        "ule": "uge",
        "ugt": "ult",
        "uge": "ule",
    }
    return swap[pred]
