"""Constants, arguments, instruction basics."""

import pytest

from repro.ir.instructions import BinaryOp
from repro.ir.types import DOUBLE, FLOAT, I1, I8, I32, ptr_to
from repro.ir.values import Argument, Constant


def test_int_constant_wraps_to_bit_pattern():
    assert Constant(I8, 255).value == 255
    assert Constant(I8, 256).value == 0
    assert Constant(I8, -1).value == 255
    assert Constant(I32, -1).value == 0xFFFFFFFF


def test_signed_view():
    assert Constant(I8, 255).signed_value() == -1
    assert Constant(I8, 127).signed_value() == 127
    assert Constant(I32, 2**31).signed_value() == -(2**31)


def test_float32_constant_rounded():
    c = Constant(FLOAT, 0.1)
    assert c.value != 0.1  # binary32 rounding applied
    assert abs(c.value - 0.1) < 1e-7
    assert Constant(DOUBLE, 0.1).value == 0.1


def test_bool_constant_refs():
    assert Constant(I1, 1).ref == "true"
    assert Constant(I1, 0).ref == "false"


def test_pointer_constant():
    assert Constant(ptr_to(I32), 0).ref == "null"
    assert Constant(ptr_to(I32), 0x1000).value == 0x1000


def test_constant_equality_and_hash():
    assert Constant(I32, 5) == Constant(I32, 5)
    assert Constant(I32, 5) != Constant(I8, 5)
    assert len({Constant(I32, 5), Constant(I32, 5)}) == 1


def test_constant_rejects_bad_type():
    from repro.ir.types import array_of

    with pytest.raises(TypeError):
        Constant(array_of(I32, 2), 0)


def test_argument_fields():
    arg = Argument(I32, "n", 2)
    assert arg.ref == "%n"
    assert arg.index == 2


def test_instruction_replace_operand():
    a = Constant(I32, 1)
    b = Constant(I32, 2)
    inst = BinaryOp("add", a, a)
    assert inst.replace_operand(a, b) == 2
    assert inst.operands == [b, b]
