"""Tokenizer for the mini-C dialect."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

KEYWORDS = frozenset(
    [
        "void", "char", "short", "int", "long", "float", "double", "unsigned",
        "if", "else", "for", "while", "do", "return", "break", "continue",
        "const",
    ]
)

# Multi-character operators first so maximal munch wins.
OPERATORS = [
    "<<=", ">>=",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "<", ">", "=", "&", "|", "^", "!", "~", "?", ":",
]
PUNCTUATION = ["(", ")", "[", "]", "{", "}", ";", ","]


class LexerError(ValueError):
    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass
class Token:
    kind: str  # 'ident' | 'keyword' | 'int' | 'float' | 'op' | 'punct' | 'pragma' | 'eof'
    text: str
    line: int
    value: Optional[object] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


_FLOAT_RE = re.compile(r"\d+\.\d*(?:[eE][+-]?\d+)?[fF]?|\d+[eE][+-]?\d+[fF]?|\.\d+(?:[eE][+-]?\d+)?[fF]?")
_INT_RE = re.compile(r"0[xX][0-9a-fA-F]+|\d+")
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_PRAGMA_RE = re.compile(r"#\s*pragma\s+(.*)")


class Lexer:
    def __init__(self, source: str) -> None:
        self.source = source
        self.tokens = self._tokenize()

    def _tokenize(self) -> list[Token]:
        tokens: list[Token] = []
        line = 1
        pos = 0
        src = self.source
        length = len(src)
        while pos < length:
            ch = src[pos]
            if ch == "\n":
                line += 1
                pos += 1
                continue
            if ch in " \t\r":
                pos += 1
                continue
            if src.startswith("//", pos):
                end = src.find("\n", pos)
                pos = length if end == -1 else end
                continue
            if src.startswith("/*", pos):
                end = src.find("*/", pos + 2)
                if end == -1:
                    raise LexerError("unterminated block comment", line)
                line += src.count("\n", pos, end)
                pos = end + 2
                continue
            if ch == "#":
                end = src.find("\n", pos)
                if end == -1:
                    end = length
                directive = src[pos:end]
                match = _PRAGMA_RE.match(directive)
                if match:
                    tokens.append(Token("pragma", match.group(1).strip(), line))
                # Other directives (#include, #define without args) ignored.
                pos = end
                continue
            match = _FLOAT_RE.match(src, pos)
            if match:
                text = match.group()
                tokens.append(Token("float", text, line, float(text.rstrip("fF"))))
                pos = match.end()
                continue
            match = _INT_RE.match(src, pos)
            if match:
                text = match.group()
                tokens.append(Token("int", text, line, int(text, 0)))
                pos = match.end()
                continue
            match = _IDENT_RE.match(src, pos)
            if match:
                text = match.group()
                kind = "keyword" if text in KEYWORDS else "ident"
                tokens.append(Token(kind, text, line))
                pos = match.end()
                continue
            for op in OPERATORS:
                if src.startswith(op, pos):
                    tokens.append(Token("op", op, line))
                    pos += len(op)
                    break
            else:
                if ch in PUNCTUATION:
                    tokens.append(Token("punct", ch, line))
                    pos += 1
                else:
                    raise LexerError(f"unexpected character {ch!r}", line)
        tokens.append(Token("eof", "", line))
        return tokens
