"""Pass manager: sequences function passes over a module."""

from __future__ import annotations

import time
from typing import Optional

from repro.ir.module import Function, Module
from repro.ir.verifier import verify_function


class FunctionPass:
    """Base class: transforms one function, returns True if it changed it."""

    name = "pass"

    def run(self, func: Function) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__}>"


class PassManager:
    """Runs an ordered list of passes, optionally verifying after each."""

    def __init__(self, passes: list[FunctionPass], verify: bool = True) -> None:
        self.passes = list(passes)
        self.verify = verify
        self.history: list[tuple[str, str, bool]] = []
        #: (func name, pass name, wall-clock seconds) per pass execution;
        #: the build pipeline mirrors these onto the `build` trace channel.
        self.pass_timings: list[tuple[str, str, float]] = []

    def add(self, pass_: FunctionPass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run_function(self, func: Function) -> bool:
        changed_any = False
        for pass_ in self.passes:
            start = time.perf_counter()
            changed = pass_.run(func)
            self.pass_timings.append(
                (func.name, pass_.name, time.perf_counter() - start))
            self.history.append((func.name, pass_.name, changed))
            changed_any |= changed
            if self.verify and changed:
                verify_function(func)
        return changed_any

    def run(self, module: Module) -> bool:
        changed = False
        for func in module:
            changed |= self.run_function(func)
        return changed


def standard_pipeline(
    unroll_factor: int = 1,
    verify: bool = True,
    module: Optional["Module"] = None,
    opt_level: int = 1,
) -> PassManager:
    """The default "clang -O" style pipeline used by the frontend.

    Level 1 (default): inline module-local calls (datapaths must be a
    single function), mem2reg builds SSA, folding/DCE clean up,
    unrolling expands loops (a factor of 1 leaves loops alone but still
    honours per-loop pragmas), and a final fold/DCE/simplify round
    tidies the result.

    Level 2 adds loop-invariant code motion and common-subexpression
    elimination — datapath-shrinking optimizations whose effect the
    pass-ablation benchmark quantifies.

    Thin shim over `repro.passes.pipeline.PipelineSpec.standard` — the
    declarative spec is the source of truth for the pass order.
    """
    from repro.passes.pipeline import PipelineSpec

    return PipelineSpec.standard(
        opt_level=opt_level, unroll_factor=unroll_factor
    ).to_pass_manager(module=module, verify=verify)
