"""IR lint driver: rule catalog built on the dataflow framework.

Rule codes (stable, documented in DESIGN.md):

======  ========  ==========================================================
code    severity  meaning
======  ========  ==========================================================
IR101   warning   dead store — stored value can never be read
IR102   warning   unreachable basic block
IR103   error     load-before-store on an alloca (definitely uninitialized)
IR103   note      load on an alloca not initialized on *all* paths (maybe)
IR104   warning   branch condition is a constant (one arm is dead)
IR105   error     loop has no exit (the kernel cannot terminate)
IR106   error     statically out-of-bounds GEP index
======  ========  ==========================================================

Rules only reason about *non-escaping* allocas for memory properties
(IR101/IR103): once an address leaks into a call or a store, any code
may read or initialize it and the lint stays quiet.  Pointer arguments
are caller-observable, so stores through them are never "dead".
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.dataflow import TOP, DataflowAnalysis
from repro.analysis.diagnostics import AnalysisReport, Location, Severity
from repro.analysis.memdep import alloca_escapes, const_index, resolve_pointer
from repro.ir.dominance import DominatorTree
from repro.ir.instructions import Alloca, Branch, GetElementPtr, Load, Store
from repro.ir.module import Function, Module
from repro.ir.types import ArrayType, PointerType
from repro.ir.values import Constant, Instruction
from repro.passes.loop_analysis import Loop, find_loops


def _loc(inst: Instruction) -> Location:
    block = inst.parent.name if inst.parent else ""
    func = ""
    if inst.parent is not None and inst.parent.parent is not None:
        func = inst.parent.parent.name
    ref = inst.ref if inst.name else inst.opcode
    return Location(function=func, block=block, ref=ref)


class LintContext:
    """Shared, lazily-computed analyses for one function's lint run."""

    def __init__(self, func: Function, module: Optional[Module] = None) -> None:
        self.func = func
        self.module = module
        self._dt: Optional[DominatorTree] = None
        self._loops: Optional[list[Loop]] = None
        self._escapes: dict = {}
        self._tracked: Optional[frozenset] = None

    @property
    def dt(self) -> DominatorTree:
        if self._dt is None:
            self._dt = DominatorTree(self.func)
        return self._dt

    @property
    def loops(self) -> list[Loop]:
        if self._loops is None:
            self._loops = find_loops(self.func)
        return self._loops

    def escapes(self, alloca: Alloca) -> bool:
        if alloca not in self._escapes:
            self._escapes[alloca] = alloca_escapes(alloca)
        return self._escapes[alloca]

    @property
    def tracked_allocas(self) -> frozenset:
        """Allocas whose memory only direct load/store/GEP code touches."""
        if self._tracked is None:
            self._tracked = frozenset(
                inst for inst in self.func.instructions()
                if isinstance(inst, Alloca) and not self.escapes(inst)
            )
        return self._tracked


class LintRule:
    """One lint rule; subclasses set the code/name and implement run()."""

    code = "IR000"
    name = "rule"
    description = ""

    def run(self, ctx: LintContext, report: AnalysisReport) -> None:
        raise NotImplementedError  # pragma: no cover - abstract


# ----------------------------------------------------------------------
# IR101: dead stores
# ----------------------------------------------------------------------
class _LocationLiveness(DataflowAnalysis):
    """Backward liveness of (alloca, byte-offset) locations.

    Facts: ``(alloca, offset)`` for reads at a known offset,
    ``(alloca, None)`` for reads at a dynamic offset (any byte of the
    alloca may be read), and `TOP` when an opaque pointer is read.
    """

    forward = False
    meet = "union"
    name = "loc-liveness"

    def __init__(self, func: Function, tracked: frozenset) -> None:
        super().__init__(func)
        self.tracked = tracked

    def transfer_instruction(self, inst: Instruction, facts: set) -> None:
        if isinstance(inst, Load):
            base, offset = resolve_pointer(inst.pointer)
            if base is None:
                facts.add(TOP)
            elif base in self.tracked:
                facts.add((base, offset))
        elif isinstance(inst, Store):
            base, offset = resolve_pointer(inst.pointer)
            if base in self.tracked and offset is not None:
                facts.discard((base, offset))


class DeadStoreRule(LintRule):
    code = "IR101"
    name = "dead-store"
    description = "stores to non-escaping allocas that no load can observe"

    def run(self, ctx: LintContext, report: AnalysisReport) -> None:
        tracked = ctx.tracked_allocas
        if not tracked:
            return
        result = _LocationLiveness(ctx.func, tracked).run()
        for block in ctx.func.blocks:
            for inst, live_after in result.at_instruction(block):
                if not isinstance(inst, Store):
                    continue
                base, offset = resolve_pointer(inst.pointer)
                if base not in tracked or offset is None:
                    continue
                if TOP in live_after:
                    continue
                if (base, offset) in live_after or (base, None) in live_after:
                    continue
                report.add(
                    self.code, Severity.WARNING, _loc(inst),
                    f"store to %{base.name}+{offset} is never read",
                    hint="the stored value is dead; remove the store or the "
                         "computation feeding it",
                )


# ----------------------------------------------------------------------
# IR102: unreachable blocks
# ----------------------------------------------------------------------
class UnreachableBlockRule(LintRule):
    code = "IR102"
    name = "unreachable-block"
    description = "basic blocks with no path from the function entry"

    def run(self, ctx: LintContext, report: AnalysisReport) -> None:
        for block in ctx.func.blocks:
            if not ctx.dt.is_reachable(block):
                report.add(
                    self.code, Severity.WARNING,
                    Location(function=ctx.func.name, block=block.name),
                    f"block '{block.name}' is unreachable from entry",
                    hint="dead control flow inflates the datapath; remove it "
                         "or fix the branch that should reach it",
                )


# ----------------------------------------------------------------------
# IR103: load-before-store on allocas
# ----------------------------------------------------------------------
class _MayInit(DataflowAnalysis):
    """Forward may-analysis: locations some path has stored to."""

    forward = True
    meet = "union"
    name = "may-init"

    def __init__(self, func: Function, tracked: frozenset) -> None:
        super().__init__(func)
        self.tracked = tracked

    def transfer_instruction(self, inst: Instruction, facts: set) -> None:
        if isinstance(inst, Store):
            base, offset = resolve_pointer(inst.pointer)
            if base in self.tracked:
                facts.add((base, offset))


class _MustInit(DataflowAnalysis):
    """Forward must-analysis: locations *every* path has stored to."""

    forward = True
    meet = "intersection"
    name = "must-init"

    def __init__(self, func: Function, tracked: frozenset) -> None:
        super().__init__(func)
        self.tracked = tracked

    def transfer_instruction(self, inst: Instruction, facts: set) -> None:
        if isinstance(inst, Store):
            base, offset = resolve_pointer(inst.pointer)
            if base in self.tracked and offset is not None:
                facts.add((base, offset))


class UninitializedLoadRule(LintRule):
    code = "IR103"
    name = "uninit-load"
    description = "loads from allocas before any store can reach them"

    def run(self, ctx: LintContext, report: AnalysisReport) -> None:
        tracked = ctx.tracked_allocas
        if not tracked:
            return
        may = _MayInit(ctx.func, tracked).run()
        must = _MustInit(ctx.func, tracked).run()
        for block in ctx.func.blocks:
            may_facts = may.at_instruction(block)
            must_facts = must.at_instruction(block)
            for (inst, may_before), (__, must_before) in zip(may_facts, must_facts):
                if not isinstance(inst, Load):
                    continue
                base, offset = resolve_pointer(inst.pointer)
                if base not in tracked:
                    continue
                if offset is not None:
                    may_hit = ((base, offset) in may_before
                               or (base, None) in may_before)
                    if not may_hit:
                        report.add(
                            self.code, Severity.ERROR, _loc(inst),
                            f"load from %{base.name}+{offset} before any "
                            f"store — the value is uninitialized",
                            hint="initialize the buffer (or reorder the "
                                 "stores) before this load",
                        )
                    elif (TOP not in must_before
                          and (base, offset) not in must_before):
                        report.add(
                            self.code, Severity.NOTE, _loc(inst),
                            f"load from %{base.name}+{offset} may read "
                            f"uninitialized memory on some path",
                        )
                else:
                    any_store = any(
                        isinstance(fact, tuple) and fact[0] is base
                        for fact in may_before
                    )
                    if not any_store:
                        report.add(
                            self.code, Severity.ERROR, _loc(inst),
                            f"load from %{base.name} (dynamic offset) before "
                            f"any store — the value is uninitialized",
                            hint="initialize the buffer before this load",
                        )


# ----------------------------------------------------------------------
# IR104: constant-condition branches
# ----------------------------------------------------------------------
class ConstantBranchRule(LintRule):
    code = "IR104"
    name = "const-branch"
    description = "conditional branches whose condition is a constant"

    def run(self, ctx: LintContext, report: AnalysisReport) -> None:
        for block in ctx.func.blocks:
            term = block.terminator
            if (isinstance(term, Branch) and term.is_conditional
                    and isinstance(term.condition, Constant)):
                taken = "true" if term.condition.value else "false"
                dead = (term.false_target if term.condition.value
                        else term.true_target)
                report.add(
                    self.code, Severity.WARNING,
                    Location(function=ctx.func.name, block=block.name),
                    f"branch condition is constant {taken}; "
                    f"edge to '{dead.name}' is dead",
                    hint="fold the branch (constfold+dce leave no "
                         "constant conditions behind)",
                )


# ----------------------------------------------------------------------
# IR105: loops with no exit
# ----------------------------------------------------------------------
class NoExitLoopRule(LintRule):
    code = "IR105"
    name = "no-exit-loop"
    description = "natural loops with no edge leaving the loop body"

    def run(self, ctx: LintContext, report: AnalysisReport) -> None:
        seen: set[str] = set()
        for loop in ctx.loops:
            if loop.exits or loop.header.name in seen:
                continue
            seen.add(loop.header.name)
            report.add(
                self.code, Severity.ERROR,
                Location(function=ctx.func.name, block=loop.header.name),
                f"loop headed at '{loop.header.name}' has no exit; "
                f"the kernel cannot terminate",
                hint="the simulated accelerator would hang until the "
                     "watchdog fires — add or fix the exit condition",
            )


# ----------------------------------------------------------------------
# IR106: out-of-bounds GEPs
# ----------------------------------------------------------------------
class GepBoundsRule(LintRule):
    code = "IR106"
    name = "gep-bounds"
    description = "GEP indices statically outside their array type"

    def run(self, ctx: LintContext, report: AnalysisReport) -> None:
        for inst in ctx.func.instructions():
            if isinstance(inst, GetElementPtr):
                problem = self._check(inst)
                if problem:
                    report.add(
                        self.code, Severity.ERROR, _loc(inst), problem,
                        hint="out-of-bounds accesses read/clobber a "
                             "neighbouring buffer in the flat SPM address "
                             "space — fix the index computation",
                    )

    @staticmethod
    def _check(gep: GetElementPtr) -> str:
        # 1) Array-typed middle indices must stay inside [0, count).
        current = gep.pointer.type
        for i, index in enumerate(gep.indices):
            if i == 0:
                assert isinstance(current, PointerType)
                current = current.pointee
                continue
            if not isinstance(current, ArrayType):
                break
            value = const_index(index)
            if value is not None:
                if value < 0 or value >= current.count:
                    return (f"index {value} out of bounds for "
                            f"{current} (valid: 0..{current.count - 1})")
            current = current.element
        # 2) The resolved byte offset must stay inside the alloca.
        base, offset = resolve_pointer(gep)
        if isinstance(base, Alloca) and offset is not None:
            alloc_size = base.allocated_type.size_bytes()
            access_size = gep.type.pointee.size_bytes()
            if offset < 0 or offset + access_size > alloc_size:
                return (f"resolved offset {offset} (+{access_size}B) "
                        f"outside %{base.name} "
                        f"({base.allocated_type}, {alloc_size}B)")
        return ""


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def all_rules() -> list[LintRule]:
    """The full rule catalog, in code order."""
    return [
        DeadStoreRule(),
        UnreachableBlockRule(),
        UninitializedLoadRule(),
        ConstantBranchRule(),
        NoExitLoopRule(),
        GepBoundsRule(),
    ]


def lint_function(
    func: Function,
    module: Optional[Module] = None,
    rules: Optional[list[LintRule]] = None,
    report: Optional[AnalysisReport] = None,
) -> AnalysisReport:
    """Run the rule catalog over one function."""
    if report is None:
        report = AnalysisReport(subject=func.name)
    if not func.blocks:
        return report
    ctx = LintContext(func, module)
    for rule in rules if rules is not None else all_rules():
        with report.timed(rule.name):
            rule.run(ctx, report)
    return report


def lint_module(
    module: Module,
    rules: Optional[list[LintRule]] = None,
) -> AnalysisReport:
    """Run the rule catalog over every function in a module."""
    report = AnalysisReport(subject=module.name)
    for func in module:
        lint_function(func, module, rules, report)
    return report
