"""DSE harness: sweeps, Pareto fronts, reports."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import DeviceConfig
from repro.dse import format_table, pareto_front, sweep, to_csv
from repro.workloads import get_workload


def test_sweep_runs_grid():
    w = get_workload("spmv")
    points = sweep(
        w,
        {"ports": [1, 4]},
        configure=lambda p: dict(
            config=DeviceConfig(read_ports=p["ports"], write_ports=p["ports"]),
            spm_bytes=1 << 14,
        ),
    )
    assert len(points) == 2
    assert points[0].params == {"ports": 1}
    assert all(p.cycles > 0 and p.power_mw > 0 for p in points)
    # More ports cannot be slower.
    assert points[1].cycles <= points[0].cycles


def test_sweep_records_flat():
    w = get_workload("spmv")
    points = sweep(w, {"ports": [2]},
                   configure=lambda p: dict(spm_bytes=1 << 14))
    record = points[0].record()
    for key in ("ports", "cycles", "runtime_us", "power_mw", "stall_fraction"):
        assert key in record


# -- Pareto ------------------------------------------------------------------
def test_pareto_simple():
    points = [(1, 10), (2, 5), (3, 6), (4, 1), (2, 20)]
    front = pareto_front(points, objectives=lambda p: p)
    assert set(front) == {(1, 10), (2, 5), (4, 1)}


def test_pareto_single_point():
    assert pareto_front([(1, 1)], objectives=lambda p: p) == [(1, 1)]


@given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 50)),
                min_size=1, max_size=40))
def test_pareto_front_is_nondominated(points):
    front = pareto_front(points, objectives=lambda p: p)
    assert front, "front never empty for nonempty input"
    for candidate in front:
        for other in points:
            strictly_better = (
                other[0] <= candidate[0]
                and other[1] <= candidate[1]
                and (other[0] < candidate[0] or other[1] < candidate[1])
            )
            assert not strictly_better


@given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)),
                min_size=1, max_size=30))
def test_every_point_dominated_by_front_or_on_it(points):
    front = pareto_front(points, objectives=lambda p: p)
    for point in points:
        assert any(f[0] <= point[0] and f[1] <= point[1] for f in front)


# -- reports -----------------------------------------------------------------
def test_format_table():
    rows = [{"name": "gemm", "cycles": 100, "err": 0.123456}]
    text = format_table(rows, title="T")
    assert "T" in text and "gemm" in text and "0.123" in text


def test_format_table_empty():
    assert "(empty)" in format_table([])


def test_format_table_column_subset():
    rows = [{"a": 1, "b": 2}]
    text = format_table(rows, columns=["b"])
    assert "b" in text and "a" not in text.splitlines()[0]


def test_to_csv():
    rows = [{"x": 1, "y": 2}, {"x": 3, "y": 4}]
    csv = to_csv(rows)
    assert csv.splitlines() == ["x,y", "1,2", "3,4"]
    assert to_csv([]) == ""
