"""Generic worklist dataflow framework.

The classic iterative scheme: facts are sets (any hashable elements),
propagated forward or backward over the CFG until a fixed point, with
the meet over predecessors (successors, when backward) taken as union
(may analyses) or intersection (must analyses).

Analyses subclass :class:`DataflowAnalysis` and provide a per-block
transfer function; :meth:`DataflowAnalysis.run` returns per-block
IN/OUT sets plus an instruction-level replay helper, which is what the
lint rules build on.  `LivenessAnalysis` and `ReachingDefinitions` are
the two canonical instances.

Must-analyses over a universe that is expensive to enumerate use the
:data:`TOP` sentinel: a fact set containing `TOP` means "everything"
and intersects as identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.ir.instructions import BlockRef, Phi
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Constant, Instruction, Value

#: Lattice top for must-analyses: stands for the universal set so
#: intersection with an uncomputed block is a no-op.
TOP = "<top>"


def meet_union(fact_sets: Iterable[frozenset]) -> frozenset:
    result: set = set()
    for facts in fact_sets:
        result |= facts
    return frozenset(result)


def meet_intersection(fact_sets: Iterable[frozenset]) -> frozenset:
    """Intersection treating any set containing `TOP` as the universe."""
    result: Optional[frozenset] = None
    for facts in fact_sets:
        if TOP in facts:
            continue
        result = facts if result is None else result & facts
    return frozenset([TOP]) if result is None else result


@dataclass
class DataflowResult:
    """Per-block IN/OUT fact sets of one converged analysis."""

    analysis: "DataflowAnalysis"
    block_in: dict[BasicBlock, frozenset]
    block_out: dict[BasicBlock, frozenset]
    iterations: int

    def in_of(self, block: BasicBlock) -> frozenset:
        return self.block_in[block]

    def out_of(self, block: BasicBlock) -> frozenset:
        return self.block_out[block]

    def at_instruction(self, block: BasicBlock) -> list[tuple[Instruction, frozenset]]:
        """Replay the transfer inside ``block``: (inst, facts-before-inst)
        for a forward analysis, (inst, facts-after-inst) for a backward
        one — i.e. the facts on the side the block boundary entered from.
        """
        return self.analysis.replay(block, self.block_in[block]
                                    if self.analysis.forward
                                    else self.block_out[block])


class DataflowAnalysis:
    """Base class: subclasses define direction, boundary, and transfer."""

    #: True for forward analyses (facts flow entry -> exit).
    forward = True
    #: "union" (may) or "intersection" (must).
    meet = "union"
    name = "dataflow"

    def __init__(self, func: Function) -> None:
        self.func = func
        self._preds = func.predecessor_map()

    # -- to override -------------------------------------------------------
    def boundary(self) -> frozenset:
        """Facts at the entry block (forward) / exit blocks (backward)."""
        return frozenset()

    def initial(self) -> frozenset:
        """Initial facts for non-boundary blocks (TOP for must-analyses)."""
        return frozenset([TOP]) if self.meet == "intersection" else frozenset()

    def transfer_instruction(self, inst: Instruction, facts: set) -> None:
        """Mutate ``facts`` across one instruction (in analysis direction)."""
        raise NotImplementedError  # pragma: no cover - abstract

    # -- fixed machinery ---------------------------------------------------
    def transfer_block(self, block: BasicBlock, facts: frozenset) -> frozenset:
        working = set(facts)
        insts = block.instructions if self.forward else reversed(block.instructions)
        for inst in insts:
            self.transfer_instruction(inst, working)
        return frozenset(working)

    def replay(self, block: BasicBlock, entry_facts: frozenset) -> list[tuple[Instruction, frozenset]]:
        """Instruction-level facts: the set in force *before* each
        instruction is applied, in analysis direction."""
        out: list[tuple[Instruction, frozenset]] = []
        working = set(entry_facts)
        insts = block.instructions if self.forward else list(reversed(block.instructions))
        for inst in insts:
            out.append((inst, frozenset(working)))
            self.transfer_instruction(inst, working)
        return out

    def _meet(self, fact_sets: list[frozenset]) -> frozenset:
        if not fact_sets:
            return self.boundary()
        if self.meet == "union":
            return meet_union(fact_sets)
        return meet_intersection(fact_sets)

    def run(self, max_iterations: int = 10_000) -> DataflowResult:
        blocks = self.func.blocks
        succs = {b: b.successors() for b in blocks}
        preds = self._preds
        entry = self.func.entry
        exits = [b for b in blocks if not succs[b]]

        block_in: dict[BasicBlock, frozenset] = {}
        block_out: dict[BasicBlock, frozenset] = {}
        for block in blocks:
            block_in[block] = self.initial()
            block_out[block] = self.initial()
        if self.forward:
            block_in[entry] = self.boundary()
        else:
            for block in exits:
                block_out[block] = self.boundary()

        worklist = list(blocks if self.forward else reversed(blocks))
        pending = set(worklist)
        iterations = 0
        while worklist:
            iterations += 1
            if iterations > max_iterations:  # pragma: no cover - safety net
                raise RuntimeError(
                    f"{self.name}: no fixed point after {max_iterations} iterations"
                )
            block = worklist.pop(0)
            pending.discard(block)
            if self.forward:
                if preds[block]:
                    block_in[block] = self._meet([block_out[p] for p in preds[block]])
                new_out = self.transfer_block(block, block_in[block])
                if new_out != block_out[block]:
                    block_out[block] = new_out
                    for succ in succs[block]:
                        if succ not in pending:
                            pending.add(succ)
                            worklist.append(succ)
            else:
                if succs[block]:
                    block_out[block] = self._meet([block_in[s] for s in succs[block]])
                new_in = self.transfer_block(block, block_out[block])
                if new_in != block_in[block]:
                    block_in[block] = new_in
                    for pred in preds[block]:
                        if pred not in pending:
                            pending.add(pred)
                            worklist.append(pred)
        return DataflowResult(self, block_in, block_out, iterations)


# ----------------------------------------------------------------------
# Canonical instances
# ----------------------------------------------------------------------
def instruction_uses(inst: Instruction) -> list[Value]:
    """The SSA values an instruction reads (phi incoming included)."""
    if isinstance(inst, Phi):
        return [v for v, __ in inst.incoming]
    return [op for op in inst.operands if not isinstance(op, (Constant, BlockRef))]


class LivenessAnalysis(DataflowAnalysis):
    """Backward may-analysis: which SSA values are live at each point.

    Facts are `Value` objects (instructions and arguments).  ``use``
    before ``def`` in the backward walk, so an instruction that both
    uses and defines keeps its operands live above it.

    Phi uses are attributed to the phi's own block for simplicity —
    precise-enough for register-pressure estimation, the consumer this
    instance exists for (datapath register sizing).
    """

    forward = False
    meet = "union"
    name = "liveness"

    def transfer_instruction(self, inst: Instruction, facts: set) -> None:
        if inst.produces_value:
            facts.discard(inst)
        for value in instruction_uses(inst):
            if isinstance(value, Instruction) or not isinstance(value, Constant):
                facts.add(value)

    def live_out(self, result: DataflowResult, block: BasicBlock) -> frozenset:
        return result.block_out[block]

    def max_live(self, result: DataflowResult) -> int:
        """Peak number of simultaneously live values (pressure proxy)."""
        peak = 0
        for block in self.func.blocks:
            for __, facts in result.at_instruction(block):
                peak = max(peak, len(facts))
        return peak


class ReachingDefinitions(DataflowAnalysis):
    """Forward may-analysis: which definitions reach each block.

    Facts are value-producing `Instruction` objects plus the function's
    `Argument`s (defined at entry).  In SSA a definition is never
    killed, so the transfer is pure gen — what makes the instance
    interesting is the meet at joins, which the uninitialized-read lint
    leans on through the same framework.
    """

    forward = True
    meet = "union"
    name = "reaching-defs"

    def boundary(self) -> frozenset:
        return frozenset(self.func.args)

    def transfer_instruction(self, inst: Instruction, facts: set) -> None:
        if inst.produces_value:
            facts.add(inst)

    def reaches(self, result: DataflowResult, value: Value, block: BasicBlock) -> bool:
        return value in result.block_in[block] or value in result.block_out[block]
