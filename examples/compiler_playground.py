#!/usr/bin/env python
"""Compiler playground: inspect what the accelerator model consumes.

Shows every stage of the front half of the flow: mini-C -> unoptimized
IR -> SSA (mem2reg) -> unrolled IR, the static CDFG / functional-unit
mapping, and the static power/area report — i.e. everything that
happens before a single cycle is simulated.

Run:  python examples/compiler_playground.py
"""

from repro.core.config import DeviceConfig
from repro.core.llvm_interface import LLVMInterface
from repro.frontend import compile_c, lower_to_ir, parse_c
from repro.hw.default_profile import default_profile
from repro.ir.printer import print_module

KERNEL = """
double dot(double a[16], double b[16]) {
  double sum = 0;
  #pragma unroll 4
  for (int i = 0; i < 16; i++) {
    sum += a[i] * b[i];
  }
  return sum;
}
"""


def main() -> None:
    print("=" * 60)
    print("1. unoptimized IR (naive alloca-based codegen)")
    print("=" * 60)
    unopt = lower_to_ir(parse_c(KERNEL))
    print(print_module(unopt))

    print("=" * 60)
    print("2. optimized IR (mem2reg + fold + unroll-by-4 + DCE)")
    print("=" * 60)
    module = compile_c(KERNEL)
    print(print_module(module))

    print("=" * 60)
    print("3. static elaboration (the datapath the simulator models)")
    print("=" * 60)
    iface = LLVMInterface(module, "dot", default_profile(), DeviceConfig())
    summary = iface.summary()
    for key, value in summary.items():
        print(f"  {key:20s} {value}")

    print("\n4. with a constrained datapath (2 shared FP multipliers):")
    constrained = LLVMInterface(
        module, "dot", default_profile(), DeviceConfig(fu_limits={"fp_mul": 2})
    )
    print(f"  fu_counts          {constrained.cdfg.fu_counts}")
    print(f"  fu_leakage_mw      {constrained.static.fu_leakage_mw:.4f}"
          f"  (vs {iface.static.fu_leakage_mw:.4f} unconstrained)")


if __name__ == "__main__":
    main()
