"""Table IV — preprocessing and simulation wall-clock vs gem5-Aladdin.

For nine MachSuite benchmarks: the trace-based baseline's preprocessing
(instrumented run + trace-file generation) and simulation (trace load +
graph build + schedule) wall-clock times against gem5-SALAM's
preprocessing (kernel compilation only) and simulation times.

Expected shape (paper: avg 123x preprocess / 697x simulation speedup;
absolute factors depend on host and sizes): SALAM preprocessing beats
trace generation on every benchmark, and the speedup is largest for
data-dependent kernels (BFS, SPMV) whose traces are long relative to
their simulated work.
"""

import time

import numpy as np

from conftest import SEED, save_and_print, stage_into
from repro.baseline import generate_trace, simulate_trace
from repro.dse import format_table
from repro.frontend import compile_c
from repro.hw.default_profile import default_profile
from repro.ir.memory import MemoryImage
from repro.system.soc import StandaloneAccelerator
from repro.workloads import get_workload

BENCHES = ["bfs", "fft", "gemm", "md_grid", "md_knn", "nw", "spmv", "stencil2d", "stencil3d"]


def _measure(name, tmp_path):
    workload = get_workload(name)
    profile = default_profile()

    # gem5-Aladdin: preprocessing = instrumented run + trace generation.
    mem = MemoryImage(1 << 18, base=0x10000)
    module = compile_c(workload.source, workload.func_name)
    args, __ = stage_into(workload, mem)
    t0 = time.perf_counter()
    trace = generate_trace(module, workload.func_name, args, mem, tmp_path / f"{name}.gz")
    aladdin_preprocess = time.perf_counter() - t0
    t0 = time.perf_counter()
    simulate_trace(trace, profile)
    aladdin_sim = time.perf_counter() - t0

    # gem5-SALAM: preprocessing = compiling the kernel.
    t0 = time.perf_counter()
    compile_c(workload.source, workload.func_name)
    salam_preprocess = time.perf_counter() - t0
    acc = StandaloneAccelerator(workload.source, workload.func_name,
                                memory="spm", spm_bytes=1 << 16)
    data = workload.make_data(np.random.default_rng(SEED))
    run_args, __ = workload.stage(acc, data)
    t0 = time.perf_counter()
    acc.run(run_args)
    salam_sim = time.perf_counter() - t0
    return aladdin_preprocess, aladdin_sim, salam_preprocess, salam_sim


def test_table4(benchmark, tmp_path):
    def run():
        rows = []
        for name in BENCHES:
            ap, asim, sp, ssim = _measure(name, tmp_path)
            rows.append(
                {
                    "benchmark": name,
                    "aladdin_tracegen_s": ap,
                    "aladdin_sim_s": asim,
                    "salam_compile_s": sp,
                    "salam_sim_s": ssim,
                    "preprocess_speedup": ap / sp,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    avg_pre = float(np.mean([r["preprocess_speedup"] for r in rows]))
    rows.append({"benchmark": "AVERAGE", "preprocess_speedup": avg_pre})
    save_and_print(
        "table4_simulation_speed",
        format_table(rows, title="Table IV: simulator setup and runtime (wall clock)",
                     float_fmt="{:.4f}"),
    )

    # SALAM preprocessing (compile) must beat trace generation everywhere.
    for row in rows[:-1]:
        assert row["preprocess_speedup"] > 1.0, row
    assert avg_pre > 2.0
    # Note: our SALAM *simulation* is a Python cycle-level engine, so the
    # paper's 697x simulation-time speedup does not transfer to wall clock
    # here; the preprocessing claim (no trace generation/loading) does.
