"""Constant folding, DCE, and CFG simplification."""

from repro.frontend import compile_c, lower_to_ir, parse_c
from repro.ir.instructions import BinaryOp, Branch
from repro.ir.interpreter import Interpreter
from repro.ir.memory import MemoryImage
from repro.ir.verifier import verify_module
from repro.passes import ConstantFold, DeadCodeElimination, Mem2Reg, SimplifyCFG


def _prepare(source, func):
    module = lower_to_ir(parse_c(source))
    Mem2Reg().run(module.get_function(func))
    return module


def _value(module, func, args=()):
    return Interpreter(module, MemoryImage(1 << 14, base=0x100)).run(
        func, list(args)
    ).return_value


def test_folds_constant_expression():
    module = _prepare("int f() { return (2 + 3) * 4 - 1; }", "f")
    func = module.get_function("f")
    assert ConstantFold().run(func)
    DeadCodeElimination().run(func)
    verify_module(module)
    assert not any(isinstance(i, BinaryOp) for i in func.instructions())
    assert _value(module, "f") == 19


def test_identity_simplifications():
    module = _prepare("int f(int x) { return x * 1 + 0 + x * 0; }", "f")
    func = module.get_function("f")
    ConstantFold().run(func)
    DeadCodeElimination().run(func)
    binops = [i for i in func.instructions() if isinstance(i, BinaryOp)]
    assert binops == []  # x*1 -> x, +0 -> x, x*0 -> 0, x+0 -> x
    assert _value(module, "f", [9]) == 9


def test_constant_branch_folded_and_cfg_cleaned():
    module = _prepare("int f() { if (1 > 2) { return 100; } return 7; }", "f")
    func = module.get_function("f")
    ConstantFold().run(func)
    SimplifyCFG().run(func)
    DeadCodeElimination().run(func)
    verify_module(module)
    assert _value(module, "f") == 7
    for block in func.blocks:
        term = block.terminator
        if isinstance(term, Branch):
            assert not term.is_conditional


def test_float_identities_not_folded():
    # x + 0.0 is not an identity under IEEE (x = -0.0), so it must stay.
    module = _prepare("double f(double x) { return x + 0.0; }", "f")
    func = module.get_function("f")
    ConstantFold().run(func)
    assert any(i.opcode == "fadd" for i in func.instructions())


def test_dce_removes_unused_chain():
    module = _prepare(
        "int f(int x) { int dead = x * 37 + 4; return x; }", "f"
    )
    func = module.get_function("f")
    assert DeadCodeElimination().run(func)
    assert not any(isinstance(i, BinaryOp) for i in func.instructions())


def test_dce_keeps_stores():
    module = _prepare("void f(int p[4]) { p[0] = 42; }", "f")
    func = module.get_function("f")
    DeadCodeElimination().run(func)
    assert any(i.opcode == "store" for i in func.instructions())


def test_simplify_merges_straight_line():
    module = _prepare("int f(int x) { int y = x + 1; { int z = y * 2; return z; } }", "f")
    func = module.get_function("f")
    ConstantFold().run(func)
    SimplifyCFG().run(func)
    verify_module(module)
    assert _value(module, "f", [3]) == 8


def test_unreachable_loop_removed():
    module = _prepare(
        "int f() { if (0) { for (int i = 0; i < 10; i++) { } } return 1; }", "f"
    )
    func = module.get_function("f")
    ConstantFold().run(func)
    SimplifyCFG().run(func)
    DeadCodeElimination().run(func)
    verify_module(module)
    assert len(func.blocks) <= 2
    assert _value(module, "f") == 1


def test_full_pipeline_preserves_semantics():
    src = """
    int poly(int x) {
      int a = 3 * 1;
      int b = a + 0;
      int acc = 0;
      for (int i = 0; i < 4; i++) { acc += x * b + i; }
      return acc;
    }
    """
    unopt = lower_to_ir(parse_c(src))
    opt = compile_c(src)
    for x in (-3, 0, 5, 1000):
        assert _value(unopt, "poly", [x]) == _value(opt, "poly", [x])
