"""Statistics framework.

Mirrors gem5's stats in miniature: named scalar and vector statistics
attached to SimObjects, grouped under a :class:`StatGroup`, dumpable as a
flat ``name -> value`` mapping.  Formula stats are computed lazily from
callables so derived metrics (e.g. occupancy percentages) always reflect
the current counters.
"""

from __future__ import annotations

import json
from typing import Callable, Iterator, Optional, Union


class Stat:
    """Base class for a named statistic."""

    def __init__(self, name: str, desc: str = "") -> None:
        self.name = name
        self.desc = desc

    def value(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def reset(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class ScalarStat(Stat):
    """A single accumulating number."""

    def __init__(self, name: str, desc: str = "", init: float = 0) -> None:
        super().__init__(name, desc)
        self._value: float = init

    def inc(self, amount: float = 1) -> None:
        self._value += amount

    def set(self, value: float) -> None:
        self._value = value

    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._value = 0

    def __iadd__(self, amount: float) -> "ScalarStat":
        self._value += amount
        return self


class VectorStat(Stat):
    """A keyed family of counters (e.g. per functional-unit-type)."""

    def __init__(self, name: str, desc: str = "") -> None:
        super().__init__(name, desc)
        self._values: dict[str, float] = {}

    def inc(self, key: str, amount: float = 1) -> None:
        self._values[key] = self._values.get(key, 0) + amount

    def set(self, key: str, value: float) -> None:
        self._values[key] = value

    def get(self, key: str, default: float = 0) -> float:
        return self._values.get(key, default)

    def value(self) -> dict[str, float]:
        return dict(self._values)

    def total(self) -> float:
        return sum(self._values.values())

    def keys(self):
        return self._values.keys()

    def reset(self) -> None:
        self._values.clear()


class FormulaStat(Stat):
    """A statistic computed on demand from a callable."""

    def __init__(self, name: str, func: Callable[[], float], desc: str = "") -> None:
        super().__init__(name, desc)
        self._func = func

    def value(self) -> float:
        return self._func()

    def reset(self) -> None:
        pass


class StatGroup:
    """A named collection of stats, nestable like gem5's stat hierarchy."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._stats: dict[str, Stat] = {}
        self._children: dict[str, "StatGroup"] = {}

    # -- registration ---------------------------------------------------
    def scalar(self, name: str, desc: str = "") -> ScalarStat:
        return self._register(ScalarStat(name, desc))

    def vector(self, name: str, desc: str = "") -> VectorStat:
        return self._register(VectorStat(name, desc))

    def formula(self, name: str, func: Callable[[], float], desc: str = "") -> FormulaStat:
        return self._register(FormulaStat(name, func, desc))

    def _register(self, stat: Stat):
        if stat.name in self._stats:
            raise ValueError(f"duplicate stat '{stat.name}' in group '{self.name}'")
        self._stats[stat.name] = stat
        return stat

    def add_child(self, child: "StatGroup") -> "StatGroup":
        if child.name in self._children:
            raise ValueError(f"duplicate stat group '{child.name}' under '{self.name}'")
        self._children[child.name] = child
        return child

    # -- access ----------------------------------------------------------
    def __getitem__(self, name: str) -> Stat:
        return self._stats[name]

    def get(self, name: str) -> Optional[Stat]:
        return self._stats.get(name)

    def walk(self, prefix: str = "") -> Iterator[tuple[str, Stat]]:
        base = f"{prefix}{self.name}." if self.name else prefix
        for name, stat in self._stats.items():
            yield base + name, stat
        for child in self._children.values():
            yield from child.walk(base)

    def dump(self) -> dict[str, Union[float, dict]]:
        """Flatten to ``full.path.name -> value``."""
        return {path: stat.value() for path, stat in self.walk()}

    def to_dict(self) -> dict:
        """Nested JSON-safe representation (children keyed by name)."""
        data: dict = {name: stat.value() for name, stat in self._stats.items()}
        for name, child in self._children.items():
            data[name] = child.to_dict()
        return data

    def reset(self) -> None:
        for stat in self._stats.values():
            stat.reset()
        for child in self._children.values():
            child.reset()


def _json_default(value):
    """Serialize the stats types json doesn't know natively."""
    if isinstance(value, StatGroup):
        return value.to_dict()
    if isinstance(value, Stat):
        return value.value()
    raise TypeError(f"not JSON-serializable: {value!r} ({type(value).__name__})")


def stats_to_json(obj, indent: Optional[int] = None) -> str:
    """The shared JSON serialization path for simulator telemetry.

    Accepts a `StatGroup`, a stat dump dict, sweep-report rows, or a
    trace summary; keys are sorted so the output is deterministic (the
    property the sweep/cache round-trip tests rely on).
    """
    if isinstance(obj, StatGroup):
        obj = obj.to_dict()
    return json.dumps(obj, indent=indent, sort_keys=True, default=_json_default)


def format_stats(stats: dict, title: str = "stats") -> str:
    """Pretty-print a flat stat dump in gem5's two-column style."""
    lines = [f"---------- {title} ----------"]
    for key in sorted(stats):
        value = stats[key]
        if isinstance(value, dict):
            for subkey in sorted(value):
                lines.append(f"{key}::{subkey:<30} {value[subkey]}")
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            lines.append(f"{key:<55} {value:.6g}")
        else:
            lines.append(f"{key:<55} {value}")
    return "\n".join(lines)
