"""Workloads: functional correctness (interpreter) and timing-simulation
correctness for the whole suite."""

import numpy as np
import pytest

from repro.system.soc import StandaloneAccelerator
from repro.workloads import all_workload_names, get_workload

FAST_SIM_SET = ["bfs", "fft", "md_knn", "spmv", "spmv_shift", "stencil3d", "nw"]


@pytest.mark.parametrize("name", all_workload_names())
def test_interpreter_matches_golden(name):
    get_workload(name).run_golden_interp()


@pytest.mark.parametrize("name", FAST_SIM_SET)
def test_simulator_matches_golden(name):
    w = get_workload(name)
    data = w.make_data(np.random.default_rng(11))
    acc = StandaloneAccelerator(w.source, w.func_name, memory="spm", spm_bytes=1 << 16)
    args, addresses = w.stage(acc, data)
    acc.run(args)
    w.verify(acc, addresses, data)


def test_simulator_matches_golden_with_cache():
    w = get_workload("spmv")
    data = w.make_data(np.random.default_rng(11))
    acc = StandaloneAccelerator(
        w.source, w.func_name, memory="cache",
        cache_kwargs=dict(size=1024, line_size=32, assoc=2),
    )
    args, addresses = w.stage(acc, data)
    acc.run(args)
    w.verify(acc, addresses, data)


def test_different_seeds_give_different_data():
    w = get_workload("gemm")
    d1 = w.make_data(np.random.default_rng(1))
    d2 = w.make_data(np.random.default_rng(2))
    assert not np.allclose(d1.inputs["m1"], d2.inputs["m1"])


def test_same_seed_reproducible():
    w = get_workload("fft")
    d1 = w.make_data(np.random.default_rng(5))
    d2 = w.make_data(np.random.default_rng(5))
    assert np.array_equal(d1.inputs["real"], d2.inputs["real"])
    assert np.array_equal(d1.golden["real"], d2.golden["real"])


def test_registry_lookup():
    assert get_workload("gemm").name == "gemm"
    with pytest.raises(KeyError):
        get_workload("quantum_chromodynamics")
    names = all_workload_names()
    assert "fft" in names and "bfs" in names
    assert names == sorted(names)


def test_spmv_shift_trigger_data_really_triggers():
    from repro.workloads.spmv import TRIGGER_HI, TRIGGER_LO, make_data_shift

    with_trigger = make_data_shift(True)(np.random.default_rng(3))
    without = make_data_shift(False)(np.random.default_rng(3))
    vals_with = with_trigger.inputs["val"]
    vals_without = without.inputs["val"]
    assert ((vals_with > TRIGGER_LO) & (vals_with < TRIGGER_HI)).any()
    assert not ((vals_without > TRIGGER_LO) & (vals_without < TRIGGER_HI)).any()
    assert with_trigger.golden["flags"].any()
    assert not without.golden["flags"].any()


def test_bfs_levels_shape():
    w = get_workload("bfs")
    data = w.make_data(np.random.default_rng(9))
    levels = data.golden["level"]
    assert levels[0] == 0  # start node
    reached = levels[levels != 127]
    assert (reached >= 0).all()


def test_cnn_golden_pipeline():
    from repro.workloads.cnn import CONV, IN, POOL, golden_layer

    rng = np.random.default_rng(2)
    image = rng.uniform(-1, 1, (IN, IN))
    kernel = rng.uniform(-1, 1, 9)
    conv, relu, pool = golden_layer(image, kernel)
    assert conv.shape == (CONV, CONV)
    assert (relu >= 0).all()
    assert pool.shape == (POOL, POOL)
    assert pool.max() <= relu.max()


def test_workload_stage_rejects_missing_arg():
    w = get_workload("gemm")
    data = w.make_data(np.random.default_rng(1))
    del data.inputs["m2"]
    acc = StandaloneAccelerator(w.source, w.func_name, spm_bytes=1 << 14)
    with pytest.raises(KeyError):
        w.stage(acc, data)


def test_verify_reports_mismatch():
    w = get_workload("gemm")
    data = w.make_data(np.random.default_rng(1))
    acc = StandaloneAccelerator(w.source, w.func_name, spm_bytes=1 << 14)
    args, addresses = w.stage(acc, data)
    acc.run(args)
    data.golden["prod"] = data.golden["prod"] + 1.0
    with pytest.raises(AssertionError):
        w.verify(acc, addresses, data)
