"""Dominator analysis, with structural properties."""

from repro.frontend import compile_c
from repro.ir.builder import IRBuilder
from repro.ir.dominance import DominatorTree
from repro.ir.module import Function
from repro.ir.types import I1, I32
from repro.ir.values import Constant


def _diamond():
    """entry -> (left | right) -> merge."""
    f = Function("f")
    entry, left, right, merge = (
        f.add_block("entry"), f.add_block("left"),
        f.add_block("right"), f.add_block("merge"),
    )
    b = IRBuilder(entry)
    b.cbr(Constant(I1, 1), left, right)
    b.position_at_end(left)
    b.br(merge)
    b.position_at_end(right)
    b.br(merge)
    b.position_at_end(merge)
    b.ret()
    return f, entry, left, right, merge


def test_diamond_idoms():
    f, entry, left, right, merge = _diamond()
    dt = DominatorTree(f)
    assert dt.idom[entry] is None
    assert dt.idom[left] is entry
    assert dt.idom[right] is entry
    assert dt.idom[merge] is entry  # neither branch dominates the merge


def test_dominates_reflexive_and_entry():
    f, entry, left, right, merge = _diamond()
    dt = DominatorTree(f)
    for block in f.blocks:
        assert dt.dominates(block, block)
        assert dt.dominates(entry, block)
    assert not dt.dominates(left, merge)
    assert not dt.strictly_dominates(left, left)


def test_dominance_frontier_diamond():
    f, entry, left, right, merge = _diamond()
    dt = DominatorTree(f)
    frontier = dt.dominance_frontier()
    assert frontier[left] == {merge}
    assert frontier[right] == {merge}
    assert frontier[entry] == set()


def test_loop_frontier_contains_header():
    f = Function("f")
    entry, loop, out = f.add_block("entry"), f.add_block("loop"), f.add_block("out")
    b = IRBuilder(entry)
    b.br(loop)
    b.position_at_end(loop)
    b.cbr(Constant(I1, 1), loop, out)
    b.position_at_end(out)
    b.ret()
    dt = DominatorTree(f)
    assert dt.idom[loop] is entry
    assert dt.idom[out] is loop
    frontier = dt.dominance_frontier()
    assert loop in frontier[loop]  # back edge puts the header in its own DF


def test_unreachable_blocks_detected():
    f = Function("f")
    entry = f.add_block("entry")
    dead = f.add_block("dead")
    b = IRBuilder(entry)
    b.ret()
    b.position_at_end(dead)
    b.ret()
    dt = DominatorTree(f)
    assert dt.is_reachable(entry)
    assert not dt.is_reachable(dead)


def test_single_block_function():
    f = Function("f")
    entry = f.add_block("entry")
    b = IRBuilder(entry)
    b.ret()
    dt = DominatorTree(f)
    assert dt.idom[entry] is None
    assert dt.dominates(entry, entry)
    assert not dt.strictly_dominates(entry, entry)
    assert dt.dominance_frontier()[entry] == set()
    assert dt.rpo == [entry]


def test_self_loop_header():
    f = Function("f")
    entry, loop, out = (f.add_block("entry"), f.add_block("loop"),
                        f.add_block("out"))
    b = IRBuilder(entry)
    b.br(loop)
    b.position_at_end(loop)
    b.cbr(Constant(I1, 1), loop, out)  # self-loop: loop -> loop
    b.position_at_end(out)
    b.ret()
    dt = DominatorTree(f)
    assert dt.idom[loop] is entry  # the self edge must not confuse idoms
    assert dt.idom[out] is loop
    assert dt.dominates(loop, out)
    # A self-looping block sits in its own dominance frontier.
    assert loop in dt.dominance_frontier()[loop]


def test_unreachable_self_loop_pair():
    """Two unreachable blocks that branch to each other."""
    f = Function("f")
    entry = f.add_block("entry")
    b = IRBuilder(entry)
    b.ret()
    dead_a, dead_b = f.add_block("dead_a"), f.add_block("dead_b")
    b.position_at_end(dead_a)
    b.br(dead_b)
    b.position_at_end(dead_b)
    b.br(dead_a)
    dt = DominatorTree(f)
    assert not dt.is_reachable(dead_a)
    assert not dt.is_reachable(dead_b)
    assert dt.is_reachable(entry)
    # Unreachable blocks never appear in any frontier.
    frontier = dt.dominance_frontier()
    for blocks in frontier.values():
        assert dead_a not in blocks and dead_b not in blocks


def test_idom_strictly_dominates_on_real_kernel():
    module = compile_c(
        """
        void k(int a[16], int n) {
          for (int i = 0; i < n; i++) {
            if (a[i] > 0) { a[i] = a[i] * 2; } else { a[i] = 0; }
          }
        }
        """,
        "k",
    )
    func = module.get_function("k")
    dt = DominatorTree(func)
    for block, idom in dt.idom.items():
        if idom is not None:
            assert dt.strictly_dominates(idom, block)
    # Entry's RPO order starts at the entry block.
    assert dt.rpo[0] is func.entry
