"""Accelerator <-> stream-port integration and strict ordering."""

import numpy as np

from repro.core.compute_unit import ComputeUnit
from repro.core.config import DeviceConfig
from repro.frontend import compile_c
from repro.hw.default_profile import default_profile
from repro.mem.stream_buffer import StreamBuffer
from repro.mem.stream_port import StreamPort
from repro.sim.simobject import System

# Two distinct static loads popping the same stream: the ordering trap.
PAIR_POP = """
void pairs(double sin[1], double out[32]) {
  for (int i = 0; i < 16; i++) {
    double first = sin[0];
    double second = sin[0];
    out[2 * i] = first;
    out[2 * i + 1] = second;
  }
}
"""


def _build(system, source, func, read_ports=2):
    cfg = DeviceConfig(clock_freq_hz=100e6, read_ports=read_ports, write_ports=2)
    unit = ComputeUnit(func, system, compile_c(source, func), func,
                       default_profile(), config=cfg)
    return unit


def test_strict_region_preserves_pop_order():
    system = System("s", clock_freq_hz=1e9)
    unit = _build(system, PAIR_POP, "pairs")
    from repro.mem.spm import Scratchpad

    spm = Scratchpad("spm", system, base=0x2000_0000, size=4096, clock=unit.clock)
    unit.attach_private_spm(spm)
    unit.comm.add_memory_route(spm.range, spm.make_port())
    buffer = StreamBuffer("b", system, capacity_tokens=64)
    port = StreamPort("sp", system, buffer, base=0x9000_0000)
    unit.comm.add_memory_route(port.range, port.port, strict=True)

    tokens = np.arange(32, dtype=np.float64)
    for value in tokens:
        buffer.try_push(np.float64(value).tobytes())
    unit.launch([0x9000_0000, 0x2000_0000])
    system.run()
    out = spm.image.read_array(0x2000_0000, np.float64, 32)
    assert np.array_equal(out, tokens), "tokens consumed out of order"


def test_strict_ranges_registered():
    system = System("s")
    unit = _build(system, PAIR_POP, "pairs")
    buffer = StreamBuffer("b", system, capacity_tokens=4)
    port = StreamPort("sp", system, buffer, base=0x9000_0000)
    unit.comm.add_memory_route(port.range, port.port, strict=True)
    assert unit.comm.memctrl.is_strict(0x9000_0000)
    assert not unit.comm.memctrl.is_strict(0x1234)


def test_accelerator_blocks_on_empty_stream_until_data():
    """Execute-in-execute over a handshake: the pop stalls, data arrives
    later, the kernel completes with the right value."""
    system = System("s", clock_freq_hz=1e9)
    source = """
    void take1(double sin[1], double out[1]) {
      out[0] = sin[0] * 2.0;
    }
    """
    unit = _build(system, source, "take1")
    from repro.mem.spm import Scratchpad

    spm = Scratchpad("spm", system, base=0x2000_0000, size=256, clock=unit.clock)
    unit.attach_private_spm(spm)
    unit.comm.add_memory_route(spm.range, spm.make_port())
    buffer = StreamBuffer("b", system, capacity_tokens=4)
    port = StreamPort("sp", system, buffer, base=0x9000_0000)
    unit.comm.add_memory_route(port.range, port.port, strict=True)

    unit.launch([0x9000_0000, 0x2000_0000])
    # Deliver the token only after 100 cycles.
    system.eventq.schedule_callback(
        lambda: buffer.try_push(np.float64(21.0).tobytes()),
        system.clock.cycles_to_ticks(100),
    )
    system.run()
    assert spm.image.read_array(0x2000_0000, np.float64, 1)[0] == 42.0
    assert unit.engine.total_cycles >= 100 // 10  # waited at 100 MHz
