"""Concrete instruction classes.

The supported subset covers everything MachSuite-style kernels need:
integer/float arithmetic, comparisons, select, casts, memory access
(load/store/alloca/getelementptr), control flow (br/ret/phi), and calls
to math intrinsics (sqrt, fabs, ...).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, TYPE_CHECKING

from repro.ir.types import (
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    Type,
    I1,
    I64,
    LABEL,
    VOID,
)
from repro.ir.values import Constant, Instruction, Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.module import BasicBlock

# Opcode groups ----------------------------------------------------------
INT_BINOPS = frozenset(
    ["add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
     "and", "or", "xor", "shl", "lshr", "ashr"]
)
FLOAT_BINOPS = frozenset(["fadd", "fsub", "fmul", "fdiv", "frem"])
BINOPS = INT_BINOPS | FLOAT_BINOPS

ICMP_PREDS = frozenset(["eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"])
FCMP_PREDS = frozenset(["oeq", "one", "olt", "ole", "ogt", "oge", "ord", "uno", "ueq", "une"])

CAST_OPS = frozenset(
    ["zext", "sext", "trunc", "fptosi", "fptoui", "sitofp", "uitofp",
     "fpext", "fptrunc", "bitcast", "inttoptr", "ptrtoint"]
)

INTRINSICS = frozenset(["sqrt", "fabs", "exp", "log", "sin", "cos", "pow", "fmin", "fmax"])


class BinaryOp(Instruction):
    """Two-operand arithmetic/logic (``add``, ``fmul``, ``shl``, ...)."""

    def __init__(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if opcode not in BINOPS:
            raise ValueError(f"unknown binary opcode '{opcode}'")
        if lhs.type != rhs.type:
            raise TypeError(f"{opcode}: operand types differ ({lhs.type} vs {rhs.type})")
        if opcode in FLOAT_BINOPS and not lhs.type.is_float:
            raise TypeError(f"{opcode} requires float operands, got {lhs.type}")
        if opcode in INT_BINOPS and not lhs.type.is_int:
            raise TypeError(f"{opcode} requires integer operands, got {lhs.type}")
        super().__init__(opcode, lhs.type, [lhs, rhs], name)

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class ICmp(Instruction):
    """Integer/pointer comparison producing an ``i1``."""

    def __init__(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if pred not in ICMP_PREDS:
            raise ValueError(f"unknown icmp predicate '{pred}'")
        if lhs.type != rhs.type:
            raise TypeError(f"icmp: operand types differ ({lhs.type} vs {rhs.type})")
        if not (lhs.type.is_int or lhs.type.is_pointer):
            raise TypeError(f"icmp requires int/pointer operands, got {lhs.type}")
        super().__init__("icmp", I1, [lhs, rhs], name)
        self.pred = pred


class FCmp(Instruction):
    """Floating-point comparison producing an ``i1``."""

    def __init__(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if pred not in FCMP_PREDS:
            raise ValueError(f"unknown fcmp predicate '{pred}'")
        if lhs.type != rhs.type or not lhs.type.is_float:
            raise TypeError(f"fcmp requires matching float operands")
        super().__init__("fcmp", I1, [lhs, rhs], name)
        self.pred = pred


class Select(Instruction):
    """``select i1 %c, T %a, T %b`` — a hardware MUX."""

    def __init__(self, cond: Value, true_val: Value, false_val: Value, name: str = "") -> None:
        if cond.type != I1:
            raise TypeError("select condition must be i1")
        if true_val.type != false_val.type:
            raise TypeError("select arm types differ")
        super().__init__("select", true_val.type, [cond, true_val, false_val], name)


class Cast(Instruction):
    """Type conversion (``zext``, ``sitofp``, ``bitcast``, ...)."""

    def __init__(self, opcode: str, value: Value, to_type: Type, name: str = "") -> None:
        if opcode not in CAST_OPS:
            raise ValueError(f"unknown cast opcode '{opcode}'")
        super().__init__(opcode, to_type, [value], name)

    @property
    def src(self) -> Value:
        return self.operands[0]


class Alloca(Instruction):
    """Stack allocation of a local array or scalar."""

    is_memory = True

    def __init__(self, allocated_type: Type, name: str = "") -> None:
        super().__init__("alloca", PointerType(allocated_type), [], name)
        self.allocated_type = allocated_type


class Load(Instruction):
    is_memory = True

    def __init__(self, pointer: Value, name: str = "") -> None:
        if not pointer.type.is_pointer:
            raise TypeError(f"load requires a pointer operand, got {pointer.type}")
        super().__init__("load", pointer.type.pointee, [pointer], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class Store(Instruction):
    is_memory = True

    def __init__(self, value: Value, pointer: Value) -> None:
        if not pointer.type.is_pointer:
            raise TypeError(f"store requires a pointer operand, got {pointer.type}")
        if pointer.type.pointee != value.type:
            raise TypeError(
                f"store type mismatch: storing {value.type} through {pointer.type}"
            )
        super().__init__("store", VOID, [value, pointer])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]


class GetElementPtr(Instruction):
    """Pointer arithmetic over arrays.

    Supported forms (covering what the mini-C frontend emits):

    * ``gep T* %p, idx``            — element stride of ``T``
    * ``gep [N x T]* %p, 0, idx``   — decay into array then index
    """

    def __init__(self, pointer: Value, indices: Sequence[Value], name: str = "") -> None:
        if not pointer.type.is_pointer:
            raise TypeError("gep requires a pointer base")
        result_type = self._result_type(pointer.type, len(indices))
        super().__init__("getelementptr", result_type, [pointer, *indices], name)

    @staticmethod
    def _result_type(ptr_type: PointerType, n_indices: int) -> PointerType:
        current: Type = ptr_type
        for i in range(n_indices):
            if i == 0:
                if not current.is_pointer:
                    raise TypeError("gep walked off a non-pointer")
                current = current.pointee
            else:
                if isinstance(current, ArrayType):
                    current = current.element
                else:
                    raise TypeError(f"gep cannot index into {current}")
        return PointerType(current)

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def indices(self) -> list[Value]:
        return self.operands[1:]


class BlockRef(Value):
    """A reference to a basic block used as a branch/phi operand."""

    def __init__(self, block: "BasicBlock") -> None:
        super().__init__(LABEL, block.name)
        self.block = block

    @property
    def ref(self) -> str:
        return f"%{self.block.name}"


class Branch(Instruction):
    """Conditional or unconditional branch."""

    is_terminator = True

    def __init__(
        self,
        target: "BasicBlock",
        cond: Optional[Value] = None,
        if_false: Optional["BasicBlock"] = None,
    ) -> None:
        if cond is None:
            super().__init__("br", VOID, [BlockRef(target)])
        else:
            if cond.type != I1:
                raise TypeError("branch condition must be i1")
            if if_false is None:
                raise ValueError("conditional branch needs a false target")
            super().__init__("br", VOID, [cond, BlockRef(target), BlockRef(if_false)])

    @property
    def is_conditional(self) -> bool:
        return len(self.operands) == 3

    @property
    def condition(self) -> Optional[Value]:
        return self.operands[0] if self.is_conditional else None

    def targets(self) -> list["BasicBlock"]:
        refs = self.operands[1:] if self.is_conditional else self.operands
        return [ref.block for ref in refs]

    @property
    def true_target(self) -> "BasicBlock":
        return self.targets()[0]

    @property
    def false_target(self) -> "BasicBlock":
        targets = self.targets()
        return targets[1] if len(targets) > 1 else targets[0]


class Ret(Instruction):
    is_terminator = True

    def __init__(self, value: Optional[Value] = None) -> None:
        super().__init__("ret", VOID, [] if value is None else [value])

    @property
    def return_value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None


class Phi(Instruction):
    """SSA phi node; incoming pairs of (value, predecessor block)."""

    def __init__(self, type_: Type, name: str = "") -> None:
        super().__init__("phi", type_, [], name)
        self.incoming: list[tuple[Value, "BasicBlock"]] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        if value.type != self.type:
            raise TypeError(f"phi incoming type {value.type} != {self.type}")
        self.incoming.append((value, block))
        self.operands = [v for v, __ in self.incoming]

    def incoming_for(self, block: "BasicBlock") -> Value:
        for value, pred in self.incoming:
            if pred is block:
                return value
        raise KeyError(f"phi {self.ref} has no incoming edge from {block.name}")

    def replace_operand(self, old: Value, new: Value) -> int:
        count = 0
        for i, (value, pred) in enumerate(self.incoming):
            if value is old:
                self.incoming[i] = (new, pred)
                count += 1
        self.operands = [v for v, __ in self.incoming]
        return count


class Call(Instruction):
    """Call to a named function or math intrinsic.

    The accelerator model treats intrinsic calls as compute operations
    (e.g. ``sqrt`` maps to an FP-sqrt functional unit); calls to other
    module functions are interpreted functionally.
    """

    def __init__(self, callee: str, return_type: Type, args: Iterable[Value], name: str = "") -> None:
        super().__init__("call", return_type, list(args), name)
        self.callee = callee

    @property
    def is_intrinsic(self) -> bool:
        return self.callee in INTRINSICS


def constant_int(type_: IntType, value: int) -> Constant:
    return Constant(type_, value)


def constant_index(value: int) -> Constant:
    return Constant(I64, value)
