"""Power/area report aggregation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hw.power import AreaReport, PowerReport

energies = st.floats(min_value=0, max_value=1e9)
mw = st.floats(min_value=0, max_value=1e3)


def _report(runtime=1000.0):
    return PowerReport(
        runtime_ns=runtime,
        fu_dynamic_pj=500.0,
        register_dynamic_pj=100.0,
        spm_read_pj=200.0,
        spm_write_pj=100.0,
        fu_leakage_mw=0.3,
        register_leakage_mw=0.1,
        spm_leakage_mw=0.2,
    )


def test_pj_per_ns_is_mw():
    r = _report(runtime=1000.0)
    assert r.fu_dynamic_mw == 0.5
    assert r.dynamic_mw == pytest.approx(0.9)
    assert r.static_mw == pytest.approx(0.6)
    assert r.total_mw == pytest.approx(1.5)


def test_zero_runtime_means_no_dynamic_power():
    r = _report(runtime=0.0)
    assert r.dynamic_mw == 0.0
    assert r.static_mw > 0


def test_breakdown_sums_to_total():
    r = _report()
    assert sum(r.breakdown().values()) == pytest.approx(r.total_mw)


def test_breakdown_percent_sums_to_100():
    r = _report()
    assert sum(r.breakdown_percent().values()) == pytest.approx(100.0)


@given(energies, energies, mw, mw)
def test_merge_adds_energy_and_leakage(e1, e2, l1, l2):
    a = PowerReport(runtime_ns=100.0, fu_dynamic_pj=e1, fu_leakage_mw=l1)
    b = PowerReport(runtime_ns=200.0, fu_dynamic_pj=e2, fu_leakage_mw=l2)
    merged = a.merged(b)
    assert merged.fu_dynamic_pj == e1 + e2
    assert merged.fu_leakage_mw == l1 + l2
    assert merged.runtime_ns == 200.0  # parallel: the longer runtime


def test_area_report():
    a = AreaReport(functional_units_um2=1000.0, registers_um2=500.0, spm_um2=2000.0)
    assert a.datapath_um2 == 1500.0
    assert a.total_um2 == 3500.0
    assert a.total_mm2 == pytest.approx(0.0035)
