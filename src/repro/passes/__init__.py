"""IR optimization and analysis passes.

These stand in for the clang/LLVM optimization pipeline the paper uses
to shape accelerator datapaths: ``mem2reg`` (SSA construction), loop
unrolling (the ILP-tuning knob), dead-code elimination, constant
folding, and CFG simplification, coordinated by a :class:`PassManager`.
"""

from repro.passes.pass_manager import FunctionPass, PassManager, standard_pipeline
from repro.passes.pipeline import PassStep, PipelineSpec, PipelineSpecError
from repro.passes.mem2reg import Mem2Reg
from repro.passes.dce import DeadCodeElimination
from repro.passes.constfold import ConstantFold
from repro.passes.simplify_cfg import SimplifyCFG
from repro.passes.loop_analysis import Loop, find_loops, trip_count
from repro.passes.unroll import LoopUnroll, UnrollError
from repro.passes.inline import InlineError, InlineFunctions, inline_call
from repro.passes.licm import LoopInvariantCodeMotion
from repro.passes.cse import CommonSubexpressionElimination

__all__ = [
    "FunctionPass",
    "PassManager",
    "standard_pipeline",
    "PassStep",
    "PipelineSpec",
    "PipelineSpecError",
    "Mem2Reg",
    "DeadCodeElimination",
    "ConstantFold",
    "SimplifyCFG",
    "Loop",
    "find_loops",
    "trip_count",
    "LoopUnroll",
    "UnrollError",
    "InlineFunctions",
    "InlineError",
    "inline_call",
    "LoopInvariantCodeMotion",
    "CommonSubexpressionElimination",
]
