"""End-to-end crash recovery: SIGKILL a real server, restart, recover.

These tests spawn ``python -m repro serve --state-dir ...`` as a real
subprocess (the only way to honestly test SIGKILL), kill it with jobs
in flight, restart it against the same state dir, and assert the
acceptance bar: the job completes with a byte-identical result, and a
restarted sweep re-executes only its unfinished points (verified via
the run-cache hit counters).
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.exec.context import SimContext
from repro.serve import ServeClient
from repro.serve.jobs import JobState
from repro.serve.workers import run_spec_kwargs
from repro.workloads import get_workload

ROOT = Path(__file__).resolve().parents[2]

RUN_SPEC = {"workload": "gemm_dse", "ports": 4, "unroll": 2, "seed": 7}


def start_server(state_dir, cache_dir):
    """Spawn a real ``repro serve`` process; returns (proc, port)."""
    env = dict(os.environ,
               PYTHONPATH=str(ROOT / "src"),
               PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "1", "--state-dir", str(state_dir),
         "--cache-dir", str(cache_dir)],
        cwd=ROOT, env=env, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    line = proc.stdout.readline()
    assert "listening on" in line, f"unexpected announce: {line!r}"
    port = int(line.split("http://", 1)[1].split()[0].rsplit(":", 1)[1])
    return proc, port


def sigkill(proc):
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait(timeout=10)
    proc.stdout.close()


@pytest.fixture
def dirs(tmp_path):
    return tmp_path / "state", tmp_path / "cache"


def test_sigkill_midjob_restart_completes_byte_identical(dirs):
    state_dir, cache_dir = dirs
    proc, port = start_server(state_dir, cache_dir)
    try:
        client = ServeClient(port=port)
        client.pause()  # deterministic: the job is queued at crash time
        job = client.submit("run", dict(RUN_SPEC))
        assert job["state"] == JobState.QUEUED
    finally:
        sigkill(proc)

    proc2, port2 = start_server(state_dir, cache_dir)
    try:
        client2 = ServeClient(port=port2)
        recovered = client2.wait(job["id"], timeout=240.0)
        assert recovered["state"] == JobState.DONE
        assert recovered["attempts"] == 1
        # Byte-identical to an uninterrupted run.
        direct = SimContext(get_workload("gemm_dse"), seed=7,
                            **run_spec_kwargs(RUN_SPEC)).run()
        assert recovered["result"] == direct.to_dict()
        # The journey is on the job's own (recovered) event log.
        names = [e["event"] for e in
                 client2.events(job["id"], reconnect=False)]
        assert "recovered" in names
        assert names[-1] == JobState.DONE
        # And /v1/stats reports the recovery.
        stats = client2.stats()
        assert stats["recovery"]["requeued_jobs"] >= 1
        assert stats["journal"]["appends"] > 0
        client2.shutdown(mode="drain")
        proc2.wait(timeout=30)
    finally:
        if proc2.poll() is None:
            proc2.kill()
        proc2.stdout.close()


def test_restarted_sweep_reexecutes_only_unfinished_points(dirs):
    state_dir, cache_dir = dirs
    warm_spec = {"workload": "gemm_dse", "ports": [1], "unroll": 1,
                 "seed": 7}
    sweep_spec = {"workload": "gemm_dse", "ports": [1, 2], "unroll": 1,
                  "seed": 7}
    proc, port = start_server(state_dir, cache_dir)
    try:
        client = ServeClient(port=port)
        # Half the work finishes before the crash: ports=1 is simulated
        # and lands in the durable run cache.
        warm = client.wait(client.submit("sweep", warm_spec)["id"],
                           timeout=240.0)
        assert warm["state"] == JobState.DONE
        client.pause()
        job = client.submit("sweep", sweep_spec)
        assert job["state"] == JobState.QUEUED
    finally:
        sigkill(proc)

    proc2, port2 = start_server(state_dir, cache_dir)
    try:
        client2 = ServeClient(port=port2)
        recovered = client2.wait(job["id"], timeout=240.0)
        assert recovered["state"] == JobState.DONE
        rows = recovered["result"]["rows"]
        assert [row["ports"] for row in rows] == [1, 2]
        assert all(row["status"] == "ok" for row in rows)
        # The acceptance bar: only the unfinished point re-executed —
        # the finished one was served by the run cache.
        stats = client2.stats()
        assert stats["run_cache"]["hits"] >= 1
        assert stats["recovery"]["requeued_jobs"] >= 1
        client2.shutdown()
    finally:
        if proc2.poll() is None:
            proc2.kill()
        proc2.stdout.close()
