"""AST -> IR lowering.

Classic clang -O0 style codegen: every local (and every parameter)
lives in an alloca and is loaded/stored at each use; the standard pass
pipeline (mem2reg first) then rebuilds SSA.  Loops are emitted in
rotated (bottom-tested) form with an entry guard, which is the shape
`repro.passes.unroll` requires; ``#pragma unroll`` annotations travel
on the latch branch instruction.

Semantic deviations from ISO C (documented, deliberate):

* ``&&``/``||`` evaluate both sides (no short circuit) and combine with
  bitwise ops on ``i1`` — the datapath-friendly lowering HLS tools use
  for side-effect-free conditions.
* all arithmetic is two's-complement wrapping (no UB on overflow).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.frontend import c_ast as ast
from repro.frontend.parser import parse_c
from repro.ir.builder import IRBuilder
from repro.ir.instructions import INTRINSICS
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import (
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    Type,
    DOUBLE,
    FLOAT,
    I1,
    I8,
    I16,
    I32,
    I64,
    VOID,
)
from repro.ir.values import Constant, Value
from repro.ir.verifier import verify_module


class CodegenError(ValueError):
    pass


_BASE_IR_TYPES = {
    "void": VOID,
    "char": I8,
    "short": I16,
    "int": I32,
    "long": I64,
    "float": FLOAT,
    "double": DOUBLE,
}

# Math builtins: canonical intrinsic name per C spelling.
_MATH_BUILTINS = {
    "sqrt": "sqrt", "sqrtf": "sqrt",
    "fabs": "fabs", "fabsf": "fabs", "abs": "fabs",
    "exp": "exp", "expf": "exp",
    "log": "log", "logf": "log",
    "sin": "sin", "sinf": "sin",
    "cos": "cos", "cosf": "cos",
    "pow": "pow", "powf": "pow",
    "fmin": "fmin", "fminf": "fmin",
    "fmax": "fmax", "fmaxf": "fmax",
}


def ir_type_of(ctype: ast.CType) -> Type:
    """Lower a CType (base + pointers + array dims) to an IR type."""
    base = _BASE_IR_TYPES.get(ctype.base)
    if base is None:
        raise CodegenError(f"unknown base type '{ctype.base}'")
    type_: Type = base
    for dim in reversed(ctype.array_dims):
        type_ = ArrayType(type_, dim)
    for __ in range(ctype.pointers):
        type_ = PointerType(type_)
    return type_


@dataclass
class TV:
    """A typed rvalue: IR value plus C-level signedness."""

    value: Value
    unsigned: bool = False

    @property
    def type(self) -> Type:
        return self.value.type


@dataclass
class _Symbol:
    alloca: Value  # pointer to the storage
    unsigned: bool


@dataclass
class _LoopContext:
    continue_target: BasicBlock
    break_target: BasicBlock


class _FunctionCodegen:
    def __init__(self, module: Module, fdef: ast.FunctionDef, signatures: dict) -> None:
        self.module = module
        self.fdef = fdef
        self.signatures = signatures
        self.func: Optional[Function] = None
        self.builder = IRBuilder()
        self.scopes: list[dict[str, _Symbol]] = []
        self.loops: list[_LoopContext] = []
        self.terminated = False

    # ------------------------------------------------------------------
    def run(self) -> Function:
        return_type = ir_type_of(self.fdef.return_type)
        arg_specs = [(ir_type_of(p.type), p.name) for p in self.fdef.params]
        func = Function(self.fdef.name, return_type, arg_specs)
        self.module.add_function(func)
        self.func = func
        entry = func.add_block("entry")
        self.builder.position_at_end(entry)
        self.scopes.append({})
        # Spill parameters into allocas (mem2reg will promote them back).
        for param, arg in zip(self.fdef.params, func.args):
            slot = self.builder.alloca(arg.type, name=f"{param.name}.addr")
            self.builder.store(arg, slot)
            self.scopes[-1][param.name] = _Symbol(slot, param.type.unsigned)
        self.gen_stmt(self.fdef.body)
        if not self.terminated:
            if return_type.is_void:
                self.builder.ret()
            else:
                self.builder.ret(Constant(return_type, 0))
        return func

    # -- scope helpers ----------------------------------------------------
    def lookup(self, name: str, line: int) -> _Symbol:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise CodegenError(f"line {line}: use of undeclared identifier '{name}'")

    def new_block(self, name: str) -> BasicBlock:
        return self.func.add_block(self.func.unique_name(name))

    def _start_block(self, block: BasicBlock) -> None:
        self.builder.position_at_end(block)
        self.terminated = False

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def gen_stmt(self, stmt: ast.Stmt) -> None:
        if self.terminated:
            return  # unreachable code after return/break/continue
        if isinstance(stmt, ast.Compound):
            self.scopes.append({})
            for child in stmt.body:
                self.gen_stmt(child)
            self.scopes.pop()
        elif isinstance(stmt, ast.VarDecl):
            self.gen_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self.gen_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self.gen_if(stmt)
        elif isinstance(stmt, ast.For):
            self.gen_for(stmt)
        elif isinstance(stmt, ast.While):
            self.gen_for(
                ast.For(line=stmt.line, init=None, cond=stmt.cond, step=None,
                        body=stmt.body, unroll=stmt.unroll)
            )
        elif isinstance(stmt, ast.DoWhile):
            self.gen_do_while(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                if self.func.return_type.is_void:
                    raise CodegenError(f"line {stmt.line}: return with value in void function")
                value = self.convert(self.gen_expr(stmt.value), self.func.return_type)
                self.builder.ret(value.value)
            else:
                self.builder.ret()
            self.terminated = True
        elif isinstance(stmt, ast.Break):
            if not self.loops:
                raise CodegenError(f"line {stmt.line}: break outside loop")
            self.builder.br(self.loops[-1].break_target)
            self.terminated = True
        elif isinstance(stmt, ast.Continue):
            if not self.loops:
                raise CodegenError(f"line {stmt.line}: continue outside loop")
            self.builder.br(self.loops[-1].continue_target)
            self.terminated = True
        else:
            raise CodegenError(f"unsupported statement {type(stmt).__name__}")

    def gen_decl(self, decl: ast.VarDecl) -> None:
        var_type = ir_type_of(decl.type)
        # Unique SSA name even when sibling scopes reuse variable names.
        slot = self.builder.alloca(var_type, name=self.func.unique_name(f"{decl.name}."))
        self.scopes[-1][decl.name] = _Symbol(slot, decl.type.unsigned)
        if decl.init is not None:
            if not var_type.is_scalar:
                raise CodegenError(f"line {decl.line}: array initializers not supported")
            value = self.gen_expr(decl.init)
            value = self.convert(value, var_type)
            self.builder.store(value.value, slot)

    def gen_if(self, stmt: ast.If) -> None:
        cond = self.gen_condition(stmt.cond)
        then_block = self.new_block("if.then")
        merge_block = self.new_block("if.end")
        else_block = self.new_block("if.else") if stmt.otherwise else merge_block
        self.builder.cbr(cond, then_block, else_block)

        self._start_block(then_block)
        self.gen_stmt(stmt.then)
        if not self.terminated:
            self.builder.br(merge_block)
        if stmt.otherwise is not None:
            self._start_block(else_block)
            self.gen_stmt(stmt.otherwise)
            if not self.terminated:
                self.builder.br(merge_block)
        self._start_block(merge_block)

    def gen_for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self.scopes.append({})
            self.gen_stmt(stmt.init)

        header = self.new_block("loop.body")
        latch = self.new_block("loop.latch")
        exit_block = self.new_block("loop.end")

        # Entry guard (skipped for condition-less loops).
        if stmt.cond is not None:
            guard = self.gen_condition(stmt.cond)
            self.builder.cbr(guard, header, exit_block)
        else:
            self.builder.br(header)

        self._start_block(header)
        self.loops.append(_LoopContext(continue_target=latch, break_target=exit_block))
        self.gen_stmt(stmt.body)
        self.loops.pop()
        if not self.terminated:
            self.builder.br(latch)

        self._start_block(latch)
        if stmt.step is not None:
            self.gen_expr(stmt.step)
        if stmt.cond is not None:
            cond = self.gen_condition(stmt.cond)
            branch = self.builder.cbr(cond, header, exit_block)
        else:
            branch = self.builder.br(header)
        if stmt.unroll is not None:
            branch.unroll_factor = stmt.unroll

        self._start_block(exit_block)
        if stmt.init is not None:
            self.scopes.pop()

    def gen_do_while(self, stmt: ast.DoWhile) -> None:
        header = self.new_block("do.body")
        latch = self.new_block("do.latch")
        exit_block = self.new_block("do.end")
        self.builder.br(header)
        self._start_block(header)
        self.loops.append(_LoopContext(continue_target=latch, break_target=exit_block))
        self.gen_stmt(stmt.body)
        self.loops.pop()
        if not self.terminated:
            self.builder.br(latch)
        self._start_block(latch)
        cond = self.gen_condition(stmt.cond)
        branch = self.builder.cbr(cond, header, exit_block)
        if stmt.unroll is not None:
            branch.unroll_factor = stmt.unroll
        self._start_block(exit_block)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def gen_expr(self, expr: ast.Expr) -> TV:
        if isinstance(expr, ast.IntLit):
            type_ = I32 if -(2**31) <= expr.value < 2**31 else I64
            return TV(Constant(type_, expr.value))
        if isinstance(expr, ast.FloatLit):
            return TV(Constant(FLOAT if expr.is_single else DOUBLE, expr.value))
        if isinstance(expr, ast.Ident):
            return self.gen_load_ident(expr)
        if isinstance(expr, ast.BinOp):
            return self.gen_binop(expr)
        if isinstance(expr, ast.UnOp):
            return self.gen_unop(expr)
        if isinstance(expr, ast.Assign):
            return self.gen_assign(expr)
        if isinstance(expr, ast.IncDec):
            return self.gen_incdec(expr)
        if isinstance(expr, ast.Conditional):
            cond = self.gen_condition(expr.cond)
            lhs = self.gen_expr(expr.if_true)
            rhs = self.gen_expr(expr.if_false)
            common = self.common_type(lhs, rhs)
            lhs, rhs = self.convert(lhs, common), self.convert(rhs, common)
            return TV(self.builder.select(cond, lhs.value, rhs.value),
                      lhs.unsigned or rhs.unsigned)
        if isinstance(expr, ast.CallExpr):
            return self.gen_call(expr)
        if isinstance(expr, ast.IndexExpr):
            addr, unsigned = self.gen_address(expr)
            pointee = addr.type.pointee
            if pointee.is_array:
                # Array rvalue decays to a pointer to its first element.
                return TV(self.builder.gep(addr, [0, 0]), unsigned)
            return TV(self.builder.load(addr), unsigned)
        if isinstance(expr, ast.CastExpr):
            value = self.gen_expr(expr.operand)
            target = ir_type_of(expr.to_type)
            converted = self.convert(value, target)
            return TV(converted.value, expr.to_type.unsigned)
        raise CodegenError(f"unsupported expression {type(expr).__name__}")

    def gen_load_ident(self, expr: ast.Ident) -> TV:
        symbol = self.lookup(expr.name, expr.line)
        pointee = symbol.alloca.type.pointee
        if pointee.is_array:
            # Arrays decay to element pointers in rvalue position.
            return TV(self.builder.gep(symbol.alloca, [0, 0]), symbol.unsigned)
        return TV(self.builder.load(symbol.alloca), symbol.unsigned)

    # -- addresses (lvalues) -----------------------------------------------
    def gen_address(self, expr: ast.Expr) -> tuple[Value, bool]:
        if isinstance(expr, ast.Ident):
            symbol = self.lookup(expr.name, expr.line)
            return symbol.alloca, symbol.unsigned
        if isinstance(expr, ast.IndexExpr):
            return self.gen_index_address(expr)
        if isinstance(expr, ast.UnOp) and expr.op == "*":
            pointer = self.gen_expr(expr.operand)
            if not pointer.type.is_pointer:
                raise CodegenError(f"line {expr.line}: dereferencing non-pointer")
            return pointer.value, pointer.unsigned
        raise CodegenError(f"line {expr.line}: expression is not assignable")

    def gen_index_address(self, expr: ast.IndexExpr) -> tuple[Value, bool]:
        index = self.gen_expr(expr.index)
        index = self.convert(index, I64)
        base = expr.base
        # Identifier base: choose array-indexing vs pointer-indexing GEP.
        if isinstance(base, ast.Ident):
            symbol = self.lookup(base.name, base.line)
            pointee = symbol.alloca.type.pointee
            if pointee.is_array:
                return (
                    self.builder.gep(symbol.alloca, [0, index.value]),
                    symbol.unsigned,
                )
            pointer = self.builder.load(symbol.alloca)
            return self.builder.gep(pointer, [index.value]), symbol.unsigned
        if isinstance(base, ast.IndexExpr):
            addr, unsigned = self.gen_index_address(base)
            pointee = addr.type.pointee
            if pointee.is_array:
                return self.builder.gep(addr, [0, index.value]), unsigned
            pointer = self.builder.load(addr)
            return self.builder.gep(pointer, [index.value]), unsigned
        # General base expression (e.g. (p + 4)[i]).
        pointer = self.gen_expr(base)
        if not pointer.type.is_pointer:
            raise CodegenError(f"line {expr.line}: indexing a non-pointer")
        return self.builder.gep(pointer.value, [index.value]), pointer.unsigned

    # -- operators -------------------------------------------------------------
    def gen_binop(self, expr: ast.BinOp) -> TV:
        op = expr.op
        if op in ("&&", "||"):
            lhs = self.to_bool(self.gen_expr(expr.lhs))
            rhs = self.to_bool(self.gen_expr(expr.rhs))
            opcode = "and" if op == "&&" else "or"
            return TV(self.builder.binop(opcode, lhs, rhs))
        lhs = self.gen_expr(expr.lhs)
        rhs = self.gen_expr(expr.rhs)
        # Pointer arithmetic: p + i / p - i.
        if lhs.type.is_pointer and op in ("+", "-") and rhs.type.is_int:
            index = self.convert(rhs, I64)
            offset = index.value
            if op == "-":
                offset = self.builder.sub(Constant(I64, 0), index.value)
            return TV(self.builder.gep(lhs.value, [offset]), lhs.unsigned)
        if op in ("==", "!=", "<", ">", "<=", ">="):
            return self.gen_comparison(op, lhs, rhs)
        common = self.common_type(lhs, rhs)
        lhs, rhs = self.convert(lhs, common), self.convert(rhs, common)
        unsigned = lhs.unsigned or rhs.unsigned
        opcode = self._arith_opcode(op, common, unsigned, expr.line)
        return TV(self.builder.binop(opcode, lhs.value, rhs.value), unsigned)

    @staticmethod
    def _arith_opcode(op: str, type_: Type, unsigned: bool, line: int) -> str:
        if type_.is_float:
            table = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv", "%": "frem"}
        else:
            table = {
                "+": "add", "-": "sub", "*": "mul",
                "/": "udiv" if unsigned else "sdiv",
                "%": "urem" if unsigned else "srem",
                "&": "and", "|": "or", "^": "xor",
                "<<": "shl", ">>": "lshr" if unsigned else "ashr",
            }
        if op not in table:
            raise CodegenError(f"line {line}: operator '{op}' not valid for {type_}")
        return table[op]

    def gen_comparison(self, op: str, lhs: TV, rhs: TV) -> TV:
        common = self.common_type(lhs, rhs)
        lhs, rhs = self.convert(lhs, common), self.convert(rhs, common)
        if common.is_float:
            preds = {"==": "oeq", "!=": "une", "<": "olt", ">": "ogt", "<=": "ole", ">=": "oge"}
            return TV(self.builder.fcmp(preds[op], lhs.value, rhs.value))
        unsigned = lhs.unsigned or rhs.unsigned or common.is_pointer
        if unsigned:
            preds = {"==": "eq", "!=": "ne", "<": "ult", ">": "ugt", "<=": "ule", ">=": "uge"}
        else:
            preds = {"==": "eq", "!=": "ne", "<": "slt", ">": "sgt", "<=": "sle", ">=": "sge"}
        return TV(self.builder.icmp(preds[op], lhs.value, rhs.value))

    def gen_unop(self, expr: ast.UnOp) -> TV:
        if expr.op == "*":
            addr, unsigned = self.gen_address(expr)
            return TV(self.builder.load(addr), unsigned)
        if expr.op == "&":
            addr, unsigned = self.gen_address(expr.operand)
            return TV(addr, unsigned)
        operand = self.gen_expr(expr.operand)
        if expr.op == "-":
            if operand.type.is_float:
                return TV(self.builder.fsub(Constant(operand.type, 0.0), operand.value))
            return TV(self.builder.sub(Constant(operand.type, 0), operand.value),
                      operand.unsigned)
        if expr.op == "!":
            bool_val = self.to_bool(operand)
            return TV(self.builder.xor(bool_val, Constant(I1, 1)))
        if expr.op == "~":
            return TV(self.builder.xor(operand.value, Constant(operand.type, -1)),
                      operand.unsigned)
        raise CodegenError(f"line {expr.line}: unsupported unary '{expr.op}'")

    def gen_assign(self, expr: ast.Assign) -> TV:
        addr, unsigned = self.gen_address(expr.target)
        target_type = addr.type.pointee
        value = self.gen_expr(expr.value)
        if expr.op != "=":
            current = TV(self.builder.load(addr), unsigned)
            binop = ast.BinOp(line=expr.line, op=expr.op[:-1], lhs=None, rhs=None)
            common = self.common_type(current, value)
            lhs_c = self.convert(current, common)
            rhs_c = self.convert(value, common)
            if binop.op in ("==", "!="):  # impossible, defensive
                raise CodegenError("bad compound assignment")
            opcode = self._arith_opcode(binop.op, common, unsigned or value.unsigned, expr.line)
            value = TV(self.builder.binop(opcode, lhs_c.value, rhs_c.value), unsigned)
        value = self.convert(value, target_type)
        self.builder.store(value.value, addr)
        return TV(value.value, unsigned)

    def gen_incdec(self, expr: ast.IncDec) -> TV:
        addr, unsigned = self.gen_address(expr.target)
        target_type = addr.type.pointee
        old = self.builder.load(addr)
        one = Constant(target_type, 1)
        if target_type.is_float:
            opcode = "fadd" if expr.op == "++" else "fsub"
        else:
            opcode = "add" if expr.op == "++" else "sub"
        new = self.builder.binop(opcode, old, one)
        self.builder.store(new, addr)
        return TV(new if expr.prefix else old, unsigned)

    def gen_call(self, expr: ast.CallExpr) -> TV:
        args = [self.gen_expr(a) for a in expr.args]
        if expr.callee in _MATH_BUILTINS:
            intrinsic = _MATH_BUILTINS[expr.callee]
            arg_type = FLOAT if expr.callee.endswith("f") else DOUBLE
            converted = [self.convert(a, arg_type).value for a in args]
            return TV(self.builder.call(intrinsic, arg_type, converted))
        if expr.callee in ("min", "max"):
            # Integer min/max lowered to compare+select (a MUX in hardware).
            lhs, rhs = args
            common = self.common_type(lhs, rhs)
            lhs, rhs = self.convert(lhs, common), self.convert(rhs, common)
            op = "<" if expr.callee == "min" else ">"
            cond = self.gen_comparison(op, lhs, rhs)
            return TV(self.builder.select(cond.value, lhs.value, rhs.value),
                      lhs.unsigned or rhs.unsigned)
        if expr.callee not in self.signatures:
            raise CodegenError(f"line {expr.line}: call to unknown function '{expr.callee}'")
        return_ct, param_types = self.signatures[expr.callee]
        if len(param_types) != len(args):
            raise CodegenError(
                f"line {expr.line}: '{expr.callee}' expects {len(param_types)} args"
            )
        converted = [self.convert(a, t).value for a, t in zip(args, param_types)]
        return TV(self.builder.call(expr.callee, return_ct, converted))

    # -- conversions -------------------------------------------------------------
    def to_bool(self, value: TV) -> Value:
        if value.type == I1:
            return value.value
        if value.type.is_float:
            return self.builder.fcmp("une", value.value, Constant(value.type, 0.0))
        if value.type.is_pointer:
            return self.builder.icmp("ne", value.value, Constant(value.type, 0))
        return self.builder.icmp("ne", value.value, Constant(value.type, 0))

    def gen_condition(self, expr: ast.Expr) -> Value:
        return self.to_bool(self.gen_expr(expr))

    def common_type(self, lhs: TV, rhs: TV) -> Type:
        a, b = lhs.type, rhs.type
        if a == b:
            return a
        if a.is_pointer:
            return a
        if b.is_pointer:
            return b
        if a.is_float or b.is_float:
            if a == DOUBLE or b == DOUBLE:
                return DOUBLE
            return FLOAT
        # Integer promotion: at least i32, wider width wins.
        width = max(32, a.bit_width(), b.bit_width())
        return IntType(width)

    def convert(self, value: TV, target: Type) -> TV:
        source = value.type
        if source == target:
            return value
        v = value.value
        if source.is_int and target.is_int:
            if target.bit_width() > source.bit_width():
                opcode = "zext" if (value.unsigned or source == I1) else "sext"
                return TV(self.builder.cast(opcode, v, target), value.unsigned)
            return TV(self.builder.trunc(v, target), value.unsigned)
        if source.is_int and target.is_float:
            if isinstance(v, Constant):
                return TV(Constant(target, float(v.signed_value())), False)
            opcode = "uitofp" if value.unsigned or source == I1 else "sitofp"
            return TV(self.builder.cast(opcode, v, target))
        if source.is_float and target.is_int:
            opcode = "fptoui" if value.unsigned else "fptosi"
            return TV(self.builder.cast(opcode, v, target), value.unsigned)
        if source.is_float and target.is_float:
            if isinstance(v, Constant):
                return TV(Constant(target, v.value))
            if target.bit_width() > source.bit_width():
                return TV(self.builder.fpext(v, target))
            return TV(self.builder.fptrunc(v, target))
        if source.is_pointer and target.is_pointer:
            return TV(self.builder.bitcast(v, target), value.unsigned)
        raise CodegenError(f"cannot convert {source} to {target}")


def lower_to_ir(unit: ast.TranslationUnit, module_name: str = "module") -> Module:
    """Lower a parsed translation unit to (unoptimized) IR."""
    module = Module(module_name)
    signatures = {
        f.name: (ir_type_of(f.return_type), [ir_type_of(p.type) for p in f.params])
        for f in unit.functions
    }
    for fdef in unit.functions:
        _FunctionCodegen(module, fdef, signatures).run()
    verify_module(module)
    return module


def compile_c(
    source: str,
    module_name: str = "module",
    optimize: bool = True,
    unroll_factor: int = 1,
    opt_level: int = 1,
    passes=None,
) -> Module:
    """Compile mini-C source to optimized IR (the full "clang" flow).

    ``opt_level=2`` additionally runs LICM and CSE (see
    `repro.passes.standard_pipeline`).  An explicit ``passes`` spec
    (a string like ``"mem2reg,unroll:4,constfold,dce"`` or a
    `PipelineSpec`) overrides the ``optimize``/``opt_level``/
    ``unroll_factor`` knobs entirely.

    This is the low-level, uncached compile; `repro.build.build_module`
    is the staged, artifact-cached entry point consumers should prefer.
    """
    from repro.passes.pipeline import PipelineSpec

    module = lower_to_ir(parse_c(source), module_name)
    if passes is not None:
        spec = PipelineSpec.parse(passes)
    elif optimize:
        spec = PipelineSpec.standard(opt_level=opt_level,
                                     unroll_factor=unroll_factor)
    else:
        spec = PipelineSpec()
    if spec:
        spec.to_pass_manager(module=module).run(module)
        verify_module(module)
    return module
