"""End-to-end engine benchmark harness (``repro bench``).

Runs a fixed set of workloads through *both* execution backends —
the dynamic event-queue engine and the graph-compiled fast path
(`repro.engine`) — and records wall-clock, simulated cycles, simulation
throughput (cycles/second), and the graph/dynamic speedup ratio per
workload, plus a byte-identity check of the two `RunResult`s.  The
record lands in a JSON file at the repo root (``BENCH_6.json`` by
default) so CI can archive per-PR performance and fail the build when
the fast path regresses below the dynamic engine.

Methodology: build and data staging happen *outside* the timed region
(they are identical for both engines), and the graph lowering is
pre-warmed outside the timer too — it is a build-pipeline stage
(`BuildPipeline.graph`), amortized across runs by the artifact store
exactly like the frontend compile.  The timed region is `SimContext.run`
alone: the event loop (or graph scheduler) plus stats collection.  Each
engine is measured ``repeats`` times (fresh context per repetition,
since a context runs once) and the *minimum* wall-clock is reported —
the standard way to strip scheduler/allocator noise from a
deterministic computation.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Optional

#: Default benchmark set: the paper's headline kernels, covering dense
#: compute (gemm), high-fanout stencils (stencil3d), control-heavy
#: butterflies (fft), and irregular indexed access (spmv).
BENCH_WORKLOADS = ("gemm", "stencil3d", "fft", "spmv")


def _measure(name: str, unroll: int, seed: int, engine: str,
             repeats: int = 3) -> dict:
    """Best-of-``repeats`` timed runs of ``name`` on ``engine``.

    The simulation is deterministic, so every repetition produces the
    same result; the minimum wall-clock is the noise-free estimate.
    """
    from repro.exec.context import SimContext
    from repro.workloads import get_workload

    wall_s = float("inf")
    result = None
    engine_used = None
    fallback_reason = None
    for _ in range(max(1, repeats)):
        ctx = SimContext(get_workload(name), seed=seed, verify=False,
                         engine=engine, memory="spm", unroll_factor=unroll)
        acc = ctx.build()
        ctx.stage()
        if engine == "graph":
            # Lowering is a build stage, not a run cost (see docstring).
            acc._compiled_graph()
        start = time.perf_counter()
        result = ctx.run()
        wall_s = min(wall_s, time.perf_counter() - start)
        engine_used = ctx.engine_used
        fallback_reason = ctx.fallback_reason
    return {
        "wall_s": wall_s,
        "cycles": result.cycles,
        "cycles_per_s": result.cycles / wall_s if wall_s > 0 else 0.0,
        "engine_used": engine_used,
        "fallback_reason": fallback_reason,
        "result": result.to_dict(),
    }


def run_bench(
    workloads=None,
    unroll: int = 4,
    seed: int = 7,
    quick: bool = False,
    repeats: int = 3,
    serve_jobs: int = 0,
    sweep_ports=(1, 2, 4, 8),
) -> dict:
    """Benchmark every workload on both engines; return the JSON payload.

    ``quick`` restricts the set to its first workload (gemm by default)
    and drops to 2 repetitions — the CI smoke configuration.
    ``serve_jobs > 0`` additionally measures the job-server dedup layer
    (`repro.serve.bench`): N duplicate run jobs submitted concurrently
    vs N distinct ones, recorded under a ``serve`` section.
    ``sweep_ports`` drives the incremental re-simulation bench
    (`run_sweep_bench`), recorded under ``sweep``; empty/None skips it.
    """
    names = list(workloads) if workloads else list(BENCH_WORKLOADS)
    if quick:
        names = names[:1]
        repeats = min(repeats, 2)
        serve_jobs = min(serve_jobs, 5)
        if sweep_ports:
            sweep_ports = list(sweep_ports)[:3]
    payload: dict = {
        "bench": "engine-comparison",
        "unroll": unroll,
        "seed": seed,
        "quick": quick,
        "repeats": repeats,
        "workloads": {},
    }
    for name in names:
        dynamic = _measure(name, unroll, seed, "dynamic", repeats)
        graph = _measure(name, unroll, seed, "graph", repeats)
        identical = dynamic["result"] == graph["result"]
        speedup = (dynamic["wall_s"] / graph["wall_s"]
                   if graph["wall_s"] > 0 else 0.0)
        payload["workloads"][name] = {
            "cycles": dynamic["cycles"],
            "dynamic_wall_s": round(dynamic["wall_s"], 6),
            "graph_wall_s": round(graph["wall_s"], 6),
            "dynamic_cycles_per_s": round(dynamic["cycles_per_s"], 1),
            "graph_cycles_per_s": round(graph["cycles_per_s"], 1),
            "speedup": round(speedup, 3),
            "identical_stats": identical,
            "graph_engine_used": graph["engine_used"],
            "graph_fallback_reason": graph["fallback_reason"],
        }
    if sweep_ports:
        payload["sweep"] = run_sweep_bench(workload=names[0],
                                           ports=sweep_ports,
                                           unroll=unroll, seed=seed)
    if serve_jobs > 0:
        from repro.serve.bench import run_serve_bench

        payload["serve"] = run_serve_bench(jobs=serve_jobs)
    return payload


def run_sweep_bench(
    workload: str = "gemm",
    ports=(1, 2, 4, 8),
    unroll: int = 4,
    seed: int = 7,
) -> dict:
    """Sweep-level incremental re-simulation benchmark.

    Times one memory-only port sweep (every point shares a datapath key;
    only SPM/queue ports vary) three ways: the dynamic engine (the
    sweep default), the graph engine, and retime mode — one full graph
    run capturing a `ScheduleTrace`, every other point re-timed from it.
    Rows must be byte-identical across all three; the headline number is
    the aggregate wall-clock ratio of the baseline sweeps over the
    retimed one.
    """
    from repro.core.config import DeviceConfig
    from repro.exec.parallel import ParallelSweep
    from repro.workloads import get_workload

    wl = get_workload(workload)
    grid = {"ports": [int(p) for p in ports]}

    def configure(params):
        p = params["ports"]
        return dict(
            config=DeviceConfig(read_ports=p, write_ports=max(1, p // 2)),
            memory="spm", spm_bytes=1 << 16, spm_read_ports=p,
            unroll_factor=unroll,
        )

    def timed(engine: str, retime: bool = False):
        sweep = ParallelSweep(verify=False, engine=engine, retime=retime)
        start = time.perf_counter()
        points = sweep.run(wl, grid, configure, seed=seed)
        return time.perf_counter() - start, points, sweep

    dyn_s, dyn_pts, _ = timed("dynamic")
    graph_s, graph_pts, _ = timed("graph")
    retime_s, retime_pts, sweep = timed("graph", retime=True)

    def rows(points):
        return json.dumps([p.result.to_dict() for p in points],
                          sort_keys=True)

    identical = rows(dyn_pts) == rows(graph_pts) == rows(retime_pts)
    return {
        "workload": workload,
        "ports": grid["ports"],
        "unroll": unroll,
        "points": len(retime_pts),
        "dynamic_wall_s": round(dyn_s, 6),
        "graph_wall_s": round(graph_s, 6),
        "retime_wall_s": round(retime_s, 6),
        "speedup_vs_dynamic": round(dyn_s / retime_s, 3) if retime_s else 0.0,
        "speedup_vs_graph": round(graph_s / retime_s, 3) if retime_s else 0.0,
        "identical_rows": identical,
        "retimed_points": sweep.retimed_points,
        "trace_captures": sweep.trace_captures,
        "datapath_groups": sweep.datapath_groups,
    }


def write_bench(payload: dict, out: str) -> Path:
    path = Path(out)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def check_bench(payload: dict, min_speedup: float = 0.0,
                gate_workload: Optional[str] = None,
                min_sweep_speedup: float = 0.0) -> list[str]:
    """CI gate: the failures in a bench payload (empty list = pass).

    Every workload must produce byte-identical stats and actually run on
    the graph engine; ``min_speedup`` additionally requires the
    graph/dynamic ratio on ``gate_workload`` (default: the first
    measured workload) to reach that threshold.  When the payload
    carries a ``sweep`` section (incremental re-simulation), its rows
    must be byte-identical across engines and ``min_sweep_speedup``
    gates the retime-vs-dynamic aggregate ratio.
    """
    failures: list[str] = []
    sweep = payload.get("sweep")
    if sweep is not None:
        if not sweep.get("identical_rows"):
            failures.append("sweep: retimed rows differ from full "
                            "simulation")
        if (min_sweep_speedup > 0.0
                and sweep.get("speedup_vs_dynamic", 0.0) < min_sweep_speedup):
            failures.append(
                f"sweep: retime speedup {sweep.get('speedup_vs_dynamic')}x "
                f"below the {min_sweep_speedup}x floor"
            )
    rows = payload.get("workloads", {})
    for name, row in rows.items():
        if not row.get("identical_stats"):
            failures.append(f"{name}: graph stats differ from dynamic")
        if row.get("graph_engine_used") != "graph":
            failures.append(
                f"{name}: graph request fell back to "
                f"{row.get('graph_engine_used')} "
                f"({row.get('graph_fallback_reason')})"
            )
    if min_speedup > 0.0 and rows:
        gate = gate_workload or next(iter(rows))
        row = rows.get(gate)
        if row is None:
            failures.append(f"gate workload '{gate}' was not measured")
        elif row["speedup"] < min_speedup:
            failures.append(
                f"{gate}: graph speedup {row['speedup']}x below the "
                f"{min_speedup}x floor"
            )
    return failures
