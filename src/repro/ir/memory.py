"""Flat byte-addressable memory image.

This is the *functional* store of the whole platform.  Device models
(DRAM, SPMs) each own a :class:`MemoryImage` (or a window into one);
the interpreter and the accelerator runtime read and write real bytes
here, which is what makes the simulation "execute-in-execute".

Includes a tiny bump allocator so workloads and tests can place arrays
without managing addresses by hand.
"""

from __future__ import annotations

import numpy as np

from repro.ir.semantics import bytes_to_value, value_to_bytes
from repro.ir.types import Type


class MemoryError_(RuntimeError):
    """Out-of-range access on a memory image."""


class MemoryImage:
    """A contiguous byte store starting at ``base``."""

    def __init__(self, size: int, base: int = 0, name: str = "mem") -> None:
        if size <= 0:
            raise ValueError(f"memory size must be positive, got {size}")
        self.name = name
        self.base = base
        self.size = size
        self._data = bytearray(size)
        self._alloc_ptr = base

    # -- raw byte access ---------------------------------------------------
    def _check(self, addr: int, size: int) -> int:
        offset = addr - self.base
        if offset < 0 or offset + size > self.size:
            raise MemoryError_(
                f"{self.name}: access [{addr:#x}, {addr + size:#x}) outside "
                f"[{self.base:#x}, {self.base + self.size:#x})"
            )
        return offset

    def contains(self, addr: int, size: int = 1) -> bool:
        return self.base <= addr and addr + size <= self.base + self.size

    def read(self, addr: int, size: int) -> bytes:
        offset = self._check(addr, size)
        return bytes(self._data[offset : offset + size])

    def write(self, addr: int, data: bytes) -> None:
        offset = self._check(addr, len(data))
        self._data[offset : offset + len(data)] = data

    def fill(self, value: int = 0) -> None:
        self._data[:] = bytes([value & 0xFF]) * self.size

    # -- typed access --------------------------------------------------------
    def read_value(self, addr: int, type_: Type):
        return bytes_to_value(self.read(addr, type_.size_bytes()), type_)

    def write_value(self, addr: int, value, type_: Type) -> None:
        self.write(addr, value_to_bytes(value, type_))

    # -- numpy array views ------------------------------------------------------
    def write_array(self, addr: int, array: np.ndarray) -> None:
        self.write(addr, array.tobytes())

    def read_array(self, addr: int, dtype, count: int) -> np.ndarray:
        dtype = np.dtype(dtype)
        raw = self.read(addr, dtype.itemsize * count)
        return np.frombuffer(raw, dtype=dtype).copy()

    # -- allocation ----------------------------------------------------------------
    def alloc(self, size: int, align: int = 8) -> int:
        """Bump-allocate ``size`` bytes, returning the address."""
        addr = self._alloc_ptr
        if align > 1 and addr % align:
            addr += align - addr % align
        if addr + size > self.base + self.size:
            raise MemoryError_(f"{self.name}: allocator exhausted")
        self._alloc_ptr = addr + size
        return addr

    def alloc_array(self, array: np.ndarray, align: int = 8) -> int:
        addr = self.alloc(array.nbytes, align)
        self.write_array(addr, array)
        return addr

    def reset_allocator(self) -> None:
        self._alloc_ptr = self.base

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MemoryImage {self.name} base={self.base:#x} size={self.size}>"
