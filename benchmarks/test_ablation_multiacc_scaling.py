"""Ablation — multi-accelerator scaling (extension of Sec. III-D2).

The paper argues accelerator clusters "scale better with a larger
number of accelerators than other pre-RTL simulators" because control
lives in the devices, not in re-simulated traces.  This extension
measures, for K parallel accelerators in one cluster (K = 1, 2, 4, 8):
end-to-end time, host driver operations, and simulator wall-clock.

Expected shape: end-to-end time grows far slower than K (the
accelerators genuinely run concurrently), host ops grow linearly (the
host must program each device once), and simulation wall-clock grows
roughly linearly in total simulated work — not in configuration count.
"""

import time

import numpy as np

from conftest import SEED, save_and_print
from repro.core.mmr import ARGS_OFFSET, CTRL_IRQ_EN, CTRL_START
from repro.dse import format_table
from repro.frontend import compile_c
from repro.hw.default_profile import default_profile
from repro.system.soc import build_soc

KERNEL = """
void axpy(double x[64], double y[64]) {
  for (int i = 0; i < 64; i++) { y[i] = 3.0 * x[i] + y[i]; }
}
"""


def _run_cluster(k):
    module = compile_c(KERNEL, "axpy")
    soc = build_soc(dram_size=1 << 20)
    cluster = soc.add_cluster("cl")
    units = []
    for i in range(k):
        unit = cluster.add_accelerator(
            f"acc{i}", module, "axpy", default_profile(), private_spm_bytes=1 << 11
        )
        unit.comm.connect_irq(soc.irq.line(i))
        units.append(unit)
    soc.finalize()

    rng = np.random.default_rng(SEED)
    x = rng.uniform(-1, 1, 64)
    y = rng.uniform(-1, 1, 64)
    for unit in units:
        spm = unit.private_spm
        spm.image.write_array(spm.range.start, x)
        spm.image.write_array(spm.range.start + 512, y)

    host = soc.host

    def driver(h):
        for unit in units:  # program + launch every device...
            spm = unit.private_spm.range.start
            mmr = unit.comm.mmr.range.start
            yield h.write_mmr(mmr + ARGS_OFFSET + 0, spm)
            yield h.write_mmr(mmr + ARGS_OFFSET + 8, spm + 512)
            yield h.write_mmr(mmr, CTRL_START | CTRL_IRQ_EN)
        for i in range(k):  # ...then collect every completion
            yield h.wait_irq(i)

    wall0 = time.perf_counter()
    host.run_driver(driver(host))
    cause = soc.run(max_ticks=10_000_000_000)
    wall = time.perf_counter() - wall0
    assert host.finished, cause
    for unit in units:
        spm = unit.private_spm
        out = spm.image.read_array(spm.range.start + 512, np.float64, 64)
        assert np.allclose(out, 3.0 * x + y)
    report = None
    for unit in units:
        unit_report = unit.power_report()
        report = unit_report if report is None else report.merged(unit_report)
    return {
        "k": k,
        "end_to_end_us": host.finish_tick / 1e6,
        "host_ops": int(host.stat_ops.value()),
        "cluster_power_mw": report.total_mw,
        "sim_wall_s": wall,
    }


def test_multiacc_scaling(benchmark):
    rows = benchmark.pedantic(
        lambda: [_run_cluster(k) for k in (1, 2, 4, 8)], rounds=1, iterations=1
    )
    save_and_print(
        "ablation_multiacc_scaling",
        format_table(rows, title="Ablation: K parallel accelerators in one cluster",
                     float_fmt="{:.3f}"),
    )
    by_k = {r["k"]: r for r in rows}
    # Concurrency: 8 accelerators finish in far less than 8x the time of 1.
    assert by_k[8]["end_to_end_us"] < 3.0 * by_k[1]["end_to_end_us"]
    # Host control work is linear in K (one programming sequence each).
    assert by_k[8]["host_ops"] == 8 * by_k[1]["host_ops"]
    # Cluster power aggregates across members.
    assert by_k[8]["cluster_power_mw"] > by_k[1]["cluster_power_mw"]
