"""SSE resume: `id:` lines, Last-Event-ID, and client reconnection.

The unit tests fake `_event_stream` to script exact drop scenarios;
the integration tests run a real server and sever a live connection,
asserting the stream comes back with no event missed or duplicated.
"""

import pytest

from repro.serve import ServeClient, ServeError, start_server_thread
from repro.serve.jobs import JobState

RUN_SPEC = {"workload": "gemm_dse", "ports": 2, "unroll": 1, "seed": 7}


# ----------------------------------------------------------------------
# Unit: scripted streams
# ----------------------------------------------------------------------
class ScriptedClient(ServeClient):
    """A ServeClient whose streams follow a script instead of a socket.

    ``script`` is a list of per-connection instructions: each entry is
    ``(events, exc)`` — yield the events, then raise ``exc`` (or close
    cleanly when None).  ``states`` feeds `job()` one state per call.
    """

    def __init__(self, script, states):
        super().__init__(port=1)
        self.script = list(script)
        self.states = list(states)
        self.stream_calls = []

    def _event_stream(self, job_id, last_seq=None):
        self.stream_calls.append(last_seq)
        events, exc = self.script.pop(0)
        yield from events
        if exc is not None:
            raise exc

    def job(self, job_id):
        return {"state": self.states.pop(0)}


def ev(seq, name="point"):
    return {"seq": seq, "event": name}


def test_reconnect_resumes_from_last_seen_seq():
    client = ScriptedClient(
        script=[([ev(0), ev(1)], ConnectionResetError()),
                ([ev(2), ev(3, "done")], None)],
        states=[JobState.DONE],
    )
    events = list(client.events("j0", reconnect_delay_s=0.0))
    assert [e["seq"] for e in events] == [0, 1, 2, 3]
    # Second connection carried the resume point.
    assert client.stream_calls == [None, 1]


def test_clean_close_of_active_job_reconnects():
    # The server may close a stream early (drain/restart) without the
    # job being done — the client must double-check and reconnect.
    client = ScriptedClient(
        script=[([ev(0)], None), ([ev(1, "done")], None)],
        states=[JobState.RUNNING, JobState.DONE],
    )
    events = list(client.events("j0", reconnect_delay_s=0.0))
    assert [e["seq"] for e in events] == [0, 1]
    assert client.stream_calls == [None, 0]


def test_reconnect_false_stops_at_first_drop():
    client = ScriptedClient(
        script=[([ev(0)], ConnectionResetError())],
        states=[],
    )
    events = list(client.events("j0", reconnect=False))
    assert [e["seq"] for e in events] == [0]
    assert client.stream_calls == [None]


def test_reconnect_budget_exhausts_with_error():
    client = ScriptedClient(
        script=[([], ConnectionResetError()) for __ in range(4)],
        states=[],
    )
    with pytest.raises(ConnectionError, match="reconnects failed"):
        list(client.events("j0", max_reconnects=2, reconnect_delay_s=0.0))
    assert len(client.stream_calls) == 3  # initial + 2 retries


def test_received_events_reset_the_reconnect_budget():
    # Three drops, but each connection delivers progress — so a budget
    # of 1 consecutive reconnect survives all of them.
    client = ScriptedClient(
        script=[([ev(0)], ConnectionResetError()),
                ([ev(1)], ConnectionResetError()),
                ([ev(2)], ConnectionResetError()),
                ([ev(3, "done")], None)],
        states=[JobState.DONE],
    )
    events = list(client.events("j0", max_reconnects=1,
                                reconnect_delay_s=0.0))
    assert [e["seq"] for e in events] == [0, 1, 2, 3]


def test_http_errors_propagate_not_retried():
    def explode(job_id, last_seq=None):
        raise ServeError(404, {"error": "no such job"})
        yield  # pragma: no cover - makes this a generator

    client = ScriptedClient(script=[], states=[])
    client._event_stream = explode
    with pytest.raises(ServeError):
        list(client.events("j404"))


# ----------------------------------------------------------------------
# Integration: real server, real drops
# ----------------------------------------------------------------------
@pytest.fixture
def server():
    with start_server_thread(workers=1) as handle:
        yield handle


@pytest.fixture
def client(server):
    return ServeClient(port=server.port)


def test_server_honors_last_event_id(client):
    job = client.wait(client.submit("run", dict(RUN_SPEC))["id"])
    full = list(client._event_stream(job["id"]))
    assert [e["seq"] for e in full] == list(range(len(full)))
    resumed = list(client._event_stream(job["id"], last_seq=1))
    assert resumed == full[2:]


def test_dropped_connection_resumes_without_loss_or_dup(client):
    job = client.wait(client.submit("run", dict(RUN_SPEC))["id"])
    real_stream = client._event_stream
    state = {"dropped": False}

    def flaky(job_id, last_seq=None):
        inner = real_stream(job_id, last_seq)
        for event in inner:
            yield event
            if not state["dropped"]:
                state["dropped"] = True
                inner.close()
                raise ConnectionResetError("mid-stream drop")

    client._event_stream = flaky
    events = list(client.events(job["id"], reconnect_delay_s=0.01))
    assert state["dropped"], "the test never exercised the drop"
    seqs = [e["seq"] for e in events]
    assert seqs == list(range(len(seqs))), "events lost or duplicated"
    assert events[0]["event"] == "queued"
    assert events[-1]["event"] == JobState.DONE
