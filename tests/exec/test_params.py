"""The datapath/memory parameter partition (repro.exec.params).

The soundness of incremental re-simulation hangs on one invariant:
every knob a user can turn is *deliberately* classified.  A parameter
on the memory side may only change timing; one on the datapath side
forces a fresh schedule capture; an execution parameter must not affect
results at all.  The property tests here make adding an accelerator
kwarg without classifying it a test failure, not a silent soundness
hazard.
"""

import inspect

from repro.core.config import DeviceConfig
from repro.exec.cache import run_cache_key, split_cache_key
from repro.exec.params import (
    CONFIG_DATAPATH_FIELDS,
    CONFIG_MEMORY_FIELDS,
    DATAPATH_PARAMS,
    EXECUTION_PARAMS,
    MEMORY_PARAMS,
    classify_param,
    split_acc_kwargs,
    split_device_config,
)
from repro.system.soc import StandaloneAccelerator
from repro.workloads import get_workload

GEMM = get_workload("gemm")


# -- the partition covers the accelerator surface, exactly once ---------
def test_every_accelerator_kwarg_is_classified_exactly_once():
    sig = inspect.signature(StandaloneAccelerator.__init__)
    knobs = {name for name in sig.parameters
             if name not in ("self", "source", "func_name")}
    classified = DATAPATH_PARAMS | MEMORY_PARAMS | EXECUTION_PARAMS
    unclassified = knobs - classified
    assert not unclassified, (
        f"StandaloneAccelerator kwargs missing from the partition: "
        f"{sorted(unclassified)} — declare each in repro.exec.params")
    assert not (DATAPATH_PARAMS & MEMORY_PARAMS)
    assert not (DATAPATH_PARAMS & EXECUTION_PARAMS)
    assert not (MEMORY_PARAMS & EXECUTION_PARAMS)


def test_every_device_config_field_is_classified_exactly_once():
    fields = set(DeviceConfig().to_dict())
    classified = CONFIG_DATAPATH_FIELDS | CONFIG_MEMORY_FIELDS
    assert fields <= classified, (
        f"DeviceConfig fields missing from the partition: "
        f"{sorted(fields - classified)}")
    assert not (CONFIG_DATAPATH_FIELDS & CONFIG_MEMORY_FIELDS)


def test_classify_param_sides():
    assert classify_param("spm_read_ports") == "memory"
    assert classify_param("unroll_factor") == "datapath"
    assert classify_param("artifact_store") == "execution"
    assert classify_param("no_such_knob") is None


# -- splitting behaviour ------------------------------------------------
def test_split_acc_kwargs_routes_config_fields_to_both_sides():
    cfg = DeviceConfig(read_ports=4, clock_freq_hz=2e8)
    datapath, memory, unknown = split_acc_kwargs(
        dict(config=cfg, spm_bytes=1 << 12, unroll_factor=2,
             artifact_store=object()))
    assert datapath["config"]["clock_freq_hz"] == 2e8
    assert memory["config"]["read_ports"] == 4
    assert memory["spm_bytes"] == 1 << 12
    assert datapath["unroll_factor"] == 2
    assert "artifact_store" not in datapath and "artifact_store" not in memory
    assert unknown == []


def test_unclassified_kwargs_land_on_the_datapath_side():
    # Conservative default: an unknown knob forces a full simulation
    # (never an unsound trace reuse).
    datapath, memory, unknown = split_acc_kwargs(dict(burst=8))
    assert datapath["burst"] == 8
    assert "burst" not in memory
    assert unknown == ["burst"]


def test_split_device_config_partitions_every_field():
    fields = set(DeviceConfig().to_dict())
    datapath, memory = split_device_config(DeviceConfig())
    assert set(datapath) | set(memory) == fields
    assert not set(datapath) & set(memory)
    assert set(memory) <= CONFIG_MEMORY_FIELDS


# -- the two-level cache key --------------------------------------------
def _keys(**kwargs):
    return split_cache_key(GEMM.source, GEMM.func_name, seed=7, **kwargs)


def test_memory_only_change_keeps_the_datapath_key():
    base_dk, base_mk = _keys(memory="spm", spm_read_ports=2)
    dk, mk = _keys(memory="spm", spm_read_ports=4)
    assert dk == base_dk
    assert mk != base_mk


def test_datapath_change_moves_the_datapath_key():
    base_dk, _ = _keys(memory="spm", unroll_factor=1)
    dk, _ = _keys(memory="spm", unroll_factor=4)
    assert dk != base_dk


def test_config_fields_split_across_the_key_pair():
    base_dk, base_mk = _keys(config=DeviceConfig())
    dk, mk = _keys(config=DeviceConfig(read_ports=8))
    assert dk == base_dk and mk != base_mk  # memory-side config field
    dk, mk = _keys(config=DeviceConfig(clock_freq_hz=2e8))
    assert dk != base_dk  # datapath-side config field


def test_flat_key_is_a_digest_of_the_split_pair():
    kwargs = dict(memory="spm", spm_read_ports=4, unroll_factor=2)
    flat_a = run_cache_key(GEMM.source, GEMM.func_name, seed=7, **kwargs)
    flat_b = run_cache_key(GEMM.source, GEMM.func_name, seed=7, **kwargs)
    assert flat_a == flat_b
    other = run_cache_key(GEMM.source, GEMM.func_name, seed=7,
                          memory="spm", spm_read_ports=2, unroll_factor=2)
    assert flat_a != other
