"""Stream buffers, stream ports, and stream DMAs."""

import pytest

from repro.mem.dram import DRAM
from repro.mem.stream_buffer import StreamBuffer
from repro.mem.stream_port import StreamPort
from repro.mem.dma import StreamDMA
from repro.mem.xbar import Crossbar
from repro.sim.packet import read_packet, write_packet
from repro.sim.ports import MasterPort


def test_fifo_order(system):
    buf = StreamBuffer("b", system, capacity_tokens=4)
    assert buf.try_push(b"\x01" * 8)
    assert buf.try_push(b"\x02" * 8)
    assert buf.try_pop() == b"\x01" * 8
    assert buf.try_pop() == b"\x02" * 8
    assert buf.try_pop() is None


def test_capacity_backpressure(system):
    buf = StreamBuffer("b", system, capacity_tokens=2)
    assert buf.try_push(bytes(8))
    assert buf.try_push(bytes(8))
    assert not buf.try_push(bytes(8))
    assert buf.stat_push_stalls.value() == 1
    assert buf.full


def test_token_size_enforced(system):
    buf = StreamBuffer("b", system, token_bytes=8)
    with pytest.raises(ValueError):
        buf.try_push(b"abc")


def test_space_notification(system):
    buf = StreamBuffer("b", system, capacity_tokens=1)
    buf.try_push(bytes(8))
    woken = []
    buf.on_space(lambda: woken.append(system.cur_tick))
    buf.try_pop()
    system.run()
    assert len(woken) == 1


def test_data_notification(system):
    buf = StreamBuffer("b", system, capacity_tokens=1)
    woken = []
    buf.on_data(lambda: woken.append(1))
    buf.try_push(bytes(8))
    system.run()
    assert woken == [1]


def test_max_occupancy_stat(system):
    buf = StreamBuffer("b", system, capacity_tokens=8)
    for __ in range(5):
        buf.try_push(bytes(8))
    buf.try_pop()
    assert buf.stat_max_occupancy.value() == 5


def test_stream_port_read_blocks_until_data(system):
    buf = StreamBuffer("b", system, capacity_tokens=4)
    port = StreamPort("sp", system, buf, base=0x9000_0000)
    responses = []
    master = MasterPort("m", recv_timing_resp=responses.append)
    master.bind(port.port)
    master.send_timing_req(read_packet(0x9000_0000, 8))
    system.run()
    assert responses == []  # empty FIFO: response withheld
    buf.try_push(b"\x2a" + bytes(7))
    system.run()
    assert len(responses) == 1
    assert responses[0].data[0] == 0x2A


def test_stream_port_preserves_order_with_multiple_outstanding(system):
    buf = StreamBuffer("b", system, capacity_tokens=8)
    port = StreamPort("sp", system, buf, base=0)
    responses = []
    master = MasterPort("m", recv_timing_resp=responses.append)
    master.bind(port.port)
    first = read_packet(0, 8)
    second = read_packet(0, 8)
    master.send_timing_req(first)
    master.send_timing_req(second)
    buf.try_push(bytes([1]) * 8)
    buf.try_push(bytes([2]) * 8)
    system.run()
    by_id = {r.pkt_id: r for r in responses}
    assert by_id[first.pkt_id].data[0] == 1
    assert by_id[second.pkt_id].data[0] == 2


def test_stream_port_write_pushes(system):
    buf = StreamBuffer("b", system, capacity_tokens=2)
    port = StreamPort("sp", system, buf, base=0)
    responses = []
    master = MasterPort("m", recv_timing_resp=responses.append)
    master.bind(port.port)
    master.send_timing_req(write_packet(0, b"\x07" * 8))
    system.run()
    assert buf.occupancy == 1
    assert buf.try_pop() == b"\x07" * 8


def test_stream_dma_mem_to_stream_and_back(system):
    xbar = Crossbar("xbar", system)
    dram = DRAM("dram", system, base=0x8000_0000, size=1 << 14)
    xbar.attach_slave(dram.port, dram.range)
    buf = StreamBuffer("b", system, capacity_tokens=4)
    feeder = StreamDMA("feed", system, buf, "mem_to_stream")
    drainer = StreamDMA("drain", system, buf, "stream_to_mem")
    feeder.port.bind(xbar.slave_port("f"))
    drainer.port.bind(xbar.slave_port("d"))
    payload = bytes(range(128))
    dram.image.write(0x8000_0000, payload)
    done = []
    feeder.start(0x8000_0000, 16)
    drainer.start(0x8000_1000, 16, on_done=lambda: done.append(1))
    system.run()
    assert done
    assert dram.image.read(0x8000_1000, 128) == payload
    assert feeder.stat_tokens.value() == 16
