"""The asyncio HTTP/JSON front door (``repro serve``).

Stdlib-only by design: requests are parsed directly off an
``asyncio.start_server`` stream (request line, headers, Content-Length
body), responses are JSON with ``Connection: close``.  That is all a
job API needs, keeps the dependency count at zero, and makes the whole
server one readable file.

Endpoints::

    POST   /v1/jobs             submit {"kind", "spec", "priority"}
    GET    /v1/jobs             list job summaries
    GET    /v1/jobs/{id}        one job, including its result payload
    GET    /v1/jobs/{id}/events live SSE progress stream (resumable:
                                honors Last-Event-ID, emits id: lines)
    DELETE /v1/jobs/{id}        cancel (queued jobs only)
    GET    /v1/stats            queue depth, cache/journal/breaker stats
    POST   /v1/queue/pause      stop handing out work (drain switch)
    POST   /v1/queue/resume     resume
    POST   /v1/shutdown         stop; ?mode=drain finishes running jobs
                                first (up to --drain-timeout), ?mode=now
                                (default) stops immediately
    GET    /healthz             liveness probe: ok | draining | degraded
    GET    /version             repro.__version__

Submissions dedup through the `JobQueue`; additionally, a run job whose
run-cache key is already in the cache completes *at submit time* — the
POST response itself carries ``state: done, cache_hit: true`` — which
is what makes repeated interactive DSE queries sub-second.

With ``--state-dir`` the server is *durable*: every submission, state
transition, and progress event is written ahead to
`repro.serve.journal.JobJournal`, and a restarted server replays it —
re-queueing the jobs that were queued/running at crash time and still
serving GET for terminal ones.  SIGTERM/SIGINT trigger the same
graceful drain as ``POST /v1/shutdown?mode=drain``.
"""

from __future__ import annotations

import asyncio
import json
import re
import threading
import time
from typing import Optional
from urllib.parse import parse_qs

from repro.exec.failures import FailureRecord
from repro.serve.jobs import (
    JOB_KINDS,
    CircuitBreaker,
    JobQueue,
    JobState,
)
from repro.serve.journal import JobJournal, recover_queue
from repro.serve.workers import (
    ServerState,
    SpecError,
    WorkerPool,
    job_dedup_key,
)

_JOB_PATH = re.compile(r"^/v1/jobs/([a-z0-9]+)(/events)?$")

#: How often the SSE stream checks a job's event log for news.
_SSE_POLL_S = 0.05

#: How often a drain re-checks whether running jobs have finished.
_DRAIN_POLL_S = 0.05


class HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        self.status = status
        self.message = message
        super().__init__(message)


_REASONS = {200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 409: "Conflict",
            500: "Internal Server Error", 503: "Service Unavailable"}


class JobServer:
    """One listening socket, one `JobQueue`, one `WorkerPool`.

    With ``state_dir`` set, also one `JobJournal`: the queue journals
    every mutation, and ``__init__`` replays whatever a previous
    process left behind *before* the workers start — so recovered jobs
    are first in line.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 2, run_cache=None, artifact_store=None,
                 verify: bool = True, state_dir=None,
                 drain_timeout: float = 30.0,
                 breaker_threshold: int = 5,
                 breaker_cooldown_s: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.verify = verify
        self.drain_timeout = float(drain_timeout)
        self.journal = (JobJournal(state_dir)
                        if state_dir is not None else None)
        self.queue = JobQueue(journal=self.journal)
        self.recovery: Optional[dict] = None
        if self.journal is not None:
            self.recovery = recover_queue(self.queue, self.journal)
        self.breaker = CircuitBreaker(threshold=breaker_threshold,
                                      cooldown_s=breaker_cooldown_s)
        self.state = ServerState(run_cache=run_cache,
                                 artifact_store=artifact_store,
                                 state_dir=state_dir)
        self.pool = WorkerPool(self.queue, self.state, workers=workers,
                               breaker=self.breaker)
        self.started_s = time.time()
        self.requests = 0
        self.draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()
        self._drain_task: Optional[asyncio.Task] = None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> int:
        """Bind, start workers; returns the actual port (ephemeral-safe)."""
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        await self.pool.start()
        return self.port

    async def serve_until_shutdown(self) -> None:
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        await self.pool.stop()
        if self.journal is not None:
            self.journal.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    def begin_drain(self) -> None:
        """Stop claiming work; finish running jobs (up to the drain
        timeout), snapshot the journal, then shut down.  Idempotent;
        must be called on the event loop (routes and signal handlers
        both are)."""
        if self.draining:
            return
        self.draining = True
        self.queue.pause()
        self._drain_task = asyncio.get_event_loop().create_task(self._drain())

    async def _drain(self) -> None:
        deadline = time.monotonic() + self.drain_timeout
        while self.queue.running() and time.monotonic() < deadline:
            await asyncio.sleep(_DRAIN_POLL_S)
        if self.journal is not None:
            # Final snapshot: recovery after a clean drain is O(1).
            self.journal.compact(self.queue)
        self._shutdown.set()

    # -- request plumbing ----------------------------------------------
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            method, path, query, headers, body = \
                await self._read_request(reader)
            self.requests += 1
            if path.endswith("/events"):
                await self._stream_events(writer, path, headers)
            else:
                status, payload = self._route(method, path, query, body)
                await self._respond(writer, status, payload)
        except HttpError as err:
            await self._respond(writer, err.status, {"error": err.message})
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request
        except Exception as exc:  # noqa: BLE001 - the server must survive
            try:
                await self._respond(writer, 500,
                                    {"error": f"{type(exc).__name__}: {exc}"})
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(reader) -> tuple[str, str, dict, dict, dict]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) < 2:
            raise HttpError(400, f"malformed request line: {request_line!r}")
        method = parts[0].upper()
        path, __, raw_query = parts[1].partition("?")
        query = {name: values[-1]
                 for name, values in parse_qs(raw_query).items()}
        headers: dict = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, __, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        body: dict = {}
        content_length = int(headers.get("content-length") or 0)
        if content_length:
            raw = await reader.readexactly(content_length)
            try:
                body = json.loads(raw)
            except ValueError:
                raise HttpError(400, "request body is not valid JSON")
            if not isinstance(body, dict):
                raise HttpError(400, "request body must be a JSON object")
        return method, path, query, headers, body

    @staticmethod
    async def _respond(writer, status: int, payload: dict) -> None:
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(blob)}\r\n"
                "Connection: close\r\n\r\n").encode("latin-1")
        writer.write(head + blob)
        await writer.drain()

    # -- routing -------------------------------------------------------
    def _route(self, method: str, path: str, query: dict,
               body: dict) -> tuple[int, dict]:
        if path == "/healthz" and method == "GET":
            return 200, self._healthz()
        if path == "/version" and method == "GET":
            import repro

            return 200, {"version": repro.__version__}
        if path == "/v1/stats" and method == "GET":
            return 200, self._stats()
        if path == "/v1/jobs" and method == "POST":
            return self._submit(body)
        if path == "/v1/jobs" and method == "GET":
            return 200, self._list_jobs()
        if path == "/v1/queue/pause" and method == "POST":
            self.queue.pause()
            return 200, {"paused": True}
        if path == "/v1/queue/resume" and method == "POST":
            self.queue.resume()
            return 200, {"paused": False}
        if path == "/v1/shutdown" and method == "POST":
            mode = query.get("mode") or body.get("mode") or "now"
            if mode == "drain":
                self.begin_drain()
                return 200, {"shutting_down": True, "mode": "drain",
                             "running": len(self.queue.running()),
                             "drain_timeout_s": self.drain_timeout}
            if mode != "now":
                raise HttpError(400, f"bad shutdown mode {mode!r} "
                                     "(expected now|drain)")
            self._shutdown.set()
            return 200, {"shutting_down": True, "mode": "now"}
        match = _JOB_PATH.match(path)
        if match and not match.group(2):
            job = self.queue.jobs.get(match.group(1))
            if job is None:
                raise HttpError(404, f"no such job: {match.group(1)}")
            if method == "GET":
                return 200, {"job": job.to_dict()}
            if method == "DELETE":
                before = job.state
                job = self.queue.cancel(job.id)
                if job.state != JobState.CANCELLED and before == job.state:
                    return 409, {"job": job.to_dict(include_result=False),
                                 "error": f"job is {job.state}, "
                                          "not cancellable"}
                return 200, {"job": job.to_dict(include_result=False)}
            raise HttpError(405, f"{method} not allowed here")
        raise HttpError(404, f"no route for {method} {path}")

    def _submit(self, body: dict) -> tuple[int, dict]:
        kind = body.get("kind")
        if kind not in JOB_KINDS:
            raise HttpError(400, f"bad kind {kind!r} "
                                 f"(expected one of {', '.join(JOB_KINDS)})")
        spec = body.get("spec")
        if not isinstance(spec, dict):
            raise HttpError(400, "spec must be a JSON object")
        if not self.verify:
            spec = dict(spec, verify=False)
        fallback_reasons: list = []
        key = job_dedup_key(kind, spec, on_fallback=fallback_reasons.append)
        job = self.queue.submit(kind, spec,
                                priority=int(body.get("priority", 0)),
                                dedup_key=key)
        if fallback_reasons:
            # The spec could not be keyed the content-addressed way —
            # say so on the job's own event log, so a silently
            # un-deduped submission is diagnosable after the fact.
            job.publish("dedup_fallback", reason=fallback_reasons[0])
        if job.deduped_of is not None:
            return 201, {"job": job.to_dict()}
        if kind == "run":
            cached = self._probe_run_cache(spec)
            if cached is not None:
                self.queue.finish_immediately(job, cached, cache_hit=True)
                return 201, {"job": job.to_dict()}
        # Breaker check comes last: followers and cached results serve
        # even when the key is open, and check() admits the half-open
        # probe as a side effect, so only jobs that would really queue
        # may ask.
        blocked = self.breaker.check(key)
        if blocked is not None:
            job.publish("circuit_open", **blocked)
            failure = FailureRecord(
                error_type="CircuitOpen",
                message=(f"circuit open after "
                         f"{blocked['consecutive_failures']} consecutive "
                         f"failures; retry in {blocked['retry_in_s']}s"),
                attempts=0,
                reason="circuit_open",
            )
            self.queue.fail_immediately(job, failure)
        return 201, {"job": job.to_dict()}

    def _probe_run_cache(self, spec: dict) -> Optional[dict]:
        """Submit-time fast path: an already-cached run completes now."""
        from repro.exec.cache import run_cache_key
        from repro.serve.workers import _spec_workload, run_spec_kwargs

        try:
            workload = _spec_workload(spec)
            key = run_cache_key(workload.source, workload.func_name,
                                seed=int(spec.get("seed", 7)),
                                **run_spec_kwargs(spec))
        except (SpecError, KeyError, TypeError, ValueError):
            return None  # unkeyable spec: just queue it
        cached = self.state.run_cache.get(key)
        return cached.to_dict() if cached is not None else None

    def _list_jobs(self) -> dict:
        return {"jobs": [job.to_dict(include_result=False)
                         for job in self.queue.jobs.values()]}

    def _healthz(self) -> dict:
        status = "ok"
        open_keys = self.breaker.open_keys()
        journal_errors = (self.journal.write_errors
                          if self.journal is not None else 0)
        if open_keys or journal_errors:
            status = "degraded"
        if self.draining:
            status = "draining"
        payload = {"status": status, "uptime_s": self._uptime()}
        if open_keys:
            payload["open_breakers"] = len(open_keys)
        if journal_errors:
            payload["journal_write_errors"] = journal_errors
        return payload

    def _stats(self) -> dict:
        stats = {
            "queue": self.queue.stats(),
            "workers": self.pool.workers,
            "uptime_s": self._uptime(),
            "requests": self.requests,
            "health": self._healthz()["status"],
            "breaker": self.breaker.stats(),
        }
        if self.journal is not None:
            stats["journal"] = self.journal.stats()
        if self.recovery is not None:
            stats["recovery"] = self.recovery
        stats.update(self.state.cache_stats())
        return stats

    def _uptime(self) -> float:
        return round(time.time() - self.started_s, 3)

    # -- SSE -----------------------------------------------------------
    async def _stream_events(self, writer, path: str,
                             headers: Optional[dict] = None) -> None:
        match = _JOB_PATH.match(path)
        job = self.queue.jobs.get(match.group(1)) if match else None
        if job is None:
            raise HttpError(404, f"no such job: {path}")
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: text/event-stream\r\n"
                     b"Cache-Control: no-cache\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()
        # A reconnecting client resumes from the last seq it saw.
        sent = 0
        last_id = (headers or {}).get("last-event-id")
        if last_id is not None and last_id.strip().isdigit():
            sent = int(last_id.strip()) + 1
        while True:
            # The worker thread only ever appends; reading a snapshot of
            # the tail is race-free.
            events = job.events
            while sent < len(events):
                blob = json.dumps(events[sent], sort_keys=True)
                writer.write(f"id: {events[sent]['seq']}\n"
                             f"data: {blob}\n\n".encode("utf-8"))
                sent += 1
            await writer.drain()
            if job.terminal and sent >= len(job.events):
                break
            await asyncio.sleep(_SSE_POLL_S)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
async def _serve_async(server: JobServer, announce=None) -> None:
    port = await server.start()
    _install_signal_handlers(server)
    if announce is not None:
        announce(port)
    await server.serve_until_shutdown()


def _install_signal_handlers(server: JobServer) -> None:
    """SIGTERM/SIGINT → graceful drain (same as /v1/shutdown?mode=drain)."""
    import signal

    loop = asyncio.get_event_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, server.begin_drain)
        except (NotImplementedError, RuntimeError, ValueError):
            return  # non-main thread or platform without signal support


def serve_forever(host: str = "127.0.0.1", port: int = 8333,
                  workers: int = 2, run_cache=None, artifact_store=None,
                  verify: bool = True, announce=None, state_dir=None,
                  drain_timeout: float = 30.0) -> None:
    """Blocking entry point behind ``repro serve``."""
    server = JobServer(host=host, port=port, workers=workers,
                       run_cache=run_cache, artifact_store=artifact_store,
                       verify=verify, state_dir=state_dir,
                       drain_timeout=drain_timeout)
    asyncio.run(_serve_async(server, announce=announce))


class ServerHandle:
    """A server running on a background thread (tests, bench, CI)."""

    def __init__(self, server: JobServer, thread: threading.Thread,
                 port: int) -> None:
        self.server = server
        self.thread = thread
        self.port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self.thread.is_alive():
            self._loop.call_soon_threadsafe(self.server._shutdown.set)
        self.thread.join(timeout=timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def start_server_thread(host: str = "127.0.0.1", port: int = 0,
                        workers: int = 2, run_cache=None,
                        artifact_store=None, verify: bool = True,
                        timeout: float = 10.0, state_dir=None,
                        drain_timeout: float = 30.0,
                        breaker_threshold: int = 5,
                        breaker_cooldown_s: float = 30.0) -> ServerHandle:
    """Start a `JobServer` on its own thread + event loop; returns a
    handle with the bound (ephemeral) port."""
    server = JobServer(host=host, port=port, workers=workers,
                       run_cache=run_cache, artifact_store=artifact_store,
                       verify=verify, state_dir=state_dir,
                       drain_timeout=drain_timeout,
                       breaker_threshold=breaker_threshold,
                       breaker_cooldown_s=breaker_cooldown_s)
    ready = threading.Event()
    bound: dict = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        handle._loop = loop

        async def main() -> None:
            bound["port"] = await server.start()
            ready.set()
            await server.serve_until_shutdown()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    thread = threading.Thread(target=runner, name="repro-serve", daemon=True)
    handle = ServerHandle(server, thread, 0)
    thread.start()
    if not ready.wait(timeout=timeout):
        raise RuntimeError("server failed to start within "
                           f"{timeout}s")
    handle.port = bound["port"]
    return handle
