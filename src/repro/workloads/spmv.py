"""SPMV over CRS (MachSuite spmv/crs), scaled to a 32-row matrix.

Two variants:

* ``spmv`` — the stock kernel.
* ``spmv_shift`` — the Table I probe: a bit-shift activates only when a
  matrix value falls inside a trigger range, so its *dynamic* execution
  depends on the dataset.  `make_data_shift(trigger=True/False)` builds
  datasets with/without trigger values; a trace-based simulator derives
  different datapaths for the two, while SALAM's static CDFG is fixed.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Workload, WorkloadData

N = 32
MAX_NNZ = 8
NNZ = N * MAX_NNZ  # padded CRS storage upper bound

TRIGGER_LO = 0.90
TRIGGER_HI = 0.99

SOURCE = f"""
void spmv(double val[{NNZ}], int cols[{NNZ}], int rowDelimiters[{N + 1}],
          double vec[{N}], double out[{N}]) {{
  for (int i = 0; i < {N}; i++) {{
    double sum = 0;
    int start = rowDelimiters[i];
    int stop = rowDelimiters[i + 1];
    for (int j = start; j < stop; j++) {{
      double Si = val[j] * vec[cols[j]];
      sum += Si;
    }}
    out[i] = sum;
  }}
}}
"""

SOURCE_SHIFT = f"""
void spmv_shift(double val[{NNZ}], int cols[{NNZ}], int rowDelimiters[{N + 1}],
                double vec[{N}], double out[{N}], int flags[{NNZ}]) {{
  for (int i = 0; i < {N}; i++) {{
    double sum = 0;
    int start = rowDelimiters[i];
    int stop = rowDelimiters[i + 1];
    for (int j = start; j < stop; j++) {{
      double v = val[j];
      int c = cols[j];
      if (v > {TRIGGER_LO} && v < {TRIGGER_HI}) {{
        flags[j] = c << 1;
        sum += v;
      }}
      double Si = v * vec[c];
      sum += Si;
    }}
    out[i] = sum;
  }}
}}
"""


def _make_crs(rng: np.random.Generator, trigger: bool):
    nnz_per_row = rng.integers(2, MAX_NNZ + 1, size=N)
    row_delims = np.zeros(N + 1, dtype=np.int32)
    row_delims[1:] = np.cumsum(nnz_per_row)
    total = int(row_delims[-1])
    vals = rng.uniform(-0.8, 0.8, NNZ)
    if trigger:
        # Plant values inside the trigger window.
        hits = rng.choice(total, size=max(1, total // 8), replace=False)
        vals[hits] = rng.uniform(TRIGGER_LO + 0.01, TRIGGER_HI - 0.01, hits.size)
    cols = np.zeros(NNZ, dtype=np.int32)
    for i in range(N):
        count = int(nnz_per_row[i])
        cols[row_delims[i] : row_delims[i] + count] = np.sort(
            rng.choice(N, size=count, replace=False)
        )
    vec = rng.uniform(-1.0, 1.0, N)
    return vals, cols, row_delims, vec


def make_data(rng: np.random.Generator) -> WorkloadData:
    vals, cols, row_delims, vec = _make_crs(rng, trigger=False)
    out = np.zeros(N)
    golden = np.zeros(N)
    for i in range(N):
        acc = 0.0
        for j in range(row_delims[i], row_delims[i + 1]):
            acc += vals[j] * vec[cols[j]]
        golden[i] = acc
    return WorkloadData(
        inputs={"val": vals, "cols": cols, "rowDelimiters": row_delims,
                "vec": vec, "out": out},
        output_names=["out"],
        golden={"out": golden},
    )


def make_data_shift(trigger: bool):
    def build(rng: np.random.Generator) -> WorkloadData:
        vals, cols, row_delims, vec = _make_crs(rng, trigger=trigger)
        out = np.zeros(N)
        flags = np.zeros(NNZ, dtype=np.int32)
        golden = np.zeros(N)
        golden_flags = np.zeros(NNZ, dtype=np.int32)
        for i in range(N):
            acc = 0.0
            for j in range(row_delims[i], row_delims[i + 1]):
                v = vals[j]
                c = int(cols[j])
                if TRIGGER_LO < v < TRIGGER_HI:
                    golden_flags[j] = c << 1
                    acc += v
                acc += v * vec[c]
            golden[i] = acc
        return WorkloadData(
            inputs={"val": vals, "cols": cols, "rowDelimiters": row_delims,
                    "vec": vec, "out": out, "flags": flags},
            output_names=["out", "flags"],
            golden={"out": golden, "flags": golden_flags},
        )

    return build


WORKLOAD = Workload(
    name="spmv",
    source=SOURCE,
    func_name="spmv",
    arg_order=["val", "cols", "rowDelimiters", "vec", "out"],
    make_data=make_data,
    description=f"sparse matrix-vector multiply, CRS, {N} rows",
)

SPMV_SHIFT = Workload(
    name="spmv_shift",
    source=SOURCE_SHIFT,
    func_name="spmv_shift",
    arg_order=["val", "cols", "rowDelimiters", "vec", "out", "flags"],
    make_data=make_data_shift(trigger=True),
    description="SPMV with a data-activated shift (Table I probe)",
)
