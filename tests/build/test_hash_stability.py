"""Module pickle/hash stability: same source -> same key, everywhere.

The artifact store is only sound if compiles are reproducible: the key
(hash of source+name+pipeline) must be process-independent, and the
module a key maps to must print identically no matter which process
compiled or unpickled it.  These tests fork real subprocesses rather
than trusting in-process determinism.
"""

import pickle
import subprocess
import sys
from pathlib import Path

from repro.build import artifact_key, build_module
from repro.build.artifact import module_fingerprint
from repro.ir.parser import parse_module
from repro.ir.printer import print_module

SRC = """
void blend(double a[32], double b[32], double c[32]) {
  for (int i = 0; i < 32; i++) { c[i] = 0.25 * a[i] + 0.75 * b[i]; }
}
"""
PIPELINE = "mem2reg,unroll:2,constfold,simplifycfg,dce"
REPO_SRC = Path(__file__).resolve().parents[2] / "src"

_CHILD = """
import sys
sys.path.insert(0, {src!r})
from repro.build import artifact_key, build_module
from repro.build.artifact import module_fingerprint
artifact = build_module({source!r}, "blend", pipeline={pipeline!r})
print(artifact_key({source!r}, "blend", {pipeline!r}))
print(module_fingerprint(artifact.module))
"""


def _child_key_and_fingerprint():
    script = _CHILD.format(src=str(REPO_SRC), source=SRC, pipeline=PIPELINE)
    out = subprocess.run([sys.executable, "-c", script], check=True,
                         capture_output=True, text=True).stdout.split()
    return out[0], out[1]


def test_key_and_fingerprint_stable_across_processes():
    here = build_module(SRC, "blend", pipeline=PIPELINE)
    child_key, child_fp = _child_key_and_fingerprint()
    assert artifact_key(SRC, "blend", PIPELINE) == child_key
    assert module_fingerprint(here.module) == child_fp


def test_repeated_compiles_are_deterministic():
    fingerprints = {
        module_fingerprint(build_module(SRC, "blend", pipeline=PIPELINE).module)
        for _ in range(5)
    }
    assert len(fingerprints) == 1


def test_module_pickle_round_trip_is_lossless():
    module = build_module(SRC, "blend", pipeline=PIPELINE).module
    clone = pickle.loads(pickle.dumps(module))
    assert print_module(clone) == print_module(module)
    assert module_fingerprint(clone) == module_fingerprint(module)


def test_pickled_module_survives_reprint_reparse():
    # The printed IR of an unpickled module must itself be valid IR --
    # this is what a store hit hands to the elaborator.
    module = build_module(SRC, "blend", pipeline=PIPELINE).module
    clone = pickle.loads(pickle.dumps(module))
    reparsed = parse_module(print_module(clone))
    assert print_module(reparsed) == print_module(module)


def test_key_sensitive_to_each_component():
    base = artifact_key(SRC, "blend", PIPELINE)
    assert artifact_key(SRC + " ", "blend", PIPELINE) != base
    assert artifact_key(SRC, "other", PIPELINE) != base
    assert artifact_key(SRC, "blend", "o1") != base


def test_equivalent_specs_share_a_key():
    assert (artifact_key(SRC, "blend", "o1:4")
            == artifact_key(SRC, "blend",
                            "inline,mem2reg,constfold,dce,unroll:4,"
                            "constfold,simplifycfg,dce"))
