"""Memory-mapped register file.

The host programs accelerators and DMAs by writing these registers over
the system interconnect, exactly like any other memory-mapped device
(Sec. III-D3).  Layout convention (64-bit registers):

* offset 0x00 — control/status: bit0 START (write 1 to launch),
  bit1 DONE (set by device, cleared by writing 0), bit2 IRQ-enable.
* offset 0x08 + 8*i — argument register i.

Write hooks let the owning device react to control writes.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.packet import MemCmd, Packet
from repro.sim.ports import SlavePort
from repro.sim.simobject import AddrRange, SimObject, System

CTRL_OFFSET = 0x00
ARGS_OFFSET = 0x08
CTRL_START = 1 << 0
CTRL_DONE = 1 << 1
CTRL_IRQ_EN = 1 << 2


class MMRFile(SimObject):
    def __init__(
        self,
        name: str,
        system: System,
        base: int,
        num_args: int = 8,
        latency_cycles: int = 1,
        on_write: Optional[Callable[[int, int], None]] = None,
        clock=None,
    ) -> None:
        super().__init__(name, system, clock)
        self.num_args = num_args
        size = ARGS_OFFSET + 8 * num_args
        self.range = AddrRange(base, size)
        self.latency_cycles = latency_cycles
        self.on_write = on_write
        self._data = bytearray(size)
        self.pio = SlavePort(
            f"{name}.pio",
            recv_timing_req=self._recv_timing_req,
            recv_functional=self._recv_functional,
            owner=self,
        )
        self.stat_reads = self.stats.scalar("mmr_reads")
        self.stat_writes = self.stats.scalar("mmr_writes")

    # -- direct device-side access ------------------------------------------
    def read_u64(self, offset: int) -> int:
        return int.from_bytes(self._data[offset : offset + 8], "little")

    def write_u64(self, offset: int, value: int) -> None:
        self._data[offset : offset + 8] = (value & (1 << 64) - 1).to_bytes(8, "little")

    @property
    def control(self) -> int:
        return self.read_u64(CTRL_OFFSET)

    @control.setter
    def control(self, value: int) -> None:
        self.write_u64(CTRL_OFFSET, value)

    def arg(self, index: int) -> int:
        if not 0 <= index < self.num_args:
            raise IndexError(f"{self.name}: MMR arg index {index} out of range")
        return self.read_u64(ARGS_OFFSET + 8 * index)

    def set_arg(self, index: int, value: int) -> None:
        if not 0 <= index < self.num_args:
            raise IndexError(f"{self.name}: MMR arg index {index} out of range")
        self.write_u64(ARGS_OFFSET + 8 * index, value)

    def set_done(self) -> None:
        self.control = (self.control | CTRL_DONE) & ~CTRL_START

    # -- bus-side access --------------------------------------------------------
    def _offset(self, addr: int, size: int) -> int:
        if not self.range.contains(addr, size):
            raise ValueError(f"{self.name}: access {addr:#x} outside MMR range")
        return addr - self.range.start

    def _recv_functional(self, pkt: Packet) -> Packet:
        offset = self._offset(pkt.addr, pkt.size)
        if pkt.cmd is MemCmd.READ:
            return pkt.make_response(data=bytes(self._data[offset : offset + pkt.size]))
        self._apply_write(offset, pkt.data)
        return pkt.make_response()

    def _recv_timing_req(self, pkt: Packet) -> bool:
        if self._finj is not None:
            self._finj.on_access(self)
        offset = self._offset(pkt.addr, pkt.size)
        if pkt.cmd is MemCmd.READ:
            self.stat_reads.inc()
            data = bytes(self._data[offset : offset + pkt.size])
            resp = pkt.make_response(data=data)
        else:
            self.stat_writes.inc()
            if self._san is not None and pkt.agent is not None:
                # Control/argument writes are the release half of the
                # MMR-start handoff: everything the writer did so far
                # becomes visible to the device that launches off this
                # register file.
                self._san.release(pkt.agent, ("mmr", self.name))
            self._apply_write(offset, pkt.data)
            resp = pkt.make_response()
        self.eventq.schedule_callback(
            lambda r=resp: self.pio.send_timing_resp(r),
            self.clock_edge(self.latency_cycles),
            name=f"{self.name}.resp",
        )
        return True

    def _apply_write(self, offset: int, data: bytes) -> None:
        self._data[offset : offset + len(data)] = data
        if self.on_write is not None:
            value = int.from_bytes(data, "little")
            self.on_write(offset, value)
