"""Fig. 16 scenario machinery (smoke-level: full runs live in benchmarks/)."""

import numpy as np
import pytest

from repro.system.cnn_scenarios import run_private_spm, run_shared_spm, run_stream


@pytest.fixture(scope="module")
def results():
    return {
        "private": run_private_spm(seed=11),
        "shared": run_shared_spm(seed=11),
        "stream": run_stream(seed=11),
    }


def test_all_scenarios_verify(results):
    for name, result in results.items():
        assert result.verified, f"{name} produced wrong output"


def test_scenarios_agree_functionally(results):
    # All three computed the same (verified) output from the same seed.
    assert all(r.verified for r in results.values())


def test_private_is_slowest(results):
    assert results["private"].total_ns >= results["shared"].total_ns
    assert results["private"].total_ns >= results["stream"].total_ns


def test_stream_is_fastest(results):
    assert results["stream"].total_ns < results["shared"].total_ns


def test_batch_stage_cycles_identical_across_a_and_b(results):
    # Same kernels, same data: only the integration differs.
    assert results["private"].acc_cycles["conv"] == results["shared"].acc_cycles["conv"]


def test_stream_stages_overlap(results):
    # In the pipelined scenario every stage is busy for roughly the whole
    # pipeline duration (they overlap), unlike the serialized baselines.
    cycles = results["stream"].acc_cycles
    assert max(cycles.values()) < 1.3 * min(cycles.values())
    serial = results["private"].acc_cycles
    assert max(serial.values()) > 2 * min(serial.values())
