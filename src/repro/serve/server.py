"""The asyncio HTTP/JSON front door (``repro serve``).

Stdlib-only by design: requests are parsed directly off an
``asyncio.start_server`` stream (request line, headers, Content-Length
body), responses are JSON with ``Connection: close``.  That is all a
job API needs, keeps the dependency count at zero, and makes the whole
server one readable file.

Endpoints::

    POST   /v1/jobs             submit {"kind", "spec", "priority"}
    GET    /v1/jobs             list job summaries (?state=queued,...)
    GET    /v1/jobs/{id}        one job, including its result payload
    GET    /v1/jobs/{id}/events live SSE progress stream
    DELETE /v1/jobs/{id}        cancel (queued jobs only)
    GET    /v1/stats            queue depth, cache hit rates, counters
    POST   /v1/queue/pause      stop handing out work (drain switch)
    POST   /v1/queue/resume     resume
    POST   /v1/shutdown         graceful stop
    GET    /healthz             liveness probe
    GET    /version             repro.__version__

Submissions dedup through the `JobQueue`; additionally, a run job whose
run-cache key is already in the cache completes *at submit time* — the
POST response itself carries ``state: done, cache_hit: true`` — which
is what makes repeated interactive DSE queries sub-second.
"""

from __future__ import annotations

import asyncio
import json
import re
import threading
import time
from typing import Optional

from repro.serve.jobs import JOB_KINDS, JobQueue, JobState
from repro.serve.workers import (
    ServerState,
    SpecError,
    WorkerPool,
    job_dedup_key,
)

_JOB_PATH = re.compile(r"^/v1/jobs/([a-z0-9]+)(/events)?$")

#: How often the SSE stream checks a job's event log for news.
_SSE_POLL_S = 0.05


class HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        self.status = status
        self.message = message
        super().__init__(message)


_REASONS = {200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 409: "Conflict",
            500: "Internal Server Error"}


class JobServer:
    """One listening socket, one `JobQueue`, one `WorkerPool`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 2, run_cache=None, artifact_store=None,
                 verify: bool = True) -> None:
        self.host = host
        self.port = port
        self.verify = verify
        self.queue = JobQueue()
        self.state = ServerState(run_cache=run_cache,
                                 artifact_store=artifact_store)
        self.pool = WorkerPool(self.queue, self.state, workers=workers)
        self.started_s = time.time()
        self.requests = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> int:
        """Bind, start workers; returns the actual port (ephemeral-safe)."""
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        await self.pool.start()
        return self.port

    async def serve_until_shutdown(self) -> None:
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        await self.pool.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- request plumbing ----------------------------------------------
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            method, path, body = await self._read_request(reader)
            self.requests += 1
            if path.endswith("/events"):
                await self._stream_events(writer, path)
            else:
                status, payload = self._route(method, path, body)
                await self._respond(writer, status, payload)
        except HttpError as err:
            await self._respond(writer, err.status, {"error": err.message})
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request
        except Exception as exc:  # noqa: BLE001 - the server must survive
            try:
                await self._respond(writer, 500,
                                    {"error": f"{type(exc).__name__}: {exc}"})
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(reader) -> tuple[str, str, dict]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) < 2:
            raise HttpError(400, f"malformed request line: {request_line!r}")
        # Query strings are tolerated but unused: every resource is
        # addressed purely by path.
        method, path = parts[0].upper(), parts[1].partition("?")[0]
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, __, value = line.partition(":")
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        body: dict = {}
        if content_length:
            raw = await reader.readexactly(content_length)
            try:
                body = json.loads(raw)
            except ValueError:
                raise HttpError(400, "request body is not valid JSON")
            if not isinstance(body, dict):
                raise HttpError(400, "request body must be a JSON object")
        return method, path, body

    @staticmethod
    async def _respond(writer, status: int, payload: dict) -> None:
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(blob)}\r\n"
                "Connection: close\r\n\r\n").encode("latin-1")
        writer.write(head + blob)
        await writer.drain()

    # -- routing -------------------------------------------------------
    def _route(self, method: str, path: str, body: dict) -> tuple[int, dict]:
        if path == "/healthz" and method == "GET":
            return 200, {"status": "ok", "uptime_s": self._uptime()}
        if path == "/version" and method == "GET":
            import repro

            return 200, {"version": repro.__version__}
        if path == "/v1/stats" and method == "GET":
            return 200, self._stats()
        if path == "/v1/jobs" and method == "POST":
            return self._submit(body)
        if path == "/v1/jobs" and method == "GET":
            return 200, self._list_jobs()
        if path == "/v1/queue/pause" and method == "POST":
            self.queue.pause()
            return 200, {"paused": True}
        if path == "/v1/queue/resume" and method == "POST":
            self.queue.resume()
            return 200, {"paused": False}
        if path == "/v1/shutdown" and method == "POST":
            self._shutdown.set()
            return 200, {"shutting_down": True}
        match = _JOB_PATH.match(path)
        if match and not match.group(2):
            job = self.queue.jobs.get(match.group(1))
            if job is None:
                raise HttpError(404, f"no such job: {match.group(1)}")
            if method == "GET":
                return 200, {"job": job.to_dict()}
            if method == "DELETE":
                before = job.state
                job = self.queue.cancel(job.id)
                if job.state != JobState.CANCELLED and before == job.state:
                    return 409, {"job": job.to_dict(include_result=False),
                                 "error": f"job is {job.state}, "
                                          "not cancellable"}
                return 200, {"job": job.to_dict(include_result=False)}
            raise HttpError(405, f"{method} not allowed here")
        raise HttpError(404, f"no route for {method} {path}")

    def _submit(self, body: dict) -> tuple[int, dict]:
        kind = body.get("kind")
        if kind not in JOB_KINDS:
            raise HttpError(400, f"bad kind {kind!r} "
                                 f"(expected one of {', '.join(JOB_KINDS)})")
        spec = body.get("spec")
        if not isinstance(spec, dict):
            raise HttpError(400, "spec must be a JSON object")
        if not self.verify:
            spec = dict(spec, verify=False)
        key = job_dedup_key(kind, spec)
        job = self.queue.submit(kind, spec, priority=int(body.get("priority", 0)),
                                dedup_key=key)
        if job.deduped_of is None and kind == "run":
            cached = self._probe_run_cache(spec)
            if cached is not None:
                self.queue.finish_immediately(job, cached, cache_hit=True)
        return 201, {"job": job.to_dict()}

    def _probe_run_cache(self, spec: dict) -> Optional[dict]:
        """Submit-time fast path: an already-cached run completes now."""
        from repro.exec.cache import run_cache_key
        from repro.serve.workers import _spec_workload, run_spec_kwargs

        try:
            workload = _spec_workload(spec)
            key = run_cache_key(workload.source, workload.func_name,
                                seed=int(spec.get("seed", 7)),
                                **run_spec_kwargs(spec))
        except Exception:  # noqa: BLE001 - unkeyable spec: just queue it
            return None
        cached = self.state.run_cache.get(key)
        return cached.to_dict() if cached is not None else None

    def _list_jobs(self) -> dict:
        return {"jobs": [job.to_dict(include_result=False)
                         for job in self.queue.jobs.values()]}

    def _stats(self) -> dict:
        stats = {
            "queue": self.queue.stats(),
            "workers": self.pool.workers,
            "uptime_s": self._uptime(),
            "requests": self.requests,
        }
        stats.update(self.state.cache_stats())
        return stats

    def _uptime(self) -> float:
        return round(time.time() - self.started_s, 3)

    # -- SSE -----------------------------------------------------------
    async def _stream_events(self, writer, path: str) -> None:
        match = _JOB_PATH.match(path)
        job = self.queue.jobs.get(match.group(1)) if match else None
        if job is None:
            raise HttpError(404, f"no such job: {path}")
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: text/event-stream\r\n"
                     b"Cache-Control: no-cache\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()
        sent = 0
        while True:
            # The worker thread only ever appends; reading a snapshot of
            # the tail is race-free.
            events = job.events
            while sent < len(events):
                blob = json.dumps(events[sent], sort_keys=True)
                writer.write(f"data: {blob}\n\n".encode("utf-8"))
                sent += 1
            await writer.drain()
            if job.terminal and sent >= len(job.events):
                break
            await asyncio.sleep(_SSE_POLL_S)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
async def _serve_async(server: JobServer, announce=None) -> None:
    port = await server.start()
    if announce is not None:
        announce(port)
    await server.serve_until_shutdown()


def serve_forever(host: str = "127.0.0.1", port: int = 8333,
                  workers: int = 2, run_cache=None, artifact_store=None,
                  verify: bool = True, announce=None) -> None:
    """Blocking entry point behind ``repro serve``."""
    server = JobServer(host=host, port=port, workers=workers,
                       run_cache=run_cache, artifact_store=artifact_store,
                       verify=verify)
    asyncio.run(_serve_async(server, announce=announce))


class ServerHandle:
    """A server running on a background thread (tests, bench, CI)."""

    def __init__(self, server: JobServer, thread: threading.Thread,
                 port: int) -> None:
        self.server = server
        self.thread = thread
        self.port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self.thread.is_alive():
            self._loop.call_soon_threadsafe(self.server._shutdown.set)
        self.thread.join(timeout=timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def start_server_thread(host: str = "127.0.0.1", port: int = 0,
                        workers: int = 2, run_cache=None,
                        artifact_store=None, verify: bool = True,
                        timeout: float = 10.0) -> ServerHandle:
    """Start a `JobServer` on its own thread + event loop; returns a
    handle with the bound (ephemeral) port."""
    server = JobServer(host=host, port=port, workers=workers,
                       run_cache=run_cache, artifact_store=artifact_store,
                       verify=verify)
    ready = threading.Event()
    bound: dict = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        handle._loop = loop

        async def main() -> None:
            bound["port"] = await server.start()
            ready.set()
            await server.serve_until_shutdown()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    thread = threading.Thread(target=runner, name="repro-serve", daemon=True)
    handle = ServerHandle(server, thread, 0)
    thread.start()
    if not ready.wait(timeout=timeout):
        raise RuntimeError("server failed to start within "
                           f"{timeout}s")
    handle.port = bound["port"]
    return handle
