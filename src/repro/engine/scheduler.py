"""`GraphScheduler`: the backend half of the graph-compiled engine.

Executes a `SimGraph` with a flat per-cycle loop instead of the
per-instruction `EventQueue` events of the dynamic engine.  Each cycle
is one iteration: drain this cycle's completion bucket (compute commits
and memory completions, in scheduling order — exactly the order the
event queue would fire them, since completions carry DEFAULT_PRI and
the engine tick CPU_TICK_PRI), then run the tick phases in the dynamic
engine's order (fetch, wake, issue with retry, memory pump, occupancy).

The contract is **byte-identical stats**: every counter, float energy
accumulation (same addition order, so no float drift), occupancy
record, and memory image byte matches `RuntimeEngine` for any run the
graph backend accepts.  Where the dynamic engine consults live objects
(profile specs, CDFG nodes, memctrl/SPM ports), this loop reads the
flat arrays `compile_graph` precomputed, and models the memory system's
timing inline:

* memory controller: per-cycle read/write port limits, FIFO queues,
  stall counting (``stat.inc(len(queue))`` per blocked cycle), reads
  pumped before writes;
* scratchpad: per-(cycle, bank) port usage with first-free-slot search,
  bank-conflict counting, completion at ``slot + latency_cycles`` with
  the image access performed at completion time;
* ideal memory: functional access at pump, completion one cycle later,
  no SPM accounting — matching `AcceleratorMemController.ideal`.

Static disambiguation: the only use of `repro.analysis.memdep` facts is
a *fast path inside* the conflict scan, applied strictly after the
"unresolved earlier address" conservatism — a pair is skipped without
overlap arithmetic only when both addresses are resolved AND the
accesses have distinct root pointer arguments (disjoint staged buffers)
or the same root with non-overlapping constant offsets (identical to
the runtime arithmetic by construction).  Conflict outcomes are
therefore exactly the dynamic engine's.

Dynamic instruction instances (the mirror of `DynInst`) are plain
lists, the cheapest record to allocate and index in CPython:

    [node, seq, state, pending, dependents, vals, result, addr, data,
     issue_cycle]
      0     1     2       3         4         5      6      7     8
      9

Sequence numbers are unique, so the ready heap stores ``(seq, dyn)``
tuples and never compares the lists themselves.

At run end the scheduler writes its counters back into the *same* stat
objects (`RuntimeEngine`, memctrl, SPM) so `System.dump_stats()`,
`RunResult`, and the power report are indistinguishable from a dynamic
run.
"""

from __future__ import annotations

import heapq
import struct
from typing import Optional

from repro.core.runtime import COMMITTED, ISSUED, READY, WAITING, EngineError
from repro.engine.graph import K_BRANCH, K_COMPUTE, K_LOAD, K_RET, K_STORE, SimGraph
from repro.ir.semantics import bytes_to_value, value_to_bytes
from repro.ir.types import FloatType, IntType, PointerType

# Completion-bucket entry tags.
_EV_COMMIT = 0  # compute commit
_EV_SPM = 1     # SPM timing completion (image access happens now)
_EV_IDEAL = 2   # ideal-memory completion (data captured at pump)

_STRUCT_F = struct.Struct("<f")
_STRUCT_D = struct.Struct("<d")


class GraphScheduler:
    """Executes one kernel invocation over a compiled `SimGraph`."""

    def __init__(self, graph: SimGraph, unit, spm=None) -> None:
        self.graph = graph
        self.unit = unit
        self.engine = unit.engine
        self.memctrl = unit.comm.memctrl
        self.spm = spm if spm is not None else unit.private_spm
        if self.memctrl.strict_ranges:
            raise EngineError(
                f"{self.engine.name}: graph engine does not model "
                "strictly-ordered regions"
            )

    # ------------------------------------------------------------------
    def run(self, arg_values: list, max_ticks: Optional[int] = None,
            capture=None, replay=None) -> bool:
        """Simulate to completion.  Returns False if ``max_ticks`` cut
        the run short (the caller raises the dynamic engine's error).

        ``capture`` (a `repro.engine.retime.TraceCapture`) records the
        memory-parameter-independent run content — branch targets,
        resolved addresses, encoded store bytes — as a side effect of a
        normal full simulation.  ``replay`` (a `ScheduleTrace`) runs the
        same loop in re-timing mode: all timing machinery executes
        against the *current* memory configuration, but instruction
        thunks, branch conditions, and memory codecs are skipped and
        their outcomes consumed from the trace instead.  Every
        scheduling decision consults only quantities that are identical
        between replay and a full run at this configuration (addresses,
        dependency structure, latencies, port limits), so the stats —
        and the final memory image, via the captured store bytes — are
        byte-identical to a full simulation.  The two modes are
        mutually exclusive.

        The hot loop allocates tens of thousands of short-lived,
        acyclic records (dyn lists, operand vectors, bucket entries);
        generation-0 collections are pure overhead on them, so the
        collector is paused for the duration and restored on exit.
        """
        if capture is not None and replay is not None:
            raise EngineError(
                f"{self.engine.name}: capture and replay are exclusive")
        import gc
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return self._run(arg_values, max_ticks, capture, replay)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _run(self, arg_values: list, max_ticks: Optional[int] = None,
             capture=None, replay=None) -> bool:
        g = self.graph
        engine = self.engine
        memctrl = self.memctrl
        spm = self.spm
        config = engine.config
        if len(arg_values) != g.arg_count:
            raise EngineError(
                f"{engine.name}: expected {g.arg_count} arguments, "
                f"got {len(arg_values)}"
            )
        args = list(arg_values)

        # -- flat graph arrays, bound to locals for the hot loop --------
        kind = g.kind
        operands = g.operands
        addr_index = g.addr_index
        produces_value = g.produces_value
        blocks = g.blocks
        block_of = g.block_of
        fu_class = g.fu_class
        dedicated = g.dedicated
        pipelined = g.pipelined
        latency = g.latency
        pool_limit = g.pool_limit
        dyn_energy = g.dyn_energy
        read_energy = g.read_energy
        write_energy = g.write_energy
        issue_kind = g.issue_kind
        mem_size = g.mem_size
        mem_type = g.mem_type
        mem_root = g.mem_root
        mem_offset = g.mem_offset
        br_cond = g.br_cond
        br_true = g.br_true
        br_false = g.br_false
        evals = g.evals
        insts = g.insts

        clock = engine.clock
        period = clock.period
        resw = config.reservation_window
        read_q_size = config.read_queue_size
        write_q_size = config.write_queue_size
        ideal = memctrl.ideal
        ideal_lat = memctrl.ideal_latency_cycles
        mem_read_ports = memctrl.read_ports
        mem_write_ports = memctrl.write_ports
        image = spm.image
        spm_lat = spm.latency_cycles
        spm_read_ports = spm.read_ports
        spm_write_ports = spm.write_ports
        spm_bank_of = spm.bank_of
        hub = engine._thub
        occupancy = engine.occupancy
        trace_mem = hub is not None and hub.enabled("mem")
        memctrl_name = memctrl.name
        spm_name = spm.name
        engine_name = engine.name

        # -- trace capture / replay bindings ----------------------------
        capturing = capture is not None
        replaying = replay is not None
        if capturing:
            cap_targets = capture.targets
            cap_addrs = capture.addrs
            cap_store = capture.store_data
        if replaying:
            replay_addrs = replay.addrs
            replay_store = replay.store_data
            replay_blocks = replay.block_seq
        else:
            replay_addrs = None
        branch_ptr = 1  # replay cursor: block_seq[0] is the entry block

        # -- operand templates: args never change during a run, so every
        # const and argument operand is bound once here; fetch only has
        # to resolve producer values.  ``init_vals[nid]`` is the operand
        # value list with ``None`` at producer-fed slots (shared, not
        # copied, when a node has no producer-fed slots — nothing ever
        # writes to it then); ``dep_binds[nid]`` lists
        # ``(index, producer_nid, is_addr)``.
        init_vals: list = [None] * g.n_nodes
        dep_binds: list = [None] * g.n_nodes
        phi_binds: list = [None] * g.n_nodes
        is_mem = [k in (K_LOAD, K_STORE) for k in kind]
        for nid in range(g.n_nodes):
            descs = operands[nid]
            aidx = addr_index[nid]
            if type(descs) is dict:  # phi: one incoming per predecessor
                per_pred = {}
                for pred_bid, (tag, payload) in descs.items():
                    if tag == 2:    # SRC_NODE
                        per_pred[pred_bid] = ([None], [(0, payload, False)])
                    elif tag == 1:  # SRC_ARG
                        per_pred[pred_bid] = ([args[payload]], ())
                    else:           # SRC_CONST
                        per_pred[pred_bid] = ([payload], ())
                phi_binds[nid] = per_pred
            else:
                vals0: list = [None] * len(descs)
                deps = []
                for index, (tag, payload) in enumerate(descs):
                    if tag == 0:
                        vals0[index] = payload
                    elif tag == 1:
                        vals0[index] = args[payload]
                    else:
                        deps.append((index, payload, index == aidx))
                init_vals[nid] = vals0
                dep_binds[nid] = deps

        # -- per-node memory codecs: the type dispatch of
        # `bytes_to_value` / `value_to_bytes` resolved once per node.
        # Each closure is bit-exact with the generic function (the image
        # hands back exactly ``mem_size`` bytes, so the defensive slice
        # is a no-op).
        decoders: list = [None] * g.n_nodes
        encoders: list = [None] * g.n_nodes
        for nid in range(g.n_nodes):
            if replaying or not is_mem[nid]:
                # Replay never decodes loads (results are unused) nor
                # encodes stores (bytes come from the trace).
                continue
            t = mem_type[nid]
            if isinstance(t, IntType):
                size = t.size_bytes()
                mask = t.mask
                decoders[nid] = (
                    lambda data, _m=mask:
                    int.from_bytes(data, "little") & _m)
                encoders[nid] = (
                    lambda value, _m=mask, _s=size:
                    int(value & _m).to_bytes(_s, "little"))
            elif isinstance(t, FloatType):
                st = _STRUCT_F if t.bits == 32 else _STRUCT_D
                decoders[nid] = (lambda data, _u=st.unpack: _u(data)[0])
                encoders[nid] = st.pack
            elif isinstance(t, PointerType):
                decoders[nid] = (
                    lambda data: int.from_bytes(data[:8], "little"))
                encoders[nid] = (
                    lambda value: int(value).to_bytes(8, "little"))
            else:
                decoders[nid] = (
                    lambda data, _t=t: bytes_to_value(data, _t))
                encoders[nid] = (
                    lambda value, _t=t: value_to_bytes(value, _t))

        # -- run state ---------------------------------------------------
        seq = 0
        last_inst: list = [None] * g.n_nodes  # node id -> last dyn record
        # Newly-ready work (fetched with no pending deps, or woken by a
        # commit) is pushed straight onto this heap: nothing observes
        # the dynamic engine's staged/wake staging lists between their
        # fill and drain, and pop order is seq-keyed either way.
        ready: list[tuple[int, list]] = []
        window = 0
        mem_window: list = []
        fetch_queue: list[tuple[int, int]] = [(g.entry_block, -1)]
        fetch_cursor = 0
        inflight_compute = 0
        outstanding_reads = 0
        outstanding_writes = 0
        ret_seen = False

        # FU allocator state (mirror of _FUAllocator, satellite stats
        # included: issued/stalled per class, attempt-for-attempt).
        # Classes are interned to small ints for the hot counters; the
        # first-success / first-stall orders are tracked so the written-
        # back VectorStat keys (and busy_units dict keys) appear in
        # exactly the order the dynamic allocator would create them.
        ded_last_issue = [-1] * g.n_nodes   # dedicated units are 1:1 with nodes
        ded_busy_until = [-1] * g.n_nodes
        fu_counts = engine.iface.cdfg.fu_counts
        class_names: list[str] = []
        _cls_index: dict[str, int] = {}
        cls_ids = [0] * g.n_nodes
        for _nid in range(g.n_nodes):
            _cls = fu_class[_nid]
            _ci = _cls_index.get(_cls)
            if _ci is None:
                _ci = len(class_names)
                _cls_index[_cls] = _ci
                class_names.append(_cls)
            cls_ids[_nid] = _ci
        n_cls = len(class_names)
        units_arr = [fu_counts.get(name, 0) for name in class_names]
        pool_stamp = [-1] * n_cls
        pool_count = [0] * n_cls
        pool_inflight = [0] * n_cls
        inflight_arr = [0] * n_cls
        fu_issued_arr = [0] * n_cls
        fu_stalled_arr = [0] * n_cls
        issue_order: list[int] = []   # class ids, first successful acquire
        stall_order: list[int] = []   # class ids, first blocked acquire

        # Memory model state.
        from collections import deque
        read_queue: deque = deque()
        write_queue: deque = deque()
        stall_reads = 0
        stall_writes = 0
        m_reads = 0
        m_writes = 0
        m_bytes = 0
        spm_usage: dict[tuple[int, int], list[int]] = {}
        spm_prune = 0
        spm_reads = 0
        spm_writes = 0
        spm_conflicts = 0

        # Per-cycle completion buckets: cycle -> [(tag, dyn, payload,
        # pump_cycle)], appended in scheduling order.
        buckets: dict[int, list] = {}
        buckets_get = buckets.get

        # Inline occupancy accounting: the same arithmetic (and the
        # same dict-key insertion order) as OccupancyTracker's
        # record_cycle, accumulated in locals and merged into the
        # tracker at write-back.  The 8 possible outstanding-kind
        # combinations are pre-built frozensets indexed by a bitmask.
        occ_issue_cycles = 0
        occ_stall_cycles = 0
        occ_idle_cycles = 0
        occ_issued_ops = 0
        occ_issued_total = 0
        occ_blocked_ops = 0
        occ_issued_by_class: dict[str, int] = {}
        occ_issue_kind_cycles: dict[str, int] = {}
        occ_blocked_by_kind: dict[str, int] = {}
        occ_fu_busy: dict[str, int] = {}
        occ_stall_sources: dict[frozenset, int] = {}
        outstanding_table = (
            frozenset(), frozenset(("load",)), frozenset(("store",)),
            frozenset(("load", "store")), frozenset(("compute",)),
            frozenset(("load", "compute")), frozenset(("store", "compute")),
            frozenset(("load", "store", "compute")),
        )

        # Counters written back into the engine's stats at the end.
        n_cycles = 0
        n_dyn_insts = 0
        n_blocks = 0
        n_loads = 0
        n_stores = 0
        n_committed = 0
        fu_energy = engine.fu_energy_pj
        reg_energy = engine.register_energy_pj

        start_cycle = engine.cur_cycle
        heappush = heapq.heappush
        heappop = heapq.heappop

        # -- inner helpers ----------------------------------------------
        def commit(dyn: list, result, cycle: int) -> None:
            nonlocal n_committed, reg_energy
            dyn[2] = COMMITTED     # state
            dyn[6] = result
            n_committed += 1
            if hub is not None:
                cargs = {"seq": dyn[1]}
                if dyn[7] is not None:
                    cargs["addr"] = dyn[7]
                hub.emit(
                    "compute", engine_name, insts[dyn[0]].opcode,
                    dyn[9] * period,
                    dur=(cycle - dyn[9]) * period,
                    args=cargs,
                )
            we = write_energy[dyn[0]]
            if we:
                reg_energy += we
            for entry in dyn[4]:
                if type(entry) is tuple:
                    dependent, index, is_addr = entry
                    dependent[5][index] = result
                    if is_addr:
                        # Replay commits carry no value; the dependent's
                        # address resolves *now* (same moment as a full
                        # run) from the trace instead of the result.
                        dependent[7] = (replay_addrs[dependent[1]]
                                        if replaying else result)
                else:
                    dependent = entry
                dependent[3] -= 1
                if dependent[3] == 0 and dependent[2] == WAITING:
                    dependent[2] = READY
                    heappush(ready, (dependent[1], dependent))
            dyn[4] = []

        def conflicts(dyn: list) -> bool:
            addr = dyn[7]
            nid = dyn[0]
            my_seq = dyn[1]
            size = mem_size[nid]
            is_load = kind[nid] == K_LOAD
            root = mem_root[nid]
            offset = mem_offset[nid]
            for other in mem_window:
                if other[1] >= my_seq:
                    break
                onid = other[0]
                if is_load and kind[onid] == K_LOAD:
                    continue
                other_addr = other[7]
                if other_addr is None:
                    return True  # unresolved earlier address: conservative
                # Static fast path (memdep): provably disjoint once both
                # addresses are resolved — same outcome, no arithmetic.
                oroot = mem_root[onid]
                if root >= 0 and oroot >= 0:
                    if root != oroot:
                        continue  # distinct restrict args: disjoint buffers
                    ooffset = mem_offset[onid]
                    if (offset is not None and ooffset is not None
                            and (offset + size <= ooffset
                                 or ooffset + mem_size[onid] <= offset)):
                        continue
                other_size = mem_size[onid]
                if addr < other_addr + other_size and other_addr < addr + size:
                    return True
            return False

        def fu_stall(ci: int) -> bool:
            if fu_stalled_arr[ci] == 0:
                stall_order.append(ci)
            fu_stalled_arr[ci] += 1
            return False

        def fu_acquire(nid: int, cycle: int) -> bool:
            ci = cls_ids[nid]
            if dedicated[nid]:
                if pipelined[nid]:
                    if ded_last_issue[nid] >= cycle:
                        return fu_stall(ci)
                    ded_last_issue[nid] = cycle
                else:
                    if ded_busy_until[nid] >= cycle:
                        return fu_stall(ci)
                    lat = latency[nid]
                    ded_busy_until[nid] = cycle + (lat if lat > 1 else 1) - 1
            else:
                if pipelined[nid]:
                    if pool_stamp[ci] != cycle:
                        pool_stamp[ci] = cycle
                        pool_count[ci] = 0
                    if pool_count[ci] >= pool_limit[nid]:
                        return fu_stall(ci)
                    pool_count[ci] += 1
                else:
                    if pool_inflight[ci] >= pool_limit[nid]:
                        return fu_stall(ci)
                    pool_inflight[ci] += 1
            if fu_issued_arr[ci] == 0:
                issue_order.append(ci)
            inflight_arr[ci] += 1
            fu_issued_arr[ci] += 1
            return True

        def fu_release(nid: int) -> None:
            if not dedicated[nid] and not pipelined[nid]:
                pool_inflight[cls_ids[nid]] -= 1
            inflight_arr[cls_ids[nid]] -= 1

        def emit_mem_trace(dyn: list, pump_cycle: int, cycle: int,
                           with_spm: bool) -> None:
            nid = dyn[0]
            op = "read" if kind[nid] == K_LOAD else "write"
            tick = pump_cycle * period
            dur = (cycle - pump_cycle) * period
            if with_spm:
                hub.emit("mem", spm_name, op, tick, dur=dur,
                         args={"addr": dyn[7], "size": mem_size[nid],
                               "bank": spm_bank_of(dyn[7])})
            hub.emit("mem", memctrl_name, op, tick, dur=dur,
                     args={"addr": dyn[7], "size": mem_size[nid]})

        pump_spec = ((read_queue, True, mem_read_ports),
                     (write_queue, False, mem_write_ports))

        def pump_memory(cycle: int) -> None:
            nonlocal stall_reads, stall_writes, m_reads, m_writes, m_bytes
            nonlocal spm_prune, spm_conflicts
            for queue, is_read, limit in pump_spec:
                issued = 0
                while queue:
                    if not ideal and issued >= limit:
                        if is_read:
                            stall_reads += len(queue)
                        else:
                            stall_writes += len(queue)
                        break
                    dyn = queue.popleft()
                    issued += 1
                    nid = dyn[0]
                    size = mem_size[nid]
                    if is_read:
                        m_reads += 1
                    else:
                        m_writes += 1
                    m_bytes += size
                    if ideal:
                        # Replay skips the functional read (the loaded
                        # value is never consumed) but keeps the write:
                        # captured store bytes rebuild the exact image.
                        data = (image.read(dyn[7], size)
                                if is_read and not replaying else None)
                        if not is_read:
                            image.write(dyn[7], dyn[8])
                        done = cycle + ideal_lat
                        bucket = buckets_get(done)
                        entry = (_EV_IDEAL, dyn, data, cycle)
                        if bucket is None:
                            buckets[done] = [entry]
                        else:
                            bucket.append(entry)
                        continue
                    # SPM timing: first cycle with a free bank port.
                    spm_prune += 1
                    if spm_prune % 4096 == 0:
                        for stale in [k for k in spm_usage if k[0] < cycle]:
                            del spm_usage[stale]
                    bank = spm_bank_of(dyn[7])
                    slot = 0 if is_read else 1
                    slimit = spm_read_ports if is_read else spm_write_ports
                    at = cycle
                    delayed = False
                    while True:
                        usage = spm_usage.setdefault((at, bank), [0, 0])
                        if usage[slot] < slimit:
                            usage[slot] += 1
                            break
                        at += 1
                        delayed = True
                    if delayed:
                        spm_conflicts += 1
                    done = at + spm_lat
                    bucket = buckets_get(done)
                    entry = (_EV_SPM, dyn, None, cycle)
                    if bucket is None:
                        buckets[done] = [entry]
                    else:
                        bucket.append(entry)

        # -- the flat cycle loop ----------------------------------------
        cycle = start_cycle
        end_cycle = -1
        completed = False
        while True:
            cycle += 1
            if max_ticks is not None and cycle * period > max_ticks:
                break
            # 1. completions scheduled for this cycle fire before the
            #    tick (DEFAULT_PRI < CPU_TICK_PRI), in scheduling order.
            bucket = buckets.pop(cycle, None)
            if bucket:
                for tag, dyn, payload, pump_cycle in bucket:
                    nid = dyn[0]
                    if tag == _EV_COMMIT:
                        inflight_compute -= 1
                        fu_release(nid)
                        commit(dyn, payload, cycle)
                    elif tag == _EV_SPM:
                        if kind[nid] == K_LOAD:
                            spm_reads += 1
                            result = (None if replaying else decoders[nid](
                                image.read(dyn[7], mem_size[nid])))
                            if trace_mem:
                                emit_mem_trace(dyn, pump_cycle, cycle, True)
                            outstanding_reads -= 1
                            mem_window.remove(dyn)
                            commit(dyn, result, cycle)
                        else:
                            spm_writes += 1
                            image.write(dyn[7], dyn[8])
                            if trace_mem:
                                emit_mem_trace(dyn, pump_cycle, cycle, True)
                            outstanding_writes -= 1
                            mem_window.remove(dyn)
                            commit(dyn, None, cycle)
                    else:  # _EV_IDEAL
                        if trace_mem:
                            emit_mem_trace(dyn, pump_cycle, cycle, False)
                        if kind[nid] == K_LOAD:
                            outstanding_reads -= 1
                            mem_window.remove(dyn)
                            commit(dyn, None if replaying
                                   else decoders[nid](payload), cycle)
                        else:
                            outstanding_writes -= 1
                            mem_window.remove(dyn)
                            commit(dyn, None, cycle)

            # 2. the tick, phase for phase as RuntimeEngine._tick.
            n_cycles += 1

            # Fetch into the reservation window (the DynInst-creation
            # body is inlined here — it runs once per dynamic
            # instruction and dominates the fetch phase).
            while fetch_queue and window < resw:
                bid, pred = fetch_queue[0]
                nids = blocks[bid]
                n_nids = len(nids)
                if fetch_cursor == 0:
                    n_blocks += 1
                while fetch_cursor < n_nids and window < resw:
                    nid = nids[fetch_cursor]
                    fetch_cursor += 1
                    deps = dep_binds[nid]
                    if deps is None:  # phi: one incoming per predecessor
                        if pred < 0:
                            raise EngineError(
                                f"{engine_name}: phi in entry block")
                        template, deps = phi_binds[nid][pred]
                    else:
                        template = init_vals[nid]
                    dyn = [nid, seq, WAITING, 0, [], None, None, None,
                           None, -1]
                    seq += 1
                    n_dyn_insts += 1
                    pending = 0
                    if replaying:
                        # Values are never read during replay, so the
                        # template is shared uncopied (commits only ever
                        # write None over the template's None slots).
                        # Only the dependency *structure* matters; an
                        # address resolves at the same moment as in a
                        # full run — at fetch when its producer already
                        # committed (or is template-fed), at the
                        # producer's commit otherwise.
                        addr_waiting = False
                        if deps:
                            for index, pnid, is_addr in deps:
                                producer = last_inst[pnid]
                                if (producer is not None
                                        and producer[2] != COMMITTED):
                                    pending += 1
                                    producer[4].append((dyn, index, is_addr))
                                    if is_addr:
                                        addr_waiting = True
                        dyn[5] = template
                        if is_mem[nid]:
                            if not addr_waiting:
                                dyn[7] = replay_addrs[dyn[1]]
                            mem_window.append(dyn)
                    else:
                        if deps:
                            vals = template.copy()
                            for index, pnid, is_addr in deps:
                                producer = last_inst[pnid]
                                if producer is None:
                                    vals[index] = 0
                                elif producer[2] == COMMITTED:
                                    vals[index] = producer[6]
                                else:
                                    pending += 1
                                    producer[4].append((dyn, index, is_addr))
                        else:
                            vals = template  # no producer-fed slots: shared
                        dyn[5] = vals
                        if is_mem[nid]:
                            value = vals[addr_index[nid]]
                            if value is not None:
                                dyn[7] = value
                            mem_window.append(dyn)
                    if produces_value[nid]:
                        previous = last_inst[nid]
                        if previous is not None and previous[2] != COMMITTED:
                            pending += 1
                            previous[4].append(dyn)
                        last_inst[nid] = dyn
                    window += 1
                    dyn[3] = pending
                    if pending == 0:
                        dyn[2] = READY
                        heappush(ready, (dyn[1], dyn))
                if fetch_cursor >= n_nids:
                    fetch_queue.pop(0)
                    fetch_cursor = 0
                else:
                    break

            issued_classes: list[str] = []
            issued_kinds: set[str] = set()
            issued_total = 0
            retry: list = []
            while ready:
                dyn = heappop(ready)[1]
                nid = dyn[0]
                nkind = kind[nid]
                if nkind == K_LOAD:
                    if dyn[7] is None:
                        dyn[7] = (replay_addrs[dyn[1]] if replaying
                                  else dyn[5][0])
                    if conflicts(dyn) or outstanding_reads >= read_q_size:
                        retry.append(dyn)
                        continue
                    dyn[2] = ISSUED
                    dyn[9] = cycle
                    window -= 1
                    outstanding_reads += 1
                    n_loads += 1
                    issued_kinds.add("load")
                    if capturing:
                        cap_addrs[dyn[1]] = dyn[7]
                    read_queue.append(dyn)
                elif nkind == K_STORE:
                    if dyn[7] is None:
                        dyn[7] = (replay_addrs[dyn[1]] if replaying
                                  else dyn[5][1])
                    if conflicts(dyn) or outstanding_writes >= write_q_size:
                        retry.append(dyn)
                        continue
                    dyn[2] = ISSUED
                    dyn[9] = cycle
                    window -= 1
                    outstanding_writes += 1
                    n_stores += 1
                    issued_kinds.add("store")
                    dyn[8] = (replay_store[dyn[1]] if replaying
                              else encoders[nid](dyn[5][0]))
                    if capturing:
                        cap_addrs[dyn[1]] = dyn[7]
                        cap_store[dyn[1]] = dyn[8]
                    write_queue.append(dyn)
                else:
                    is_compute = nkind == K_COMPUTE
                    if is_compute and not fu_acquire(nid, cycle):
                        retry.append(dyn)
                        continue
                    dyn[2] = ISSUED
                    dyn[9] = cycle
                    window -= 1
                    if is_compute:
                        fu_energy += dyn_energy[nid]
                        issued_classes.append(fu_class[nid])
                        issued_kinds.add(issue_kind[nid])
                        reg_energy += read_energy[nid]
                        inflight_compute += 1
                    if replaying:
                        result = None  # thunks skipped: values unused
                    else:
                        thunk = evals[nid]
                        result = thunk(dyn[5]) if thunk is not None else None
                    lat = latency[nid] if is_compute else 0
                    if nkind == K_BRANCH:
                        # Branch issues are strictly sequential (block
                        # N+1 is fetched only after block N's terminator
                        # issues), so the i-th branch issue consumes
                        # block_seq[i+1] — in replay *and* in capture.
                        if replaying:
                            target = replay_blocks[branch_ptr]
                            branch_ptr += 1
                        elif br_cond[nid]:
                            target = br_true[nid] if dyn[5][0] else br_false[nid]
                        else:
                            target = br_true[nid]
                        if capturing:
                            cap_targets.append(target)
                        fetch_queue.append((target, block_of[nid]))
                    elif nkind == K_RET:
                        ret_seen = True
                    if lat == 0:
                        if is_compute:
                            inflight_compute -= 1
                            fu_release(nid)
                        commit(dyn, result, cycle)
                    else:
                        done = cycle + lat
                        bucket = buckets_get(done)
                        entry = (_EV_COMMIT, dyn, result, cycle)
                        if bucket is None:
                            buckets[done] = [entry]
                        else:
                            bucket.append(entry)
                issued_total += 1
                # Zero-latency commits pushed their wakes straight onto
                # `ready`, so they chain combinationally this cycle.
            for dyn in retry:
                heappush(ready, (dyn[1], dyn))

            if read_queue or write_queue:
                pump_memory(cycle)

            obit = ((1 if outstanding_reads else 0)
                    | (2 if outstanding_writes else 0)
                    | (4 if inflight_compute else 0))
            occ_issued_total += issued_total
            for dyn in retry:
                nkind = kind[dyn[0]]
                key = ("load" if nkind == K_LOAD
                       else "store" if nkind == K_STORE else "compute")
                occ_blocked_ops += 1
                occ_blocked_by_kind[key] = occ_blocked_by_kind.get(key, 0) + 1
            # Busy units per class, in first-successful-acquire order —
            # the dynamic allocator's inflight_by_class insertion order.
            for ci in issue_order:
                inflight = inflight_arr[ci]
                if inflight > 0:
                    units = units_arr[ci]
                    name = class_names[ci]
                    occ_fu_busy[name] = occ_fu_busy.get(name, 0) + (
                        units if units and units < inflight else inflight)
            if issued_classes or issued_kinds:
                occ_issue_cycles += 1
                occ_issued_ops += len(issued_classes)
                for name in issued_classes:
                    occ_issued_by_class[name] = (
                        occ_issued_by_class.get(name, 0) + 1)
                for name in frozenset(issued_kinds):
                    occ_issue_kind_cycles[name] = (
                        occ_issue_kind_cycles.get(name, 0) + 1)
            elif obit:
                occ_stall_cycles += 1
                fs = outstanding_table[obit]
                occ_stall_sources[fs] = occ_stall_sources.get(fs, 0) + 1
            else:
                occ_idle_cycles += 1
            if hub is not None:
                blocked_kinds: dict[str, int] = {}
                for dyn in retry:
                    nkind = kind[dyn[0]]
                    key = ("load" if nkind == K_LOAD
                           else "store" if nkind == K_STORE else "compute")
                    blocked_kinds[key] = blocked_kinds.get(key, 0) + 1
                hub.emit(
                    "sched", engine_name, "cycle", cycle * period,
                    dur=period,
                    args={"issued": issued_total, "blocked": blocked_kinds,
                          "outstanding": sorted(outstanding_table[obit])},
                )

            if (ret_seen and not ready
                    and not fetch_queue and window == 0
                    and inflight_compute == 0 and outstanding_reads == 0
                    and outstanding_writes == 0):
                end_cycle = cycle
                completed = True
                break

        if capturing and completed:
            capture.n_dyn = n_dyn_insts
        if replaying and completed and (n_dyn_insts != replay.n_dyn
                                        or branch_ptr != len(replay_blocks)):
            raise EngineError(
                f"{engine_name}: schedule trace replay diverged "
                f"({n_dyn_insts} dynamic instructions vs {replay.n_dyn} "
                f"captured, {branch_ptr}/{len(replay_blocks)} blocks)")

        # -- write-back: same stat objects, same final values -----------
        engine.stat_cycles.inc(n_cycles)
        engine.stat_dyn_insts.inc(n_dyn_insts)
        engine.stat_blocks.inc(n_blocks)
        engine.stat_loads.inc(n_loads)
        engine.stat_stores.inc(n_stores)
        for ci in issue_order:
            engine.stat_fu_issued.inc(class_names[ci], fu_issued_arr[ci])
        for ci in stall_order:
            engine.stat_fu_stalls.inc(class_names[ci], fu_stalled_arr[ci])
        occupancy.cycles += n_cycles
        occupancy.issued_op_total += occ_issued_total
        occupancy.blocked_op_cycles += occ_blocked_ops
        merge = occupancy.blocked_by_kind
        for name, value in occ_blocked_by_kind.items():
            merge[name] = merge.get(name, 0) + value
        merge = occupancy.fu_busy_cycles
        for name, value in occ_fu_busy.items():
            merge[name] = merge.get(name, 0) + value
        occupancy.issue_cycles += occ_issue_cycles
        occupancy.issued_ops += occ_issued_ops
        merge = occupancy.issued_by_class
        for name, value in occ_issued_by_class.items():
            merge[name] = merge.get(name, 0) + value
        merge = occupancy.issue_kind_cycles
        for name, value in occ_issue_kind_cycles.items():
            merge[name] = merge.get(name, 0) + value
        occupancy.stall_cycles += occ_stall_cycles
        merge = occupancy.stall_sources
        for fs, value in occ_stall_sources.items():
            merge[fs] = merge.get(fs, 0) + value
        occupancy.idle_cycles += occ_idle_cycles
        engine.committed += n_committed
        engine.fu_energy_pj = fu_energy
        engine.register_energy_pj = reg_energy
        engine.start_cycle = start_cycle
        engine.end_cycle = end_cycle if completed else -1
        memctrl.stat_reads.inc(m_reads)
        memctrl.stat_writes.inc(m_writes)
        memctrl.stat_bytes.inc(m_bytes)
        memctrl.stat_read_stalls.inc(stall_reads)
        memctrl.stat_write_stalls.inc(stall_writes)
        if not ideal:
            spm.stat_reads.inc(spm_reads)
            spm.stat_writes.inc(spm_writes)
            spm.stat_conflicts.inc(spm_conflicts)
        # Advance simulated time to where the dynamic engine would end,
        # so downstream consumers (irq trace ticks, system.cur_tick) see
        # the same clock.
        final_tick = end_cycle * period if completed else max_ticks
        eventq = engine.eventq
        if final_tick is not None and final_tick > eventq.cur_tick:
            eventq._cur_tick = final_tick
        return completed
