"""Table II — Aladdin datapath vs. memory design.

GEMM (inner loops unrolled, as the paper's "fully unrolled" n-cubed)
scheduled by the trace-based baseline against caches of growing size
and against a multi-ported SPM.  The derived FU counts move with every
memory configuration; SALAM's static datapath is constant across all of
them (the decoupling claim).
"""

import numpy as np

from conftest import SEED, save_and_print, stage_into
from repro.baseline import CacheModel, SPMModel, build_datapath, generate_trace
from repro.core.config import DeviceConfig
from repro.core.llvm_interface import LLVMInterface
from repro.dse import format_table
from repro.frontend import compile_c
from repro.hw.default_profile import default_profile
from repro.ir.memory import MemoryImage
from repro.workloads import get_workload

CACHE_SIZES = [256, 512, 1024, 2048, 4096, 8192, 16384]


def test_table2(benchmark, tmp_path):
    profile = default_profile()
    workload = get_workload("gemm_dse")
    module = compile_c(workload.source, workload.func_name, unroll_factor=8)
    mem = MemoryImage(1 << 18, base=0x10000)
    args, __ = stage_into(workload, mem)
    trace = generate_trace(module, workload.func_name, args, mem, tmp_path / "gemm.gz")
    entries = trace.read()

    def run():
        rows = []
        for size in CACHE_SIZES:
            datapath = build_datapath(entries, profile, memory_model=CacheModel(size=size))
            rows.append(
                {
                    "memory": f"cache {size}B",
                    "FMUL": datapath.fu("fp_mul"),
                    "FADD": datapath.fu("fp_add"),
                }
            )
        spm_dp = build_datapath(
            entries, profile, memory_model=SPMModel(read_ports=2, write_ports=1)
        )
        rows.append({"memory": "SPM", "FMUL": spm_dp.fu("fp_mul"), "FADD": spm_dp.fu("fp_add")})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    iface = LLVMInterface(module, workload.func_name, profile, DeviceConfig())
    rows.append(
        {
            "memory": "SALAM static (any)",
            "FMUL": iface.cdfg.fu_counts.get("fp_mul", 0),
            "FADD": iface.cdfg.fu_counts.get("fp_add", 0),
        }
    )
    save_and_print(
        "table2_aladdin_memory_coupling",
        format_table(rows, title="Table II: Aladdin GEMM datapath vs memory design"),
    )

    cache_rows = rows[: len(CACHE_SIZES)]
    cache_counts = {(r["FMUL"], r["FADD"]) for r in cache_rows}
    assert len(cache_counts) >= 2, "FU counts must vary across cache sizes"
    spm_row = rows[len(CACHE_SIZES)]
    biggest_cache = max(r["FMUL"] + r["FADD"] for r in cache_rows)
    assert spm_row["FMUL"] + spm_row["FADD"] < biggest_cache, (
        "port-limited SPM must expose less parallelism than bursty caches"
    )
