"""Accelerator memory controller unit tests."""

import pytest

from repro.mem.memctrl import AcceleratorMemController
from repro.mem.spm import Scratchpad
from repro.sim.simobject import AddrRange
from repro.sim.ports import PortError


def _build(system, **kwargs):
    ctrl = AcceleratorMemController("ctrl", system, **kwargs)
    spm = Scratchpad("spm", system, base=0x1000, size=4096, read_ports=8,
                     write_ports=8)
    port = ctrl.add_route(spm.range)
    port.bind(spm.make_port())
    return ctrl, spm


def test_read_write_roundtrip(system):
    ctrl, spm = _build(system)
    done = []
    ctrl.enqueue_write(0x1000, b"\x2a" * 8, on_complete=lambda r: done.append(r))
    ctrl.pump()
    system.run()
    assert len(done) == 1
    reads = []
    ctrl.enqueue_read(0x1000, 8, on_complete=lambda r: reads.append(r.result))
    ctrl.pump()
    system.run()
    assert reads == [b"\x2a" * 8]


def test_port_limit_throttles_issue(system):
    ctrl, spm = _build(system, read_ports=2)
    finished = []
    for i in range(6):
        ctrl.enqueue_read(0x1000 + i * 8, 8, on_complete=lambda r: finished.append(r))
    ctrl.pump()
    # Only two issued this cycle; the rest wait in the read queue.
    assert len(ctrl.read_queue) == 4
    assert ctrl.stat_read_stalls.value() > 0
    # Later cycles drain the queue.
    for cycle in range(1, 5):
        system.eventq.schedule_callback(ctrl.pump, system.clock.cycles_to_ticks(cycle))
    system.run()
    assert len(finished) == 6


def test_ideal_mode_ignores_ports(system):
    ctrl, spm = _build(system, read_ports=1, ideal=True)
    spm.image.write(0x1000, bytes(range(64)))
    results = []
    for i in range(8):
        ctrl.enqueue_read(0x1000 + i * 8, 8, on_complete=lambda r: results.append(r.result))
    ctrl.pump()
    system.run()
    assert len(results) == 8
    assert results[0] == bytes(range(8))


def test_unrouted_address_raises(system):
    ctrl, __ = _build(system)
    ctrl.enqueue_read(0xDEAD_0000, 8, on_complete=lambda r: None)
    with pytest.raises(PortError):
        ctrl.pump()


def test_strict_ranges(system):
    ctrl, __ = _build(system)
    ctrl.add_strict_range(AddrRange(0x9000_0000, 0x100))
    assert ctrl.is_strict(0x9000_0000)
    assert ctrl.is_strict(0x9000_00FF)
    assert not ctrl.is_strict(0x1000)


def test_outstanding_accounting(system):
    ctrl, __ = _build(system)
    assert ctrl.outstanding == 0
    ctrl.enqueue_read(0x1000, 8, on_complete=lambda r: None)
    assert ctrl.outstanding == 1
    ctrl.pump()
    assert ctrl.outstanding == 1  # now in flight
    system.run()
    assert ctrl.outstanding == 0
