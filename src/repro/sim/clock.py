"""Clock domains and clocked objects.

A :class:`ClockDomain` converts between cycles and ticks (1 tick = 1 ps,
as in gem5).  A :class:`ClockedObject` belongs to a domain and offers
cycle-aligned scheduling helpers; the accelerator datapath and its
communications interface may sit in *different* domains, which is one of
the configuration knobs the paper calls out (Sec. III-D1).
"""

from __future__ import annotations

from repro.sim.eventq import Event, EventQueue

TICKS_PER_SECOND = 10**12  # 1 tick == 1 picosecond


def frequency_to_period(freq_hz: float) -> int:
    """Clock period in ticks for a frequency in Hz."""
    if freq_hz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_hz}")
    return max(1, round(TICKS_PER_SECOND / freq_hz))


class ClockDomain:
    """A named clock with a fixed period in ticks."""

    def __init__(self, name: str, freq_hz: float = 1e9) -> None:
        self.name = name
        self.freq_hz = float(freq_hz)
        self.period = frequency_to_period(freq_hz)

    def cycles_to_ticks(self, cycles: int) -> int:
        return cycles * self.period

    def ticks_to_cycles(self, ticks: int) -> int:
        return ticks // self.period

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ClockDomain {self.name} {self.freq_hz/1e6:.1f} MHz>"


class ClockedObject:
    """Mixin giving an object a clock domain and cycle-aligned scheduling."""

    def __init__(self, eventq: EventQueue, clock: ClockDomain) -> None:
        self.eventq = eventq
        self.clock = clock

    @property
    def cur_tick(self) -> int:
        return self.eventq.cur_tick

    @property
    def cur_cycle(self) -> int:
        return self.eventq.cur_tick // self.clock.period

    def clock_edge(self, cycles: int = 0) -> int:
        """Tick of the next rising clock edge at least ``cycles`` ahead.

        If the current tick already lies on an edge, ``cycles=0`` returns
        the current tick (gem5 semantics).
        """
        period = self.clock.period
        now = self.eventq.cur_tick
        remainder = now % period
        edge = now if remainder == 0 else now + (period - remainder)
        return edge + cycles * period

    def schedule_in_cycles(self, event: Event, cycles: int) -> Event:
        return self.eventq.schedule(event, self.clock_edge(cycles))

    def schedule_callback_in_cycles(self, callback, cycles: int, name: str = "") -> Event:
        return self.eventq.schedule_callback(callback, self.clock_edge(cycles), name=name)
