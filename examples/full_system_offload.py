#!/usr/bin/env python
"""Full-system offload: host + DMA + MMRs + interrupts (Fig. 1 flow).

Builds the complete platform — host agent, interrupt controller, global
crossbar, DRAM, an accelerator cluster — and runs the canonical driver
sequence: DMA inputs into the accelerator scratchpad, program argument
MMRs, set the START bit, sleep until the completion interrupt, DMA the
results back to DRAM.

Run:  python examples/full_system_offload.py
"""

import numpy as np

from repro import compile_c, default_profile
from repro.core.config import DeviceConfig
from repro.core.mmr import ARGS_OFFSET, CTRL_IRQ_EN, CTRL_START
from repro.system.soc import build_soc

KERNEL = """
void dot3(double a[128], double b[128], double out[128]) {
  for (int i = 0; i < 128; i++) {
    out[i] = a[i] * b[i] + 1.0;
  }
}
"""


def main() -> None:
    module = compile_c(KERNEL, "dot3", unroll_factor=4)
    soc = build_soc(dram_size=1 << 20)
    cluster = soc.add_cluster("cluster0")
    unit = cluster.add_accelerator(
        "dot3", module, "dot3", default_profile(),
        config=DeviceConfig(clock_freq_hz=100e6, read_ports=4, write_ports=2),
        private_spm_bytes=1 << 13, spm_read_ports=4,
    )
    unit.comm.connect_irq(soc.irq.line(0))
    soc.finalize()

    rng = np.random.default_rng(3)
    a = rng.uniform(-1, 1, 128)
    b = rng.uniform(-1, 1, 128)
    da = soc.dram.image.alloc_array(a)
    db = soc.dram.image.alloc_array(b)
    dout = soc.dram.image.alloc(128 * 8)

    spm = unit.private_spm.range.start
    sa, sb, sout = spm, spm + 1024, spm + 2048
    mmr = unit.comm.mmr.range.start
    host = soc.host

    def driver(h):
        yield h.dma_copy(cluster.dma, da, sa, 1024)
        yield h.dma_copy(cluster.dma, db, sb, 1024)
        yield h.write_mmr(mmr + ARGS_OFFSET + 0, sa)
        yield h.write_mmr(mmr + ARGS_OFFSET + 8, sb)
        yield h.write_mmr(mmr + ARGS_OFFSET + 16, sout)
        yield h.write_mmr(mmr, CTRL_START | CTRL_IRQ_EN)
        yield h.wait_irq(0)
        yield h.dma_copy(cluster.dma, sout, dout, 1024)

    host.run_driver(driver(host))
    sim = soc.simulation()  # execution layer: event-loop run + stats
    cause = sim.run(max_tick=1_000_000_000)
    assert host.finished, f"driver did not finish: {cause}"

    out = soc.dram.image.read_array(dout, np.float64, 128)
    assert np.allclose(out, a * b + 1.0)
    print("offload verified against NumPy")
    print(f"end-to-end time     : {host.finish_tick / 1e6:.2f} us")
    print(f"accelerator compute : {unit.engine.total_cycles} cycles "
          f"({unit.engine.runtime_ns() / 1e3:.2f} us)")
    print(f"DMA bytes moved     : {int(cluster.dma.stat_bytes.value())}")
    print(f"interrupts raised   : {int(unit.comm.stat_interrupts.value())}")
    print(f"host driver ops     : {int(host.stat_ops.value())}")


if __name__ == "__main__":
    main()
