"""Workload registry."""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.bfs import WORKLOAD as BFS
from repro.workloads.cnn import CONV_WORKLOAD
from repro.workloads.fft import WORKLOAD as FFT
from repro.workloads.gemm import GEMM_DSE, WORKLOAD as GEMM
from repro.workloads.md import MD_GRID, MD_KNN
from repro.workloads.nw import WORKLOAD as NW
from repro.workloads.spmv import SPMV_SHIFT, WORKLOAD as SPMV
from repro.workloads.stencil import STENCIL2D, STENCIL3D

_REGISTRY: dict[str, Workload] = {
    w.name: w
    for w in [
        BFS, FFT, GEMM, GEMM_DSE, MD_KNN, MD_GRID, NW, SPMV, SPMV_SHIFT,
        STENCIL2D, STENCIL3D, CONV_WORKLOAD,
    ]
}

#: The eight benchmarks of the paper's Fig. 10 timing validation.
VALIDATION_SET = [
    "fft", "gemm", "md_knn", "md_grid", "nw", "spmv", "stencil2d", "stencil3d",
]

#: The nine benchmarks of Table IV.
SPEED_SET = VALIDATION_SET[:]
SPEED_SET.insert(0, "bfs")


def get_workload(name: str) -> Workload:
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown workload '{name}'; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name]


def all_workload_names() -> list[str]:
    return sorted(_REGISTRY)
