"""Full-system integration: host driver, DMA, MMRs, interrupts, cluster."""

import numpy as np
import pytest

from repro.core.mmr import ARGS_OFFSET, CTRL_DONE, CTRL_IRQ_EN, CTRL_START
from repro.frontend import compile_c
from repro.hw.default_profile import default_profile
from repro.system.soc import build_soc

VECADD = """
void vecadd(double a[64], double b[64], double c[64]) {
  for (int i = 0; i < 64; i++) { c[i] = a[i] + b[i]; }
}
"""


@pytest.fixture
def soc_with_acc(rng):
    module = compile_c(VECADD, "vecadd")
    soc = build_soc(dram_size=1 << 20)
    cluster = soc.add_cluster("cl0")
    unit = cluster.add_accelerator(
        "acc0", module, "vecadd", default_profile(), private_spm_bytes=1 << 13
    )
    unit.comm.connect_irq(soc.irq.line(0))
    soc.finalize()
    a = rng.uniform(-1, 1, 64)
    b = rng.uniform(-1, 1, 64)
    da = soc.dram.image.alloc_array(a)
    db = soc.dram.image.alloc_array(b)
    dc = soc.dram.image.alloc(512)
    return soc, cluster, unit, (a, b), (da, db, dc)


def test_end_to_end_offload(soc_with_acc):
    soc, cluster, unit, (a, b), (da, db, dc) = soc_with_acc
    spm_base = unit.private_spm.range.start
    sa, sb, sc = spm_base, spm_base + 512, spm_base + 1024
    mmr = unit.comm.mmr.range.start
    h = soc.host

    def driver(h):
        yield h.dma_copy(cluster.dma, da, sa, 512)
        yield h.dma_copy(cluster.dma, db, sb, 512)
        yield h.write_mmr(mmr + ARGS_OFFSET + 0, sa)
        yield h.write_mmr(mmr + ARGS_OFFSET + 8, sb)
        yield h.write_mmr(mmr + ARGS_OFFSET + 16, sc)
        yield h.write_mmr(mmr, CTRL_START | CTRL_IRQ_EN)
        yield h.wait_irq(0)
        yield h.dma_copy(cluster.dma, sc, dc, 512)

    h.run_driver(driver(h))
    cause = soc.run(max_ticks=500_000_000)
    assert h.finished, f"driver stuck ({cause})"
    out = soc.dram.image.read_array(dc, np.float64, 64)
    assert np.allclose(out, a + b)
    assert unit.engine.total_cycles > 0
    assert unit.comm.stat_interrupts.value() == 1


def test_host_reads_status_mmr(soc_with_acc):
    soc, cluster, unit, arrays, addrs = soc_with_acc
    mmr = unit.comm.mmr.range.start
    h = soc.host
    observed = {}

    def driver(h):
        spm = unit.private_spm.range.start
        yield h.write_mmr(mmr + ARGS_OFFSET + 0, spm)
        yield h.write_mmr(mmr + ARGS_OFFSET + 8, spm)
        yield h.write_mmr(mmr + ARGS_OFFSET + 16, spm + 2048)
        yield h.write_mmr(mmr, CTRL_START | CTRL_IRQ_EN)
        yield h.wait_irq(0)
        observed["status"] = yield h.read_mmr(mmr)

    h.run_driver(driver(h))
    soc.run(max_ticks=500_000_000)
    assert observed["status"] & CTRL_DONE


def test_host_memcpy(rng):
    soc = build_soc(dram_size=1 << 16)
    soc.finalize()
    payload = bytes(rng.integers(0, 256, 64, dtype=np.uint8))
    src = soc.dram.range.start
    dst = src + 4096
    soc.dram.image.write(src, payload)
    h = soc.host

    def driver(h):
        yield h.memcpy(dst, src, 64)

    h.run_driver(driver(h))
    soc.run(max_ticks=100_000_000)
    assert h.finished
    assert soc.dram.image.read(dst, 64) == payload


def test_host_delay_costs_time():
    soc = build_soc()
    soc.finalize()
    h = soc.host

    def driver(h):
        yield h.delay(1000)

    h.run_driver(driver(h))
    soc.run()
    assert h.finish_tick >= h.clock.cycles_to_ticks(1000)


def test_irq_pending_before_wait(system):
    """Interrupts raised before the host waits are latched, not lost."""
    from repro.system.interrupts import InterruptController

    irq = InterruptController("gic", system)
    irq.raise_irq(3)
    fired = []
    irq.wait(3, lambda: fired.append(1))
    system.run()
    assert fired == [1]


def test_two_accelerators_in_cluster(rng):
    module = compile_c(VECADD, "vecadd")
    soc = build_soc(dram_size=1 << 20)
    cluster = soc.add_cluster("cl0", shared_spm_bytes=1 << 13)
    units = []
    for i in range(2):
        unit = cluster.add_accelerator(
            f"acc{i}", module, "vecadd", default_profile(), private_spm_bytes=1 << 13
        )
        unit.comm.connect_irq(soc.irq.line(i))
        units.append(unit)
    soc.finalize()

    a = rng.uniform(-1, 1, 64)
    for i, unit in enumerate(units):
        spm = unit.private_spm
        spm.image.write_array(spm.range.start, a)
        spm.image.write_array(spm.range.start + 512, a)

    mmrs = [u.comm.mmr.range.start for u in units]
    h = soc.host

    def driver(h):
        for unit, mmr in zip(units, mmrs):
            spm = unit.private_spm.range.start
            yield h.write_mmr(mmr + ARGS_OFFSET + 0, spm)
            yield h.write_mmr(mmr + ARGS_OFFSET + 8, spm + 512)
            yield h.write_mmr(mmr + ARGS_OFFSET + 16, spm + 1024)
        # Launch both, then wait for both: they run concurrently.
        yield h.write_mmr(mmrs[0], CTRL_START | CTRL_IRQ_EN)
        yield h.write_mmr(mmrs[1], CTRL_START | CTRL_IRQ_EN)
        yield h.wait_irq(0)
        yield h.wait_irq(1)

    h.run_driver(driver(h))
    soc.run(max_ticks=500_000_000)
    assert h.finished
    for unit in units:
        spm = unit.private_spm
        out = spm.image.read_array(spm.range.start + 1024, np.float64, 64)
        assert np.allclose(out, a + a)
