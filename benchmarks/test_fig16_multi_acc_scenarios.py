"""Fig. 16 — producer-consumer accelerator scenarios (CNN layer).

Three system integrations of conv -> ReLU -> max-pool:

(a) private SPMs + DMA between stages + host synchronization (baseline,
    the gem5-Aladdin-expressible design);
(b) shared scratchpad, host still synchronizes every stage (PARADE);
(c) direct streaming through stream buffers, self-synchronized.

Expected shape (paper: (b) = 1.25x, (c) = 2.08x over (a)): removing
inter-stage copies buys tens of percent; inter-accelerator pipelining
through streams buys around 2x.  All three scenarios must produce the
bit-identical verified output.
"""

from conftest import save_and_print
from repro.dse import format_table
from repro.system.cnn_scenarios import run_all_scenarios


def test_fig16(benchmark):
    results = benchmark.pedantic(lambda: run_all_scenarios(), rounds=1, iterations=1)
    base = results["private_spm"].total_us
    rows = [
        {
            "scenario": r.name,
            "end_to_end_us": r.total_us,
            "speedup_vs_private": base / r.total_us,
            "verified": r.verified,
        }
        for r in results.values()
    ]
    save_and_print(
        "fig16_multi_acc_scenarios",
        format_table(rows, title="Fig. 16: CNN-layer integration scenarios"),
    )

    assert all(r.verified for r in results.values())
    shared = base / results["shared_spm"].total_us
    stream = base / results["stream"].total_us
    # Shape: shared-SPM removes copies (tens of percent), streaming
    # pipelines the stages (approaching 2x).
    assert 1.05 < shared < 1.6, f"shared speedup {shared:.2f}"
    assert stream > 1.4, f"stream speedup {stream:.2f}"
    assert stream > shared
