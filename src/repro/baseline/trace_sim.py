"""Trace-based simulation (Aladdin's simulation phase).

Loads a trace file from disk, optimizes/builds the dependence graph,
schedules it, and reports cycles plus a power estimate priced with the
same hardware profile the other models use.  Wall-clock costs of the
load + schedule are what Table IV's "Simulation" column measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.baseline.datapath import TraceDatapath, build_datapath, fu_class_of_opcode
from repro.baseline.gem5_aladdin import AladdinMemoryModel
from repro.baseline.tracer import TraceFile
from repro.core.config import DeviceConfig
from repro.hw.profile import FU_NONE, HardwareProfile


@dataclass
class TraceSimResult:
    cycles: int
    datapath: TraceDatapath
    dynamic_energy_pj: float
    leakage_mw: float
    load_seconds: float
    schedule_seconds: float

    def total_power_mw(self, cycle_time_ns: float) -> float:
        runtime_ns = self.cycles * cycle_time_ns
        if runtime_ns <= 0:
            return self.leakage_mw
        return self.dynamic_energy_pj / runtime_ns + self.leakage_mw


def simulate_trace(
    trace: TraceFile,
    profile: HardwareProfile,
    memory_model: Optional[AladdinMemoryModel] = None,
    config: Optional[DeviceConfig] = None,
) -> TraceSimResult:
    """Full Aladdin-style simulation pass over a trace file."""
    t0 = time.perf_counter()
    entries = trace.read()
    t1 = time.perf_counter()
    datapath = build_datapath(entries, profile, memory_model, config)
    t2 = time.perf_counter()

    dynamic_energy = 0.0
    for entry in entries:
        fu_class = fu_class_of_opcode(entry.opcode)
        if fu_class != FU_NONE:
            dynamic_energy += profile.spec_for(fu_class).dynamic_energy_pj
    leakage = sum(
        profile.spec_for(fu_class).leakage_mw * count
        for fu_class, count in datapath.fu_counts.items()
    )
    return TraceSimResult(
        cycles=datapath.cycles,
        datapath=datapath,
        dynamic_energy_pj=dynamic_energy,
        leakage_mw=leakage,
        load_seconds=t1 - t0,
        schedule_seconds=t2 - t1,
    )
