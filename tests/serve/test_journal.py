"""JobJournal unit tests: WAL round trips, compaction, corrupt tails.

Every test drives a real `JobQueue` with a journal attached, then
rebuilds a *fresh* queue from the same state dir — the exact code path
a restarted ``repro serve --state-dir`` takes.
"""

import json

from repro.exec.failures import FailureRecord
from repro.serve.jobs import JobQueue, JobState
from repro.serve.journal import JobJournal, recover_queue


def make_failure(message="boom"):
    try:
        raise ValueError(message)
    except ValueError as exc:
        return FailureRecord.from_exception(exc)


def fresh(state_dir, **kwargs):
    """A (queue, journal) pair over ``state_dir``, journal attached."""
    journal = JobJournal(state_dir, **kwargs)
    queue = JobQueue(journal=journal)
    return queue, journal


def recovered(state_dir, **kwargs):
    """Simulate a process restart: new journal, new queue, replay."""
    queue, journal = fresh(state_dir, **kwargs)
    summary = recover_queue(queue, journal)
    return queue, journal, summary


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
def test_terminal_job_survives_restart_verbatim(tmp_path):
    queue, journal = fresh(tmp_path)
    job = queue.submit("run", {"workload": "gemm_dse"}, dedup_key="k")
    queue.claim()
    job.publish("point", done=1, total=2)
    queue.resolve(job, result={"cycles": 99}, cache_hit=False)
    journal.close()

    queue2, __, summary = recovered(tmp_path)
    assert summary["recovered_jobs"] == 1
    assert summary["requeued_jobs"] == 0  # terminal: kept, not re-queued
    twin = queue2.jobs[job.id]
    assert twin.state == JobState.DONE
    assert twin.result == {"cycles": 99}
    assert twin.spec == {"workload": "gemm_dse"}
    assert [e["event"] for e in twin.events] \
        == ["queued", "running", "point", "done"]
    assert queue2.executed == 1  # counters replay too
    assert queue2.claim() is None  # nothing runnable


def test_active_jobs_are_requeued_with_attempts_kept(tmp_path):
    queue, journal = fresh(tmp_path)
    retried = queue.submit("run", {"n": 1})
    assert queue.claim() is retried
    queue.requeue(retried, delay_s=0.0)  # attempts=1, back of the queue
    assert queue.claim() is retried      # attempts=2
    queue.resolve(retried, result={})
    running = queue.submit("run", {"n": 2})
    assert queue.claim() is running      # running at "crash" time
    journal.close()  # SIGKILL would leave the same files behind

    queue2, __, summary = recovered(tmp_path)
    assert summary["requeued_jobs"] == 1
    twin = queue2.jobs[running.id]
    assert twin.state == JobState.QUEUED
    assert twin.attempts == 1  # kept across the restart
    assert twin.events[-1]["event"] == "recovered"
    assert twin.events[-1]["was"] == "running"
    assert queue2.claim() is twin
    assert twin.attempts == 2


def test_followers_recoalesce_after_restart(tmp_path):
    queue, journal = fresh(tmp_path)
    primary = queue.submit("run", {"x": 1}, dedup_key="dk")
    follower = queue.submit("run", {"x": 1}, dedup_key="dk")
    assert follower.deduped_of == primary.id
    journal.close()

    queue2, __, summary = recovered(tmp_path)
    assert summary["requeued_jobs"] == 2
    p2, f2 = queue2.jobs[primary.id], queue2.jobs[follower.id]
    # First adopted becomes the primary; the other re-attaches.
    assert p2.deduped_of is None
    assert f2.deduped_of == p2.id
    assert queue2.claim() is p2
    assert queue2.claim() is None  # the follower never runs
    queue2.resolve(p2, result={"v": 7})
    assert f2.state == JobState.DONE
    assert f2.result == {"v": 7}


def test_recovered_ids_never_collide(tmp_path):
    queue, journal = fresh(tmp_path)
    old = queue.submit("run", {})
    journal.close()

    queue2, __, __ = recovered(tmp_path)
    new = queue2.submit("run", {})
    assert new.id != old.id
    assert new.id > old.id  # zero-padded ids sort lexically


def test_cancelled_job_stays_cancelled(tmp_path):
    queue, journal = fresh(tmp_path)
    job = queue.submit("run", {})
    queue.cancel(job.id)
    journal.close()

    queue2, __, summary = recovered(tmp_path)
    assert summary["requeued_jobs"] == 0
    assert queue2.jobs[job.id].state == JobState.CANCELLED
    assert queue2.cancelled == 1
    assert queue2.claim() is None


def test_failure_payload_round_trips(tmp_path):
    queue, journal = fresh(tmp_path)
    job = queue.submit("run", {})
    queue.claim()
    queue.resolve(job, failure=make_failure("kaboom"))
    journal.close()

    queue2, __, __ = recovered(tmp_path)
    twin = queue2.jobs[job.id]
    assert twin.state == JobState.FAILED
    assert twin.failure["error_type"] == "ValueError"
    assert twin.failure["message"] == "kaboom"


# ----------------------------------------------------------------------
# Snapshot + compaction
# ----------------------------------------------------------------------
def test_compaction_truncates_journal_and_preserves_state(tmp_path):
    queue, journal = fresh(tmp_path, snapshot_every=5)
    jobs = [queue.submit("run", {"n": n}) for n in range(3)]
    for job in jobs[:2]:
        queue.claim()
        queue.resolve(job, result={"n": job.spec["n"]})
    assert journal.should_compact()
    size_before = journal.journal_path.stat().st_size
    journal.compact(queue)
    assert journal.snapshot_path.exists()
    assert journal.journal_path.stat().st_size < size_before
    assert not journal.should_compact()

    # More activity lands in the (now small) journal on top of the
    # snapshot; replaying both must be idempotent.
    queue.claim()
    queue.resolve(jobs[2], result={"n": 2})
    journal.close()

    queue2, __, __ = recovered(tmp_path, snapshot_every=5)
    assert len(queue2.jobs) == 3
    for n, job in enumerate(jobs):
        assert queue2.jobs[job.id].result == {"n": n}
    assert queue2.executed == 3


def test_recovery_after_snapshot_only(tmp_path):
    queue, journal = fresh(tmp_path)
    job = queue.submit("run", {})
    queue.claim()
    queue.resolve(job, result={"ok": 1})
    journal.compact(queue)
    journal.close()
    assert journal.journal_path.stat().st_size == 0

    queue2, __, __ = recovered(tmp_path)
    assert queue2.jobs[job.id].result == {"ok": 1}


# ----------------------------------------------------------------------
# Corrupt-tail tolerance
# ----------------------------------------------------------------------
def test_truncated_tail_is_quarantined_not_fatal(tmp_path):
    queue, journal = fresh(tmp_path)
    done = queue.submit("run", {"good": True})
    queue.claim()
    queue.resolve(done, result={"ok": 1})
    journal.close()
    # A SIGKILL mid-append leaves a cut final line.
    with open(journal.journal_path, "ab") as fh:
        fh.write(b'{"rec":"state","id":"j000000","sta')

    queue2, journal2, summary = recovered(tmp_path)
    assert queue2.jobs[done.id].result == {"ok": 1}
    assert journal2.quarantined == 1
    corrupt = journal2.journal_path.parent / "journal.jsonl.corrupt"
    assert corrupt.exists()
    assert b'"sta' in corrupt.read_bytes()
    # The journal itself was rewritten to its parsable prefix: a third
    # recovery is clean.
    __, journal3, __ = recovered(tmp_path)
    assert journal3.quarantined == 0


def test_garbage_mid_file_stops_replay_at_damage(tmp_path):
    queue, journal = fresh(tmp_path)
    first = queue.submit("run", {"n": 1})
    journal.close()
    raw = journal.journal_path.read_bytes()
    with open(journal.journal_path, "wb") as fh:
        fh.write(raw)
        fh.write(b"\x00\xffnot json\n")
        # A record *after* the damage must not be replayed: ordering
        # is part of correctness.
        fh.write(json.dumps({"rec": "state", "id": first.id,
                             "state": "done", "result": {"fake": 1}})
                 .encode() + b"\n")

    queue2, journal2, __ = recovered(tmp_path)
    assert journal2.quarantined == 1
    twin = queue2.jobs[first.id]
    assert twin.result is None  # the post-damage record was discarded
    assert twin.state == JobState.QUEUED


def test_missing_final_newline_is_repaired(tmp_path):
    queue, journal = fresh(tmp_path)
    queue.submit("run", {})
    journal.close()
    raw = journal.journal_path.read_bytes()
    assert raw.endswith(b"\n")
    journal.journal_path.write_bytes(raw[:-1])  # valid JSON, no newline

    __, journal2, summary = recovered(tmp_path)
    assert summary["recovered_jobs"] == 1
    assert journal2.journal_path.read_bytes().endswith(b"\n")


def test_corrupt_snapshot_is_quarantined_journal_still_replays(tmp_path):
    queue, journal = fresh(tmp_path)
    job = queue.submit("run", {})
    queue.claim()
    queue.resolve(job, result={"ok": True})
    journal.close()
    journal.snapshot_path.write_text("{ not json")

    queue2, journal2, __ = recovered(tmp_path)
    assert journal2.quarantined == 1
    assert (tmp_path / "snapshot.json.corrupt").exists()
    # The journal was never truncated, so nothing is actually lost.
    assert queue2.jobs[job.id].result == {"ok": True}


def test_write_errors_degrade_instead_of_raising(tmp_path):
    journal = JobJournal(tmp_path)
    journal.journal_path.mkdir()  # open() for append now fails
    queue = JobQueue(journal=journal)
    job = queue.submit("run", {})  # must not raise
    queue.claim()
    queue.resolve(job, result={})
    assert journal.write_errors > 0
    assert journal.appends == 0


def test_empty_state_dir_recovers_to_empty_queue(tmp_path):
    queue, __, summary = recovered(tmp_path)
    assert summary == {"recovered_jobs": 0, "requeued_jobs": 0,
                       "quarantined": 0}
    assert queue.jobs == {}
