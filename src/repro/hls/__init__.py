"""Reference models the simulator is validated against.

Offline stand-ins for the paper's validation flow (Fig. 9):

* `scheduler` — an independent HLS-style performance model: per-block
  resource-constrained list scheduling plus loop initiation intervals,
  driven by functional block-visit counts (the role Vivado HLS
  co-simulation plays in the paper).
* `rtl_ref` — a Design-Compiler-style area/power reference that prices
  the same datapath with synthesis effects (interconnect muxing, clock
  tree, glitching) that the simulator's first-order model omits.
* `fpga` — a ZCU102-style platform model for end-to-end times
  (compute + burst DMA bulk transfers), used by Table III.
"""

from repro.hls.scheduler import HLSSchedule, hls_cycle_estimate
from repro.hls.rtl_ref import rtl_area_reference, rtl_power_reference
from repro.hls.fpga import FPGAPlatformModel, FPGAResult

__all__ = [
    "HLSSchedule",
    "hls_cycle_estimate",
    "rtl_area_reference",
    "rtl_power_reference",
    "FPGAPlatformModel",
    "FPGAResult",
]
