"""mem2reg: promote scalar allocas to SSA registers.

The classic Cytron et al. algorithm: find promotable allocas (scalar,
only loaded from / stored to), insert phi nodes at iterated dominance
frontiers of defining blocks, then rename along the dominator tree.
This is what turns the frontend's naive stack-based codegen into the
SSA dataflow the accelerator datapath is elaborated from.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.dominance import DominatorTree
from repro.ir.instructions import Alloca, Load, Phi, Store
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Constant, Instruction, Value
from repro.passes.pass_manager import FunctionPass


def _zero_value(type_) -> Value:
    """An "undef" stand-in: reading an uninitialised local yields zero."""
    return Constant(type_, 0)


class Mem2Reg(FunctionPass):
    name = "mem2reg"

    def run(self, func: Function) -> bool:
        # Program-ordered list, not a set: phi placement below iterates
        # it, and iteration order decides phi order in each block — an
        # id()-ordered set would make the printed IR (and hence the
        # module fingerprint) vary between compiles of the same source.
        allocas = self._promotable_allocas(func)
        if not allocas:
            return False
        dt = DominatorTree(func)
        frontier = dt.dominance_frontier()
        phi_sites = self._place_phis(func, allocas, dt, frontier)
        self._rename(func, allocas, phi_sites, dt)
        # Drop the now-dead allocas and their loads/stores.
        for block in func.blocks:
            block.instructions = [
                inst
                for inst in block.instructions
                if not self._is_promoted_access(inst, allocas)
            ]
        return True

    # ------------------------------------------------------------------
    @staticmethod
    def _promotable_allocas(func: Function) -> list[Alloca]:
        allocas = [i for i in func.instructions() if isinstance(i, Alloca)]
        promotable: list[Alloca] = []
        for alloca in allocas:
            if not alloca.allocated_type.is_scalar:
                continue
            ok = True
            for inst in func.instructions():
                if inst is alloca:
                    continue
                for operand in inst.operands:
                    if operand is not alloca:
                        continue
                    is_load = isinstance(inst, Load)
                    is_store_ptr = isinstance(inst, Store) and inst.pointer is alloca and inst.value is not alloca
                    if not (is_load or is_store_ptr):
                        ok = False
            if ok:
                promotable.append(alloca)
        return promotable

    @staticmethod
    def _is_promoted_access(inst: Instruction, allocas) -> bool:
        if isinstance(inst, Alloca) and inst in allocas:
            return True
        if isinstance(inst, Load) and inst.pointer in allocas:
            return True
        if isinstance(inst, Store) and inst.pointer in allocas:
            return True
        return False

    # ------------------------------------------------------------------
    def _place_phis(self, func, allocas, dt, frontier) -> dict[Phi, Alloca]:
        # Work through blocks in function order (the frontier values are
        # sets) so phi placement is deterministic — see run().
        block_order = {block: i for i, block in enumerate(func.blocks)}
        phi_for_alloca: dict[Phi, Alloca] = {}
        for alloca in allocas:
            def_blocks = {
                inst.parent
                for inst in func.instructions()
                if isinstance(inst, Store) and inst.pointer is alloca
            }
            placed: set[BasicBlock] = set()
            work = [b for b in func.blocks
                    if b in def_blocks and dt.is_reachable(b)]
            while work:
                block = work.pop()
                for df_block in sorted(frontier.get(block, ()),
                                       key=block_order.__getitem__):
                    if df_block in placed:
                        continue
                    placed.add(df_block)
                    phi = Phi(alloca.allocated_type)
                    phi.name = func.unique_name(f"{alloca.name}.phi")
                    df_block.insert(0, phi)
                    phi_for_alloca[phi] = alloca
                    if df_block not in def_blocks:
                        work.append(df_block)
        return phi_for_alloca

    def _rename(self, func, allocas, phi_sites, dt) -> None:
        current: dict[Alloca, list[Value]] = {a: [_zero_value(a.allocated_type)] for a in allocas}
        replacements: dict[Instruction, Value] = {}

        def visit(block: BasicBlock) -> None:
            pushed: dict[Alloca, int] = {}
            for inst in list(block.instructions):
                if isinstance(inst, Phi) and inst in phi_sites:
                    alloca = phi_sites[inst]
                    current[alloca].append(inst)
                    pushed[alloca] = pushed.get(alloca, 0) + 1
                elif isinstance(inst, Load) and inst.pointer in allocas:
                    replacements[inst] = current[inst.pointer][-1]
                elif isinstance(inst, Store) and inst.pointer in allocas:
                    value = inst.value
                    value = replacements.get(value, value)
                    alloca = inst.pointer
                    current[alloca].append(value)
                    pushed[alloca] = pushed.get(alloca, 0) + 1
                else:
                    for operand in list(inst.operands):
                        if operand in replacements:
                            inst.replace_operand(operand, replacements[operand])

            for succ in block.successors():
                for phi in succ.phis():
                    if phi in phi_sites:
                        value = current[phi_sites[phi]][-1]
                        value = replacements.get(value, value)
                        phi.add_incoming(value, block)

            for child in dt.children(block):
                visit(child)

            for alloca, count in pushed.items():
                del current[alloca][-count:]

        visit(func.entry)

        # Second pass: fix any remaining references (e.g. phis added before
        # the defining store was visited).
        for block in func.blocks:
            for inst in block.instructions:
                for operand in list(inst.operands):
                    if operand in replacements:
                        inst.replace_operand(operand, replacements[operand])
