"""LLVM Interface: static elaboration and static metrics."""

import pytest

from repro.core.config import DeviceConfig
from repro.core.llvm_interface import LLVMInterface
from repro.frontend import compile_c
from repro.hw.default_profile import default_profile

SRC = """
void k(double a[8], double out[8]) {
  for (int i = 0; i < 8; i++) { out[i] = a[i] * 2.5 + 1.0; }
}
"""


def _iface(config=None, unroll=1):
    module = compile_c(SRC, unroll_factor=unroll)
    return LLVMInterface(module, "k", default_profile(), config or DeviceConfig())


def test_static_metrics_positive():
    iface = _iface()
    assert iface.static.fu_leakage_mw > 0
    assert iface.static.fu_area_um2 > 0
    assert iface.static.register_bits > 0
    assert iface.static.register_area_um2 > 0


def test_static_metrics_scale_with_unrolling():
    small = _iface().static
    large = _iface(unroll=8).static
    assert large.fu_area_um2 > small.fu_area_um2
    assert large.fu_leakage_mw > small.fu_leakage_mw
    assert large.register_bits > small.register_bits


def test_fu_limits_cap_static_power():
    unlimited = _iface(unroll=8).static
    limited = _iface(DeviceConfig(fu_limits={"fp_mul": 1, "fp_add": 1}), unroll=8).static
    assert limited.fu_leakage_mw < unlimited.fu_leakage_mw


def test_latency_overrides():
    iface = _iface(DeviceConfig(latency_overrides={"fp_add": 7}))
    assert iface.latency_for_class("fp_add") == 7
    assert iface.latency_for_class("fp_mul") == 3


def test_area_report_includes_spm():
    iface = _iface()
    report = iface.area_report(spm_um2=12345.0)
    assert report.spm_um2 == 12345.0
    assert report.total_um2 == report.datapath_um2 + 12345.0


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        _iface(DeviceConfig(read_ports=0))
    with pytest.raises(ValueError):
        _iface(DeviceConfig(fu_limits={"fp_add": 0}))


def test_unknown_function_rejected():
    module = compile_c(SRC)
    with pytest.raises(KeyError):
        LLVMInterface(module, "missing", default_profile(), DeviceConfig())
