"""Differential property suite: graph engine ≡ dynamic engine.

The graph backend's contract is *byte-identical* results: for every
registered workload, at every supported unroll factor, the serialized
`RunResult` (stats, energies, occupancy, memory-derived outputs) must
match the dynamic engine's output byte for byte — and the run must
actually have taken the graph path, so a silent fallback can never make
these tests vacuously green.
"""

import json

import pytest

from repro.exec.cache import RunCache
from repro.exec.context import SimContext
from repro.workloads import all_workload_names, get_workload


def _context(name, engine, unroll=1, **kwargs):
    kwargs.setdefault("memory", "spm")
    return SimContext(get_workload(name), seed=7, verify=False,
                      engine=engine, unroll_factor=unroll, **kwargs)


def _run_pair(name, unroll=1, **kwargs):
    dynamic = _context(name, "dynamic", unroll, **kwargs).run()
    ctx = _context(name, "graph", unroll, **kwargs)
    graph = ctx.run()
    assert ctx.engine_used == "graph", (
        f"graph request fell back: {ctx.fallback_reason}")
    return dynamic, graph


# -- the property: every workload × unroll ∈ {1, 4} ---------------------
@pytest.mark.parametrize("unroll", [1, 4])
@pytest.mark.parametrize("name", all_workload_names())
def test_graph_matches_dynamic_byte_identical(name, unroll):
    dynamic, graph = _run_pair(name, unroll)
    # json.dumps preserves dict insertion order, so this asserts byte
    # identity of the serialized results, not just value equality.
    assert json.dumps(graph.to_dict()) == json.dumps(dynamic.to_dict())


@pytest.mark.parametrize("name", ["gemm", "spmv"])
def test_graph_matches_dynamic_ideal_memory(name):
    dynamic, graph = _run_pair(name, unroll=4, memory="ideal")
    assert json.dumps(graph.to_dict()) == json.dumps(dynamic.to_dict())


def test_graph_run_passes_golden_model_verification():
    ctx = SimContext(get_workload("gemm"), seed=7, verify=True,
                     engine="graph", memory="spm", unroll_factor=4)
    ctx.run()  # workload.verify raises on any functional mismatch
    assert ctx.engine_used == "graph"


# -- run-cache interchangeability ---------------------------------------
def test_cache_key_excludes_engine_choice():
    dynamic = _context("gemm", "dynamic", 4)
    graph = _context("gemm", "graph", 4)
    assert dynamic.cache_key() == graph.cache_key()


def test_engines_share_run_cache_entries():
    cache = RunCache()
    dynamic = _context("gemm", "dynamic", 4, cache=cache)
    first = dynamic.run()
    assert cache.misses == 1
    graph = _context("gemm", "graph", 4, cache=cache)
    served = graph.run()
    # The dynamic run's entry satisfies the graph request outright.
    assert cache.hits == 1
    assert graph.engine_used is None  # no simulation ran
    assert served.to_dict() == first.to_dict()


def test_cache_entries_byte_identical_across_engines(tmp_path):
    results = {}
    for engine in ("dynamic", "graph"):
        cache = RunCache(tmp_path / engine)
        _context("gemm", engine, 4, cache=cache).run()
        files = sorted(p.name for p in (tmp_path / engine).glob("*.json"))
        assert len(files) == 1
        results[engine] = (files[0],
                           (tmp_path / engine / files[0]).read_bytes())
    # Same fingerprint-keyed file name, same bytes inside.
    assert results["dynamic"] == results["graph"]


# -- FU pool accounting under contention --------------------------------
def test_fu_stall_stats_match_under_fu_limits():
    from repro.core.config import DeviceConfig

    config = DeviceConfig(fu_limits={"fp_mul": 1, "fp_add": 1})
    dynamic, graph = _run_pair("gemm", unroll=4, config=config)
    assert json.dumps(graph.to_dict()) == json.dumps(dynamic.to_dict())
    stalls = {key: value for key, value in graph.stats.items()
              if "fu_issue_stalls" in key}
    total = sum(sum(value.values()) if isinstance(value, dict) else value
                for value in stalls.values())
    assert stalls and total > 0, (
        "a 1-unit fp pool on unrolled gemm must block some acquires")
