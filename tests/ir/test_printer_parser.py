"""Textual IR: printing, parsing, and the round-trip property."""

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.module import Function, Module
from repro.ir.parser import IRParseError, parse_module
from repro.ir.printer import print_module
from repro.ir.types import DOUBLE, I1, I32, I64, array_of, ptr_to, VOID
from repro.ir.verifier import verify_module


def _saxpy_module():
    m = Module("t")
    f = Function(
        "saxpy", VOID,
        [(ptr_to(DOUBLE), "x"), (ptr_to(DOUBLE), "y"), (I32, "n"), (DOUBLE, "a")],
    )
    m.add_function(f)
    entry, loop, done = f.add_block("entry"), f.add_block("loop"), f.add_block("done")
    b = IRBuilder(entry)
    b.br(loop)
    b.position_at_end(loop)
    i = b.phi(I32, "i")
    i.add_incoming(b.const(I32, 0), entry)
    i64 = b.sext(i, I64)
    px = b.gep(f.args[0], [i64])
    py = b.gep(f.args[1], [i64])
    v = b.fadd(b.fmul(b.load(px), f.args[3]), b.load(py))
    b.store(v, py)
    nxt = b.add(i, b.const(I32, 1))
    i.add_incoming(nxt, loop)
    b.cbr(b.icmp("slt", nxt, f.args[2]), loop, done)
    b.position_at_end(done)
    b.ret()
    return m


def test_roundtrip_saxpy():
    m = _saxpy_module()
    verify_module(m)
    text = print_module(m)
    m2 = parse_module(text)
    verify_module(m2)
    assert print_module(m2) == text


def test_roundtrip_all_scalar_ops():
    text = """define i32 @ops(i32 %a, i32 %b, double %x, double %y) {
entry:
  %t1 = add i32 %a, %b
  %t2 = sub i32 %t1, 7
  %t3 = mul i32 %t2, %a
  %t4 = sdiv i32 %t3, 3
  %t5 = and i32 %t4, 255
  %t6 = shl i32 %t5, 2
  %t7 = xor i32 %t6, -1
  %c1 = icmp sgt i32 %t7, 0
  %f1 = fmul double %x, %y
  %f2 = fdiv double %f1, 2.0
  %c2 = fcmp olt double %f2, %x
  %both = and i1 %c1, %c2
  %sel = select i1 %both, i32 %t7, i32 0
  %w = sext i32 %sel to i64
  %d = sitofp i32 %sel to double
  %s = call double @sqrt(double %d)
  %r = fptosi double %s to i32
  ret i32 %r
}
"""
    m = parse_module(text)
    verify_module(m)
    assert print_module(m) == text


def test_roundtrip_memory_and_arrays():
    text = """define void @k(i32* %p) {
entry:
  %buf = alloca [8 x i32]
  %e = getelementptr [8 x i32]* %buf, i64 0, i64 3
  %v = load i32* %p
  store i32 %v, i32* %e
  %v2 = load i32* %e
  store i32 %v2, i32* %p
  ret void
}
"""
    m = parse_module(text)
    verify_module(m)
    assert print_module(m) == text


def test_parse_negative_and_float_constants():
    text = """define double @c() {
entry:
  %a = fadd double 1.5, -2.5
  %b = fmul double %a, 1e-3
  ret double %b
}
"""
    m = parse_module(text)
    assert print_module(parse_module(print_module(m))) == print_module(m)


def test_comments_and_blank_lines_ignored():
    text = """
; full line comment
define void @f() {
entry:
  ret void ; trailing comment
}
"""
    m = parse_module(text)
    assert "f" in m.functions


def test_multiple_functions_and_calls():
    text = """define i32 @helper(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}

define i32 @main(i32 %a) {
entry:
  %r = call i32 @helper(i32 %a)
  ret i32 %r
}
"""
    m = parse_module(text)
    verify_module(m)
    assert print_module(m) == text


@pytest.mark.parametrize(
    "bad",
    [
        "define void @f( {\nentry:\n  ret void\n}",          # malformed args
        "define void @f() {\nentry:\n  bogus i32 %a\n}",      # unknown op
        "define void @f() {\nentry:\n  %a = add i32 %x, 1\n  ret void\n}",  # undef
        "define void @f() {\nentry:\n  ret void\n",           # missing brace
        "%a = add i32 1, 2",                                   # outside function
        "define void @f() {\n  ret void\n}",                   # inst before label
    ],
)
def test_parse_errors(bad):
    with pytest.raises(IRParseError):
        parse_module(bad)


def test_duplicate_ssa_name_rejected():
    text = """define void @f() {
entry:
  %a = add i32 1, 2
  %a = add i32 3, 4
  ret void
}
"""
    with pytest.raises(IRParseError):
        parse_module(text)


def test_operand_type_mismatch_rejected():
    text = """define void @f(i32 %x) {
entry:
  %a = add i64 %x, 1
  ret void
}
"""
    with pytest.raises(IRParseError):
        parse_module(text)


def test_phi_forward_reference_resolved():
    text = """define i32 @count() {
entry:
  br label %loop
loop:
  %i = phi i32 [ 0, %entry ], [ %next, %loop ]
  %next = add i32 %i, 1
  %done = icmp sge i32 %next, 10
  br i1 %done, label %out, label %loop
out:
  ret i32 %next
}
"""
    m = parse_module(text)
    verify_module(m)
    assert print_module(m) == text


# ----------------------------------------------------------------------
# Round-trip property over every shipped workload
# ----------------------------------------------------------------------
def _workload_params():
    from repro.workloads import all_workload_names

    return all_workload_names()


@pytest.mark.parametrize("name", _workload_params())
def test_roundtrip_property_all_workloads(name):
    """print ∘ parse is the identity on every shipped kernel.

    The fingerprint (sha256 of the printed text) must survive a full
    parse → print → parse cycle: the parser loses nothing the printer
    emits, and the printer is deterministic over parsed modules.
    """
    from repro.build.artifact import module_fingerprint
    from repro.workloads import get_workload

    module = get_workload(name).module()
    verify_module(module)
    fp0 = module_fingerprint(module)

    text = print_module(module)
    once = parse_module(text)
    verify_module(once)
    assert module_fingerprint(once) == fp0

    twice = parse_module(print_module(once))
    assert module_fingerprint(twice) == fp0
    assert print_module(twice) == text
