"""Accelerator cluster (Sec. III-D2).

A pool of accelerators behind a local crossbar, with optional shared
scratchpad and a cluster DMA.  The local crossbar also exposes each
accelerator's MMRs, so accelerators can program and synchronize each
other directly (the capability Fig. 16 exploits); a global crossbar
port reaches DRAM and the host, optionally through a last-level cache.
"""

from __future__ import annotations

from typing import Optional

from repro.core.compute_unit import ComputeUnit
from repro.core.config import DeviceConfig
from repro.hw.profile import HardwareProfile
from repro.ir.module import Module
from repro.mem.cache import Cache
from repro.mem.dma import BlockDMA, StreamDMA
from repro.mem.spm import Scratchpad
from repro.mem.stream_buffer import StreamBuffer
from repro.mem.xbar import Crossbar
from repro.sim.clock import ClockDomain
from repro.sim.simobject import AddrRange, SimObject, System


class AcceleratorCluster(SimObject):
    def __init__(
        self,
        name: str,
        system: System,
        mmr_base: int = 0x1000_0000,
        spm_base: int = 0x2000_0000,
        shared_spm_bytes: int = 0,
        dma_burst_bytes: int = 64,
        clock: Optional[ClockDomain] = None,
    ) -> None:
        super().__init__(name, system, clock)
        self.local_xbar = Crossbar(f"{name}.lxbar", system, clock=clock)
        self.accelerators: list[ComputeUnit] = []
        self._mmr_cursor = mmr_base
        self._spm_cursor = spm_base
        self.shared_spm: Optional[Scratchpad] = None
        if shared_spm_bytes:
            self.shared_spm = Scratchpad(
                f"{name}.shared_spm",
                system,
                base=self._alloc_spm_range(shared_spm_bytes),
                size=shared_spm_bytes,
                read_ports=4,
                write_ports=4,
                clock=clock,
            )
            self.local_xbar.attach_slave(
                self.shared_spm.make_port("lx"), self.shared_spm.range, label="sspm"
            )
        self.dma = BlockDMA(f"{name}.dma", system, burst_bytes=dma_burst_bytes, clock=clock)
        self.dma.port.bind(self.local_xbar.slave_port("dma"))
        self.stream_dmas: list[StreamDMA] = []
        self.stream_buffers: list[StreamBuffer] = []

    # -- address allocation ----------------------------------------------------
    def _alloc_mmr_range(self, size: int = 0x1000) -> int:
        base = self._mmr_cursor
        self._mmr_cursor += size
        return base

    def _alloc_spm_range(self, size: int) -> int:
        base = self._spm_cursor
        self._spm_cursor += (size + 0xFFF) & ~0xFFF
        return base

    # -- membership ---------------------------------------------------------------
    def add_accelerator(
        self,
        name: str,
        module: Module,
        func_name: str,
        profile: HardwareProfile,
        config: Optional[DeviceConfig] = None,
        private_spm_bytes: int = 0,
        private_cache: Optional[dict] = None,
        spm_read_ports: int = 2,
        spm_write_ports: int = 2,
    ) -> ComputeUnit:
        """Create an accelerator, wire its memory paths, expose its MMRs."""
        unit = ComputeUnit(
            name,
            self.system,
            module,
            func_name,
            profile,
            config=config,
            mmr_base=self._alloc_mmr_range(),
            clock=None,
        )
        # MMRs are reachable from the cluster (and beyond) for control.
        self.local_xbar.attach_slave(unit.comm.mmr.pio, unit.comm.mmr.range, label=f"{name}.mmr")

        if private_spm_bytes:
            spm = Scratchpad(
                f"{name}.spm",
                self.system,
                base=self._alloc_spm_range(private_spm_bytes),
                size=private_spm_bytes,
                read_ports=spm_read_ports,
                write_ports=spm_write_ports,
                clock=unit.clock,
            )
            unit.attach_private_spm(spm)
            unit.comm.add_memory_route(spm.range, spm.make_port("acc"), label="spm")
            # The DMA and other cluster members reach the private SPM too.
            self.local_xbar.attach_slave(spm.make_port("lx"), spm.range, label=f"{name}.spm")

        if private_cache is not None:
            cache = Cache(
                f"{name}.l1",
                self.system,
                clock=unit.clock,
                **private_cache,
            )
            cache_window = private_cache.get("window") or AddrRange(0x8000_0000, 1 << 30)
            unit.comm.add_memory_route(
                self._cache_window(cache_window), cache.cpu_side, label="cache"
            )
            cache.mem_side.bind(self.local_xbar.slave_port(f"{name}.l1"))
            unit.cache = cache

        self.accelerators.append(unit)
        return unit

    @staticmethod
    def _cache_window(window) -> AddrRange:
        if isinstance(window, AddrRange):
            return window
        return AddrRange(window[0], window[1])

    def route_to_global(self, unit: ComputeUnit, addr_range: AddrRange) -> None:
        """Give ``unit`` a direct (uncached) path to ``addr_range`` via the
        local crossbar (e.g. shared SPM or DRAM)."""
        unit.comm.add_memory_route(
            addr_range, self.local_xbar.slave_port(f"{unit.name}.up"), label="up"
        )

    def connect_global(self, global_xbar: Crossbar, dram_range: AddrRange,
                       llc: Optional[Cache] = None) -> None:
        """Attach the cluster below ``global_xbar``.

        Upward: DRAM accesses leave through (optionally) the LLC.
        Downward: the cluster's MMRs and SPMs become visible globally.
        """
        if llc is not None:
            llc.mem_side.bind(global_xbar.slave_port(f"{self.name}.llc"))
            self.local_xbar.attach_slave(llc.cpu_side, dram_range, label="dram")
        else:
            self.local_xbar.attach_slave(
                global_xbar.slave_port(f"{self.name}.up"), dram_range, label="dram"
            )
        # Expose the full cluster-local address space (MMRs + SPMs).
        start = min(
            [a.comm.mmr.range.start for a in self.accelerators]
            + ([self.shared_spm.range.start] if self.shared_spm else [])
        )
        end = max(
            [a.comm.mmr.range.end for a in self.accelerators]
            + [self._spm_cursor]
            + ([self.shared_spm.range.end] if self.shared_spm else [])
        )
        global_xbar.attach_slave(
            self.local_xbar.slave_port("global_in"),
            AddrRange(start, end - start),
            label=f"{self.name}.local",
        )

    # -- streaming ------------------------------------------------------------------
    def add_stream_buffer(self, name: str, capacity_tokens: int = 16, token_bytes: int = 8) -> StreamBuffer:
        buffer = StreamBuffer(
            f"{self.name}.{name}", self.system, capacity_tokens, token_bytes, clock=self.clock
        )
        self.stream_buffers.append(buffer)
        return buffer

    def add_stream_dma(self, name: str, buffer: StreamBuffer, direction: str) -> StreamDMA:
        dma = StreamDMA(f"{self.name}.{name}", self.system, buffer, direction, clock=self.clock)
        dma.port.bind(self.local_xbar.slave_port(name))
        self.stream_dmas.append(dma)
        return dma

    # -- reporting --------------------------------------------------------------------
    def power_report(self):
        report = None
        for unit in self.accelerators:
            unit_report = unit.power_report()
            report = unit_report if report is None else report.merged(unit_report)
        return report
