"""gem5-SALAM core: LLVM interface, runtime engine, system integration.

This package is the paper's primary contribution:

* `config` — the "device config": datapath constraints and runtime knobs.
* `cdfg` — the statically elaborated CDFG with FU mapping and the
  register netlist (Sec. III-A2).
* `llvm_interface` — static elaboration plus static power/area analysis
  (Sec. III-C1).
* `runtime` — the dynamic LLVM runtime engine: reservation queue,
  compute queue, memory queues, runtime scheduler (Sec. III-B).
* `compute_unit` / `comm_interface` — the two base API models
  (Sec. III-D1).
* `cluster` — the hierarchical accelerator-cluster construct
  (Sec. III-D2).
* `occupancy` — cycle-level scheduling/stall/occupancy profiling
  (Sec. III-C2, Figs. 14-15).
"""

from repro.core.config import DeviceConfig
from repro.core.cdfg import StaticCDFG, StaticNode
from repro.core.llvm_interface import LLVMInterface
from repro.core.runtime import RuntimeEngine, DynInst
from repro.core.comm_interface import CommInterface
from repro.core.compute_unit import ComputeUnit
from repro.core.cluster import AcceleratorCluster
from repro.core.occupancy import OccupancyTracker

__all__ = [
    "DeviceConfig",
    "StaticCDFG",
    "StaticNode",
    "LLVMInterface",
    "RuntimeEngine",
    "DynInst",
    "CommInterface",
    "ComputeUnit",
    "AcceleratorCluster",
    "OccupancyTracker",
]
