"""Design-space exploration harness (Sec. IV-D)."""

from repro.dse.sweep import ParallelSweep, SweepPoint, grid_points, sweep
from repro.dse.pareto import pareto_front
from repro.dse.reports import format_table, to_csv, to_json
from repro.exec.cache import RunCache

__all__ = [
    "SweepPoint",
    "sweep",
    "grid_points",
    "ParallelSweep",
    "RunCache",
    "pareto_front",
    "format_table",
    "to_csv",
    "to_json",
]
