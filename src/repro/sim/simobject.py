"""SimObject base class and the top-level System container.

Every modelled hardware component derives from :class:`SimObject`, which
ties together a name, the shared event queue, a clock domain, and a stat
group.  :class:`System` owns the event queue, the registry of objects,
and the address map used to route packets.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.clock import ClockDomain, ClockedObject
from repro.sim.eventq import EventQueue
from repro.sim.stats import StatGroup, format_stats


class AddrRange:
    """A half-open address interval [start, end)."""

    __slots__ = ("start", "end")

    def __init__(self, start: int, size: int) -> None:
        if size <= 0:
            raise ValueError(f"address range size must be positive, got {size}")
        self.start = start
        self.end = start + size

    @property
    def size(self) -> int:
        return self.end - self.start

    def contains(self, addr: int, size: int = 1) -> bool:
        return self.start <= addr and addr + size <= self.end

    def overlaps(self, other: "AddrRange") -> bool:
        return self.start < other.end and other.start < self.end

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"[{self.start:#x}, {self.end:#x})"


class SimObject(ClockedObject):
    """Base class for all modelled components."""

    def __init__(self, name: str, system: "System", clock: Optional[ClockDomain] = None) -> None:
        super().__init__(system.eventq, clock or system.clock)
        self.name = name
        self.system = system
        self.stats = StatGroup(name)
        system.register(self)

    def init(self) -> None:
        """Called once after the full system is wired, before simulation."""

    def reset(self) -> None:
        """Tear down run state so the object can simulate again.

        The base implementation clears statistics; objects with internal
        queues or in-flight transactions override and chain up.
        """
        self.reset_stats()

    def reset_stats(self) -> None:
        self.stats.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"


class System:
    """Top-level container: event queue, clocks, object registry."""

    def __init__(self, name: str = "system", clock_freq_hz: float = 1e9) -> None:
        self.name = name
        self.eventq = EventQueue(name)
        self.clock = ClockDomain(f"{name}.clk", clock_freq_hz)
        self.objects: dict[str, SimObject] = {}
        self._initialized = False

    def register(self, obj: SimObject) -> None:
        if obj.name in self.objects:
            raise ValueError(f"duplicate SimObject name '{obj.name}'")
        self.objects[obj.name] = obj

    def __getitem__(self, name: str) -> SimObject:
        return self.objects[name]

    def init_all(self) -> None:
        for obj in self.objects.values():
            obj.init()
        self._initialized = True

    def run(self, max_tick: Optional[int] = None, max_events: Optional[int] = None) -> str:
        """Initialise (once) and drain the event queue."""
        if not self._initialized:
            self.init_all()
        return self.eventq.run(max_tick=max_tick, max_events=max_events)

    @property
    def cur_tick(self) -> int:
        return self.eventq.cur_tick

    def dump_stats(self) -> dict:
        merged: dict = {}
        for obj in self.objects.values():
            merged.update(obj.stats.dump())
        return merged

    def stats_report(self) -> str:
        return format_stats(self.dump_stats(), title=self.name)

    def reset_stats(self) -> None:
        for obj in self.objects.values():
            obj.reset_stats()

    def reset(self) -> None:
        """Tear down run state so the system can be reused.

        Clears the event queue (pending events, current tick, any stale
        exit cause), resets every registered object, and re-arms
        :meth:`init_all` for the next :meth:`run`.
        """
        self.eventq.reset()
        for obj in self.objects.values():
            obj.reset()
        self._initialized = False
