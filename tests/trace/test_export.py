"""Trace exporters: Chrome JSON schema, text log, occupancy timeline."""

import json

from repro.trace import (
    TraceHub,
    chrome_trace,
    format_timeline,
    occupancy_timeline,
    to_chrome_json,
    to_text,
    write_trace,
)


def _sample_hub():
    hub = TraceHub()
    hub.emit("compute", "acc.engine", "fadd", 10_000, dur=5_000,
             args={"seq": 1})
    hub.emit("mem", "spm", "read", 12_000, dur=2_000,
             args={"addr": 0x2000_0000, "size": 8})
    hub.emit("irq", "gic", "raise", 20_000, args={"irq": 0})
    hub.emit("sched", "acc.engine", "cycle", 10_000, dur=10_000,
             args={"issued": 2, "blocked": {"mem": 1}, "outstanding": ["load"]})
    return hub


def test_chrome_json_parses_with_required_keys():
    doc = json.loads(to_chrome_json(_sample_hub()))
    events = doc["traceEvents"]
    assert events
    for event in events:
        assert "ph" in event and "ts" in event and "pid" in event


def test_chrome_spans_and_instants():
    doc = chrome_trace(_sample_hub())
    by_name = {e["name"]: e for e in doc["traceEvents"]}
    # Durations become complete spans ('X'), microsecond units.
    assert by_name["fadd"]["ph"] == "X"
    assert by_name["fadd"]["ts"] == 0.01 and by_name["fadd"]["dur"] == 0.005
    # Zero-duration events become thread-scoped instants.
    assert by_name["raise"]["ph"] == "i" and by_name["raise"]["s"] == "t"
    assert by_name["raise"]["cat"] == "irq"


def test_chrome_one_track_per_source():
    doc = chrome_trace(_sample_hub())
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    names = {e["args"]["name"]: e["tid"] for e in meta}
    assert set(names) == {"acc.engine", "spm", "gic"}
    assert len(set(names.values())) == 3  # distinct tids
    fadd = next(e for e in doc["traceEvents"] if e["name"] == "fadd")
    assert fadd["tid"] == names["acc.engine"]


def test_chrome_exact_microsecond_timestamps_are_ints():
    hub = TraceHub()
    hub.emit("compute", "acc", "add", 3_000_000, dur=1_000_000)
    event = next(e for e in chrome_trace(hub)["traceEvents"] if e["ph"] == "X")
    assert event["ts"] == 3 and isinstance(event["ts"], int)
    assert event["dur"] == 1 and isinstance(event["dur"], int)


def test_chrome_summary_rides_in_other_data():
    doc = chrome_trace(_sample_hub())
    assert doc["otherData"]["generator"] == "repro.trace"
    assert doc["otherData"]["summary"]["total_emitted"] == 4


def test_text_log_lists_events_and_drops():
    hub = TraceHub(capacity=2)
    for i in range(5):
        hub.emit("compute", "acc", "add", i)
    text = to_text(hub)
    assert "compute" in text and "acc" in text
    assert "3 events dropped" in text


def test_text_log_limit():
    text = to_text(_sample_hub(), limit=2)
    assert "... 2 more events" in text


def test_occupancy_timeline_from_sched_channel():
    rows = occupancy_timeline(_sample_hub())
    assert rows == [{
        "tick": 10_000, "source": "acc.engine", "issued": 2,
        "blocked": {"mem": 1}, "outstanding": ["load"],
    }]
    rendered = format_timeline(rows)
    assert "acc.engine" in rendered and "mem=1" in rendered


def test_occupancy_timeline_source_filter():
    hub = _sample_hub()
    assert occupancy_timeline(hub, source="other") == []
    assert format_timeline([]) .startswith("(no sched events")


def test_write_trace_chrome_and_text(tmp_path):
    hub = _sample_hub()
    chrome_path = write_trace(hub, tmp_path / "t.json")
    doc = json.loads(chrome_path.read_text())
    assert doc["traceEvents"]
    text_path = write_trace(hub, tmp_path / "t.txt", format="text")
    assert "compute" in text_path.read_text()
