"""Parameter sweeps over accelerator configurations.

The paper's DSE flow (Fig. 13-15) is a bash loop over device configs;
here `sweep` is the equivalent harness: it builds a fresh standalone
accelerator per parameter point, runs the same staged workload, and
collects (config, cycles, power, occupancy) records.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

import numpy as np

from repro.core.config import DeviceConfig
from repro.system.soc import RunResult, StandaloneAccelerator
from repro.workloads.base import Workload


@dataclass
class SweepPoint:
    params: dict
    result: RunResult

    @property
    def cycles(self) -> int:
        return self.result.cycles

    @property
    def runtime_us(self) -> float:
        return self.result.runtime_ns / 1e3

    @property
    def power_mw(self) -> float:
        return self.result.power.total_mw

    def record(self) -> dict:
        """Flat dict for CSV export."""
        row = dict(self.params)
        row.update(
            cycles=self.cycles,
            runtime_us=self.runtime_us,
            power_mw=self.power_mw,
            stall_fraction=self.result.occupancy.stall_fraction(),
            issue_fraction=self.result.occupancy.issue_fraction(),
        )
        return row


def sweep(
    workload: Workload,
    param_grid: dict[str, Iterable],
    configure: Callable[[dict], dict],
    seed: int = 7,
    verify: bool = True,
    unroll_factor: int = 1,
) -> list[SweepPoint]:
    """Run ``workload`` across the cartesian product of ``param_grid``.

    ``configure(params)`` maps one parameter point to the keyword
    arguments of `StandaloneAccelerator` (it may include a 'config'
    DeviceConfig).  Every point runs the same dataset (same seed), so
    differences are purely architectural.
    """
    keys = list(param_grid)
    points: list[SweepPoint] = []
    for values in itertools.product(*(param_grid[k] for k in keys)):
        params = dict(zip(keys, values))
        kwargs = configure(params)
        kwargs.setdefault("unroll_factor", unroll_factor)
        acc = StandaloneAccelerator(workload.source, workload.func_name, **kwargs)
        data = workload.make_data(np.random.default_rng(seed))
        args, addresses = workload.stage(acc, data)
        result = acc.run(args)
        if verify:
            workload.verify(acc, addresses, data)
        points.append(SweepPoint(params=params, result=result))
    return points
