"""Command-line interface."""

import pytest

from repro.cli import main

KERNEL = """
void scale(double x[16], double y[16]) {
  for (int i = 0; i < 16; i++) { y[i] = x[i] * 2.0; }
}
"""


@pytest.fixture
def kernel_file(tmp_path):
    path = tmp_path / "kernel.c"
    path.write_text(KERNEL)
    return str(path)


def test_compile_prints_ir(kernel_file, capsys):
    assert main(["compile", kernel_file]) == 0
    out = capsys.readouterr().out
    assert "define void @scale" in out
    assert "fmul double" in out


def test_compile_to_file_roundtrips(kernel_file, tmp_path, capsys):
    out_path = tmp_path / "kernel.ll"
    assert main(["compile", kernel_file, "-o", str(out_path)]) == 0
    from repro.ir.parser import parse_module
    from repro.ir.verifier import verify_module

    module = parse_module(out_path.read_text())
    verify_module(module)
    assert "scale" in module.functions


def test_compile_unroll_grows_ir(kernel_file, capsys):
    main(["compile", kernel_file])
    plain = capsys.readouterr().out
    main(["compile", kernel_file, "--unroll", "4"])
    unrolled = capsys.readouterr().out
    assert unrolled.count("fmul") > plain.count("fmul")


def test_elaborate_reports_fus(kernel_file, capsys):
    assert main(["elaborate", kernel_file, "--func", "scale"]) == 0
    out = capsys.readouterr().out
    assert "fp_mul" in out
    assert "register bits" in out


def test_elaborate_fu_limit(kernel_file, capsys):
    main(["elaborate", kernel_file, "--unroll", "4", "--fu-limit", "fp_mul=2"])
    out = capsys.readouterr().out
    assert "fp_mul       2" in out


def test_elaborate_bad_fu_limit(kernel_file):
    with pytest.raises(SystemExit):
        main(["elaborate", kernel_file, "--fu-limit", "fp_mul=lots"])


def test_missing_source_file():
    with pytest.raises(SystemExit):
        main(["compile", "/nonexistent/kernel.c"])


def test_workloads_listing(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "gemm" in out and "fft" in out


def test_run_workload(capsys):
    assert main(["run", "spmv", "--ports", "4"]) == 0
    out = capsys.readouterr().out
    assert "verified" in out
    assert "cycles" in out


def test_sweep(capsys):
    assert main(["sweep", "spmv", "--ports", "1", "4"]) == 0
    out = capsys.readouterr().out
    assert "port sweep" in out
    assert "pareto" in out
