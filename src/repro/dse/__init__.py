"""Design-space exploration harness (Sec. IV-D)."""

from repro.dse.sweep import SweepPoint, sweep
from repro.dse.pareto import pareto_front
from repro.dse.reports import format_table, to_csv

__all__ = ["SweepPoint", "sweep", "pareto_front", "format_table", "to_csv"]
