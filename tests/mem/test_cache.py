"""Cache: timing overlay correctness and functional transparency."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import Cache
from repro.mem.dram import DRAM
from repro.sim.packet import read_packet, write_packet
from repro.sim.ports import MasterPort
from repro.sim.simobject import System


def _build(system, **cache_kwargs):
    dram = DRAM("dram", system, base=0, size=1 << 16, latency_cycles=50)
    cache = Cache("l1", system, **cache_kwargs)
    cache.mem_side.bind(dram.port)
    responses = []
    master = MasterPort("m", recv_timing_resp=responses.append)
    master.bind(cache.cpu_side)
    return dram, cache, master, responses


def test_bad_geometry_rejected(system):
    with pytest.raises(ValueError):
        Cache("c", system, size=100, line_size=64, assoc=4)


def test_cold_miss_then_hit(system):
    dram, cache, master, responses = _build(system)
    dram.image.write(0x100, b"\x42" + bytes(7))
    master.send_timing_req(read_packet(0x100, 8))
    system.run()
    miss_time = responses[0].resp_tick
    assert responses[0].data[0] == 0x42
    assert cache.stat_misses.value() == 1

    master.send_timing_req(read_packet(0x108, 8))  # same line
    system.run()
    hit_time = responses[1].resp_tick - miss_time
    assert cache.stat_hits.value() == 1
    assert hit_time < miss_time


def test_writes_are_functionally_visible_downstream(system):
    dram, cache, master, responses = _build(system)
    master.send_timing_req(write_packet(0x200, b"\x99" * 8))
    system.run()
    assert dram.image.read(0x200, 8) == b"\x99" * 8


def test_mshr_merging(system):
    dram, cache, master, responses = _build(system)
    for i in range(4):
        master.send_timing_req(read_packet(0x300 + i * 8, 8))  # same line
    system.run()
    assert len(responses) == 4
    assert cache.stat_misses.value() == 1
    assert cache.stat_mshr_merges.value() == 3


def test_eviction_and_writeback(system):
    dram, cache, master, responses = _build(
        system, size=256, line_size=64, assoc=1
    )  # 4 sets, direct mapped
    master.send_timing_req(write_packet(0x0, b"\x01" * 8))
    system.run()
    # Same set, different tag: evicts the dirty line -> writeback traffic.
    master.send_timing_req(read_packet(0x400, 8))
    system.run()
    assert cache.stat_writebacks.value() == 1
    assert dram.image.read(0x0, 8) == b"\x01" * 8


def test_oversize_access_rejected(system):
    __, cache, master, __ = _build(system, line_size=64)
    with pytest.raises(ValueError):
        master.send_timing_req(read_packet(0, 128))


def test_miss_rate_formula(system):
    dram, cache, master, responses = _build(system)
    master.send_timing_req(read_packet(0, 8))
    system.run()
    master.send_timing_req(read_packet(0, 8))
    system.run()
    stats = cache.stats.dump()
    assert stats["l1.miss_rate"] == pytest.approx(0.5)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 255), st.booleans()), min_size=1, max_size=40))
def test_cache_is_functionally_transparent(ops):
    """Property: any access pattern through the cache yields exactly the
    same data as direct backing-store access (timing never corrupts)."""
    system = System("p")
    dram, cache, master, responses = _build(system, size=256, line_size=32, assoc=2)
    shadow = bytearray(1 << 16)
    for i, (word_index, is_write) in enumerate(ops):
        addr = word_index * 8
        if is_write:
            payload = bytes([i % 256]) * 8
            shadow[addr : addr + 8] = payload
            master.send_timing_req(write_packet(addr, payload))
        else:
            master.send_timing_req(read_packet(addr, 8))
        system.run()
    reads = [
        (ops[i], r) for i, r in enumerate(responses) if r.data is not None
    ]
    # Re-check final memory state.
    for word_index in {w for w, __ in ops}:
        addr = word_index * 8
        assert dram.image.read(addr, 8) == bytes(shadow[addr : addr + 8])
