"""Tabular report helpers: ASCII tables, CSV, and JSON export."""

from __future__ import annotations

import io
from typing import Optional, Sequence

from repro.sim.stats import stats_to_json


def format_table(
    rows: Sequence[dict],
    columns: Optional[list[str]] = None,
    title: str = "",
    float_fmt: str = "{:.3f}",
) -> str:
    """Render dict-rows as an aligned ASCII table (paper-style)."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    columns = columns or list(rows[0].keys())

    def cell(value) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    rendered = [[cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(value.ljust(w) for value, w in zip(row, widths)))
    return "\n".join(lines)


def to_csv(rows: Sequence[dict], columns: Optional[list[str]] = None) -> str:
    """Serialize dict-rows to CSV text (the paper exports sweeps as CSV)."""
    if not rows:
        return ""
    columns = columns or list(rows[0].keys())
    buffer = io.StringIO()
    buffer.write(",".join(columns) + "\n")
    for row in rows:
        buffer.write(",".join(str(row.get(col, "")) for col in columns) + "\n")
    return buffer.getvalue()


def to_json(rows: Sequence[dict], indent: Optional[int] = 2) -> str:
    """Serialize dict-rows through the shared stats JSON path
    (`repro.sim.stats.stats_to_json`), same as trace summaries."""
    return stats_to_json(list(rows), indent=indent)
