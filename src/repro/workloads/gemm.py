"""GEMM (MachSuite gemm/ncubed), scaled to 16x16 doubles."""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Workload, WorkloadData

N = 16

SOURCE = f"""
void gemm(double m1[{N * N}], double m2[{N * N}], double prod[{N * N}]) {{
  for (int i = 0; i < {N}; i++) {{
    for (int j = 0; j < {N}; j++) {{
      double sum = 0;
      for (int k = 0; k < {N}; k++) {{
        double mult = m1[i * {N} + k] * m2[k * {N} + j];
        sum += mult;
      }}
      prod[i * {N} + j] = sum;
    }}
  }}
}}
"""


def make_data(rng: np.random.Generator) -> WorkloadData:
    m1 = rng.uniform(-1.0, 1.0, size=(N, N))
    m2 = rng.uniform(-1.0, 1.0, size=(N, N))
    prod = np.zeros((N, N))
    golden = np.empty((N, N))
    for i in range(N):
        for j in range(N):
            acc = 0.0
            for k in range(N):
                acc += m1[i, k] * m2[k, j]
            golden[i, j] = acc
    return WorkloadData(
        inputs={"m1": m1, "m2": m2, "prod": prod},
        output_names=["prod"],
        golden={"prod": golden},
    )


WORKLOAD = Workload(
    name="gemm",
    source=SOURCE,
    func_name="gemm",
    arg_order=["m1", "m2", "prod"],
    make_data=make_data,
    description=f"dense {N}x{N} double matrix multiply (n-cubed)",
)


# ---------------------------------------------------------------------------
# DSE variant: a smaller GEMM meant to be *fully unrolled* (the paper's
# "N-Cubed (Fully unrolled)" configuration of Table II and the Fig. 13-15
# design-space studies).  8x8 keeps the flattened datapath simulable in
# seconds while still exposing hundreds of parallel memory accesses.
N_DSE = 8

SOURCE_DSE = f"""
void gemm_dse(double m1[{N_DSE * N_DSE}], double m2[{N_DSE * N_DSE}],
              double prod[{N_DSE * N_DSE}]) {{
  for (int i = 0; i < {N_DSE}; i++) {{
    for (int j = 0; j < {N_DSE}; j++) {{
      double sum = 0;
      for (int k = 0; k < {N_DSE}; k++) {{
        double mult = m1[i * {N_DSE} + k] * m2[k * {N_DSE} + j];
        sum += mult;
      }}
      prod[i * {N_DSE} + j] = sum;
    }}
  }}
}}
"""


def make_data_dse(rng: np.random.Generator) -> WorkloadData:
    m1 = rng.uniform(-1.0, 1.0, size=(N_DSE, N_DSE))
    m2 = rng.uniform(-1.0, 1.0, size=(N_DSE, N_DSE))
    golden = np.empty((N_DSE, N_DSE))
    for i in range(N_DSE):
        for j in range(N_DSE):
            acc = 0.0
            for k in range(N_DSE):
                acc += m1[i, k] * m2[k, j]
            golden[i, j] = acc
    return WorkloadData(
        inputs={"m1": m1, "m2": m2, "prod": np.zeros((N_DSE, N_DSE))},
        output_names=["prod"],
        golden={"prod": golden},
    )


GEMM_DSE = Workload(
    name="gemm_dse",
    source=SOURCE_DSE,
    func_name="gemm_dse",
    arg_order=["m1", "m2", "prod"],
    make_data=make_data_dse,
    description=f"{N_DSE}x{N_DSE} GEMM for fully-unrolled design sweeps",
    default_unroll=N_DSE,
)
