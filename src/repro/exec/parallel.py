"""Process-parallel design-space sweeps.

The paper's DSE figures (13-15) are embarrassingly parallel: every
parameter point is an independent simulation over the same seeded
dataset.  `ParallelSweep` fans the points out over a
`ProcessPoolExecutor` and reassembles the results in grid order, so the
output is independent of scheduling.  Determinism is guaranteed by
construction:

* each worker builds its own `SimContext` from a pickled spec (no
  shared simulator state), and
* *every* result — serial or parallel — crosses a lossless
  `RunResult.to_dict()`/`from_dict()` round trip, so ``workers=N``
  produces byte-identical `SweepPoint.record()` rows to ``workers=1``.

With a `RunCache` attached, already-known points skip simulation
entirely; only the misses are submitted to the pool.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.exec.cache import RunCache, run_cache_key
from repro.exec.context import SimContext
from repro.system.soc import RunResult
from repro.trace import TraceConfig
from repro.workloads.base import Workload


@dataclass
class SweepPoint:
    params: dict
    result: RunResult

    @property
    def cycles(self) -> int:
        return self.result.cycles

    @property
    def runtime_us(self) -> float:
        return self.result.runtime_ns / 1e3

    @property
    def power_mw(self) -> float:
        return self.result.power.total_mw

    def record(self) -> dict:
        """Flat dict for CSV export."""
        row = dict(self.params)
        row.update(
            cycles=self.cycles,
            runtime_us=self.runtime_us,
            power_mw=self.power_mw,
            stall_fraction=self.result.occupancy.stall_fraction(),
            issue_fraction=self.result.occupancy.issue_fraction(),
        )
        return row


def grid_points(param_grid: dict[str, Iterable]) -> list[dict]:
    """Cartesian product of a parameter grid, in key-major order."""
    keys = list(param_grid)
    return [
        dict(zip(keys, values))
        for values in itertools.product(*(param_grid[k] for k in keys))
    ]


def _execute_point(workload: Workload, acc_kwargs: dict, seed: int,
                   verify: bool, max_ticks: Optional[int],
                   trace: Optional[TraceConfig] = None) -> dict:
    """Worker body: one full SimContext lifecycle, returned as a payload dict.

    Runs in a pool process (or inline for the serial path — the same
    code either way, which is what makes the two paths byte-identical).
    """
    ctx = SimContext(workload, seed=seed, verify=verify, max_ticks=max_ticks,
                     trace=trace, **acc_kwargs)
    return ctx.run().to_dict()


@dataclass
class ParallelSweep:
    """Sweep executor: ``workers=1`` is the deterministic serial path,
    ``workers=N`` fans pending points out across processes."""

    workers: int = 1
    cache: Optional[RunCache] = None
    verify: bool = True
    max_ticks: Optional[int] = None
    #: Optional tracing for every point (TraceConfig or channel spec).
    #: Observability only — never part of the run-cache key, so a traced
    #: sweep and an untraced one share cached results.
    trace: object = None

    def run(
        self,
        workload: Workload,
        param_grid: dict[str, Iterable],
        configure: Callable[[dict], dict],
        seed: int = 7,
        unroll_factor: int = 1,
    ) -> list[SweepPoint]:
        """Run ``workload`` across the cartesian product of ``param_grid``.

        ``configure(params)`` maps one parameter point to the keyword
        arguments of `StandaloneAccelerator` (it may include a 'config'
        DeviceConfig).  Every point runs the same dataset (same seed), so
        differences are purely architectural.
        """
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        entries: list[tuple[dict, dict]] = []
        for params in grid_points(param_grid):
            kwargs = configure(params)
            kwargs.setdefault("unroll_factor", unroll_factor)
            entries.append((params, kwargs))

        results: list[Optional[RunResult]] = [None] * len(entries)
        pending: list[tuple[int, Optional[str], dict]] = []
        for index, (params, kwargs) in enumerate(entries):
            key: Optional[str] = None
            if self.cache is not None:
                key = run_cache_key(workload.source, workload.func_name,
                                    seed=seed, **kwargs)
                cached = self.cache.get(key)
                if cached is not None:
                    results[index] = cached
                    continue
            pending.append((index, key, kwargs))

        payloads = self._execute(workload, pending, seed)
        for (index, key, __), payload in zip(pending, payloads):
            result = RunResult.from_dict(payload)
            results[index] = result
            if key is not None:
                self.cache.put(key, result)
        return [
            SweepPoint(params=params, result=result)
            for (params, __), result in zip(entries, results)
        ]

    # ------------------------------------------------------------------
    def _execute(self, workload: Workload,
                 pending: list[tuple[int, Optional[str], dict]],
                 seed: int) -> list[dict]:
        """Run the pending points, preserving submission order."""
        trace = TraceConfig.coerce(self.trace)
        serial = lambda: [
            _execute_point(workload, kwargs, seed, self.verify, self.max_ticks,
                           trace)
            for __, __, kwargs in pending
        ]
        if self.workers == 1 or len(pending) <= 1:
            return serial()
        try:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                futures = [
                    pool.submit(_execute_point, workload, kwargs, seed,
                                self.verify, self.max_ticks, trace)
                    for __, __, kwargs in pending
                ]
                return [future.result() for future in futures]
        except (BrokenProcessPool, PermissionError, OSError):
            # No process support in this environment (e.g. a sandbox
            # that forbids fork/semaphores): degrade to the serial path,
            # which produces identical results.
            return serial()
