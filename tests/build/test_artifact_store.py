"""ArtifactStore: hit/miss accounting, disk round-trip, quarantine."""

import pickle

import pytest

from repro.build import Artifact, ArtifactStore, artifact_key, build_module
from repro.build.artifact import module_fingerprint
from repro.ir.printer import print_module

SRC = """
void axpy(double a[16], double b[16]) {
  for (int i = 0; i < 16; i++) { b[i] = b[i] + 2.0 * a[i]; }
}
"""
KEY = artifact_key(SRC, "axpy", "o1")


def _compiled(store=None):
    return build_module(SRC, "axpy", pipeline="o1", store=store)


# -- in-memory --------------------------------------------------------------
def test_miss_then_hit_accounting():
    store = ArtifactStore()
    assert store.get(KEY) is None
    artifact = _compiled(store)          # miss -> compile -> put
    assert store.misses == 2             # explicit get above + build's probe
    assert store.hits == 0
    again = _compiled(store)
    assert store.hits == 1
    assert again.meta["cached"] is True
    assert artifact.meta["cached"] is False
    assert print_module(again.module) == print_module(artifact.module)


def test_hits_are_private_copies():
    store = ArtifactStore()
    _compiled(store)
    first = store.get(KEY)
    first.module.functions.clear()       # vandalise the returned copy
    second = store.get(KEY)
    assert "axpy" in second.module.functions


def test_contains_len_clear():
    store = ArtifactStore()
    assert KEY not in store and len(store) == 0
    _compiled(store)
    assert KEY in store and len(store) == 1
    store.clear()
    assert KEY not in store and len(store) == 0
    assert store.hits == store.misses == 0


# -- on disk ----------------------------------------------------------------
def test_disk_round_trip_is_lossless(tmp_path):
    artifact = _compiled(ArtifactStore(tmp_path))
    assert (tmp_path / f"{KEY}.art").exists()
    # A brand-new store (fresh process stand-in) hits from disk with
    # byte-identical IR.
    reloaded = ArtifactStore(tmp_path).get(KEY)
    assert reloaded is not None
    assert print_module(reloaded.module) == print_module(artifact.module)
    assert module_fingerprint(reloaded.module) == artifact.meta["fingerprint"]


def test_put_leaves_no_temp_files(tmp_path):
    store = ArtifactStore(tmp_path)
    _compiled(store)
    assert not list(tmp_path.glob("*.tmp*"))


# -- corruption quarantine --------------------------------------------------
def test_truncated_entry_quarantined_as_miss(tmp_path):
    _compiled(ArtifactStore(tmp_path))
    entry = tmp_path / f"{KEY}.art"
    entry.write_bytes(entry.read_bytes()[:10])   # simulate a torn write
    store = ArtifactStore(tmp_path)
    assert store.get(KEY) is None
    assert store.misses == 1 and store.quarantined == 1
    assert not entry.exists()
    assert (tmp_path / f"{KEY}.art.corrupt").exists()
    # The quarantined key is rebuildable: a fresh put round-trips again.
    rebuilt = _compiled(store)
    assert store.get(KEY).meta["fingerprint"] == rebuilt.meta["fingerprint"]


def test_garbage_bytes_quarantined(tmp_path):
    entry = tmp_path / f"{KEY}.art"
    entry.write_bytes(b"not a pickle at all")
    store = ArtifactStore(tmp_path)
    assert store.get(KEY) is None
    assert store.quarantined == 1
    assert (tmp_path / f"{KEY}.art.corrupt").exists()


def test_renamed_entry_quarantined(tmp_path):
    # A readable pickle under the wrong key is also corruption: the
    # store must never serve artifact A for key B.
    _compiled(ArtifactStore(tmp_path))
    wrong = tmp_path / ("0" * 64 + ".art")
    (tmp_path / f"{KEY}.art").rename(wrong)
    store = ArtifactStore(tmp_path)
    assert store.get("0" * 64) is None
    assert store.quarantined == 1


def test_non_artifact_pickle_quarantined(tmp_path):
    entry = tmp_path / f"{KEY}.art"
    entry.write_bytes(pickle.dumps({"kind": "opt-ir"}))
    store = ArtifactStore(tmp_path)
    assert store.get(KEY) is None
    assert store.quarantined == 1


def test_corrupt_memory_entry_quarantined():
    store = ArtifactStore()
    store._memory[KEY] = b"garbage"
    assert store.get(KEY) is None
    assert store.quarantined == 1
    assert KEY not in store._memory


# -- artifact basics --------------------------------------------------------
def test_unknown_artifact_kind_rejected():
    with pytest.raises(ValueError):
        Artifact("blob", object())


def test_non_module_artifact_has_no_module():
    ast = Artifact("ast", object())
    with pytest.raises(TypeError):
        ast.module
