"""Port protocol and packet semantics."""

import pytest

from repro.sim.packet import MemCmd, Packet, read_packet, write_packet
from repro.sim.ports import MasterPort, PortError, SlavePort, connect


def _pair(accept=True):
    received = []
    responses = []
    slave = SlavePort(
        "s",
        recv_timing_req=lambda pkt: (received.append(pkt), accept)[1],
        recv_functional=lambda pkt: pkt.make_response(
            data=bytes(pkt.size) if pkt.is_read else None
        ),
    )
    master = MasterPort("m", recv_timing_resp=responses.append)
    connect(master, slave)
    return master, slave, received, responses


def test_packet_validation():
    with pytest.raises(ValueError):
        Packet(MemCmd.READ, 0, 0)
    with pytest.raises(ValueError):
        Packet(MemCmd.WRITE, 0, 8)  # write without data
    with pytest.raises(ValueError):
        Packet(MemCmd.WRITE, 0, 8, data=b"xy")  # wrong length


def test_packet_response_matching():
    pkt = read_packet(0x100, 8, origin="me")
    resp = pkt.make_response(data=b"12345678")
    assert resp.pkt_id == pkt.pkt_id
    assert resp.origin == "me"
    assert resp.cmd is MemCmd.READ_RESP
    assert not resp.is_request


def test_read_response_requires_data():
    with pytest.raises(ValueError):
        read_packet(0, 4).make_response()


def test_packet_overlap():
    pkt = read_packet(100, 8)
    assert pkt.overlaps(104, 2)
    assert pkt.overlaps(96, 8)
    assert not pkt.overlaps(108, 4)
    assert not pkt.overlaps(92, 8)


def test_timing_request_flows_to_slave():
    master, slave, received, responses = _pair()
    pkt = write_packet(0x10, b"\x01" * 4)
    assert master.send_timing_req(pkt)
    assert received == [pkt]
    assert master.reqs_sent == 1


def test_denied_request_not_counted():
    master, __, __, __ = _pair(accept=False)
    assert not master.send_timing_req(read_packet(0, 4))
    assert master.reqs_sent == 0


def test_response_flows_back():
    master, slave, __, responses = _pair()
    pkt = read_packet(0, 4)
    master.send_timing_req(pkt)
    slave.send_timing_resp(pkt.make_response(data=b"\x00" * 4))
    assert len(responses) == 1
    assert responses[0].pkt_id == pkt.pkt_id


def test_functional_roundtrip():
    master, __, __, __ = _pair()
    resp = master.send_functional(read_packet(0, 16))
    assert resp.data == bytes(16)


def test_unbound_port_raises():
    master = MasterPort("m", recv_timing_resp=lambda p: None)
    with pytest.raises(PortError):
        master.send_timing_req(read_packet(0, 4))


def test_rebinding_rejected():
    master, slave, __, __ = _pair()
    other = SlavePort("s2", recv_timing_req=lambda p: True)
    with pytest.raises(PortError):
        master.bind(other)


def test_response_through_request_path_rejected():
    master, slave, __, __ = _pair()
    pkt = read_packet(0, 4)
    with pytest.raises(PortError):
        master.send_timing_req(pkt.make_response(data=b"aaaa"))


def test_retry_notification():
    retries = []
    slave = SlavePort("s", recv_timing_req=lambda p: False)
    master = MasterPort(
        "m", recv_timing_resp=lambda p: None, recv_retry=lambda: retries.append(1)
    )
    connect(master, slave)
    master.send_timing_req(read_packet(0, 4))
    slave.send_retry()
    assert retries == [1]
