"""Staged build pipeline with a content-addressed artifact store.

Reifies the front half of the simulator (the paper's Fig. 2 flow) as an
explicit ``parse → lower → optimize → elaborate`` pipeline over
hashable, picklable `Artifact`s, cached by SHA-256 of (source,
function, canonical pass-pipeline spec) in an `ArtifactStore`.  The
execution layer compiles each distinct kernel exactly once per sweep —
workers receive prebuilt `Module`s — turning the DSE hot path from
O(points × compile) into O(distinct kernels).
"""

from repro.build.artifact import (
    ARTIFACT_KINDS,
    Artifact,
    ElaboratedDesign,
    artifact_key,
    module_fingerprint,
)
from repro.build.pipeline import (
    STAGE_COUNTERS,
    BuildPipeline,
    StageCounters,
    build_design,
    build_module,
    resolve_spec,
)
from repro.build.store import ArtifactStore
from repro.passes.pipeline import PassStep, PipelineSpec, PipelineSpecError

__all__ = [
    "ARTIFACT_KINDS",
    "Artifact",
    "ArtifactStore",
    "BuildPipeline",
    "ElaboratedDesign",
    "PassStep",
    "PipelineSpec",
    "PipelineSpecError",
    "STAGE_COUNTERS",
    "StageCounters",
    "artifact_key",
    "build_design",
    "build_module",
    "module_fingerprint",
    "resolve_spec",
]
