"""SimContext(sanitize=True): zero timing impact, cache bypass, fallback."""

import json

from repro.exec import RunCache, SimContext
from repro.workloads import get_workload


def _ctx(**overrides):
    kwargs = dict(memory="spm", spm_bytes=1 << 15, unroll_factor=2)
    kwargs.update(overrides)
    return SimContext(get_workload("gemm_dse"), **kwargs)


def _stats(result):
    data = result.to_dict()
    data.pop("sanitizer", None)
    return json.dumps(data, sort_keys=True)


def test_sanitized_run_reports_clean_and_identical_stats():
    plain = _ctx().run()
    sanitized_ctx = _ctx(sanitize=True)
    sanitized = sanitized_ctx.run()
    assert sanitized.sanitizer is not None
    assert sanitized.sanitizer["clean"]
    assert sanitized.sanitizer["num_records"] > 0
    # The sanitizer observes; it must never perturb the simulation.
    assert _stats(plain) == _stats(sanitized)
    assert plain.sanitizer is None


def test_sanitized_run_bypasses_run_cache():
    cache = RunCache()
    _ctx(cache=cache).run()
    assert cache.misses == 1
    _ctx(cache=cache, sanitize=True).run()
    assert cache.hits == 0  # neither read from ...
    assert cache.misses == 1  # ... nor written to the cache


def test_sanitize_forces_dynamic_engine():
    ctx = _ctx(sanitize=True, engine="graph")
    result = ctx.run()
    assert ctx.engine_used == "dynamic"
    assert "sanitizer" in (ctx.fallback_reason or "")
    assert result.sanitizer is not None


def test_sanitizer_detached_on_reset():
    ctx = _ctx(sanitize=True)
    ctx.run()
    ctx.reset()
    assert ctx.sanitizer is None
    # A fresh run re-attaches and reports again.
    assert ctx.run().sanitizer is not None


def test_result_round_trips_sanitizer_section():
    from repro.exec import RunResult

    result = _ctx(sanitize=True).run()
    clone = RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert clone.sanitizer == result.sanitizer
