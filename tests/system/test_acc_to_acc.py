"""Inter-accelerator control: one accelerator programs another's MMRs.

Sec. III-D3: "the MMRs of accelerators ... enable direct communication
and coordination between ... accelerators" — a producer accelerator
finishes its kernel by storing the START command into the consumer's
control register, with no host involvement after launch.  Trace-based
simulators cannot express this at all.
"""

import numpy as np
import pytest

from repro.core.mmr import ARGS_OFFSET, CTRL_START
from repro.frontend import compile_c
from repro.hw.default_profile import default_profile
from repro.system.soc import build_soc

# The producer doubles the input and then pokes the consumer's MMR:
# ctrl[0] = 1 is literally a store to the consumer's control register.
PRODUCER = """
void producer(double in[16], double out[16], long ctrl[1]) {
  for (int i = 0; i < 16; i++) { out[i] = in[i] * 2.0; }
  ctrl[0] = 1;
}
"""

CONSUMER = """
void consumer(double in[16], double out[16]) {
  for (int i = 0; i < 16; i++) { out[i] = in[i] + 1.0; }
}
"""


def test_producer_starts_consumer_directly(rng):
    soc = build_soc(dram_size=1 << 16)
    cluster = soc.add_cluster("cl", shared_spm_bytes=1 << 12)
    profile = default_profile()
    producer = cluster.add_accelerator(
        "prod", compile_c(PRODUCER, "p"), "producer", profile,
    )
    consumer = cluster.add_accelerator(
        "cons", compile_c(CONSUMER, "c"), "consumer", profile,
    )
    for unit in (producer, consumer):
        cluster.route_to_global(unit, cluster.shared_spm.range)
    # The producer can reach the consumer's MMRs through the local xbar.
    cluster.route_to_global(producer, consumer.comm.mmr.range)
    consumer.comm.connect_irq(soc.irq.line(0))
    soc.finalize()

    spm = cluster.shared_spm
    base = spm.range.start
    data = rng.uniform(-1, 1, 16)
    spm.image.write_array(base, data)
    mid, out = base + 256, base + 512

    # Pre-program the consumer's argument registers; the producer will
    # fire its START bit.
    consumer.comm.mmr.set_arg(0, mid)
    consumer.comm.mmr.set_arg(1, out)

    host = soc.host

    def driver(h):
        mmr = producer.comm.mmr.range.start
        yield h.write_mmr(mmr + ARGS_OFFSET + 0, base)
        yield h.write_mmr(mmr + ARGS_OFFSET + 8, mid)
        yield h.write_mmr(mmr + ARGS_OFFSET + 16, consumer.comm.mmr.range.start)
        yield h.write_mmr(mmr, CTRL_START)
        # The host never talks to the consumer: it waits on the
        # consumer's completion interrupt triggered by the chain.
        yield h.wait_irq(0)

    host.run_driver(driver(host))
    cause = soc.run(max_ticks=5_000_000_000)
    assert host.finished, cause
    result = spm.image.read_array(out, np.float64, 16)
    assert np.allclose(result, data * 2.0 + 1.0)
    assert producer.invocations == 1
    assert consumer.invocations == 1
    # The consumer launched mid-chain: after the producer began, via the
    # producer's own MMR store (its final instruction), not via the host.
    assert consumer.engine.start_cycle > producer.engine.start_cycle
    assert host.stat_mmr_writes.value() == 4  # all writes went to the producer
