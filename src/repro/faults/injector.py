"""Arms a :class:`FaultPlan` against a built `System` and fires it.

Zero-overhead contract (the `_thub` pattern from `repro.trace`): every
SimObject carries a ``_finj`` attribute that is ``None`` until a fault
plan targets it.  The instrumented hot paths — SPM/DRAM/cache/MMR
request receipt, memory-controller pump/issue/enqueue, DMA launch —
guard on that single attribute, so a fault-free simulation pays one
pointer compare per site and stays bit- and cycle-identical to an
uninstrumented build.

Tick-triggered events are scheduled on the system's event queue at
attach time; access-triggered events count accesses through the
``on_access`` hook.  Every injection is appended to :attr:`injected`
and, when a trace hub is attached, emitted on the ``faults`` channel so
Chrome traces show the injection against the activity it perturbs.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.mmr import ARGS_OFFSET, MMRFile
from repro.faults.plan import FaultConfigError, FaultEvent, FaultPlan
from repro.sim.packet import read_packet, write_packet
from repro.sim.simobject import SimObject, System


class _Armed:
    """One fault event bound to its target with all fields resolved."""

    __slots__ = ("event", "obj", "addr", "bit", "mask", "reg", "cycles",
                 "remaining", "threshold")

    def __init__(self, event: FaultEvent, obj: SimObject, addr: Optional[int],
                 bit: Optional[int], mask: Optional[int], reg: Optional[int],
                 cycles: Optional[int]) -> None:
        self.event = event
        self.obj = obj
        self.addr = addr
        self.bit = bit
        self.mask = mask
        self.reg = reg
        self.cycles = cycles
        self.remaining = event.count
        self.threshold = event.after_accesses  # None for tick triggers


class FaultInjector:
    """Resolves a plan's targets, arms its events, applies its faults."""

    def __init__(self, plan) -> None:
        plan = FaultPlan.coerce(plan)
        if plan is None:
            plan = FaultPlan()
        self.plan = plan
        self._system: Optional[System] = None
        #: Access-triggered events, keyed by target object name.
        self._armed_by_obj: dict[str, list[_Armed]] = {}
        self._access_counts: dict[str, int] = {}
        #: Active port stalls: name -> expiry tick (None = forever).
        self._stalls: dict[str, Optional[int]] = {}
        #: Pending request drops per memory controller.
        self._drops: dict[str, int] = {}
        #: Pending DMA actions, consumed by the next start():
        #: name -> list of ("drop"|"delay", cycles).
        self._dma_pending: dict[str, list[tuple[str, int]]] = {}
        #: Chronological record of every applied injection.
        self.injected: list[dict] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, system: System) -> "FaultInjector":
        """Resolve targets, draw unspecified fields from the plan seed,
        schedule tick triggers, and hook access-triggered targets."""
        if self._system is not None:
            raise FaultConfigError("FaultInjector is already attached")
        self._system = system
        rng = random.Random(self.plan.seed)
        for event in self.plan.events:
            obj = self._resolve(system, event.target)
            armed = self._arm(event, obj, rng)
            # Consumption hooks (stall/drop/DMA checks) live on the
            # object regardless of trigger style.
            obj._finj = self
            if event.at_tick is not None:
                system.eventq.schedule_callback(
                    lambda a=armed: self._fire(a), event.at_tick,
                    name=f"fault.{event.kind}@{obj.name}",
                )
            else:
                self._armed_by_obj.setdefault(obj.name, []).append(armed)
        return self

    def detach(self) -> None:
        """Unhook every targeted object (pending tick events die with the
        system's event-queue reset)."""
        if self._system is None:
            return
        for obj in self._system.objects.values():
            if obj._finj is self:
                obj._finj = None
        self._system = None

    # ------------------------------------------------------------------
    # Target / field resolution
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve(system: System, target: str) -> SimObject:
        objects = system.objects
        if target in objects:
            return objects[target]
        matches = [obj for name, obj in objects.items()
                   if name.endswith("." + target)]
        if len(matches) == 1:
            return matches[0]
        known = ", ".join(sorted(objects))
        if not matches:
            raise FaultConfigError(
                f"no SimObject matches fault target '{target}' (known: {known})"
            )
        raise FaultConfigError(
            f"fault target '{target}' is ambiguous: "
            f"{', '.join(sorted(m.name for m in matches))}"
        )

    def _arm(self, event: FaultEvent, obj: SimObject, rng: random.Random) -> _Armed:
        addr = event.addr
        bit = event.bit
        mask = event.mask
        reg = event.reg
        cycles = event.cycles
        if event.kind == "bit_flip":
            if addr is None:
                addr_range = getattr(obj, "range", None)
                if addr_range is None:
                    raise FaultConfigError(
                        f"bit_flip@{obj.name}: target has no address range; "
                        "an explicit addr= is required"
                    )
                addr = rng.randrange(addr_range.start, addr_range.end)
            if bit is None:
                bit = rng.randrange(8)
            self._check_flippable(obj)
        elif event.kind == "mmr_corrupt":
            if not isinstance(obj, MMRFile):
                raise FaultConfigError(
                    f"mmr_corrupt@{obj.name}: target is not an MMRFile"
                )
            if reg is None:
                reg = rng.randrange(obj.num_args)
            elif not 0 <= reg < obj.num_args:
                raise FaultConfigError(
                    f"mmr_corrupt@{obj.name}: reg {reg} out of range "
                    f"(device has {obj.num_args} args)"
                )
            if mask is None:
                mask = 1 << rng.randrange(64)
        elif event.kind == "dma_delay":
            if cycles is None:
                cycles = rng.randrange(1, 65)
        elif event.kind in ("dma_drop", "port_stall", "mem_drop"):
            pass  # no extra fields to resolve (port_stall cycles=None = forever)
        return _Armed(event, obj, addr, bit, mask, reg, cycles)

    @staticmethod
    def _check_flippable(obj: SimObject) -> None:
        if (getattr(obj, "image", None) is None
                and getattr(obj, "mem_side", None) is None
                and not isinstance(obj, MMRFile)):
            raise FaultConfigError(
                f"bit_flip@{obj.name}: target holds no flippable state "
                "(expected an SPM/DRAM image, a cache, or an MMR file)"
            )

    # ------------------------------------------------------------------
    # Hot-path hooks (each site guards on obj._finj first)
    # ------------------------------------------------------------------
    def on_access(self, obj: SimObject) -> None:
        """Count one access to ``obj``; fire any armed event whose
        threshold this access reaches."""
        name = obj.name
        count = self._access_counts.get(name, 0) + 1
        self._access_counts[name] = count
        for armed in self._armed_by_obj.get(name, ()):
            if armed.remaining > 0 and armed.threshold is not None \
                    and count >= armed.threshold:
                self._fire(armed)

    def stalled(self, obj: SimObject) -> bool:
        """True while a ``port_stall`` window is open on ``obj``."""
        name = obj.name
        if name not in self._stalls:
            return False
        until = self._stalls[name]
        if until is None:
            return True
        if obj.cur_tick >= until:
            del self._stalls[name]
            return False
        return True

    def drop_request(self, obj: SimObject, request) -> bool:
        """Consume one pending ``mem_drop``: True means the controller
        must forget ``request`` (its completion never fires)."""
        remaining = self._drops.get(obj.name, 0)
        if remaining <= 0:
            return False
        self._drops[obj.name] = remaining - 1
        self._record("mem_drop", obj, {
            "addr": request.addr, "size": request.size,
            "op": "read" if request.is_read else "write",
        })
        return True

    def dma_action(self, obj: SimObject) -> Optional[tuple[str, int]]:
        """Called at DMA launch: counts the launch as an access, then
        returns a pending ("drop"|"delay", cycles) action, if any."""
        self.on_access(obj)
        pending = self._dma_pending.get(obj.name)
        if pending:
            return pending.pop(0)
        return None

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def _fire(self, armed: _Armed) -> None:
        if armed.remaining <= 0:
            return
        armed.remaining -= 1
        kind = armed.event.kind
        obj = armed.obj
        if kind == "bit_flip":
            self._record(kind, obj, self._flip(obj, armed.addr, armed.bit))
        elif kind == "mmr_corrupt":
            offset = ARGS_OFFSET + 8 * armed.reg
            before = obj.read_u64(offset)
            obj.write_u64(offset, before ^ armed.mask)
            self._record(kind, obj, {"reg": armed.reg, "mask": armed.mask,
                                     "before": before})
        elif kind == "port_stall":
            if armed.cycles is None:
                self._stalls[obj.name] = None
            else:
                self._stalls[obj.name] = (
                    obj.cur_tick + obj.clock.cycles_to_ticks(armed.cycles)
                )
            self._record(kind, obj, {"cycles": armed.cycles})
        elif kind == "mem_drop":
            # Armed now; the drop itself is recorded when a concrete
            # request is consumed in drop_request().
            self._drops[obj.name] = self._drops.get(obj.name, 0) + 1
        elif kind in ("dma_drop", "dma_delay"):
            action = "drop" if kind == "dma_drop" else "delay"
            self._dma_pending.setdefault(obj.name, []).append(
                (action, armed.cycles or 0)
            )
            self._record(kind, obj, {"cycles": armed.cycles}
                         if action == "delay" else {})

    def _flip(self, obj: SimObject, addr: int, bit: int) -> dict:
        mask = 1 << bit
        image = getattr(obj, "image", None)
        if image is not None:
            byte = image.read(addr, 1)[0]
            image.write(addr, bytes([byte ^ mask]))
        elif isinstance(obj, MMRFile):
            offset = addr - obj.range.start if obj.range.contains(addr) else addr
            obj._data[offset] ^= mask
        else:
            # Timing-only cache: functional data lives downstream, so the
            # flip is a read-modify-write through the mem-side port.
            byte = obj.mem_side.send_functional(read_packet(addr, 1)).data[0]
            obj.mem_side.send_functional(write_packet(addr, bytes([byte ^ mask])))
        return {"addr": addr, "bit": bit}

    def _record(self, kind: str, obj: SimObject, detail: dict) -> None:
        tick = self._system.eventq.cur_tick if self._system is not None else 0
        entry = {"tick": tick, "kind": kind, "target": obj.name}
        entry.update(detail)
        self.injected.append(entry)
        hub = self._system.trace_hub if self._system is not None else None
        if hub is not None:
            hub.emit("faults", obj.name, kind, tick, args=dict(detail))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "attached" if self._system is not None else "detached"
        return (f"<FaultInjector {len(self.plan.events)} event(s) {state} "
                f"injected={len(self.injected)}>")
