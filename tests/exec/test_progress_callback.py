"""`ParallelSweep.run(on_point=...)`: observable sweep progress.

The serve layer's SSE stream is built on this callback, so the contract
matters: every point is reported exactly once, ``done`` counts
monotonically to ``total``, and the serial and parallel paths agree on
the final count.
"""

import pytest

from repro.core.config import DeviceConfig
from repro.exec import ParallelSweep, RunCache, SweepPoint
from repro.workloads import get_workload


def configure(params):
    return dict(config=DeviceConfig(read_ports=params["ports"]),
                memory="spm", spm_bytes=1 << 16,
                spm_read_ports=params["ports"])


def run_with_callback(workers, cache=None, faults=None):
    calls = []

    def on_point(done, total, point):
        calls.append((done, total, point))

    points = ParallelSweep(workers=workers, cache=cache,
                           faults=faults).run(
        get_workload("gemm_dse"), {"ports": [1, 2]}, configure,
        on_point=on_point)
    return points, calls


def check_contract(points, calls):
    assert len(calls) == len(points) == 2
    assert [done for done, __, __ in calls] == [1, 2]
    assert all(total == 2 for __, total, __ in calls)
    assert all(isinstance(point, SweepPoint) for __, __, point in calls)
    # Every grid point is reported exactly once (order may differ).
    reported = sorted(point.params["ports"] for __, __, point in calls)
    assert reported == [1, 2]


def test_serial_reports_every_point():
    points, calls = run_with_callback(workers=1)
    check_contract(points, calls)
    # The callback's points carry the same metrics as the returned rows.
    by_ports = {p.params["ports"]: p for __, __, p in calls}
    for point in points:
        assert by_ports[point.params["ports"]].cycles == point.cycles


def test_parallel_reports_same_final_count():
    serial_points, serial_calls = run_with_callback(workers=1)
    parallel_points, parallel_calls = run_with_callback(workers=2)
    check_contract(parallel_points, parallel_calls)
    assert len(parallel_calls) == len(serial_calls)
    # Byte-identical results regardless of the execution path.
    assert [p.record() for p in parallel_points] \
        == [p.record() for p in serial_points]


def test_cache_hits_are_reported_too():
    cache = RunCache()
    __, first_calls = run_with_callback(workers=1, cache=cache)
    assert len(first_calls) == 2
    points, second_calls = run_with_callback(workers=1, cache=cache)
    # Fully cached sweep: every point still reported, now in grid order.
    assert [done for done, __, __ in second_calls] == [1, 2]
    assert [p.params["ports"] for __, __, p in second_calls] == [1, 2]
    assert all(p.ok for __, __, p in second_calls)
    assert cache.hits == 2


def test_failed_points_are_reported():
    flip = "bit_flip@spm:access=1,addr=0x20000007,bit=6"
    points, calls = run_with_callback(
        workers=1, faults=lambda p: flip if p["ports"] == 2 else None)
    assert len(calls) == 2
    failed = [p for __, __, p in calls if not p.ok]
    assert len(failed) == 1
    assert failed[0].failure is not None


def test_no_callback_still_works():
    points = ParallelSweep(workers=1).run(
        get_workload("gemm_dse"), {"ports": [1]}, configure)
    assert points[0].ok


def test_callback_exception_propagates():
    def exploding(done, total, point):
        raise RuntimeError("observer crashed")

    with pytest.raises(RuntimeError, match="observer crashed"):
        ParallelSweep(workers=1).run(
            get_workload("gemm_dse"), {"ports": [1]}, configure,
            on_point=exploding)
