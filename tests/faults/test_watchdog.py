"""SimWatchdog: deadlock on drain, livelock on commit starvation,
wall-clock timeouts, and spec coercion."""

import pytest

from repro.exec import SimContext
from repro.faults import SimulationHang, SimWatchdog, coerce_watchdog, watchdog_spec
from repro.sim.eventq import EventQueue
from repro.sim.simobject import System
from repro.workloads import get_workload

GEMM_KW = dict(memory="spm", spm_bytes=1 << 16)


class _StubEngine:
    """Minimal duck-typed engine for queue-level watchdog tests."""

    def __init__(self, running=True):
        self.running = running
        self.committed = 0

    def inflight_summary(self):
        return "stub: 1 load in flight"

    def inflight_dump(self, limit=32):
        return ["  #0 load [issued/mem]"]


# -- deadlock ----------------------------------------------------------------
def test_drain_with_inflight_work_is_a_deadlock():
    queue = EventQueue()
    queue.schedule_callback(lambda: None, 10, name="only")
    watchdog = SimWatchdog(engines=[_StubEngine(running=True)])
    with pytest.raises(SimulationHang) as excinfo:
        queue.run(watchdog=watchdog)
    assert excinfo.value.reason == "deadlock"
    assert "stub: 1 load in flight" in str(excinfo.value)


def test_clean_drain_passes_the_watchdog():
    queue = EventQueue()
    queue.schedule_callback(lambda: None, 10, name="only")
    watchdog = SimWatchdog(engines=[_StubEngine(running=False)])
    assert queue.run(watchdog=watchdog) == "empty"


# -- livelock ----------------------------------------------------------------
def test_port_stall_forever_is_a_livelock():
    ctx = SimContext(get_workload("gemm_dse"),
                     faults="port_stall@memctrl:tick=50000",
                     watchdog={"livelock_cycles": 2000}, **GEMM_KW)
    with pytest.raises(SimulationHang) as excinfo:
        ctx.run()
    hang = excinfo.value
    assert hang.reason == "livelock"
    # The dump names the starved engine and its stuck instructions.
    assert hang.inflight
    assert any("load" in line for line in hang.inflight)


def test_lost_completion_is_caught():
    ctx = SimContext(get_workload("gemm_dse"),
                     faults="mem_drop@memctrl:access=5",
                     watchdog={"livelock_cycles": 2000}, **GEMM_KW)
    with pytest.raises(SimulationHang):
        ctx.run()


# -- wall clock --------------------------------------------------------------
def test_timeout_s_becomes_a_wallclock_hang():
    ctx = SimContext(get_workload("gemm_dse"),
                     faults="port_stall@memctrl:tick=50000",
                     timeout_s=0.3, **GEMM_KW)
    with pytest.raises(SimulationHang) as excinfo:
        ctx.run()
    assert excinfo.value.reason == "wallclock"


# -- coercion / specs --------------------------------------------------------
def test_coerce_forms():
    assert coerce_watchdog(None) is None
    assert coerce_watchdog(False) is None
    assert coerce_watchdog(True).livelock_cycles == SimWatchdog.DEFAULT_LIVELOCK_CYCLES
    assert coerce_watchdog(1234).livelock_cycles == 1234
    watchdog = coerce_watchdog({"livelock_cycles": 99, "wall_clock_s": 1.5})
    assert watchdog.livelock_cycles == 99
    assert watchdog.wall_clock_s == 1.5
    assert coerce_watchdog(watchdog) is watchdog
    with pytest.raises(TypeError):
        coerce_watchdog("soon")


def test_coerce_binds_engines_from_system():
    system = System("s")
    watchdog = coerce_watchdog(True, system)
    assert watchdog.engines == []  # no engines registered, still bound


def test_watchdog_spec_is_picklable_and_lossless():
    import pickle

    watchdog = SimWatchdog(engines=[_StubEngine()], livelock_cycles=7,
                           wall_clock_s=2.0, interval=64)
    spec = watchdog_spec(watchdog)
    assert spec == {"livelock_cycles": 7, "wall_clock_s": 2.0, "interval": 64}
    pickle.dumps(spec)
    revived = coerce_watchdog(spec)
    assert revived.livelock_cycles == 7
    assert revived.interval == 64
    # Non-instances pass through untouched.
    assert watchdog_spec(True) is True
    assert watchdog_spec(None) is None
