"""DMA engines.

:class:`BlockDMA` copies a contiguous region between two addresses in
burst-sized chunks over its master port (reads then writes, with a
configurable number of outstanding bursts).  :class:`StreamDMA` bridges
memory and a :class:`StreamBuffer` in either direction.  Both raise a
completion callback (wired to an interrupt line or a host waiter by the
system builder), and both are programmable through MMRs via the
CommInterface, like gem5-SALAM's DMA devices.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.mem.stream_buffer import StreamBuffer
from repro.sim.clock import ClockDomain
from repro.sim.packet import Packet, read_packet, write_packet
from repro.sim.ports import MasterPort
from repro.sim.simobject import SimObject, System


class DMAError(RuntimeError):
    pass


class TransferRecord:
    """One programmed DMA transfer with timing/kind provenance.

    Iterates as the historical ``(src, dst, size)`` 3-tuple so existing
    consumers that unpack transfer-log entries keep working.
    """

    __slots__ = ("src", "dst", "size", "start_tick", "end_tick",
                 "direction", "engine")

    def __init__(self, src: int, dst: int, size: int, start_tick: int,
                 direction: str, engine: str) -> None:
        self.src = src
        self.dst = dst
        self.size = size
        self.start_tick = start_tick
        self.end_tick = -1  # set when the transfer completes
        self.direction = direction
        self.engine = engine

    def __iter__(self):
        return iter((self.src, self.dst, self.size))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<TransferRecord {self.engine} {self.direction} "
                f"src={self.src:#x} dst={self.dst:#x} size={self.size} "
                f"ticks=[{self.start_tick}, {self.end_tick}]>")


class BlockDMA(SimObject):
    """Burst-based memory-to-memory copy engine."""

    def __init__(
        self,
        name: str,
        system: System,
        burst_bytes: int = 64,
        max_outstanding: int = 4,
        clock: Optional[ClockDomain] = None,
    ) -> None:
        super().__init__(name, system, clock)
        self.burst_bytes = burst_bytes
        self.max_outstanding = max_outstanding
        self.port = MasterPort(
            f"{name}.port", recv_timing_resp=self._recv_timing_resp, owner=self
        )
        self._busy = False
        self._read_queue: deque[tuple[int, int, int]] = deque()  # (src, dst, size)
        self._inflight = 0
        self._remaining_writes = 0
        self._on_done: Optional[Callable[[], None]] = None
        self._xfer_start_tick = -1
        self._xfer_args: Optional[dict] = None
        self._xfer_record: Optional[TransferRecord] = None
        #: Every programmed transfer as a TransferRecord (iterable as the
        #: historical (src, dst, size) 3-tuple) — consumed by the system
        #: lints (`repro.analysis.syslint.describe_soc`).
        self.transfer_log: list[TransferRecord] = []
        self.stat_transfers = self.stats.scalar("transfers")
        self.stat_bytes = self.stats.scalar("bytes")

    @property
    def busy(self) -> bool:
        return self._busy

    def start(
        self,
        src: int,
        dst: int,
        size: int,
        on_done: Optional[Callable[[], None]] = None,
    ) -> None:
        """Program and launch a copy of ``size`` bytes from src to dst."""
        if self._busy:
            raise DMAError(f"{self.name}: transfer already in progress")
        if size <= 0:
            raise ValueError("DMA size must be positive")
        self._busy = True
        self._on_done = on_done
        self._remaining_writes = 0
        offset = 0
        while offset < size:
            chunk = min(self.burst_bytes, size - offset)
            self._read_queue.append((src + offset, dst + offset, chunk))
            self._remaining_writes += 1
            offset += chunk
        self._xfer_record = TransferRecord(
            src, dst, size, self.cur_tick, "mem_to_mem", "block")
        self.transfer_log.append(self._xfer_record)
        self.stat_transfers.inc()
        self.stat_bytes.inc(size)
        self._xfer_start_tick = self.cur_tick
        self._xfer_args = {"src": src, "dst": dst, "size": size}
        if self._thub is not None:
            self.trace_emit("dma", "start", args=self._xfer_args)
        if self._san is not None:
            # The command handoff orders this transfer after whoever
            # programmed the engine (the host's dma_copy releases the
            # matching key just before calling start()).
            self._san.acquire(self.name, ("cmd", self.name))
        delay = 0
        if self._finj is not None:
            action = self._finj.dma_action(self)
            if action is not None:
                kind, cycles = action
                if kind == "drop":
                    # Injected silent data loss: the transfer "completes"
                    # without moving a byte.
                    self._read_queue.clear()
                    self._remaining_writes = 0
                    self.schedule_callback_in_cycles(
                        self._complete_dropped, 1, name=f"{self.name}.dropped"
                    )
                    return
                delay = cycles
        self.schedule_callback_in_cycles(self._pump, 1 + delay, name=f"{self.name}.pump")

    def _complete_dropped(self) -> None:
        self._busy = False
        if self._xfer_record is not None:
            self._xfer_record.end_tick = self.cur_tick
        if self._thub is not None:
            self.trace_emit("dma", "dropped", args=self._xfer_args)
        if self._san is not None:
            self._san.release(self.name, ("done", self.name))
        if self._on_done is not None:
            done, self._on_done = self._on_done, None
            done()

    def _pump(self) -> None:
        while self._read_queue and self._inflight < self.max_outstanding:
            src, dst, chunk = self._read_queue.popleft()
            pkt = read_packet(src, chunk, origin=("dma_read", dst), agent=self.name)
            if not self.port.send_timing_req(pkt):
                self._read_queue.appendleft((src, dst, chunk))
                self.schedule_callback_in_cycles(self._pump, 1, name=f"{self.name}.pump")
                return
            self._inflight += 1

    def _recv_timing_resp(self, pkt: Packet) -> None:
        kind = pkt.origin[0] if isinstance(pkt.origin, tuple) else ""
        if kind == "dma_read":
            __, dst = pkt.origin
            write = write_packet(dst, pkt.data, origin=("dma_write",), agent=self.name)
            if not self.port.send_timing_req(write):
                # Retry the write next cycle; keep the burst in flight.
                self.schedule_callback_in_cycles(
                    lambda w=write: self._retry_write(w), 1, name=f"{self.name}.wretry"
                )
            return
        if kind == "dma_write":
            self._inflight -= 1
            self._remaining_writes -= 1
            if self._read_queue:
                self._pump()
            if self._remaining_writes == 0 and not self._read_queue:
                self._busy = False
                if self._xfer_record is not None:
                    self._xfer_record.end_tick = self.cur_tick
                hub = self._thub
                if hub is not None:
                    # The whole copy as one span, programmed -> last write.
                    hub.emit("dma", self.name, "transfer", self._xfer_start_tick,
                             dur=self.cur_tick - self._xfer_start_tick,
                             args=self._xfer_args)
                if self._san is not None:
                    # Publish completion before the done callback so the
                    # waiter's acquire observes every byte this engine
                    # moved.
                    self._san.release(self.name, ("done", self.name))
                if self._on_done is not None:
                    done, self._on_done = self._on_done, None
                    done()

    def _retry_write(self, pkt: Packet) -> None:
        if not self.port.send_timing_req(pkt):
            self.schedule_callback_in_cycles(
                lambda w=pkt: self._retry_write(w), 1, name=f"{self.name}.wretry"
            )


class StreamDMA(SimObject):
    """Bridges memory and a stream buffer.

    ``direction='mem_to_stream'`` reads memory in bursts and pushes the
    tokens into the buffer; ``'stream_to_mem'`` pops tokens, accumulates
    them into bursts, and writes them out.  Burst transfers amortize
    memory latency exactly like an AXI stream data mover.  Used to
    feed/drain accelerator pipelines (Fig. 16c).
    """

    def __init__(
        self,
        name: str,
        system: System,
        buffer: StreamBuffer,
        direction: str,
        burst_tokens: int = 8,
        clock: Optional[ClockDomain] = None,
    ) -> None:
        super().__init__(name, system, clock)
        if direction not in ("mem_to_stream", "stream_to_mem"):
            raise ValueError(f"bad stream DMA direction '{direction}'")
        if burst_tokens < 1:
            raise ValueError("burst_tokens must be >= 1")
        self.buffer = buffer
        self.direction = direction
        self.burst_tokens = burst_tokens
        self._held_tokens: list[bytes] = []  # burst read awaiting pushes
        self._out_burst = bytearray()        # tokens awaiting a burst write
        self.port = MasterPort(
            f"{name}.port", recv_timing_resp=self._recv_timing_resp, owner=self
        )
        self._busy = False
        self._addr = 0
        self._remaining = 0
        self._waiting_mem = False
        self._on_done: Optional[Callable[[], None]] = None
        self._xfer_start_tick = -1
        self._xfer_args: Optional[dict] = None
        self._xfer_record: Optional[TransferRecord] = None
        #: TransferRecord per transfer (iterable as (src, dst, size)); a
        #: stream DMA only touches one memory address, so src == dst ==
        #: the programmed base.
        self.transfer_log: list[TransferRecord] = []
        self.stat_tokens = self.stats.scalar("tokens")

    @property
    def busy(self) -> bool:
        return self._busy

    def start(self, addr: int, tokens: int, on_done: Optional[Callable[[], None]] = None) -> None:
        if self._busy:
            raise DMAError(f"{self.name}: transfer already in progress")
        self._busy = True
        self._addr = addr
        self._remaining = tokens
        self._on_done = on_done
        self._xfer_record = TransferRecord(
            addr, addr, tokens * self.buffer.token_bytes,
            self.cur_tick, self.direction, "stream")
        self.transfer_log.append(self._xfer_record)
        self._xfer_start_tick = self.cur_tick
        self._xfer_args = {"addr": addr, "tokens": tokens,
                           "direction": self.direction}
        if self._thub is not None:
            self.trace_emit("dma", "start", args=self._xfer_args)
        if self._san is not None:
            self._san.acquire(self.name, ("cmd", self.name))
        self.schedule_callback_in_cycles(self._step, 1, name=f"{self.name}.step")

    def _finish_if_done(self) -> bool:
        if self.direction == "mem_to_stream" and self._held_tokens:
            return False
        if self._remaining == 0 and not self._waiting_mem:
            self._busy = False
            if self._xfer_record is not None:
                self._xfer_record.end_tick = self.cur_tick
            hub = self._thub
            if hub is not None:
                hub.emit("dma", self.name, "stream", self._xfer_start_tick,
                         dur=self.cur_tick - self._xfer_start_tick,
                         args=self._xfer_args)
            if self._san is not None:
                self._san.release(self.name, ("done", self.name))
            if self._on_done is not None:
                done, self._on_done = self._on_done, None
                done()
            return True
        return False

    def _step(self) -> None:
        if self._finish_if_done():
            return
        token_bytes = self.buffer.token_bytes
        if self.direction == "mem_to_stream":
            # Drain any tokens already fetched before reading more.
            while self._held_tokens:
                if not self.buffer.try_push(self._held_tokens[0]):
                    self.buffer.on_space(self._step)
                    return
                self._held_tokens.pop(0)
                self._remaining -= 1
                self.stat_tokens.inc()
                if self._san is not None:
                    # Token handoff: the consumer popping this token
                    # acquires the same key, ordering it after our reads.
                    self._san.release(self.name, ("stream", self.buffer.name))
            if self._finish_if_done():
                return
            if self._waiting_mem:
                return
            count = min(self.burst_tokens, self._remaining)
            pkt = read_packet(self._addr, token_bytes * count,
                              origin="stream_read", agent=self.name)
            if self.port.send_timing_req(pkt):
                self._waiting_mem = True
            else:
                self.schedule_callback_in_cycles(self._step, 1, name=f"{self.name}.retry")
        else:
            if self._waiting_mem:
                return
            # Accumulate a full burst (or the final partial burst).
            while len(self._out_burst) < self.burst_tokens * token_bytes:
                token = self.buffer.try_pop()
                if token is None:
                    break
                if self._san is not None:
                    self._san.acquire(self.name, ("stream", self.buffer.name))
                self._out_burst.extend(token)
                self._remaining -= 1
                self.stat_tokens.inc()
                if self._remaining == 0:
                    break
            burst_full = len(self._out_burst) >= self.burst_tokens * token_bytes
            if self._out_burst and (burst_full or self._remaining == 0):
                pkt = write_packet(self._addr, bytes(self._out_burst),
                                   origin="stream_write", agent=self.name)
                self._addr += len(self._out_burst)
                self._out_burst.clear()
                self._waiting_mem = True
                if not self.port.send_timing_req(pkt):
                    self.schedule_callback_in_cycles(
                        lambda w=pkt: self._retry_write(w), 1, name=f"{self.name}.wretry"
                    )
                return
            if self._remaining > 0:
                self.buffer.on_data(self._step)

    def _retry_write(self, pkt: Packet) -> None:
        if not self.port.send_timing_req(pkt):
            self.schedule_callback_in_cycles(
                lambda w=pkt: self._retry_write(w), 1, name=f"{self.name}.wretry"
            )

    def _recv_timing_resp(self, pkt: Packet) -> None:
        if pkt.origin == "stream_read":
            self._waiting_mem = False
            token_bytes = self.buffer.token_bytes
            self._addr += pkt.size
            self._held_tokens.extend(
                pkt.data[i : i + token_bytes] for i in range(0, pkt.size, token_bytes)
            )
            self.schedule_callback_in_cycles(self._step, 1, name=f"{self.name}.step")
        elif pkt.origin == "stream_write":
            if self._waiting_mem:
                self._waiting_mem = False
                self.schedule_callback_in_cycles(self._step, 1, name=f"{self.name}.step")
