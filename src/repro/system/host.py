"""Host CPU driver agent.

Stands in for the ARM host of the paper's full-system simulations.  A
driver is a Python generator that yields operations; the agent executes
them with realistic timing: MMR reads/writes travel through the system
interconnect as timing packets, DMA launches program a real DMA engine,
``wait_irq`` blocks on the interrupt controller, and every operation
pays a configurable software overhead (driver instructions, register
marshalling) in host-clock cycles.

Example driver::

    def driver(h):
        yield h.write_mmr(acc_args + 0, src_ptr)
        yield h.write_mmr(acc_ctrl, CTRL_START | CTRL_IRQ_EN)
        yield h.wait_irq(0)
        value = yield h.read_mmr(acc_status)

This captures exactly the control/synchronization overhead that the
multi-accelerator scenarios of Fig. 16 trade away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from repro.mem.dma import BlockDMA, StreamDMA
from repro.sim.packet import Packet, read_packet, write_packet
from repro.sim.ports import MasterPort
from repro.sim.simobject import SimObject, System
from repro.system.interrupts import InterruptController

DriverProgram = Generator[tuple, Any, None]


@dataclass
class _Op:
    kind: str
    payload: tuple


class HostAgent(SimObject):
    #: Default driver overhead per operation kind, in host cycles.
    #: Register pokes are cheap; anything involving an interrupt or the
    #: DMA driver pays the user/kernel round trip.
    DEFAULT_OP_OVERHEADS = {
        "write_mmr": 25,
        "read_mmr": 25,
        "wait_irq": 25,
        "dma_copy": 25,
        "start_stream": 25,
        "wait_stream": 25,
        "delay": 0,
        "memcpy": 25,
    }

    def __init__(
        self,
        name: str,
        system: System,
        irq_controller: Optional[InterruptController] = None,
        op_overhead_cycles: Optional[dict[str, int]] = None,
        clock=None,
    ) -> None:
        super().__init__(name, system, clock)
        self.irq_controller = irq_controller
        if isinstance(op_overhead_cycles, int):  # uniform legacy form
            self.op_overheads = {k: op_overhead_cycles for k in self.DEFAULT_OP_OVERHEADS}
        else:
            self.op_overheads = dict(self.DEFAULT_OP_OVERHEADS)
            self.op_overheads.update(op_overhead_cycles or {})
        self.port = MasterPort(
            f"{name}.port", recv_timing_resp=self._recv_timing_resp, owner=self
        )
        self._driver: Optional[DriverProgram] = None
        self._send_value: Any = None
        self._on_done: Optional[Callable[[], None]] = None
        self._finished = False
        #: Executed driver ops as (tick, kind, args) — the sequencing
        #: record the concurrency analysis replays to recover ordering
        #: edges (`repro.analysis.concurrency.describe_concurrency`).
        self.op_log: list[tuple[int, str, dict]] = []
        self.stat_ops = self.stats.scalar("driver_ops")
        self.stat_mmr_writes = self.stats.scalar("mmr_writes")
        self.stat_irq_waits = self.stats.scalar("irq_waits")
        self.finish_tick = -1

    # -- driver op constructors (used inside driver generators) ----------------
    @staticmethod
    def write_mmr(addr: int, value: int) -> tuple:
        return ("write_mmr", addr, value)

    @staticmethod
    def read_mmr(addr: int) -> tuple:
        return ("read_mmr", addr)

    @staticmethod
    def wait_irq(irq: int) -> tuple:
        return ("wait_irq", irq)

    @staticmethod
    def dma_copy(dma: BlockDMA, src: int, dst: int, size: int) -> tuple:
        return ("dma_copy", dma, src, dst, size)

    @staticmethod
    def start_stream(dma: StreamDMA, addr: int, tokens: int) -> tuple:
        return ("start_stream", dma, addr, tokens)

    @staticmethod
    def wait_stream(dma: StreamDMA) -> tuple:
        return ("wait_stream", dma)

    @staticmethod
    def delay(cycles: int) -> tuple:
        return ("delay", cycles)

    @staticmethod
    def memcpy(dst: int, src: int, size: int) -> tuple:
        return ("memcpy", dst, src, size)

    # -- execution --------------------------------------------------------------
    def run_driver(self, driver: DriverProgram, on_done: Optional[Callable[[], None]] = None) -> None:
        if self._driver is not None and not self._finished:
            raise RuntimeError(f"{self.name}: a driver is already running")
        self._driver = driver
        self._on_done = on_done
        self._finished = False
        self.op_log = []
        self.schedule_callback_in_cycles(self._advance, 1, name=f"{self.name}.boot")

    @property
    def finished(self) -> bool:
        return self._finished

    def _advance(self) -> None:
        assert self._driver is not None
        try:
            op = self._driver.send(self._send_value)
        except StopIteration:
            self._finished = True
            self.finish_tick = self.cur_tick
            if self._on_done is not None:
                done, self._on_done = self._on_done, None
                done()
            return
        self._send_value = None
        self.stat_ops.inc()
        overhead = self.op_overheads.get(op[0], 25)
        self.schedule_callback_in_cycles(
            lambda o=op: self._execute(o), overhead, name=f"{self.name}.op"
        )

    def _execute(self, op: tuple) -> None:
        kind = op[0]
        self.op_log.append((self.cur_tick, kind, self._op_log_args(op)))
        if self._thub is not None:
            self.trace_emit("host", kind, args=self._op_trace_args(op))
        if kind == "write_mmr":
            __, addr, value = op
            self.stat_mmr_writes.inc()
            payload = (int(value) & ((1 << 64) - 1)).to_bytes(8, "little")
            pkt = write_packet(addr, payload, origin="host", agent=self.name)
            self._send_with_retry(pkt)
        elif kind == "read_mmr":
            __, addr = op
            pkt = read_packet(addr, 8, origin="host_read", agent=self.name)
            self._send_with_retry(pkt)
        elif kind == "wait_irq":
            __, irq = op
            if self.irq_controller is None:
                raise RuntimeError(f"{self.name}: no interrupt controller attached")
            self.stat_irq_waits.inc()
            if self._san is not None:
                san = self._san

                def _resume(irq=irq, san=san):
                    # The raiser released this key, so acquiring here
                    # orders everything after the wait behind the
                    # device's completed work.
                    san.acquire(self.name, ("irq", irq))
                    self._advance()

                self.irq_controller.wait(irq, _resume)
            else:
                self.irq_controller.wait(irq, self._advance)
        elif kind == "dma_copy":
            __, dma, src, dst, size = op
            if self._san is not None:
                san = self._san
                san.release(self.name, ("cmd", dma.name))

                def _dma_done(dma=dma, san=san):
                    san.acquire(self.name, ("done", dma.name))
                    self._advance()

                dma.start(src, dst, size, on_done=_dma_done)
            else:
                dma.start(src, dst, size, on_done=self._advance)
        elif kind == "start_stream":
            __, dma, addr, tokens = op
            if self._san is not None:
                self._san.release(self.name, ("cmd", dma.name))
            dma.start(addr, tokens, on_done=None)
            self._advance()
        elif kind == "wait_stream":
            __, dma = op
            self._wait_stream(dma)
        elif kind == "delay":
            __, cycles = op
            self.schedule_callback_in_cycles(self._advance, cycles, name=f"{self.name}.delay")
        elif kind == "memcpy":
            __, dst, src, size = op
            self._memcpy_state = (dst, src, size, 0)
            self._memcpy_step()
        else:
            raise ValueError(f"{self.name}: unknown driver op '{kind}'")

    @staticmethod
    def _op_log_args(op: tuple) -> dict:
        """Full operand record for the op log (richer than trace args)."""
        kind = op[0]
        if kind == "write_mmr":
            return {"addr": op[1], "value": op[2]}
        if kind == "read_mmr":
            return {"addr": op[1]}
        if kind == "wait_irq":
            return {"irq": op[1]}
        if kind == "dma_copy":
            return {"dma": op[1].name, "src": op[2], "dst": op[3], "size": op[4]}
        if kind == "start_stream":
            return {"dma": op[1].name, "addr": op[2], "tokens": op[3]}
        if kind == "wait_stream":
            return {"dma": op[1].name}
        if kind == "delay":
            return {"cycles": op[1]}
        if kind == "memcpy":
            return {"dst": op[1], "src": op[2], "size": op[3]}
        return {}

    @staticmethod
    def _op_trace_args(op: tuple) -> dict:
        kind = op[0]
        if kind in ("write_mmr", "read_mmr"):
            return {"addr": op[1]}
        if kind == "wait_irq":
            return {"irq": op[1]}
        if kind == "dma_copy":
            return {"dma": op[1].name, "size": op[4]}
        if kind in ("start_stream", "wait_stream"):
            return {"dma": op[1].name}
        if kind == "delay":
            return {"cycles": op[1]}
        if kind == "memcpy":
            return {"dst": op[1], "src": op[2], "size": op[3]}
        return {}

    def _send_with_retry(self, pkt: Packet) -> None:
        if not self.port.send_timing_req(pkt):
            self.schedule_callback_in_cycles(
                lambda p=pkt: self._send_with_retry(p), 1, name=f"{self.name}.retry"
            )

    def _recv_timing_resp(self, pkt: Packet) -> None:
        if pkt.origin == "host_read":
            self._send_value = int.from_bytes(pkt.data, "little")
            self._advance()
        elif pkt.origin == "host":
            self._advance()
        elif pkt.origin == "host_memcpy_read":
            dst, src, size, offset = self._memcpy_state
            write = write_packet(dst + offset, pkt.data,
                                 origin="host_memcpy_write", agent=self.name)
            self._send_with_retry(write)
        elif pkt.origin == "host_memcpy_write":
            dst, src, size, offset = self._memcpy_state
            offset += pkt.size
            self._memcpy_state = (dst, src, size, offset)
            if offset >= size:
                self._advance()
            else:
                self._memcpy_step()

    def _memcpy_step(self) -> None:
        dst, src, size, offset = self._memcpy_state
        chunk = min(8, size - offset)
        pkt = read_packet(src + offset, chunk,
                          origin="host_memcpy_read", agent=self.name)
        self._send_with_retry(pkt)

    def _wait_stream(self, dma: StreamDMA) -> None:
        if not dma.busy:
            if self._san is not None:
                self._san.acquire(self.name, ("done", dma.name))
            self._advance()
        else:
            self.schedule_callback_in_cycles(
                lambda d=dma: self._wait_stream(d), 8, name=f"{self.name}.poll"
            )
