"""Mini-C frontend (the "clang" of this reproduction).

Compiles a C subset — functions, scalar/array locals and parameters,
``for``/``while``/``do``/``if``, arithmetic, math builtins, and
``#pragma unroll`` — into `repro.ir` SSA through a naive alloca-based
codegen followed by the standard optimization pipeline (mem2reg,
folding, unrolling, DCE).  Accelerator kernels for the benchmarks are
written in this dialect, mirroring the paper's "write the accelerator
as a single C function" flow.
"""

from repro.frontend.lexer import Lexer, LexerError, Token
from repro.frontend.parser import CParseError, parse_c
from repro.frontend.codegen import CodegenError, compile_c, lower_to_ir

__all__ = [
    "Lexer",
    "LexerError",
    "Token",
    "parse_c",
    "CParseError",
    "compile_c",
    "lower_to_ir",
    "CodegenError",
]
