"""The trace slot of the build pipeline (BuildPipeline.trace).

Schedule traces are build artifacts: content-addressed by datapath key,
published once per capture, shared across processes via the store, and
counted like every other stage so the compile-once guards (and the
serve layer's /v1/stats) can see trace traffic.
"""

from repro.build import STAGE_COUNTERS
from repro.build.artifact import ARTIFACT_KINDS
from repro.build.pipeline import BuildPipeline
from repro.build.store import ArtifactStore
from repro.engine.retime import ScheduleTrace, trace_cache_key


def _trace(func_name="gemm"):
    return ScheduleTrace(func_name=func_name, n_nodes=3, entry_block=0,
                         block_seq=[0, 1], addrs={1: 0x2000_0000},
                         store_data={2: b"\x00" * 8}, n_dyn=3)


def test_trace_is_a_registered_artifact_kind():
    assert "trace" in ARTIFACT_KINDS


def test_publish_then_lookup_roundtrips_through_the_store():
    store = ArtifactStore()
    pipe = BuildPipeline(store=store)
    published = pipe.trace("dk123", _trace())
    assert published.kind == "trace"
    assert published.key == trace_cache_key("dk123")
    assert published.payload.datapath_key == "dk123"
    found = BuildPipeline(store=store).trace("dk123")
    assert found is not None
    assert found.payload.func_name == "gemm"
    assert BuildPipeline(store=store).trace("other-key") is None


def test_lookup_without_a_store_is_a_clean_miss():
    assert BuildPipeline(store=None).trace("dk123") is None


def test_capture_bumps_the_stage_counter():
    STAGE_COUNTERS.reset()
    pipe = BuildPipeline(store=ArtifactStore())
    pipe.trace("dk1", _trace())
    pipe.trace("dk2", _trace())
    assert STAGE_COUNTERS.trace == 2
    assert STAGE_COUNTERS.snapshot()["trace"] == 2
    # Lookups are store probes, not stage invocations.
    pipe.trace("dk1")
    assert STAGE_COUNTERS.trace == 2
