"""Clock domains and cycle-aligned scheduling."""

import pytest

from repro.sim.clock import ClockDomain, ClockedObject, frequency_to_period
from repro.sim.eventq import EventQueue


def test_period_from_frequency():
    assert frequency_to_period(1e9) == 1000          # 1 GHz -> 1000 ps
    assert frequency_to_period(100e6) == 10000       # 100 MHz -> 10 ns
    assert frequency_to_period(2e9) == 500


def test_bad_frequency_rejected():
    with pytest.raises(ValueError):
        frequency_to_period(0)
    with pytest.raises(ValueError):
        ClockDomain("x", -5)


def test_cycles_ticks_roundtrip():
    clk = ClockDomain("clk", 100e6)
    assert clk.cycles_to_ticks(3) == 30000
    assert clk.ticks_to_cycles(30000) == 3
    assert clk.ticks_to_cycles(30999) == 3


def test_clock_edge_alignment():
    eq = EventQueue()
    clk = ClockDomain("clk", 1e9)  # period 1000
    obj = ClockedObject(eq, clk)
    # At tick 0 (an edge), edge(0) is now.
    assert obj.clock_edge(0) == 0
    assert obj.clock_edge(2) == 2000
    # Advance off-edge and check rounding up.
    eq.schedule_callback(lambda: None, 1500)
    eq.run()
    assert eq.cur_tick == 1500
    assert obj.clock_edge(0) == 2000
    assert obj.clock_edge(1) == 3000


def test_schedule_in_cycles_fires_on_edges():
    eq = EventQueue()
    clk = ClockDomain("clk", 100e6)
    obj = ClockedObject(eq, clk)
    ticks = []
    obj.schedule_callback_in_cycles(lambda: ticks.append(eq.cur_tick), 3)
    eq.run()
    assert ticks == [30000]


def test_different_domains_coexist():
    eq = EventQueue()
    fast = ClockedObject(eq, ClockDomain("fast", 1e9))
    slow = ClockedObject(eq, ClockDomain("slow", 100e6))
    order = []
    fast.schedule_callback_in_cycles(lambda: order.append("fast"), 5)   # 5000
    slow.schedule_callback_in_cycles(lambda: order.append("slow"), 1)   # 10000
    eq.run()
    assert order == ["fast", "slow"]
