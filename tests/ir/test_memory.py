"""MemoryImage: bounds, typed access, allocation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.memory import MemoryError_, MemoryImage
from repro.ir.types import DOUBLE, I16, I32


def test_read_write_roundtrip():
    mem = MemoryImage(256, base=0x1000)
    mem.write(0x1010, b"hello")
    assert mem.read(0x1010, 5) == b"hello"


def test_bounds_checked():
    mem = MemoryImage(256, base=0x1000)
    with pytest.raises(MemoryError_):
        mem.read(0xFFF, 1)
    with pytest.raises(MemoryError_):
        mem.read(0x10FF, 2)
    with pytest.raises(MemoryError_):
        mem.write(0x1100, b"x")


def test_contains():
    mem = MemoryImage(256, base=0x1000)
    assert mem.contains(0x1000)
    assert mem.contains(0x10FF)
    assert mem.contains(0x1000, 256)
    assert not mem.contains(0x1000, 257)
    assert not mem.contains(0xFFF)


def test_typed_access():
    mem = MemoryImage(256, base=0)
    mem.write_value(8, -5, I32)
    assert mem.read_value(8, I32) == (-5) & 0xFFFFFFFF
    mem.write_value(16, 3.25, DOUBLE)
    assert mem.read_value(16, DOUBLE) == 3.25


def test_numpy_arrays():
    mem = MemoryImage(1024, base=0x100)
    data = np.arange(10, dtype=np.float64)
    mem.write_array(0x100, data)
    out = mem.read_array(0x100, np.float64, 10)
    assert np.array_equal(out, data)
    out[0] = 99  # copy, not a view
    assert mem.read_value(0x100, DOUBLE) == 0.0


def test_allocator_alignment_and_exhaustion():
    mem = MemoryImage(64, base=0x10)
    a = mem.alloc(5)
    b = mem.alloc(8)
    assert a == 0x10
    assert b % 8 == 0
    with pytest.raises(MemoryError_):
        mem.alloc(1000)


def test_alloc_array_stages_contents():
    mem = MemoryImage(1024, base=0)
    data = np.array([1, 2, 3], dtype=np.int32)
    addr = mem.alloc_array(data)
    assert np.array_equal(mem.read_array(addr, np.int32, 3), data)


def test_reset_allocator():
    mem = MemoryImage(64, base=0)
    first = mem.alloc(8)
    mem.reset_allocator()
    assert mem.alloc(8) == first


def test_fill():
    mem = MemoryImage(16, base=0)
    mem.fill(0xAB)
    assert mem.read(0, 16) == b"\xab" * 16


@given(
    st.integers(min_value=0, max_value=200),
    st.binary(min_size=1, max_size=56),
)
def test_write_read_arbitrary(offset, blob):
    mem = MemoryImage(256, base=0x2000)
    mem.write(0x2000 + offset, blob)
    assert mem.read(0x2000 + offset, len(blob)) == blob


def test_size_must_be_positive():
    with pytest.raises(ValueError):
        MemoryImage(0)
