"""Graph lowering: `compile_graph(ElaboratedDesign) -> SimGraph`.

The frontend half of the graph-compiled execution backend.  Instead of
re-deriving operand sources, functional-unit bindings, latencies, and
memory-disambiguation facts per dynamic instruction (what the dynamic
`RuntimeEngine` does every cycle), this stage walks the statically
elaborated CDFG **once** and flattens everything the scheduler needs
into parallel arrays indexed by node id:

* operand-source descriptors — ``(SRC_CONST, value)``,
  ``(SRC_ARG, arg_index)`` or ``(SRC_NODE, producer_id)`` — replacing
  per-instance `isinstance` dispatch over `Value` subclasses;
* per-node evaluation thunks that close over the *same*
  `repro.ir.semantics` helpers the dynamic engine calls, so values (and
  therefore every downstream address and branch decision) are exactly
  identical;
* FU class / dedicated-vs-pooled binding, pipelining, latency, and
  energy constants resolved through the hardware profile and the device
  config's latency overrides;
* static memory-disambiguation facts reusing `repro.analysis.memdep`
  (PR 5): each access's root pointer and constant byte offset, letting
  the scheduler skip the overlap arithmetic for provably disjoint pairs
  without changing any conflict outcome (see `GraphScheduler._conflicts`
  for the exactness argument).

`SimGraph` is picklable — the eval thunks are rebuilt lazily after
unpickling — so compiled graphs can live in the content-addressed
`ArtifactStore` (kind ``"graph"``) and be reused across runs and sweep
points that share a module, config, and profile.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Optional

from repro.core.llvm_interface import LLVMInterface
from repro.hw.profile import FU_NONE
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.semantics import (
    eval_binop,
    eval_cast,
    eval_fcmp,
    eval_icmp,
    eval_intrinsic,
    gep_address,
    round_float,
    signed_operand,
)
from repro.ir.types import ArrayType, FloatType, IntType, PointerType
from repro.ir.values import Argument, Constant, Instruction

#: Bump when the lowering output changes shape — part of the graph
#: artifact key, so stale store entries never deserialize into a
#: scheduler that expects different arrays.  (v2: memory-side
#: `DeviceConfig` fields left the key — lowering never reads them, the
#: scheduler consults the live config — so memory-only sweeps share one
#: stored graph.)
GRAPH_FORMAT_VERSION = 2

# Operand-source descriptor tags.
SRC_CONST = 0
SRC_ARG = 1
SRC_NODE = 2

# Node kind codes (what the scheduler dispatches on, instead of
# isinstance chains).
K_COMPUTE = 0
K_LOAD = 1
K_STORE = 2
K_BRANCH = 3
K_RET = 4
K_OTHER = 5  # phi and other zero-latency wiring ops


class GraphLoweringError(RuntimeError):
    """The design cannot be lowered to a simulation graph (e.g. an
    alloca or a non-inlined call in the datapath).  Callers fall back to
    the dynamic engine, which reports the same condition at issue time."""


def _operand_descriptor(operand, node_ids: dict[int, int]):
    """Lower one operand `Value` to a flat source descriptor."""
    if isinstance(operand, Constant):
        return (SRC_CONST, operand.value)
    if isinstance(operand, Argument):
        return (SRC_ARG, operand)
    if isinstance(operand, Instruction):
        producer = node_ids.get(id(operand))
        if producer is None:
            # Defined in a block never fetched before this use on any
            # path — the dynamic engine binds such operands to 0.
            return (SRC_CONST, 0)
        return (SRC_NODE, producer)
    raise GraphLoweringError(f"cannot lower operand {operand!r}")


_M64 = (1 << 64) - 1


def _binop_eval(inst: BinaryOp):
    """Specialized thunk for one binary op (same math as `eval_binop`)."""
    op = inst.opcode
    type_ = inst.type
    if isinstance(type_, IntType):
        m = type_.mask
        if op == "add":
            return lambda v: (v[0] + v[1]) & m
        if op == "sub":
            return lambda v: (v[0] - v[1]) & m
        if op == "mul":
            return lambda v: (v[0] * v[1]) & m
        if op == "and":
            return lambda v: v[0] & v[1]
        if op == "or":
            return lambda v: v[0] | v[1]
        if op == "xor":
            return lambda v: v[0] ^ v[1]
    elif isinstance(type_, FloatType):
        if type_.bits == 64:
            # round_float is the identity on binary64.
            if op == "fadd":
                return lambda v: v[0] + v[1]
            if op == "fsub":
                return lambda v: v[0] - v[1]
            if op == "fmul":
                return lambda v: v[0] * v[1]
        else:
            if op == "fadd":
                return lambda v, t=type_: round_float(v[0] + v[1], t)
            if op == "fsub":
                return lambda v, t=type_: round_float(v[0] - v[1], t)
            if op == "fmul":
                return lambda v, t=type_: round_float(v[0] * v[1], t)
    return lambda v, op=op, t=type_: eval_binop(op, t, v[0], v[1])


def _icmp_eval(inst: ICmp):
    """Specialized thunk for one icmp (same outcomes as `eval_icmp`)."""
    pred = inst.pred
    type_ = inst.operands[0].type
    # Unsigned predicates (and eq/ne) compare the raw bound values,
    # exactly as eval_icmp does.
    if pred == "eq":
        return lambda v: 1 if v[0] == v[1] else 0
    if pred == "ne":
        return lambda v: 1 if v[0] != v[1] else 0
    if pred == "ult":
        return lambda v: 1 if v[0] < v[1] else 0
    if pred == "ule":
        return lambda v: 1 if v[0] <= v[1] else 0
    if pred == "ugt":
        return lambda v: 1 if v[0] > v[1] else 0
    if pred == "uge":
        return lambda v: 1 if v[0] >= v[1] else 0
    if isinstance(type_, IntType) and pred in ("slt", "sle", "sgt", "sge"):
        m, h, span = type_.mask, type_.max_signed, 1 << type_.bits

        def signed(x, m=m, h=h, span=span):
            x &= m
            return x - span if x > h else x

        if pred == "slt":
            return lambda v: 1 if signed(v[0]) < signed(v[1]) else 0
        if pred == "sle":
            return lambda v: 1 if signed(v[0]) <= signed(v[1]) else 0
        if pred == "sgt":
            return lambda v: 1 if signed(v[0]) > signed(v[1]) else 0
        return lambda v: 1 if signed(v[0]) >= signed(v[1]) else 0
    return lambda v, p=pred, t=type_: eval_icmp(p, t, v[0], v[1])


def _cast_eval(inst: Cast):
    """Specialized thunk for one cast (same math as `eval_cast`)."""
    op = inst.opcode
    src_t = inst.src.type
    dst_t = inst.type
    if op in ("zext", "trunc") and isinstance(dst_t, IntType):
        m = dst_t.mask
        return lambda v: v[0] & m
    if (op == "sext" and isinstance(src_t, IntType)
            and isinstance(dst_t, IntType)):
        fm, fh, span = src_t.mask, src_t.max_signed, 1 << src_t.bits
        tm = dst_t.mask

        def sext(v, fm=fm, fh=fh, span=span, tm=tm):
            x = v[0] & fm
            if x > fh:
                x -= span
            return x & tm

        return sext
    if (op == "sitofp" and isinstance(src_t, IntType)
            and isinstance(dst_t, FloatType) and dst_t.bits == 64):
        fm, fh, span = src_t.mask, src_t.max_signed, 1 << src_t.bits

        def sitofp(v, fm=fm, fh=fh, span=span):
            x = v[0] & fm
            if x > fh:
                x -= span
            return float(x)

        return sitofp
    return lambda v, op=op, s=src_t, t=dst_t: eval_cast(op, s, t, v[0])


def _gep_eval(inst: GetElementPtr):
    """Specialized thunk for one GEP: strides precomputed at lowering
    time (the type walk `gep_address` repeats per evaluation)."""
    idx_types = [index.type for index in inst.indices]

    def generic(v, g=inst, ts=idx_types):
        return gep_address(
            g, v[0],
            [signed_operand(v[i + 1], t) for i, t in enumerate(ts)],
        )

    current = inst.pointer.type
    strides: list[int] = []
    for i in range(len(idx_types)):
        if i == 0:
            if not isinstance(current, PointerType):
                return generic
            strides.append(current.pointee.size_bytes())
            current = current.pointee
        else:
            if not isinstance(current, ArrayType):
                return generic
            strides.append(current.element.size_bytes())
            current = current.element
    convs = []
    for t in idx_types:
        if isinstance(t, IntType):
            m, h, span = t.mask, t.max_signed, 1 << t.bits
            convs.append(lambda x, m=m, h=h, span=span:
                         (x & m) - span if (x & m) > h else x & m)
        else:
            convs.append(None)
    if len(strides) == 1:
        s0, c0 = strides[0], convs[0]
        if c0 is None:
            return lambda v: (v[0] + s0 * v[1]) & _M64
        return lambda v: (v[0] + s0 * c0(v[1])) & _M64

    def multi(v, strides=strides, convs=convs):
        addr = v[0]
        for i, stride in enumerate(strides):
            conv = convs[i]
            idx = v[i + 1]
            addr += stride * (conv(idx) if conv is not None else idx)
        return addr & _M64

    return multi


class SimGraph:
    """The compiled simulation graph: flat per-node arrays.

    Node ids are program-order indices over ``func.blocks`` (identical
    to `StaticNode.index`).  Every array below is indexed by node id.
    """

    def __init__(self, iface: LLVMInterface) -> None:
        self.func_name = iface.func.name
        self.key: Optional[str] = None  # set by BuildPipeline.graph()
        func = iface.func
        cdfg = iface.cdfg
        profile = iface.profile

        insts: list[Instruction] = [i for b in func.blocks for i in b.instructions]
        n = len(insts)
        node_ids = {id(inst): nid for nid, inst in enumerate(insts)}
        self.insts = insts
        self.n_nodes = n
        self.arg_count = len(func.args)
        arg_index = {id(arg): i for i, arg in enumerate(func.args)}

        # -- block tables ------------------------------------------------
        self.block_ids = {b.name: i for i, b in enumerate(func.blocks)}
        self.blocks = [[node_ids[id(i)] for i in b.instructions] for b in func.blocks]
        self.entry_block = self.block_ids[func.entry.name]
        self.block_of = [0] * n
        for bid, nids in enumerate(self.blocks):
            for nid in nids:
                self.block_of[nid] = bid

        # -- per-node kind / FU / latency / energy -----------------------
        self.kind = [K_OTHER] * n
        self.fu_class: list[str] = [FU_NONE] * n
        self.dedicated = [False] * n
        self.pipelined = [True] * n
        self.latency = [0] * n
        self.pool_limit = [0] * n
        self.dyn_energy = [0.0] * n
        self.read_energy = [0.0] * n   # register reads at issue (pJ)
        self.write_energy = [0.0] * n  # register write at commit (pJ)
        self.issue_kind: list[Optional[str]] = [None] * n
        self.produces_value = [False] * n

        # -- operands ----------------------------------------------------
        #: list of descriptors per node; for phis, a dict keyed by
        #: predecessor block id holding the single incoming descriptor.
        self.operands: list = [None] * n
        self.addr_index = [-1] * n  # operand index carrying the address

        # -- memory ------------------------------------------------------
        self.mem_size = [0] * n
        self.mem_type = [None] * n  # value type, for byte conversion
        # Static disambiguation (repro.analysis.memdep): interned root
        # pointer id (-1 = unknown) and constant byte offset (None =
        # symbolic) per access.
        self.mem_root = [-1] * n
        self.mem_offset: list[Optional[int]] = [None] * n

        # -- branches ----------------------------------------------------
        self.br_cond = [False] * n
        self.br_true = [-1] * n
        self.br_false = [-1] * n

        for nid, inst in enumerate(insts):
            node = cdfg.node_for(inst)
            assert node.index == nid
            self.produces_value[nid] = inst.produces_value
            if isinstance(inst, Alloca):
                raise GraphLoweringError(
                    f"{self.func_name}: alloca reached the datapath; the "
                    "dynamic engine rejects it at issue time"
                )
            if isinstance(inst, Call) and not inst.is_intrinsic:
                raise GraphLoweringError(
                    f"{self.func_name}: call to '@{inst.callee}' survived "
                    "inlining"
                )

            # Operand descriptors (same shapes as RuntimeEngine._operands_for).
            if isinstance(inst, Phi):
                incoming = {}
                for value, pred in inst.incoming:
                    desc = _operand_descriptor(value, node_ids)
                    if desc[0] == SRC_ARG:
                        desc = (SRC_ARG, arg_index[id(desc[1])])
                    # incoming_for returns the first matching edge.
                    incoming.setdefault(self.block_ids[pred.name], desc)
                self.operands[nid] = incoming
            else:
                if isinstance(inst, Branch):
                    raw = [inst.condition] if inst.is_conditional else []
                else:
                    raw = list(inst.operands)
                descs = []
                for operand in raw:
                    desc = _operand_descriptor(operand, node_ids)
                    if desc[0] == SRC_ARG:
                        desc = (SRC_ARG, arg_index[id(desc[1])])
                    descs.append(desc)
                self.operands[nid] = descs

            if isinstance(inst, Load):
                self.kind[nid] = K_LOAD
                self.addr_index[nid] = 0
                self.mem_size[nid] = inst.type.size_bytes()
                self.mem_type[nid] = inst.type
            elif isinstance(inst, Store):
                self.kind[nid] = K_STORE
                self.addr_index[nid] = 1
                self.mem_size[nid] = inst.value.type.size_bytes()
                self.mem_type[nid] = inst.value.type
            elif isinstance(inst, Branch):
                self.kind[nid] = K_BRANCH
                self.br_cond[nid] = inst.is_conditional
                self.br_true[nid] = self.block_ids[inst.true_target.name]
                if inst.is_conditional:
                    self.br_false[nid] = self.block_ids[inst.false_target.name]
            elif isinstance(inst, Ret):
                self.kind[nid] = K_RET
            elif node.is_compute:
                self.kind[nid] = K_COMPUTE

            if node.is_compute:
                spec = profile.spec_for(node.fu_class)
                self.fu_class[nid] = node.fu_class
                self.dedicated[nid] = node.fu_instance is not None
                self.pipelined[nid] = spec.pipelined
                self.latency[nid] = iface.latency_for_class(node.fu_class)
                self.pool_limit[nid] = cdfg.fu_counts.get(node.fu_class, 0)
                self.dyn_energy[nid] = spec.dynamic_energy_pj
                self.issue_kind[nid] = (
                    "fp" if node.fu_class.startswith("fp_") else "int"
                )
                bits = 0
                for operand in inst.operands:
                    if (isinstance(operand, (Instruction, Argument))
                            and operand.type.is_scalar):
                        bits += operand.type.bit_width()
                self.read_energy[nid] = (
                    bits * profile.register.read_energy_pj_per_bit
                )
            if node.result_bits:
                self.write_energy[nid] = (
                    node.result_bits * profile.register.write_energy_pj_per_bit
                )

        self._lower_memdep(iface)
        self._evals = None  # built lazily (closures are not picklable)

    # ------------------------------------------------------------------
    def _lower_memdep(self, iface: LLVMInterface) -> None:
        """Root/offset facts per access, via `repro.analysis.memdep`."""
        from repro.analysis.memdep import collect_accesses

        node_ids = {id(inst): nid for nid, inst in enumerate(self.insts)}
        roots: dict[int, int] = {}
        for access in collect_accesses(iface.func):
            nid = node_ids.get(id(access.inst))
            if nid is None:
                continue
            base = access.base
            if isinstance(base, Argument):
                root = roots.setdefault(id(base), len(roots))
                self.mem_root[nid] = root
                self.mem_offset[nid] = access.offset
        self.mem_roots_count = len(roots)

    # ------------------------------------------------------------------
    @property
    def evals(self) -> list:
        """Per-node evaluation thunks (``thunk(vals) -> result``)."""
        if self._evals is None:
            self._evals = self._build_evals()
        return self._evals

    def _build_evals(self) -> list:
        """Per-node thunks, specialized for the hot opcodes.

        Specializations compute *the same function* as the
        `repro.ir.semantics` helpers (inlined constant masks / signed
        reinterpretation / precomputed GEP strides), so results remain
        bit-identical; anything uncommon falls back to the shared
        helpers.  This is the single hottest code in the graph backend —
        one thunk call per issued value-producing instruction.
        """
        evals: list = [None] * self.n_nodes
        for nid, inst in enumerate(self.insts):
            if isinstance(inst, BinaryOp):
                evals[nid] = _binop_eval(inst)
            elif isinstance(inst, ICmp):
                evals[nid] = _icmp_eval(inst)
            elif isinstance(inst, FCmp):
                evals[nid] = (lambda v, p=inst.pred: eval_fcmp(p, v[0], v[1]))
            elif isinstance(inst, Select):
                evals[nid] = lambda v: v[1] if v[0] else v[2]
            elif isinstance(inst, Cast):
                evals[nid] = _cast_eval(inst)
            elif isinstance(inst, GetElementPtr):
                evals[nid] = _gep_eval(inst)
            elif isinstance(inst, Phi):
                evals[nid] = lambda v: v[0]
            elif isinstance(inst, Call):
                evals[nid] = (lambda v, callee=inst.callee, t=inst.type:
                              eval_intrinsic(callee, t, list(v)))
            else:
                evals[nid] = None  # load/store/branch/ret: no value thunk
        return evals

    # -- pickling ------------------------------------------------------
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_evals"] = None
        return state

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<SimGraph {self.func_name} {self.n_nodes} nodes, "
                f"{len(self.blocks)} blocks>")


def graph_key(design) -> str:
    """Content address for a compiled graph.

    Covers everything lowering reads: the module text (via
    `module_fingerprint`), the kernel name, the datapath side of the
    device config (FU limits, latency overrides, window, clock), the
    hardware profile, and the lowering format version.  Deliberately
    *not* the engine choice — graphs are engine-internal, and run-cache
    keys stay engine-agnostic (byte-identical results make the engines
    interchangeable).  Also deliberately not the memory-side config
    fields (`repro.exec.params.CONFIG_MEMORY_FIELDS`): lowering never
    reads them (`GraphScheduler` consults the live config at run time),
    so every point of a memory-only sweep shares one stored graph.
    """
    from repro.build.artifact import module_fingerprint
    from repro.exec.params import split_device_config

    iface = design.iface if hasattr(design, "iface") else design
    profile = iface.profile
    datapath_config, _memory_config = split_device_config(iface.config)
    payload = {
        "version": GRAPH_FORMAT_VERSION,
        "module": module_fingerprint(iface.module),
        "func": iface.func.name,
        "config": datapath_config,
        "profile": {
            "name": profile.name,
            "units": {name: asdict(spec) for name, spec in sorted(profile.units.items())},
            "register": asdict(profile.register),
            "cycle_time_ns": profile.cycle_time_ns,
        },
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=str).encode()
    ).hexdigest()
    return f"graph:{digest}"


def compile_graph(design) -> SimGraph:
    """Lower an `ElaboratedDesign` (or bare `LLVMInterface`) to a
    `SimGraph`.  Raises `GraphLoweringError` for datapaths the graph
    backend cannot execute (alloca, non-inlined calls); callers fall
    back to the dynamic engine."""
    iface = design.iface if hasattr(design, "iface") else design
    if not isinstance(iface, LLVMInterface):
        raise TypeError(f"cannot compile {design!r} to a SimGraph")
    return SimGraph(iface)
