"""Scratchpad memory (SPM).

A banked, multi-ported SRAM with a backing byte store.  Per cycle each
bank services up to ``read_ports`` reads and ``write_ports`` writes;
excess accesses stall into the next cycle (bank conflicts).  Addresses
map to banks cyclically by word ("cyclic partitioning", the common HLS
array-partitioning scheme) or in contiguous blocks.

The SPM prices itself with the CACTI stand-in and counts accesses, so
the power model can report SPM read/write energy and leakage (Fig. 4).
"""

from __future__ import annotations

from typing import Optional

from repro.hw.cacti import SRAMConfig, SRAMMetrics, cacti_model
from repro.ir.memory import MemoryImage
from repro.sim.clock import ClockDomain
from repro.sim.packet import MemCmd, Packet
from repro.sim.ports import SlavePort
from repro.sim.simobject import AddrRange, SimObject, System


class Scratchpad(SimObject):
    def __init__(
        self,
        name: str,
        system: System,
        base: int,
        size: int,
        latency_cycles: int = 1,
        read_ports: int = 2,
        write_ports: int = 1,
        banks: int = 1,
        word_bytes: int = 8,
        partitioning: str = "cyclic",
        clock: Optional[ClockDomain] = None,
    ) -> None:
        super().__init__(name, system, clock)
        if partitioning not in ("cyclic", "block"):
            raise ValueError(f"unknown partitioning '{partitioning}'")
        self.range = AddrRange(base, size)
        self.image = MemoryImage(size, base=base, name=f"{name}.image")
        self.latency_cycles = latency_cycles
        self.read_ports = read_ports
        self.write_ports = write_ports
        self.banks = banks
        self.word_bytes = word_bytes
        self.partitioning = partitioning
        self.sram = cacti_model(
            SRAMConfig(
                size_bytes=size,
                word_bytes=word_bytes,
                read_ports=read_ports,
                write_ports=write_ports,
                banks=banks,
            )
        )
        # Multiple requesters (e.g. accelerator port + DMA port) may
        # attach; each gets its own slave port.
        self.ports: list[SlavePort] = []
        # Per-(cycle, bank) usage accounting: {(cycle, bank): [reads, writes]}
        self._usage: dict[tuple[int, int], list[int]] = {}
        self._prune_counter = 0
        self.stat_reads = self.stats.scalar("reads", "read accesses")
        self.stat_writes = self.stats.scalar("writes", "write accesses")
        self.stat_conflicts = self.stats.scalar("bank_conflicts", "accesses delayed by port limits")

    # ------------------------------------------------------------------
    def make_port(self, label: str = "") -> SlavePort:
        port = SlavePort(
            f"{self.name}.port{label or len(self.ports)}",
            recv_timing_req=lambda pkt: self._recv_timing_req(pkt, port),
            recv_functional=self._recv_functional,
            owner=self,
        )
        self.ports.append(port)
        return port

    @property
    def metrics(self) -> SRAMMetrics:
        return self.sram

    def bank_of(self, addr: int) -> int:
        word = (addr - self.range.start) // self.word_bytes
        if self.partitioning == "cyclic":
            return word % self.banks
        words_per_bank = max(1, (self.range.size // self.word_bytes) // self.banks)
        return min(self.banks - 1, word // words_per_bank)

    # -- functional ---------------------------------------------------------
    def _recv_functional(self, pkt: Packet) -> Packet:
        if pkt.cmd is MemCmd.READ:
            return pkt.make_response(data=self.image.read(pkt.addr, pkt.size))
        self.image.write(pkt.addr, pkt.data)
        return pkt.make_response()

    # -- timing --------------------------------------------------------------
    def _recv_timing_req(self, pkt: Packet, source_port: SlavePort) -> bool:
        pkt.req_tick = self.cur_tick
        if self._finj is not None:
            self._finj.on_access(self)
        if self._san is not None and pkt.agent is not None:
            self._san.record(pkt.agent, pkt.addr, pkt.size, pkt.is_write,
                             self.cur_tick)
        self._prune_counter += 1
        if self._prune_counter % 4096 == 0:
            now = self.cur_cycle
            self._usage = {k: v for k, v in self._usage.items() if k[0] >= now}
        bank = self.bank_of(pkt.addr)
        slot = 0 if pkt.cmd is MemCmd.READ else 1
        limit = self.read_ports if slot == 0 else self.write_ports
        cycle = self.cur_cycle
        # Find the first cycle with a free port on this bank.
        delayed = False
        while True:
            usage = self._usage.setdefault((cycle, bank), [0, 0])
            if usage[slot] < limit:
                usage[slot] += 1
                break
            cycle += 1
            delayed = True
        if delayed:
            self.stat_conflicts.inc()
        done_tick = max(
            self.clock.cycles_to_ticks(cycle + self.latency_cycles),
            self.clock_edge(self.latency_cycles),
        )
        self.eventq.schedule_callback(
            lambda p=pkt, port=source_port: self._complete(p, port),
            done_tick,
            name=f"{self.name}.resp",
        )
        return True

    def _complete(self, pkt: Packet, port: SlavePort) -> None:
        pkt.hops.append(self.name)
        if pkt.cmd is MemCmd.READ:
            self.stat_reads.inc()
            resp = pkt.make_response(data=self.image.read(pkt.addr, pkt.size))
        else:
            self.stat_writes.inc()
            self.image.write(pkt.addr, pkt.data)
            resp = pkt.make_response()
        resp.resp_tick = self.cur_tick
        hub = self._thub
        if hub is not None:
            hub.emit(
                "mem", self.name,
                "read" if pkt.cmd is MemCmd.READ else "write",
                pkt.req_tick, dur=self.cur_tick - pkt.req_tick,
                args={"addr": pkt.addr, "size": pkt.size,
                      "bank": self.bank_of(pkt.addr)},
            )
        port.send_timing_resp(resp)

    # -- energy accounting -----------------------------------------------------
    def read_energy_pj(self) -> float:
        return self.stat_reads.value() * self.sram.read_energy_pj

    def write_energy_pj(self) -> float:
        return self.stat_writes.value() * self.sram.write_energy_pj

    def leakage_mw(self) -> float:
        return self.sram.leakage_mw

    def area_um2(self) -> float:
        return self.sram.area_um2
