"""LLVM-like typed SSA intermediate representation.

This subpackage stands in for the LLVM toolchain the paper relies on:
a typed SSA IR with basic blocks, a builder API, a textual format with a
parser (a subset of ``.ll`` syntax), a verifier, and a functional
interpreter over a flat byte-addressable memory.  The accelerator model
(`repro.core`) consumes this IR directly, exactly as gem5-SALAM's
"LLVM Interface" consumes clang-emitted IR.
"""

from repro.ir.types import (
    ArrayType,
    FloatType,
    IntType,
    LabelType,
    PointerType,
    Type,
    VoidType,
    DOUBLE,
    FLOAT,
    I1,
    I8,
    I16,
    I32,
    I64,
    VOID,
    array_of,
    ptr_to,
)
from repro.ir.values import Argument, Constant, Instruction, Value
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.builder import IRBuilder
from repro.ir.printer import print_module, print_function
from repro.ir.parser import parse_module, IRParseError
from repro.ir.verifier import verify_module, VerifierError
from repro.ir.memory import MemoryImage
from repro.ir.interpreter import Interpreter, InterpreterError

__all__ = [
    "Type",
    "VoidType",
    "IntType",
    "FloatType",
    "PointerType",
    "ArrayType",
    "LabelType",
    "VOID",
    "I1",
    "I8",
    "I16",
    "I32",
    "I64",
    "FLOAT",
    "DOUBLE",
    "ptr_to",
    "array_of",
    "Value",
    "Constant",
    "Argument",
    "Instruction",
    "Module",
    "Function",
    "BasicBlock",
    "IRBuilder",
    "print_module",
    "print_function",
    "parse_module",
    "IRParseError",
    "verify_module",
    "VerifierError",
    "MemoryImage",
    "Interpreter",
    "InterpreterError",
]
