"""The three producer-consumer integration scenarios of Fig. 16.

One CNN layer (3x3 conv -> ReLU -> 2x2 max-pool) mapped onto three
accelerators, integrated three ways:

* ``private`` (Fig. 16a, the baseline): each accelerator owns a private
  SPM; the host moves data between stages with the cluster DMA and
  synchronizes every stage via MMR writes + interrupts — the only
  semantics gem5-Aladdin supports.
* ``shared`` (Fig. 16b): one shared scratchpad; inter-stage copies
  disappear but a central controller (the host) still starts each stage
  and waits for its interrupt — the PARADE-style model.
* ``stream`` (Fig. 16c): accelerators talk through stream buffers with
  a two-way handshake; all three stages and both stream DMAs start once
  and the pipeline self-synchronizes — the integration style only
  gem5-SALAM can model.

Each scenario returns the end-to-end time and verifies the final 7x7
output against the golden model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DeviceConfig
from repro.core.mmr import ARGS_OFFSET, CTRL_IRQ_EN, CTRL_START
from repro.build.pipeline import build_module
from repro.hw.default_profile import default_profile
from repro.mem.stream_port import StreamPort
from repro.sim.simobject import AddrRange
from repro.system.soc import build_soc
from repro.workloads.cnn import (
    CONV,
    CONV_SOURCE,
    CONV_STREAM_SOURCE,
    IN,
    POOL,
    POOL_SOURCE,
    POOL_STREAM_SOURCE,
    RELU_SOURCE,
    RELU_STREAM_SOURCE,
    golden_layer,
)

# Platform tuning: a modest embedded-style memory system so data
# movement is a visible fraction of end-to-end time, as in the paper's
# FPGA-class platform.
_DRAM_KWARGS = dict(bytes_per_cycle=1, latency_cycles=100, row_hit_latency_cycles=30)
_ACC_CLOCK_HZ = 100e6
# Host driver overheads at 1.2 GHz: a bare MMR poke is ~100 ns, while
# interrupt service and the DMA driver pay a ~2 us user/kernel round
# trip — the control costs the paper's ARM host pays per stage.
_HOST_OP_OVERHEADS = {
    "write_mmr": 120,
    "read_mmr": 120,
    "wait_irq": 2400,
    "dma_copy": 2400,
    "start_stream": 600,
    "wait_stream": 600,
}


@dataclass
class ScenarioResult:
    name: str
    total_ns: float
    acc_cycles: dict[str, int]
    verified: bool
    sanitizer: dict | None = None
    #: The live platform, for post-run analysis (``soc.lint()`` sees the
    #: recorded op/launch logs).  Excluded from repr/comparison.
    soc: object | None = field(default=None, repr=False, compare=False)

    @property
    def total_us(self) -> float:
        return self.total_ns / 1e3


def _start_acc(host, mmr_base, args):
    """Driver fragment: program args, set START+IRQ_EN."""
    for i, value in enumerate(args):
        yield host.write_mmr(mmr_base + ARGS_OFFSET + 8 * i, value)
    yield host.write_mmr(mmr_base, CTRL_START | CTRL_IRQ_EN)


def _build_platform(rng):
    soc = build_soc(dram_size=1 << 20, host_op_overhead_cycles=_HOST_OP_OVERHEADS)
    soc.dram.bytes_per_cycle = _DRAM_KWARGS["bytes_per_cycle"]
    soc.dram.latency_cycles = _DRAM_KWARGS["latency_cycles"]
    soc.dram.row_hit_latency_cycles = _DRAM_KWARGS["row_hit_latency_cycles"]
    image = rng.uniform(-1.0, 1.0, (IN, IN))
    kernel = rng.uniform(-1.0, 1.0, 9)
    __, __, pool_golden = golden_layer(image, kernel)
    d_image = soc.dram.image.alloc_array(image)
    d_kernel = soc.dram.image.alloc_array(kernel)
    d_out = soc.dram.image.alloc(POOL * POOL * 8)
    return soc, image, kernel, pool_golden, d_image, d_kernel, d_out


def _finish(soc, name, units, d_out, golden) -> ScenarioResult:
    sim = soc.simulation()
    cause = sim.run(max_tick=10_000_000_000)
    if not soc.host.finished:
        raise RuntimeError(f"scenario '{name}' did not finish ({cause})")
    out = soc.dram.image.read_array(d_out, np.float64, POOL * POOL)
    verified = bool(np.allclose(out, golden.ravel(), rtol=1e-9, atol=1e-12))
    san = soc.system.sanitizer
    return ScenarioResult(
        name=name,
        total_ns=soc.host.finish_tick / 1000.0,
        acc_cycles={u.name: u.engine.total_cycles for u in units},
        verified=verified,
        sanitizer=san.summary() if san is not None else None,
        soc=soc,
    )


def _acc_config():
    return DeviceConfig(clock_freq_hz=_ACC_CLOCK_HZ, read_ports=4, write_ports=2)


#: Per-process artifact store: the three scenarios share conv/relu/pool
#: kernels, so after the first platform build every compile is a hit.
_KERNEL_STORE = None


def _compile(source: str, name: str):
    """Compile one CNN stage kernel through the shared build pipeline."""
    global _KERNEL_STORE
    if _KERNEL_STORE is None:
        from repro.build.store import ArtifactStore

        _KERNEL_STORE = ArtifactStore()
    return build_module(source, name, store=_KERNEL_STORE).module


# ---------------------------------------------------------------------------
def run_private_spm(seed: int = 7, trace_hub=None, sanitizer=None) -> ScenarioResult:
    """Fig. 16a: private SPMs, DMA between stages, host-synchronized."""
    rng = np.random.default_rng(seed)
    soc, image, kernel, golden, d_image, d_kernel, d_out = _build_platform(rng)
    if trace_hub is not None:
        soc.system.attach_trace_hub(trace_hub)
    if sanitizer is not None:
        soc.system.attach_sanitizer(sanitizer)
    cluster = soc.add_cluster("cl")
    profile = default_profile()
    conv = cluster.add_accelerator(
        "conv", _compile(CONV_SOURCE, "conv"), "conv2d", profile,
        config=_acc_config(), private_spm_bytes=1 << 13,
        spm_read_ports=4,
    )
    relu = cluster.add_accelerator(
        "relu", _compile(RELU_SOURCE, "relu"), "relu", profile,
        config=_acc_config(), private_spm_bytes=1 << 13,
        spm_read_ports=4,
    )
    pool = cluster.add_accelerator(
        "pool", _compile(POOL_SOURCE, "pool"), "maxpool", profile,
        config=_acc_config(), private_spm_bytes=1 << 13,
        spm_read_ports=4,
    )
    for i, unit in enumerate((conv, relu, pool)):
        unit.comm.connect_irq(soc.irq.line(i))
    soc.finalize()

    conv_spm = conv.private_spm.range.start
    relu_spm = relu.private_spm.range.start
    pool_spm = pool.private_spm.range.start
    image_bytes = IN * IN * 8
    conv_out_bytes = CONV * CONV * 8
    pool_out_bytes = POOL * POOL * 8
    s_image, s_kernel, s_conv_out = conv_spm, conv_spm + image_bytes, conv_spm + image_bytes + 128
    s_relu_in, s_relu_out = relu_spm, relu_spm + conv_out_bytes
    s_pool_in, s_pool_out = pool_spm, pool_spm + conv_out_bytes
    host = soc.host
    dma = cluster.dma

    def driver(h):
        yield h.dma_copy(dma, d_image, s_image, image_bytes)
        yield h.dma_copy(dma, d_kernel, s_kernel, 72)
        yield from _start_acc(h, conv.comm.mmr.range.start,
                              [s_image, s_kernel, s_conv_out])
        yield h.wait_irq(0)
        yield h.dma_copy(dma, s_conv_out, s_relu_in, conv_out_bytes)
        yield from _start_acc(h, relu.comm.mmr.range.start, [s_relu_in, s_relu_out])
        yield h.wait_irq(1)
        yield h.dma_copy(dma, s_relu_out, s_pool_in, conv_out_bytes)
        yield from _start_acc(h, pool.comm.mmr.range.start, [s_pool_in, s_pool_out])
        yield h.wait_irq(2)
        yield h.dma_copy(dma, s_pool_out, d_out, pool_out_bytes)

    host.run_driver(driver(host))
    return _finish(soc, "private_spm", (conv, relu, pool), d_out, golden)


# ---------------------------------------------------------------------------
def run_shared_spm(seed: int = 7, trace_hub=None, sanitizer=None) -> ScenarioResult:
    """Fig. 16b: shared scratchpad, central-controller synchronization."""
    rng = np.random.default_rng(seed)
    soc, image, kernel, golden, d_image, d_kernel, d_out = _build_platform(rng)
    if trace_hub is not None:
        soc.system.attach_trace_hub(trace_hub)
    if sanitizer is not None:
        soc.system.attach_sanitizer(sanitizer)
    cluster = soc.add_cluster("cl", shared_spm_bytes=1 << 14)
    profile = default_profile()
    units = []
    sources = [
        ("conv", CONV_SOURCE, "conv2d"),
        ("relu", RELU_SOURCE, "relu"),
        ("pool", POOL_SOURCE, "maxpool"),
    ]
    for i, (name, source, func) in enumerate(sources):
        unit = cluster.add_accelerator(
            name, _compile(source, name), func, profile, config=_acc_config()
        )
        # No private SPM: all operands live in the shared scratchpad.
        cluster.route_to_global(unit, cluster.shared_spm.range)
        unit.comm.connect_irq(soc.irq.line(i))
        units.append(unit)
    conv, relu, pool = units
    soc.finalize()

    base = cluster.shared_spm.range.start
    image_bytes = IN * IN * 8
    conv_out_bytes = CONV * CONV * 8
    pool_out_bytes = POOL * POOL * 8
    s_image, s_kernel = base, base + image_bytes
    s_conv_out = s_kernel + 128
    s_relu_out = s_conv_out + conv_out_bytes
    s_pool_out = s_relu_out + conv_out_bytes
    host = soc.host
    dma = cluster.dma

    def driver(h):
        yield h.dma_copy(dma, d_image, s_image, image_bytes)
        yield h.dma_copy(dma, d_kernel, s_kernel, 72)
        yield from _start_acc(h, conv.comm.mmr.range.start,
                              [s_image, s_kernel, s_conv_out])
        yield h.wait_irq(0)
        yield from _start_acc(h, relu.comm.mmr.range.start, [s_conv_out, s_relu_out])
        yield h.wait_irq(1)
        yield from _start_acc(h, pool.comm.mmr.range.start, [s_relu_out, s_pool_out])
        yield h.wait_irq(2)
        yield h.dma_copy(dma, s_pool_out, d_out, pool_out_bytes)

    host.run_driver(driver(host))
    return _finish(soc, "shared_spm", units, d_out, golden)


# ---------------------------------------------------------------------------
def run_stream(seed: int = 7, trace_hub=None, sanitizer=None) -> ScenarioResult:
    """Fig. 16c: direct accelerator-to-accelerator streaming."""
    rng = np.random.default_rng(seed)
    soc, image, kernel, golden, d_image, d_kernel, d_out = _build_platform(rng)
    if trace_hub is not None:
        soc.system.attach_trace_hub(trace_hub)
    if sanitizer is not None:
        soc.system.attach_sanitizer(sanitizer)
    cluster = soc.add_cluster("cl")
    profile = default_profile()

    buf_in = cluster.add_stream_buffer("buf_in", capacity_tokens=32)
    buf_cr = cluster.add_stream_buffer("buf_cr", capacity_tokens=32)
    buf_rp = cluster.add_stream_buffer("buf_rp", capacity_tokens=32)
    buf_out = cluster.add_stream_buffer("buf_out", capacity_tokens=32)

    conv = cluster.add_accelerator(
        "conv", _compile(CONV_STREAM_SOURCE, "conv"), "conv2d_stream", profile,
        config=_acc_config(), private_spm_bytes=1 << 12,
    )
    relu = cluster.add_accelerator(
        "relu", _compile(RELU_STREAM_SOURCE, "relu"), "relu_stream", profile,
        config=_acc_config(),
    )
    pool = cluster.add_accelerator(
        "pool", _compile(POOL_STREAM_SOURCE, "pool"), "maxpool_stream", profile,
        config=_acc_config(), private_spm_bytes=1 << 12,
    )
    for i, unit in enumerate((conv, relu, pool)):
        unit.comm.connect_irq(soc.irq.line(i))

    # Stream windows, one address per endpoint.
    stream_base = 0x9000_0000
    ports = {}
    for j, (name, buffer) in enumerate(
        [("conv_in", buf_in), ("conv_out", buf_cr), ("relu_in", buf_cr),
         ("relu_out", buf_rp), ("pool_in", buf_rp), ("pool_out", buf_out)]
    ):
        port = StreamPort(f"sp_{name}", soc.system, buffer, base=stream_base + 0x100 * j)
        ports[name] = port
    conv.comm.add_memory_route(ports["conv_in"].range, ports["conv_in"].port, "sin", strict=True)
    conv.comm.add_memory_route(ports["conv_out"].range, ports["conv_out"].port, "sout", strict=True)
    relu.comm.add_memory_route(ports["relu_in"].range, ports["relu_in"].port, "sin", strict=True)
    relu.comm.add_memory_route(ports["relu_out"].range, ports["relu_out"].port, "sout", strict=True)
    pool.comm.add_memory_route(ports["pool_in"].range, ports["pool_in"].port, "sin", strict=True)
    pool.comm.add_memory_route(ports["pool_out"].range, ports["pool_out"].port, "sout", strict=True)

    feeder = cluster.add_stream_dma("feed", buf_in, "mem_to_stream")
    drainer = cluster.add_stream_dma("drain", buf_out, "stream_to_mem")
    soc.finalize()

    conv_spm = conv.private_spm.range.start
    s_kernel = conv_spm + 4 * IN * 8 + 64
    pool_rowbuf = pool.private_spm.range.start
    host = soc.host

    def driver(h):
        yield h.dma_copy(cluster.dma, d_kernel, s_kernel, 72)
        # Start the whole pipeline at once: no central synchronization.
        yield from _start_acc(h, conv.comm.mmr.range.start,
                              [ports["conv_in"].range.start,
                               ports["conv_out"].range.start,
                               conv_spm, s_kernel])
        yield from _start_acc(h, relu.comm.mmr.range.start,
                              [ports["relu_in"].range.start,
                               ports["relu_out"].range.start])
        yield from _start_acc(h, pool.comm.mmr.range.start,
                              [ports["pool_in"].range.start,
                               ports["pool_out"].range.start,
                               pool_rowbuf])
        yield h.start_stream(feeder, d_image, IN * IN)
        yield h.start_stream(drainer, d_out, POOL * POOL)
        yield h.wait_irq(2)          # pool finishes last
        yield h.wait_stream(drainer)

    host.run_driver(driver(host))
    return _finish(soc, "stream", (conv, relu, pool), d_out, golden)


#: Name -> runner registry, the lookup surface for ``repro analyze
#: --scenario`` and the serve workers.
SCENARIOS = {
    "private_spm": run_private_spm,
    "shared_spm": run_shared_spm,
    "stream": run_stream,
}


def run_all_scenarios(seed: int = 7) -> dict[str, ScenarioResult]:
    """Run the three Fig. 16 scenarios and report speedups vs baseline."""
    return {name: runner(seed) for name, runner in SCENARIOS.items()}
