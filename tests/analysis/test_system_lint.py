"""System/config lints: SYS301 overlaps, SYS302 footprints, SYS303 DMA."""

import numpy as np

from repro.analysis.syslint import (
    DmaTransfer,
    KernelFootprint,
    MemRegion,
    SystemDescription,
    describe_soc,
    footprints_from_module,
    lint_system,
)
from repro.system.soc import StandaloneAccelerator, build_soc


def _desc(**kw):
    return SystemDescription(**kw)


# ----------------------------------------------------------------------
# SYS301: overlapping regions
# ----------------------------------------------------------------------
def test_overlapping_regions_flagged():
    desc = _desc(regions=[
        MemRegion("spm0", "spm", 0x1000, 0x1000),
        MemRegion("spm1", "spm", 0x1800, 0x1000),  # overlaps spm0
        MemRegion("dram", "dram", 0x10000, 0x1000),
    ])
    report = lint_system(desc)
    hits = [d for d in report if d.code == "SYS301"]
    assert len(hits) == 1
    assert "spm0" in hits[0].message and "spm1" in hits[0].message


def test_disjoint_regions_clean():
    desc = _desc(regions=[
        MemRegion("mmr", "mmr", 0x1000, 0x100),
        MemRegion("spm", "spm", 0x2000, 0x1000),
        MemRegion("dram", "dram", 0x8000, 0x4000),
    ])
    assert not lint_system(desc).has_errors


def test_adjacent_regions_do_not_overlap():
    desc = _desc(regions=[
        MemRegion("a", "spm", 0x1000, 0x1000),
        MemRegion("b", "spm", 0x2000, 0x1000),  # starts exactly at a.end
    ])
    assert not [d for d in lint_system(desc) if d.code == "SYS301"]


# ----------------------------------------------------------------------
# SYS302: kernel footprint vs scratchpad
# ----------------------------------------------------------------------
def test_footprint_exceeding_spm_flagged():
    desc = _desc(
        regions=[MemRegion("spm", "spm", 0x2000, 1024)],
        kernels=[KernelFootprint("gemm", 4096, region="spm")],
    )
    report = lint_system(desc)
    hits = [d for d in report if d.code == "SYS302"]
    assert len(hits) == 1
    assert "4096" in hits[0].message


def test_footprint_fitting_spm_clean():
    desc = _desc(
        regions=[MemRegion("spm", "spm", 0x2000, 8192)],
        kernels=[KernelFootprint("gemm", 4096, region="spm")],
    )
    assert not lint_system(desc).has_errors


def test_unnamed_region_uses_largest_spm():
    desc = _desc(
        regions=[MemRegion("small", "spm", 0x1000, 256),
                 MemRegion("big", "spm", 0x2000, 1 << 20)],
        kernels=[KernelFootprint("k", 4096)],  # no region named
    )
    assert not lint_system(desc).has_errors


# ----------------------------------------------------------------------
# SYS303: DMA into unmapped ranges
# ----------------------------------------------------------------------
def test_dma_outside_map_flagged():
    desc = _desc(
        regions=[MemRegion("dram", "dram", 0x8000, 0x1000)],
        transfers=[DmaTransfer("dma0", src=0x8000, dst=0x5000, size=64)],
    )
    report = lint_system(desc)
    hits = [d for d in report if d.code == "SYS303"]
    assert len(hits) == 1
    assert "destination" in hits[0].message


def test_dma_straddling_region_end_flagged():
    desc = _desc(
        regions=[MemRegion("dram", "dram", 0x8000, 0x1000)],
        transfers=[DmaTransfer("dma0", src=0x8FC0, dst=0x8000, size=128)],
    )
    assert [d for d in lint_system(desc) if d.code == "SYS303"]


def test_dma_spanning_two_adjacent_regions_clean():
    # The union of the two mapped regions covers the transfer, even
    # though no single region does — a legal cross-region burst.
    desc = _desc(
        regions=[MemRegion("a", "spm", 0x2000, 0x1000),
                 MemRegion("b", "spm", 0x3000, 0x1000),
                 MemRegion("dram", "dram", 0x8000, 0x1000)],
        transfers=[DmaTransfer("dma0", src=0x8000, dst=0x2F80, size=0x100)],
    )
    assert not [d for d in lint_system(desc) if d.code == "SYS303"]


def test_dma_across_gap_between_regions_flagged():
    desc = _desc(
        regions=[MemRegion("a", "spm", 0x2000, 0x1000),
                 MemRegion("b", "spm", 0x3800, 0x1000),  # 0x800 hole
                 MemRegion("dram", "dram", 0x8000, 0x1000)],
        transfers=[DmaTransfer("dma0", src=0x8000, dst=0x2F80, size=0x1000)],
    )
    assert [d for d in lint_system(desc) if d.code == "SYS303"]


def test_dma_inside_map_clean():
    desc = _desc(
        regions=[MemRegion("dram", "dram", 0x8000, 0x1000),
                 MemRegion("spm", "spm", 0x2000, 0x1000)],
        transfers=[DmaTransfer("dma0", src=0x8000, dst=0x2000, size=256)],
    )
    assert not lint_system(desc).has_errors


# ----------------------------------------------------------------------
# Live-platform integration
# ----------------------------------------------------------------------
SRC = """
void vecadd(double a[32], double b[32], double c[32]) {
  for (int i = 0; i < 32; i++) { c[i] = a[i] + b[i]; }
}
"""


def test_describe_standalone_accelerator():
    acc = StandaloneAccelerator(SRC, "vecadd", memory="spm",
                                spm_bytes=1 << 14)
    desc = describe_soc(acc)
    spms = [r for r in desc.regions if r.kind == "spm"]
    assert len(spms) == 1
    assert spms[0].size == 1 << 14


def test_standalone_lint_clean_and_footprint():
    # Full unrolling folds every access to a constant offset, making
    # the static footprint exact (3 arrays x 32 doubles = 768 B).
    acc = StandaloneAccelerator(SRC, "vecadd", memory="spm",
                                spm_bytes=1 << 14, unroll_factor=32)
    report = acc.lint()
    assert not report.has_errors
    # Shrink the scratchpad below the kernel's demand.
    tiny = StandaloneAccelerator(SRC, "vecadd", memory="spm",
                                 spm_bytes=512, unroll_factor=32)
    report = tiny.lint()
    assert any(d.code == "SYS302" for d in report.errors)


def test_footprints_from_module():
    acc = StandaloneAccelerator(SRC, "vecadd", memory="spm",
                                spm_bytes=1 << 14, unroll_factor=32)
    kernels = footprints_from_module(acc.module, "vecadd", region="x")
    assert len(kernels) == 1
    assert kernels[0].bytes_needed == 3 * 32 * 8
    assert kernels[0].exact
    assert kernels[0].region == "x"


def test_rolled_loop_footprint_is_lower_bound():
    acc = StandaloneAccelerator(SRC, "vecadd", memory="spm",
                                spm_bytes=1 << 14)  # loop stays rolled
    kernels = footprints_from_module(acc.module, "vecadd")
    assert not kernels[0].exact  # dynamic offsets: bound, not exact


def test_soc_address_map_and_lint():
    soc = build_soc()
    soc.add_cluster("cl0", shared_spm_bytes=1 << 12)
    soc.finalize()
    regions = soc.address_map()
    assert any(r.kind == "dram" for r in regions)
    report = soc.lint()
    assert not report.has_errors
    assert "system" in report.meta


def test_dma_transfer_log_feeds_lint():
    """A simulated DMA copy shows up in describe_soc and lints clean."""
    from repro.mem.dma import BlockDMA
    from repro.mem.dram import DRAM
    from repro.sim.simobject import System

    system = System("s", clock_freq_hz=1e9)
    dram = DRAM("s.dram", system, base=0x8000_0000, size=1 << 16)
    dma = BlockDMA("s.dma", system)
    dma.port.bind(dram.port)
    src = dram.image.alloc_array(np.arange(16.0))
    dst = dram.image.alloc(128)
    done = {"flag": False}
    dma.start(src, dst, 128, on_done=lambda: done.update(flag=True))
    system.run()
    assert done["flag"]
    desc = describe_soc(system)
    assert desc.transfers == [DmaTransfer("s.dma", src, dst, 128)]
    assert not lint_system(desc).has_errors
    # Provenance rides along without breaking equality: the simulated
    # copy knows when it ran, which way, and on what engine kind.
    xfer = desc.transfers[0]
    assert xfer.direction == "mem_to_mem"
    assert xfer.engine == "block"
    assert xfer.start_tick is not None
    assert xfer.end_tick is not None and xfer.end_tick > xfer.start_tick
    # The same transfer against a map without DRAM is a SYS303 error.
    desc.regions = [r for r in desc.regions if r.kind != "dram"]
    assert any(d.code == "SYS303" for d in lint_system(desc).errors)
