"""Crossbar interconnect.

Routes request packets from any attached master-facing slave port to
the slave whose address range contains the request, and routes the
response back to the originating requester.  Models a fixed traversal
latency plus per-output-port serialization (one packet per output port
per cycle), which is where shared-resource contention in accelerator
clusters becomes visible.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.clock import ClockDomain
from repro.sim.packet import Packet
from repro.sim.ports import MasterPort, PortError, SlavePort
from repro.sim.simobject import AddrRange, SimObject, System


class Crossbar(SimObject):
    def __init__(
        self,
        name: str,
        system: System,
        latency_cycles: int = 1,
        width_bytes: int = 8,
        clock: Optional[ClockDomain] = None,
    ) -> None:
        super().__init__(name, system, clock)
        self.latency_cycles = latency_cycles
        self.width_bytes = width_bytes
        self.slave_ports: list[SlavePort] = []   # face upstream masters
        self.master_ports: list[tuple[AddrRange, MasterPort]] = []  # face downstream slaves
        self._route_back: dict[int, SlavePort] = {}
        self._out_busy: dict[int, int] = {}  # master port index -> busy-until tick
        self.stat_requests = self.stats.scalar("requests")
        self.stat_responses = self.stats.scalar("responses")

    # -- wiring -------------------------------------------------------------
    def slave_port(self, label: str = "") -> SlavePort:
        """Create a new upstream-facing port (masters connect here)."""
        port = SlavePort(
            f"{self.name}.slave{label or len(self.slave_ports)}",
            recv_timing_req=lambda pkt: self._recv_timing_req(pkt, port),
            recv_functional=self._recv_functional,
            owner=self,
        )
        self.slave_ports.append(port)
        return port

    def attach_slave(self, slave: SlavePort, addr_range: AddrRange, label: str = "") -> None:
        """Attach a downstream device covering ``addr_range``."""
        for existing_range, __ in self.master_ports:
            if existing_range.overlaps(addr_range):
                raise PortError(
                    f"{self.name}: range {addr_range} overlaps {existing_range}"
                )
        port = MasterPort(
            f"{self.name}.master{label or len(self.master_ports)}",
            recv_timing_resp=self._recv_timing_resp,
            owner=self,
        )
        port.bind(slave)
        self.master_ports.append((addr_range, port))

    def _route(self, addr: int, size: int) -> tuple[int, MasterPort]:
        for index, (addr_range, port) in enumerate(self.master_ports):
            if addr_range.contains(addr, size):
                return index, port
        raise PortError(f"{self.name}: no route for address {addr:#x} (+{size})")

    # -- functional -------------------------------------------------------------
    def _recv_functional(self, pkt: Packet) -> Packet:
        __, port = self._route(pkt.addr, pkt.size)
        return port.send_functional(pkt)

    # -- timing ---------------------------------------------------------------------
    def _recv_timing_req(self, pkt: Packet, source: SlavePort) -> bool:
        index, out_port = self._route(pkt.addr, pkt.size)
        self.stat_requests.inc()
        if self._thub is not None:
            self.trace_emit(
                "mem", "route",
                args={"addr": pkt.addr, "size": pkt.size, "out": index},
            )
        self._route_back[pkt.pkt_id] = source
        transfer_cycles = max(1, -(-pkt.size // self.width_bytes))
        earliest = self.clock_edge(self.latency_cycles)
        start = max(earliest, self._out_busy.get(index, 0))
        self._out_busy[index] = start + self.clock.cycles_to_ticks(transfer_cycles)
        self.eventq.schedule_callback(
            lambda p=pkt, port=out_port: self._forward(p, port),
            start,
            name=f"{self.name}.fwd",
        )
        return True

    def _forward(self, pkt: Packet, port: MasterPort) -> None:
        pkt.hops.append(self.name)
        if not port.send_timing_req(pkt):
            # Downstream backpressure: retry next cycle.
            self.eventq.schedule_callback(
                lambda p=pkt, pt=port: self._forward(p, pt),
                self.clock_edge(1),
                name=f"{self.name}.retry",
            )

    def _recv_timing_resp(self, pkt: Packet) -> None:
        self.stat_responses.inc()
        source = self._route_back.pop(pkt.pkt_id, None)
        if source is None:
            raise PortError(f"{self.name}: orphan response {pkt}")
        self.eventq.schedule_callback(
            lambda p=pkt, port=source: port.send_timing_resp(p),
            self.clock_edge(self.latency_cycles),
            name=f"{self.name}.resp",
        )
