"""Static control/data-flow graph (CDFG).

Built once from the IR during static elaboration: a per-basic-block
skeleton of the datapath where every instruction is a :class:`StaticNode`
linked to its virtual functional unit and the register that will hold
its result.  The dynamic runtime engine instantiates this skeleton
block-by-block at runtime (the paper's dual-CDFG approach).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hw.profile import FU_NONE, fu_class_for
from repro.ir.instructions import Branch, Load, Phi, Ret, Store
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Instruction


@dataclass
class StaticNode:
    """One instruction of the static datapath skeleton."""

    inst: Instruction
    index: int                     # position within the function (program order)
    fu_class: str                  # FU_NONE for control/memory/wiring ops
    fu_instance: Optional[int]     # dedicated unit id (1-to-1 mode) or None (pooled)
    result_bits: int               # register width of the result (0 if void)

    @property
    def is_memory(self) -> bool:
        return isinstance(self.inst, (Load, Store))

    @property
    def is_load(self) -> bool:
        return isinstance(self.inst, Load)

    @property
    def is_store(self) -> bool:
        return isinstance(self.inst, Store)

    @property
    def is_branch(self) -> bool:
        return isinstance(self.inst, Branch)

    @property
    def is_ret(self) -> bool:
        return isinstance(self.inst, Ret)

    @property
    def is_phi(self) -> bool:
        return isinstance(self.inst, Phi)

    @property
    def is_compute(self) -> bool:
        return self.fu_class != FU_NONE


class StaticCDFG:
    """The statically elaborated skeleton of one accelerator function."""

    def __init__(self, func: Function, fu_limits: Optional[dict[str, int]] = None) -> None:
        self.func = func
        self.fu_limits = dict(fu_limits or {})
        self.nodes: dict[Instruction, StaticNode] = {}
        self.blocks: dict[str, list[StaticNode]] = {}
        # fu_counts: instantiated units per class (after applying limits).
        self.fu_counts: dict[str, int] = {}
        self.static_op_counts: dict[str, int] = {}
        self.register_bits = 0
        self._elaborate()

    def _elaborate(self) -> None:
        dedicated_counter: dict[str, int] = {}
        index = 0
        for block in self.func.blocks:
            node_list: list[StaticNode] = []
            for inst in block.instructions:
                fu_class = fu_class_for(inst)
                result_bits = (
                    inst.type.bit_width() if inst.produces_value else 0
                )
                fu_instance: Optional[int] = None
                if fu_class != FU_NONE:
                    self.static_op_counts[fu_class] = (
                        self.static_op_counts.get(fu_class, 0) + 1
                    )
                    if fu_class not in self.fu_limits:
                        # Default: dedicated unit per static instruction.
                        fu_instance = dedicated_counter.get(fu_class, 0)
                        dedicated_counter[fu_class] = fu_instance + 1
                node = StaticNode(
                    inst=inst,
                    index=index,
                    fu_class=fu_class,
                    fu_instance=fu_instance,
                    result_bits=result_bits,
                )
                self.nodes[inst] = node
                node_list.append(node)
                self.register_bits += result_bits
                index += 1
            self.blocks[block.name] = node_list
        # Instantiated FU counts: limit if constrained, else 1-to-1.
        for fu_class, static_count in self.static_op_counts.items():
            limit = self.fu_limits.get(fu_class)
            self.fu_counts[fu_class] = (
                min(limit, static_count) if limit is not None else static_count
            )

    # ------------------------------------------------------------------
    def node_for(self, inst: Instruction) -> StaticNode:
        return self.nodes[inst]

    def block_nodes(self, block: BasicBlock) -> list[StaticNode]:
        return self.blocks[block.name]

    def total_instructions(self) -> int:
        return len(self.nodes)

    def summary(self) -> dict:
        return {
            "function": self.func.name,
            "instructions": self.total_instructions(),
            "blocks": len(self.blocks),
            "register_bits": self.register_bits,
            "fu_counts": dict(sorted(self.fu_counts.items())),
        }
