"""Declarative pass-pipeline specs.

A pipeline spec is a comma-separated list of pass names, each with an
optional ``:N`` integer argument (only ``unroll`` takes one)::

    mem2reg,unroll:4,constfold,dce

``o1`` and ``o2`` are named presets expanding to the standard
frontend pipelines (``o1:4`` unrolls by 4).  The same string is what
the CLI accepts (``--passes``) and what the build-artifact cache key
hashes, so "which optimizations ran" is spelled identically everywhere.

`PipelineSpec.parse` round-trips with `PipelineSpec.canonical`:
presets are expanded, ``unroll:1`` collapses to ``unroll``, and
whitespace/case is normalized — two specs that run the same passes
produce the same canonical string (and hence the same artifact key).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Union

from repro.ir.module import Module
from repro.passes.pass_manager import FunctionPass, PassManager


class PipelineSpecError(ValueError):
    """A pipeline spec string failed to parse."""


#: Pass name -> zero-argument factory.  ``inline`` and ``unroll`` are
#: special-cased (module-dependent and integer-argumented respectively).
def _factories() -> dict:
    from repro.passes.constfold import ConstantFold
    from repro.passes.cse import CommonSubexpressionElimination
    from repro.passes.dce import DeadCodeElimination
    from repro.passes.licm import LoopInvariantCodeMotion
    from repro.passes.mem2reg import Mem2Reg
    from repro.passes.simplify_cfg import SimplifyCFG

    return {
        "mem2reg": Mem2Reg,
        "constfold": ConstantFold,
        "dce": DeadCodeElimination,
        "simplifycfg": SimplifyCFG,
        "licm": LoopInvariantCodeMotion,
        "cse": CommonSubexpressionElimination,
    }


PASS_NAMES = ("inline", "mem2reg", "constfold", "dce", "simplifycfg",
              "licm", "cse", "unroll")


@dataclass(frozen=True)
class PassStep:
    """One entry of a pipeline: a pass name plus its optional argument."""

    name: str
    arg: Optional[int] = None

    def spec(self) -> str:
        return self.name if self.arg is None else f"{self.name}:{self.arg}"


def _standard_steps(opt_level: int, unroll_factor: int) -> tuple[PassStep, ...]:
    """The step sequence of `standard_pipeline`, as spec data."""
    unroll = PassStep("unroll", unroll_factor if unroll_factor != 1 else None)
    steps = [PassStep("inline"), PassStep("mem2reg"),
             PassStep("constfold"), PassStep("dce")]
    if opt_level >= 2:
        steps += [PassStep("licm"), PassStep("cse"), PassStep("dce")]
    steps += [unroll, PassStep("constfold"),
              PassStep("simplifycfg"), PassStep("dce")]
    if opt_level >= 2:
        steps += [PassStep("cse"), PassStep("dce")]
    return tuple(steps)


@dataclass(frozen=True)
class PipelineSpec:
    """An ordered, hashable description of which passes to run.

    ``verify_each`` opts into the verified pipeline mode: every pass is
    followed by a structural verify plus a golden-interpreter
    differential check (see `repro.analysis.verified`).  It is a *mode*,
    not part of the pipeline's identity — it is excluded from equality
    and from `canonical()`, so artifact cache keys are unaffected.
    """

    steps: tuple[PassStep, ...] = ()
    verify_each: bool = field(default=False, compare=False)

    # -- construction ------------------------------------------------------
    @classmethod
    def standard(cls, opt_level: int = 1, unroll_factor: int = 1) -> "PipelineSpec":
        """The ``o1``/``o2`` preset with an explicit unroll factor."""
        if opt_level not in (1, 2):
            raise PipelineSpecError(f"unknown opt level {opt_level} (use 1 or 2)")
        return cls(_standard_steps(opt_level, unroll_factor))

    def with_verify_each(self, enabled: bool = True) -> "PipelineSpec":
        """A copy of this spec with the verified mode toggled."""
        return replace(self, verify_each=enabled)

    @classmethod
    def parse(cls, spec: Union[str, "PipelineSpec", None]) -> "PipelineSpec":
        """Parse a spec string (idempotent on `PipelineSpec` instances).

        ``None``/``""``/``"none"`` mean "run nothing" (raw lowered IR).
        """
        if spec is None:
            return cls()
        if isinstance(spec, PipelineSpec):
            return spec
        if not isinstance(spec, str):
            raise PipelineSpecError(
                f"expected a spec string or PipelineSpec, got {type(spec).__name__}"
            )
        steps: list[PassStep] = []
        text = spec.strip()
        if text.lower() in ("", "none"):
            return cls()
        for token in text.split(","):
            token = token.strip().lower()
            if not token:
                raise PipelineSpecError(f"empty pass name in spec {spec!r}")
            name, sep, arg_text = token.partition(":")
            arg: Optional[int] = None
            if sep:
                if not arg_text.isdigit() or int(arg_text) < 1:
                    raise PipelineSpecError(
                        f"bad argument '{name}:{arg_text}' in spec {spec!r} "
                        "(expected a positive integer)"
                    )
                arg = int(arg_text)
            if name in ("o1", "o2"):
                steps.extend(_standard_steps(int(name[1]), arg or 1))
                continue
            if name not in PASS_NAMES:
                raise PipelineSpecError(
                    f"unknown pass '{name}' in spec {spec!r}; "
                    f"valid: {', '.join(PASS_NAMES)}, o1, o2"
                )
            if arg is not None and name != "unroll":
                raise PipelineSpecError(
                    f"pass '{name}' takes no argument (spec {spec!r})"
                )
            if name == "unroll" and arg == 1:
                arg = None
            steps.append(PassStep(name, arg))
        return cls(tuple(steps))

    # -- canonical form ----------------------------------------------------
    def canonical(self) -> str:
        """The normalized spec string (parses back to an equal spec)."""
        if not self.steps:
            return "none"
        return ",".join(step.spec() for step in self.steps)

    def __str__(self) -> str:
        return self.canonical()

    def __bool__(self) -> bool:
        return bool(self.steps)

    # -- realization -------------------------------------------------------
    def to_pass_manager(self, module: Optional[Module] = None,
                        verify: bool = True) -> PassManager:
        """Instantiate the described passes.

        ``inline`` needs the enclosing module for callee lookup; without
        one it is skipped (matching the historical `standard_pipeline`
        behaviour for bare-function pipelines).

        With ``verify_each`` set this returns a
        `repro.analysis.verified.VerifiedPassManager` that differentially
        checks the function against the golden interpreter after every
        pass.
        """
        from repro.passes.inline import InlineFunctions
        from repro.passes.unroll import LoopUnroll

        factories = _factories()
        passes: list[FunctionPass] = []
        for step in self.steps:
            if step.name == "inline":
                if module is not None:
                    passes.append(InlineFunctions(module, require_complete=False))
            elif step.name == "unroll":
                passes.append(LoopUnroll(default_factor=step.arg or 1))
            else:
                passes.append(factories[step.name]())
        if self.verify_each:
            # Deferred import: `repro.analysis.verified` imports this module.
            from repro.analysis.verified import VerifiedPassManager

            return VerifiedPassManager(passes, verify=verify, module=module)
        return PassManager(passes, verify=verify)
