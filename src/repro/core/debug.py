"""Pipeline tracing (Sec. III-C2's per-cycle scheduling log).

The paper: "During the dynamic runtime simulation gem5-SALAM logs which
instructions are scheduled or in-flight for each cycle."  When a
:class:`PipelineTrace` is attached to a `RuntimeEngine` (via
:func:`attach_trace`), every issue and commit is recorded with its
cycle; the trace renders either as an event log or as a compact
waterfall (one row per dynamic instruction, one column per cycle) for
small kernels.

`PipelineTrace` is the compute-datapath view; the cross-layer
`repro.trace.TraceHub` covers memory, DMA, interrupts, and the host.
The runtime engine feeds both from the same issue/commit sites, so this
class stays a thin adapter over the engine's native recording.

Events are indexed per cycle and per dynamic-instruction sequence
number at record time, so :meth:`issues_at`, :meth:`commits_at`, and
:meth:`lifetime` are O(result) rather than O(total events).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class TraceEvent:
    cycle: int
    kind: str          # 'issue' | 'commit' | 'fetch'
    seq: int
    opcode: str
    detail: str = ""


@dataclass
class PipelineTrace:
    max_events: int = 100_000
    events: list[TraceEvent] = field(default_factory=list)
    truncated: bool = False
    dropped: int = 0
    _by_cycle: dict = field(default_factory=dict, repr=False)  # (kind, cycle) -> [events]
    _by_seq: dict = field(default_factory=dict, repr=False)    # seq -> [events]

    def record(self, cycle: int, kind: str, seq: int, opcode: str, detail: str = "") -> None:
        if len(self.events) >= self.max_events:
            self.truncated = True
            self.dropped += 1
            return
        event = TraceEvent(cycle, kind, seq, opcode, detail)
        self.events.append(event)
        self._by_cycle.setdefault((kind, cycle), []).append(event)
        self._by_seq.setdefault(seq, []).append(event)

    # ------------------------------------------------------------------
    def issues_at(self, cycle: int) -> list[TraceEvent]:
        return list(self._by_cycle.get(("issue", cycle), ()))

    def commits_at(self, cycle: int) -> list[TraceEvent]:
        return list(self._by_cycle.get(("commit", cycle), ()))

    def lifetime(self, seq: int) -> tuple[Optional[int], Optional[int]]:
        """(issue_cycle, commit_cycle) of one dynamic instruction."""
        issue = commit = None
        for event in self._by_seq.get(seq, ()):
            if event.kind == "issue":
                issue = event.cycle
            elif event.kind == "commit":
                commit = event.cycle
        return issue, commit

    def log_text(self, limit: int = 200) -> str:
        lines = [
            f"cycle {e.cycle:6d}  {e.kind:6s}  #{e.seq:<5d} {e.opcode:14s} {e.detail}"
            for e in self.events[:limit]
        ]
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        if self.truncated:
            lines.append(
                f"(trace truncated at max_events={self.max_events}: "
                f"{self.dropped} events dropped)"
            )
        return "\n".join(lines)

    def waterfall(self, max_rows: int = 64, max_cols: int = 120) -> str:
        """ASCII waterfall: '=' from issue to commit per instruction."""
        spans: dict[int, list] = {}
        opcodes: dict[int, str] = {}
        for event in self.events:
            entry = spans.setdefault(event.seq, [None, None])
            if event.kind == "issue":
                entry[0] = event.cycle
            elif event.kind == "commit":
                entry[1] = event.cycle
            opcodes.setdefault(event.seq, event.opcode)
        rows = sorted(spans)[:max_rows]
        if not rows:
            return "(empty trace)"
        base = min(s[0] for s in spans.values() if s[0] is not None)
        lines = []
        for seq in rows:
            start, end = spans[seq]
            if start is None:
                continue
            end = end if end is not None else start
            left = start - base
            width = min(max_cols, end - base + 1)
            bar = " " * min(left, max_cols) + "=" * max(1, width - left)
            lines.append(f"#{seq:<5d} {opcodes[seq]:12s} |{bar[:max_cols]}")
        header = f"(cycles {base}..{base + max_cols - 1})"
        return header + "\n" + "\n".join(lines)


def attach_trace(engine, max_events: int = 100_000) -> PipelineTrace:
    """Attach a fresh `PipelineTrace` to an engine's issue/commit paths."""
    trace = PipelineTrace(max_events=max_events)
    engine.pipeline_trace = trace
    return trace
