"""The `repro analyze` command: formats, exit codes, and the CI gate."""

import json

import pytest

from repro.cli import main

CLEAN = """
void scale(double x[16], double y[16]) {
  for (int i = 0; i < 16; i++) { y[i] = x[i] * 2.0; }
}
"""

#: Reads a[0..3] into acc but a[4] was never written: the raw IR loads
#: an uninitialized stack slot only when unoptimized, so instead seed a
#: defect the optimizer cannot remove: an out-of-bounds constant index.
OOB = """
void bad(double out[4]) {
  double tmp[4];
  for (int i = 0; i < 4; i++) { tmp[i] = i * 1.0; }
  out[0] = tmp[6];
}
"""


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.c"
    path.write_text(CLEAN)
    return str(path)


@pytest.fixture
def oob_file(tmp_path):
    path = tmp_path / "oob.c"
    path.write_text(OOB)
    return str(path)


def test_analyze_clean_kernel_exits_zero(clean_file, capsys):
    assert main(["analyze", clean_file]) == 0
    out = capsys.readouterr().out
    assert "DEP201" in out
    assert "error" not in out.splitlines()[-1]


def test_analyze_seeded_defect_exits_nonzero(oob_file, capsys):
    assert main(["analyze", oob_file, "--no-opt"]) == 1
    out = capsys.readouterr().out
    assert "IR106" in out


def test_analyze_json_format(clean_file, capsys):
    assert main(["analyze", clean_file, "--format", "json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["counts"]["error"] == 0
    assert any(d["code"] == "DEP201" for d in data["diagnostics"])
    assert "meta" in data


def test_analyze_output_file(clean_file, tmp_path, capsys):
    report_path = tmp_path / "report.json"
    assert main(["analyze", clean_file, "--format", "json",
                 "-o", str(report_path)]) == 0
    data = json.loads(report_path.read_text())
    assert data["counts"]["error"] == 0
    assert "wrote" in capsys.readouterr().out


def test_analyze_workload_by_name(capsys):
    assert main(["analyze", "gemm"]) == 0
    assert "@gemm" in capsys.readouterr().out


def test_analyze_all_workloads_clean(capsys):
    """Acceptance gate: every shipped workload is error-free."""
    assert main(["analyze", "--all"]) == 0
    out = capsys.readouterr().out
    assert "error" not in out.splitlines()[-1]


def test_analyze_unknown_target_fails():
    with pytest.raises(SystemExit):
        main(["analyze", "no_such_workload"])


def test_analyze_no_targets_fails():
    with pytest.raises(SystemExit):
        main(["analyze"])


def test_analyze_spm_bytes_gate(clean_file, capsys):
    # 16 + 16 doubles = 256 B needed (exact once unrolled); 128 B SPM.
    assert main(["analyze", clean_file, "--unroll", "16",
                 "--spm-bytes", "128"]) == 1
    assert "SYS302" in capsys.readouterr().out
    assert main(["analyze", clean_file, "--unroll", "16",
                 "--spm-bytes", "65536"]) == 0


def test_analyze_python_file_extraction(tmp_path, capsys):
    path = tmp_path / "example.py"
    path.write_text(f'KERNEL = """{CLEAN}"""\nprint("hi")\n')
    assert main(["analyze", str(path)]) == 0
    assert "@scale" in capsys.readouterr().out


def test_analyze_ll_file(clean_file, tmp_path, capsys):
    ll_path = tmp_path / "kernel.ll"
    assert main(["compile", clean_file, "-o", str(ll_path)]) == 0
    capsys.readouterr()
    assert main(["analyze", str(ll_path)]) == 0
    assert "@scale" in capsys.readouterr().out


def test_analyze_timings_flag(clean_file, capsys):
    assert main(["analyze", clean_file, "--timings"]) == 0
    out = capsys.readouterr().out
    assert "timings:" in out
    assert "memdep" in out


def test_analyze_verify_each_clean(clean_file, capsys):
    assert main(["analyze", clean_file, "--verify-each"]) == 0


def test_compile_verify_each_flag(clean_file, capsys):
    assert main(["compile", clean_file, "--verify-each"]) == 0
    assert "define void @scale" in capsys.readouterr().out


def test_analyze_generated_scenario_clean(capsys):
    assert main(["analyze", "--scenario", "gen:0"]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_analyze_generated_racy_scenario_fails(capsys):
    assert main(["analyze", "--scenario", "gen:0:racy",
                 "--format", "json"]) == 1
    data = json.loads(capsys.readouterr().out)
    assert any(d["code"] == "SYS304" for d in data["diagnostics"])


def test_analyze_unknown_scenario_fails():
    with pytest.raises(SystemExit):
        main(["analyze", "--scenario", "no_such_scenario"])
    with pytest.raises(SystemExit):
        main(["analyze", "--scenario", "gen:notanint"])
