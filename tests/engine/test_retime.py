"""Incremental re-simulation: trace capture, replay, and fallbacks.

The retime engine's contract is the same as the graph engine's, one
step further: a run replayed from a `ScheduleTrace` against a *new
memory configuration* must produce a `RunResult` byte-identical to a
full simulation at that configuration — for every workload, at every
supported unroll factor — and the provenance fields must say what
actually ran, so a silent fallback can never fake a retimed sweep.
"""

import json

import pytest

from repro.build.store import ArtifactStore
from repro.engine.retime import TRACE_COUNTERS, ScheduleTrace, RetimeError
from repro.exec.context import SimContext
from repro.workloads import all_workload_names, get_workload

#: Capture memory configuration (A) and the re-timed one (B): every
#: differing knob is memory-side, so both share one datapath key.
MEM_A = dict(spm_read_ports=2, spm_write_ports=2)
MEM_B = dict(spm_read_ports=1, spm_write_ports=1, spm_banks=2)


def _context(name, engine, unroll=1, store=None, **kwargs):
    kwargs.setdefault("memory", "spm")
    return SimContext(get_workload(name), seed=7, verify=False,
                      engine=engine, unroll_factor=unroll,
                      artifact_store=store, **kwargs)


def _capture_then_retime(name, unroll, mem_b=MEM_B):
    """Run cfg A (captures a trace), then cfg B re-timed, then cfg B in
    full; returns the (retimed, full) results plus the retime context."""
    store = ArtifactStore()
    warm = _context(name, "retime", unroll, store, **MEM_A)
    warm.run()
    assert warm.engine_used == "graph"
    assert warm.fallback_reason == (
        "no schedule trace captured for this datapath")
    assert warm.trace_captured, "capture run published no trace"
    ctx = _context(name, "retime", unroll, store, **mem_b)
    retimed = ctx.run()
    assert ctx.engine_used == "retime", (
        f"retime request fell back: {ctx.fallback_reason}")
    assert ctx.trace_hit
    full = _context(name, "graph", unroll, **mem_b).run()
    return retimed, full, ctx


# -- the property: every workload × unroll ∈ {1, 4} ---------------------
@pytest.mark.parametrize("unroll", [1, 4])
@pytest.mark.parametrize("name", all_workload_names())
def test_retime_matches_full_simulation_byte_identical(name, unroll):
    retimed, full, _ = _capture_then_retime(name, unroll)
    # json.dumps preserves dict insertion order, so this asserts byte
    # identity of the serialized results, not just value equality.
    assert json.dumps(retimed.to_dict()) == json.dumps(full.to_dict())


def test_retime_across_memory_models():
    # 'memory' itself is a memory-side parameter: a trace captured on
    # SPM re-times an ideal-memory configuration.
    retimed, full, _ = _capture_then_retime(
        "gemm", 4, mem_b=dict(memory="ideal"))
    assert json.dumps(retimed.to_dict()) == json.dumps(full.to_dict())


def test_retimed_run_passes_golden_model_verification():
    # Replay rebuilds the memory image from captured store bytes; the
    # workload's own golden-model check must hold on the retimed image.
    store = ArtifactStore()
    SimContext(get_workload("gemm"), seed=7, verify=False, engine="retime",
               unroll_factor=4, artifact_store=store, memory="spm",
               **MEM_A).run()
    ctx = SimContext(get_workload("gemm"), seed=7, verify=True,
                     engine="retime", unroll_factor=4,
                     artifact_store=store, memory="spm", **MEM_B)
    ctx.run()  # workload.verify raises on any functional mismatch
    assert ctx.engine_used == "retime"


# -- provenance and counters --------------------------------------------
def test_trace_counters_track_the_lifecycle():
    TRACE_COUNTERS.reset()
    _capture_then_retime("gemm", 4)
    snap = TRACE_COUNTERS.snapshot()
    assert snap["misses"] == 1 and snap["captures"] == 1
    assert snap["hits"] == 1 and snap["retimed_runs"] == 1


def test_engine_provenance_is_not_serialized():
    # engine_used/fallback_reason are transient: cached results must
    # stay byte-identical no matter which engine produced them.
    retimed, full, _ = _capture_then_retime("gemm", 1)
    assert "engine_used" not in retimed.to_dict()
    assert "fallback_reason" not in retimed.to_dict()


# -- fallback rules -----------------------------------------------------
def test_retime_without_a_trace_degrades_to_graph():
    ctx = _context("gemm", "retime", 4, ArtifactStore(), **MEM_B)
    ctx.run()
    assert ctx.engine_used == "graph"
    assert "no schedule trace" in ctx.fallback_reason


def test_retime_with_cache_memory_degrades_to_dynamic():
    ctx = _context("gemm", "retime", 1, ArtifactStore(), memory="cache")
    ctx.run()
    assert ctx.engine_used == "dynamic"
    assert "not graph-modelled" in ctx.fallback_reason


def test_retime_with_faults_degrades_to_dynamic():
    store = ArtifactStore()
    _context("gemm_dse", "retime", 1, store).run()  # capture a trace
    ctx = SimContext(get_workload("gemm_dse"), seed=7, verify=False,
                     engine="retime", artifact_store=store, memory="spm",
                     faults="bit_flip@spm:access=1,addr=0x20000007,bit=6")
    try:
        ctx.run()
    except AssertionError:
        pass  # the flip corrupts the output; only provenance matters here
    assert ctx.engine_used == "dynamic"


def test_stale_trace_version_is_rejected():
    trace = ScheduleTrace(func_name="gemm", n_nodes=1, entry_block=0,
                          block_seq=[0], addrs={}, store_data={},
                          n_dyn=1, version=-1)
    with pytest.raises(RetimeError):
        trace.validate(object(), "gemm")
