"""Event queue semantics: ordering, priorities, cancellation."""

import pytest

from repro.sim.eventq import Event, EventQueue, SimulationError


def test_events_fire_in_tick_order():
    eq = EventQueue()
    fired = []
    eq.schedule_callback(lambda: fired.append("late"), 100)
    eq.schedule_callback(lambda: fired.append("early"), 10)
    eq.schedule_callback(lambda: fired.append("middle"), 50)
    assert eq.run() == "empty"
    assert fired == ["early", "middle", "late"]


def test_same_tick_priority_order():
    eq = EventQueue()
    fired = []
    eq.schedule_callback(lambda: fired.append("low"), 5, priority=Event.STAT_PRI)
    eq.schedule_callback(lambda: fired.append("high"), 5, priority=Event.MINIMUM_PRI)
    eq.run()
    assert fired == ["high", "low"]


def test_same_tick_same_priority_fifo():
    eq = EventQueue()
    fired = []
    for i in range(10):
        eq.schedule_callback(lambda i=i: fired.append(i), 7)
    eq.run()
    assert fired == list(range(10))


def test_cannot_schedule_in_past():
    eq = EventQueue()
    eq.schedule_callback(lambda: None, 100)
    eq.run()
    assert eq.cur_tick == 100
    with pytest.raises(SimulationError):
        eq.schedule_callback(lambda: None, 50)


def test_double_schedule_rejected():
    eq = EventQueue()
    event = Event(lambda: None)
    eq.schedule(event, 10)
    with pytest.raises(SimulationError):
        eq.schedule(event, 20)


def test_deschedule_cancels():
    eq = EventQueue()
    fired = []
    event = Event(lambda: fired.append(1))
    eq.schedule(event, 10)
    eq.deschedule(event)
    eq.run()
    assert fired == []
    assert not event.scheduled()


def test_deschedule_unscheduled_raises():
    eq = EventQueue()
    with pytest.raises(SimulationError):
        eq.deschedule(Event(lambda: None))


def test_reschedule_moves_event():
    eq = EventQueue()
    fired = []
    event = Event(lambda: fired.append(eq.cur_tick))
    eq.schedule(event, 10)
    eq.reschedule(event, 30)
    eq.run()
    assert fired == [30]


def test_event_can_be_reused_after_firing():
    eq = EventQueue()
    count = []
    event = Event(lambda: count.append(1))
    eq.schedule(event, 1)
    eq.run()
    eq.schedule(event, 2)
    eq.run()
    assert len(count) == 2


def test_events_may_schedule_events():
    eq = EventQueue()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 5:
            eq.schedule_callback(lambda: chain(depth + 1), eq.cur_tick + 10)

    eq.schedule_callback(lambda: chain(0), 0)
    eq.run()
    assert fired == list(range(6))
    assert eq.cur_tick == 50


def test_max_tick_stops_run():
    eq = EventQueue()
    fired = []
    eq.schedule_callback(lambda: fired.append(1), 10)
    eq.schedule_callback(lambda: fired.append(2), 1000)
    assert eq.run(max_tick=100) == "max_tick"
    assert fired == [1]
    assert not eq.empty()


def test_exit_simulation():
    eq = EventQueue()
    fired = []
    eq.schedule_callback(lambda: eq.exit_simulation("done early"), 5)
    eq.schedule_callback(lambda: fired.append(1), 10)
    assert eq.run() == "done early"
    assert fired == []


def test_max_events():
    eq = EventQueue()
    for i in range(10):
        eq.schedule_callback(lambda: None, i)
    assert eq.run(max_events=3) == "max_events"
    assert eq.events_fired == 3


def test_reset_clears_queue():
    eq = EventQueue()
    eq.schedule_callback(lambda: None, 10)
    eq.reset()
    assert eq.empty()
    assert eq.cur_tick == 0


def test_reset_clears_stale_exit_message():
    eq = EventQueue()
    eq.schedule_callback(lambda: eq.exit_simulation("first cause"), 5)
    assert eq.run() == "first cause"
    eq.reset()
    # A reused queue must not report the previous run's exit cause.
    assert eq._exit_message == ""
    eq.schedule_callback(lambda: None, 1)
    assert eq.run() == "empty"


def test_reset_queue_reports_fresh_exit_cause():
    eq = EventQueue()
    eq.schedule_callback(lambda: eq.exit_simulation("old"), 5)
    eq.run()
    eq.reset()
    eq.schedule_callback(lambda: eq.exit_simulation("new"), 3)
    assert eq.run() == "new"


def test_deschedule_then_empty_squashes_lazily():
    eq = EventQueue()
    event = Event(lambda: None)
    eq.schedule(event, 10)
    assert not eq.empty()
    eq.deschedule(event)
    # The heap entry is squashed lazily; empty() must drop it.
    assert eq.empty()
    assert eq.next_tick() is None


def test_reschedule_squashed_entry_not_fired_twice():
    eq = EventQueue()
    fired = []
    event = Event(lambda: fired.append(eq.cur_tick))
    eq.schedule(event, 10)
    eq.reschedule(event, 50)
    eq.reschedule(event, 20)
    eq.run()
    assert fired == [20]
    assert eq.events_fired == 1


def test_deschedule_after_fire_raises():
    eq = EventQueue()
    event = Event(lambda: None)
    eq.schedule(event, 1)
    eq.run()
    with pytest.raises(SimulationError):
        eq.deschedule(event)


def test_reschedule_unscheduled_event_schedules_it():
    eq = EventQueue()
    fired = []
    event = Event(lambda: fired.append(1))
    eq.reschedule(event, 7)
    eq.run()
    assert fired == [1]


def test_next_tick_skips_squashed_head():
    eq = EventQueue()
    early = Event(lambda: None)
    eq.schedule(early, 5)
    eq.schedule_callback(lambda: None, 9)
    eq.deschedule(early)
    assert eq.next_tick() == 9
