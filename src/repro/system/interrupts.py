"""GIC-like interrupt controller.

Devices raise numbered lines; waiters (the host agent, or another
accelerator's controller logic) register for a line and are called on
the next assertion.  Level semantics are simplified to edge events with
a pending latch, which is all the driver model needs.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.simobject import SimObject, System


class _IrqLine:
    """A bound assertion callback that remembers its line number.

    Devices hold these as plain callables; the ``irq`` attribute lets
    introspection (the concurrency analysis, the access sanitizer) map
    a device back to the line it signals.
    """

    __slots__ = ("controller", "irq")

    def __init__(self, controller: "InterruptController", irq: int) -> None:
        self.controller = controller
        self.irq = irq

    def __call__(self) -> None:
        self.controller.raise_irq(self.irq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<IrqLine {self.controller.name}.{self.irq}>"


class InterruptController(SimObject):
    def __init__(self, name: str, system: System, clock=None) -> None:
        super().__init__(name, system, clock)
        self._pending: set[int] = set()
        self._waiters: dict[int, list[Callable[[], None]]] = {}
        self.stat_raised = self.stats.vector("irqs_raised")

    def line(self, irq: int) -> Callable[[], None]:
        """A callback that asserts ``irq`` (bind this to a device)."""
        return _IrqLine(self, irq)

    def raise_irq(self, irq: int) -> None:
        self.stat_raised.inc(str(irq))
        waiters = self._waiters.pop(irq, [])
        if self._thub is not None:
            self.trace_emit(
                "irq", "raise", args={"irq": irq, "waiters": len(waiters)}
            )
        if not waiters:
            self._pending.add(irq)
            return
        for waiter in waiters:
            # Interrupt delivery takes one controller cycle.
            self.eventq.schedule_callback(
                waiter, self.clock_edge(1), name=f"{self.name}.irq{irq}"
            )

    def wait(self, irq: int, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` when ``irq`` fires (immediately if pending)."""
        if irq in self._pending:
            self._pending.discard(irq)
            self.eventq.schedule_callback(
                callback, self.clock_edge(1), name=f"{self.name}.irq{irq}"
            )
            return
        self._waiters.setdefault(irq, []).append(callback)

    def clear(self, irq: int) -> None:
        self._pending.discard(irq)
