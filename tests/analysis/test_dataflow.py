"""Worklist dataflow framework: liveness and reaching definitions."""

from repro.analysis.dataflow import (
    TOP,
    DataflowAnalysis,
    LivenessAnalysis,
    ReachingDefinitions,
    meet_intersection,
    meet_union,
)
from repro.frontend import compile_c
from repro.ir.builder import IRBuilder
from repro.ir.module import Function
from repro.ir.types import I1, I32
from repro.ir.values import Constant


def _straightline():
    """entry: a = 1+2; b = a+3; ret b."""
    f = Function("f", I32, [(I32, "x")])
    b = IRBuilder(f.add_block("entry"))
    a = b.add(b.const(I32, 1), b.const(I32, 2), name="a")
    r = b.add(a, b.const(I32, 3), name="b")
    b.ret(r)
    return f, a, r


def _diamond_with_defs():
    """entry -> (left | right) -> merge, each side defining a value."""
    f = Function("f", I32, [(I1, "c"), (I32, "x")])
    entry, left, right, merge = (
        f.add_block("entry"), f.add_block("left"),
        f.add_block("right"), f.add_block("merge"),
    )
    b = IRBuilder(entry)
    b.cbr(f.args[0], left, right)
    b.position_at_end(left)
    lv = b.add(f.args[1], b.const(I32, 1), name="lv")
    b.br(merge)
    b.position_at_end(right)
    rv = b.add(f.args[1], b.const(I32, 2), name="rv")
    b.br(merge)
    b.position_at_end(merge)
    phi = b.phi(I32, name="p")
    phi.add_incoming(lv, left)
    phi.add_incoming(rv, right)
    b.ret(phi)
    return f, entry, left, right, merge, lv, rv, phi


def test_meet_union_and_intersection():
    a, b = frozenset({1, 2}), frozenset({2, 3})
    assert meet_union([a, b]) == {1, 2, 3}
    assert meet_intersection([a, b]) == {2}
    # TOP acts as the universe under intersection.
    assert meet_intersection([frozenset([TOP]), a]) == a
    assert meet_intersection([frozenset([TOP])]) == frozenset([TOP])


def test_liveness_straightline():
    f, a, r = _straightline()
    analysis = LivenessAnalysis(f)
    result = analysis.run()
    entry = f.entry
    # Nothing is live out of the exit block.
    assert result.out_of(entry) == frozenset()
    facts = result.at_instruction(entry)
    # Backward replay: facts are live-after each instruction.
    by_inst = {inst: live for inst, live in facts}
    assert by_inst[entry.instructions[-1]] == frozenset()  # after ret
    assert r in by_inst[r]  # b is live across its own definition point
    assert analysis.max_live(result) >= 1


def test_liveness_across_branches():
    f, entry, left, right, merge, lv, rv, phi = _diamond_with_defs()
    result = LivenessAnalysis(f).run()
    # lv/rv are consumed by the merge phi, so they are live out of
    # their defining blocks.
    assert lv in result.out_of(left)
    assert rv in result.out_of(right)
    # x feeds both sides: live out of entry.
    assert f.args[1] in result.out_of(entry)
    assert phi not in result.out_of(merge)


def test_reaching_definitions_diamond():
    f, entry, left, right, merge, lv, rv, phi = _diamond_with_defs()
    analysis = ReachingDefinitions(f)
    result = analysis.run()
    # Arguments reach everything from the boundary.
    for block in f.blocks:
        assert f.args[0] in result.in_of(block)
    # Each side's def reaches the merge (union meet), not the other side.
    assert lv in result.in_of(merge)
    assert rv in result.in_of(merge)
    assert lv not in result.in_of(right)
    assert analysis.reaches(result, lv, merge)
    assert not analysis.reaches(result, lv, right) or lv in result.out_of(right)


def test_loop_converges_to_fixpoint():
    module = compile_c(
        """
        void k(int a[16]) {
          for (int i = 0; i < 16; i++) { a[i] = a[i] + 1; }
        }
        """,
        "k",
    )
    func = module.get_function("k")
    result = ReachingDefinitions(func).run()
    assert result.iterations >= len(func.blocks)
    # Every value-producing instruction eventually reaches the exit of
    # some block (pure-gen transfer in SSA).
    exits = [b for b in func.blocks if not b.successors()]
    assert exits
    reaching_exit = set().union(*(result.out_of(b) for b in exits))
    assert any(inst in reaching_exit for inst in func.instructions()
               if inst.produces_value)


def test_must_analysis_initializes_to_top():
    class MustNothing(DataflowAnalysis):
        meet = "intersection"

        def transfer_instruction(self, inst, facts):
            pass

    f, *_ = _straightline()
    analysis = MustNothing(f)
    assert TOP in analysis.initial()
    result = analysis.run()
    # The entry boundary is the empty set, and nothing is generated.
    assert result.in_of(f.entry) == frozenset()
