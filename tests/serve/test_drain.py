"""Graceful drain: running jobs finish, the journal flushes, then exit.

The slow job body is injected via ``workers._BODIES`` (the server
thread shares this process), gated on a `threading.Event` so every
phase of the drain is observed deterministically — no sleeps standing
in for synchronization.
"""

import threading

import pytest

from repro.serve import ServeClient, ServeError, start_server_thread
from repro.serve.jobs import JobQueue, JobState
from repro.serve.journal import JobJournal, recover_queue
from repro.serve.workers import _BODIES


@pytest.fixture
def gated_analyze(monkeypatch):
    """Replace the analyze body with one that blocks until released."""
    started = threading.Event()
    release = threading.Event()

    def slow_body(spec, state, publish):
        started.set()
        assert release.wait(timeout=30), "test forgot to release the job"
        return {"slow": True}

    monkeypatch.setitem(_BODIES, "analyze", slow_body)
    yield started, release
    release.set()  # never leave a worker thread hanging


def test_drain_waits_for_running_job_then_exits(tmp_path, gated_analyze):
    started, release = gated_analyze
    state_dir = tmp_path / "state"
    handle = start_server_thread(workers=1, state_dir=state_dir,
                                 drain_timeout=30.0)
    client = ServeClient(port=handle.port)
    job = client.submit("analyze", {"n": 1})
    assert started.wait(5.0), "worker never claimed the job"

    response = client.shutdown(mode="drain")
    assert response["mode"] == "drain"
    assert response["running"] == 1
    # Still serving while draining, and says so.
    assert client.healthz()["status"] == "draining"
    # Submissions are still accepted — they journal and run next start.
    parked = client.submit("analyze", {"n": 2})
    assert parked["state"] == JobState.QUEUED

    release.set()
    handle.thread.join(timeout=10.0)
    assert not handle.thread.is_alive(), "drain never completed"

    # The drain's final snapshot holds everything: the running job's
    # result is durable, the parked job comes back queued.
    journal = JobJournal(state_dir)
    queue = JobQueue(journal=journal)
    summary = recover_queue(queue, journal)
    finished = queue.jobs[job["id"]]
    assert finished.state == JobState.DONE
    assert finished.result == {"slow": True}
    assert queue.jobs[parked["id"]].state == JobState.QUEUED
    assert summary["requeued_jobs"] == 1
    assert journal.snapshot_path.exists()


def test_drain_with_idle_queue_exits_immediately(tmp_path):
    state_dir = tmp_path / "state"
    handle = start_server_thread(workers=1, state_dir=state_dir)
    ServeClient(port=handle.port).shutdown(mode="drain")
    handle.thread.join(timeout=10.0)
    assert not handle.thread.is_alive()
    assert (state_dir / "snapshot.json").exists()


def test_drain_timeout_abandons_stuck_job(tmp_path, gated_analyze):
    started, release = gated_analyze
    state_dir = tmp_path / "state"
    handle = start_server_thread(workers=1, state_dir=state_dir,
                                 drain_timeout=0.3)
    client = ServeClient(port=handle.port)
    job = client.submit("analyze", {})
    assert started.wait(5.0)
    client.shutdown(mode="drain")
    # The job never finishes, but the server must not hang past its
    # drain budget.
    handle.thread.join(timeout=10.0)
    assert not handle.thread.is_alive()
    release.set()
    # The abandoned job was journaled as running: a restart re-queues it.
    journal = JobJournal(state_dir)
    queue = JobQueue(journal=journal)
    summary = recover_queue(queue, journal)
    assert summary["requeued_jobs"] == 1
    assert queue.jobs[job["id"]].state == JobState.QUEUED


def test_shutdown_mode_now_keeps_old_behavior():
    handle = start_server_thread(workers=1)
    client = ServeClient(port=handle.port)
    assert client.shutdown()["mode"] == "now"
    handle.thread.join(timeout=10.0)
    assert not handle.thread.is_alive()


def test_bad_shutdown_mode_is_rejected():
    with start_server_thread(workers=1) as handle:
        client = ServeClient(port=handle.port)
        with pytest.raises(ServeError) as excinfo:
            client._request("POST", "/v1/shutdown?mode=sideways")
        assert excinfo.value.status == 400
