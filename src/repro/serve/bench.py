"""Serve-layer benchmark: what request dedup is worth.

Starts an in-process `JobServer` (background thread, ephemeral port)
and submits ``jobs`` run jobs concurrently — once as *duplicates*
(identical spec: every submission after the first coalesces onto one
execution or hits the run cache) and once as *distinct* jobs (the seed
varies, so every one must simulate).  Wall-clock for the duplicate
batch over wall-clock for the distinct batch is the dedup speedup; on
a healthy server duplicates are near-free.

The payload lands in the ``serve`` section of ``BENCH_7.json`` next to
the engine-comparison numbers (see `repro.engine.bench`).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor


def _submit_batch(client, specs: list[dict], timeout: float = 300.0) -> float:
    """Submit every spec from its own thread; wall-clock to all-done."""
    from repro.serve.jobs import JobState

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=len(specs)) as pool:
        jobs = list(pool.map(lambda spec: client.submit("run", spec), specs))
    for job in jobs:
        if job["state"] in JobState.ACTIVE:
            job = client.wait(job["id"], timeout=timeout)
        if job["state"] != JobState.DONE:
            raise RuntimeError(f"bench job {job['id']} ended "
                               f"{job['state']}: {job.get('failure')}")
    return time.perf_counter() - start


def run_serve_bench(jobs: int = 20, workload: str = "gemm_dse",
                    workers: int = 2, **spec_extra) -> dict:
    """Measure duplicate vs distinct batches of ``jobs`` run jobs."""
    from repro.serve.client import ServeClient
    from repro.serve.server import start_server_thread

    base = dict(workload=workload, ports=4, unroll=2, **spec_extra)
    with start_server_thread(workers=workers) as handle:
        client = ServeClient(port=handle.port)
        # Warm nothing: the first duplicate executes, the rest coalesce.
        duplicate_s = _submit_batch(client, [dict(base)] * jobs)
        distinct_s = _submit_batch(
            client, [dict(base, seed=100 + i) for i in range(jobs)])
        stats = client.stats()
    return {
        "jobs": jobs,
        "workload": workload,
        "workers": workers,
        "duplicate_wall_s": round(duplicate_s, 6),
        "distinct_wall_s": round(distinct_s, 6),
        "dedup_speedup": round(distinct_s / duplicate_s, 3)
        if duplicate_s > 0 else 0.0,
        "dedup_hits": stats["queue"]["dedup_hits"],
        "executed": stats["queue"]["executed"],
        "run_cache_hits": stats["run_cache"]["hits"],
    }
