"""AccessSanitizer vector-clock and race-detection unit tests."""

from repro.sim.sanitizer import AccessSanitizer, attach
from repro.sim.simobject import SimObject, System


def test_unordered_write_write_detected():
    san = AccessSanitizer()
    san.record("a", 0x1000, 64, True, 10)
    san.record("b", 0x1020, 64, True, 20)
    assert not san.clean
    assert san.races[0]["kind"] == "write-write"
    assert san.races[0]["agents"] == ["a", "b"]
    lo, hi = san.races[0]["range"]
    assert (lo, hi) == (0x1020, 0x1040)


def test_release_acquire_orders_accesses():
    san = AccessSanitizer()
    san.record("a", 0x1000, 64, True, 10)
    san.release("a", ("done", "x"))
    san.acquire("b", ("done", "x"))
    san.record("b", 0x1000, 64, True, 20)
    assert san.clean


def test_acquire_without_release_does_not_order():
    san = AccessSanitizer()
    san.record("a", 0x1000, 64, True, 10)
    san.acquire("b", ("done", "x"))  # nothing was published on this key
    san.record("b", 0x1000, 64, False, 20)
    assert not san.clean
    assert san.races[0]["kind"] == "read-write"


def test_post_release_accesses_are_new_epoch():
    # Accesses an agent makes AFTER its release are not covered by it.
    san = AccessSanitizer()
    san.release("a", ("done", "x"))
    san.record("a", 0x1000, 64, True, 10)  # after the release
    san.acquire("b", ("done", "x"))
    san.record("b", 0x1000, 64, True, 20)
    assert not san.clean


def test_read_read_overlap_is_clean():
    san = AccessSanitizer()
    san.record("a", 0x1000, 64, False, 10)
    san.record("b", 0x1000, 64, False, 20)
    assert san.clean


def test_disjoint_writes_are_clean():
    san = AccessSanitizer()
    san.record("a", 0x1000, 64, True, 10)
    san.record("b", 0x2000, 64, True, 20)
    assert san.clean


def test_same_agent_never_races():
    san = AccessSanitizer()
    for tick in range(10):
        san.record("a", 0x1000, 64, True, tick)
    assert san.clean


def test_transitive_ordering_through_two_keys():
    # a -> dma (cmd), dma -> b (done): a's writes are visible to b.
    san = AccessSanitizer()
    san.record("a", 0x1000, 64, True, 1)
    san.release("a", ("cmd", "dma"))
    san.acquire("dma", ("cmd", "dma"))
    san.release("dma", ("done", "dma"))
    san.acquire("b", ("done", "dma"))
    san.record("b", 0x1000, 64, True, 9)
    assert san.clean


def test_race_dedup_and_cap():
    san = AccessSanitizer(max_reports=2)
    # Same pair/kind/bucket re-raced many times: one report.
    for tick in range(5):
        san.record("a", 0x1000, 8, True, tick)
        san.record("b", 0x1000, 8, True, tick)
    assert len(san.races) == 1
    # Distinct buckets produce distinct reports, up to the cap.
    san.record("a", 0x9000, 8, True, 100)
    san.record("b", 0x9000, 8, True, 101)
    san.record("a", 0xA000, 8, True, 102)
    san.record("b", 0xA000, 8, True, 103)
    assert len(san.races) == 2  # capped


def test_cross_bucket_range_overlap_detected():
    # A write straddling a bucket boundary still collides with a write
    # recorded in the neighbouring bucket.
    san = AccessSanitizer()
    san.record("a", 0x10F0, 32, True, 1)  # crosses the 0x1100 boundary
    san.record("b", 0x1100, 8, True, 2)
    assert not san.clean


def test_summary_shape():
    san = AccessSanitizer()
    san.record("a", 0x1000, 8, True, 1)
    san.release("a", "k")
    summary = san.summary()
    assert summary["clean"] is True
    assert summary["races"] == []
    assert summary["num_records"] == 1
    assert summary["num_syncs"] == 1
    assert summary["agents"] == ["a"]


def test_attach_detach_propagates_to_objects():
    system = System("s", clock_freq_hz=1e9)
    obj = SimObject("s.obj", system)
    assert obj._san is None
    san = attach(system)
    assert obj._san is san
    late = SimObject("s.late", system)  # registered after attach
    assert late._san is san
    system.detach_sanitizer()
    assert obj._san is None and late._san is None
    assert system.sanitizer is None
