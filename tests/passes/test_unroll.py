"""Loop unrolling: semantics preservation and structure."""

import numpy as np
import pytest

from repro.frontend import compile_c
from repro.ir.interpreter import Interpreter
from repro.ir.memory import MemoryImage
from repro.ir.verifier import verify_module
from repro.passes.loop_analysis import find_loops

SRC_ACCUM = """
int accum(int a[32]) {
  int s = 0;
  for (int i = 0; i < 32; i++) { s += a[i] * 3; }
  return s;
}
"""

SRC_NESTED = """
void mm(double a[16], double b[16], double c[16]) {
  for (int i = 0; i < 4; i++) {
    for (int j = 0; j < 4; j++) {
      double s = 0;
      for (int k = 0; k < 4; k++) { s += a[i * 4 + k] * b[k * 4 + j]; }
      c[i * 4 + j] = s;
    }
  }
}
"""


def _run_accum(module, data):
    mem = MemoryImage(1 << 14, base=0x100)
    addr = mem.alloc_array(data)
    return Interpreter(module, mem).run("accum", [addr]).return_value


def _run_mm(module, a, b):
    mem = MemoryImage(1 << 14, base=0x100)
    pa, pb = mem.alloc_array(a), mem.alloc_array(b)
    pc = mem.alloc(16 * 8)
    Interpreter(module, mem).run("mm", [pa, pb, pc])
    return mem.read_array(pc, np.float64, 16)


@pytest.mark.parametrize("factor", [1, 2, 4, 8, 16, 32, 64])
def test_accum_semantics_across_factors(factor, rng):
    data = rng.integers(-100, 100, 32).astype(np.int32)
    reference = compile_c(SRC_ACCUM, unroll_factor=1)
    unrolled = compile_c(SRC_ACCUM, unroll_factor=factor)
    verify_module(unrolled)
    assert _run_accum(unrolled, data) == _run_accum(reference, data)


@pytest.mark.parametrize("factor", [1, 2, 4, 16])
def test_nested_loops_semantics(factor, rng):
    a = rng.uniform(-1, 1, 16)
    b = rng.uniform(-1, 1, 16)
    reference = _run_mm(compile_c(SRC_NESTED), a, b)
    unrolled = _run_mm(compile_c(SRC_NESTED, unroll_factor=factor), a, b)
    assert np.allclose(reference, unrolled)


def test_full_unroll_eliminates_loop():
    module = compile_c(SRC_ACCUM, unroll_factor=32)
    assert find_loops(module.get_function("accum")) == []


def test_partial_unroll_keeps_one_loop():
    module = compile_c(SRC_ACCUM, unroll_factor=4)
    loops = find_loops(module.get_function("accum"))
    assert len(loops) == 1


def test_partial_unroll_grows_body():
    base = compile_c(SRC_ACCUM).get_function("accum").instruction_count()
    unrolled = compile_c(SRC_ACCUM, unroll_factor=4).get_function("accum").instruction_count()
    assert unrolled > 2 * base


def test_pragma_full_unroll():
    src = """
    int f(int a[8]) {
      int s = 0;
      #pragma unroll
      for (int i = 0; i < 8; i++) { s += a[i]; }
      return s;
    }
    """
    module = compile_c(src)
    assert find_loops(module.get_function("f")) == []


def test_pragma_factor():
    src = """
    int f(int a[8]) {
      int s = 0;
      #pragma unroll 2
      for (int i = 0; i < 8; i++) { s += a[i]; }
      return s;
    }
    """
    module = compile_c(src)
    loops = find_loops(module.get_function("f"))
    assert len(loops) == 1
    data = np.arange(8, dtype=np.int32)
    mem = MemoryImage(1 << 12, base=0x100)
    addr = mem.alloc_array(data)
    assert Interpreter(module, mem).run("f", [addr]).return_value == 28


def test_factor_clamped_to_divisor(rng):
    src = """
    int f(int a[10]) {
      int s = 0;
      for (int i = 0; i < 10; i++) { s += a[i]; }
      return s;
    }
    """
    # 10 % 4 != 0 -> the pass must clamp to 2 (or skip), never miscompute.
    module = compile_c(src, unroll_factor=4)
    data = rng.integers(0, 50, 10).astype(np.int32)
    mem = MemoryImage(1 << 12, base=0x100)
    addr = mem.alloc_array(data)
    assert Interpreter(module, mem).run("f", [addr]).return_value == int(data.sum())


def test_data_dependent_loop_not_unrolled(rng):
    src = """
    int f(int a[16], int n) {
      int s = 0;
      for (int i = 0; i < n; i++) { s += a[i]; }
      return s;
    }
    """
    module = compile_c(src, unroll_factor=8)
    assert len(find_loops(module.get_function("f"))) == 1
    data = rng.integers(0, 9, 16).astype(np.int32)
    mem = MemoryImage(1 << 12, base=0x100)
    addr = mem.alloc_array(data)
    assert (
        Interpreter(module, mem).run("f", [addr, 7]).return_value
        == int(data[:7].sum())
    )


def test_live_out_values_correct_after_full_unroll():
    src = """
    int f() {
      int i;
      int s = 0;
      for (i = 0; i < 5; i++) { s += i; }
      return i * 100 + s;
    }
    """
    module = compile_c(src, unroll_factor=16)
    mem = MemoryImage(1 << 12)
    assert Interpreter(module, mem).run("f", []).return_value == 510
