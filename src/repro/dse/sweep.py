"""Parameter sweeps over accelerator configurations.

The paper's DSE flow (Fig. 13-15) is a bash loop over device configs;
`sweep` is the equivalent harness: it builds a fresh standalone
accelerator per parameter point, runs the same staged workload, and
collects (config, cycles, power, occupancy) records.

The heavy lifting lives in `repro.exec.parallel.ParallelSweep`; the
``sweep()`` signature below is the stable, deprecation-shim entry point
(now with optional ``workers``/``cache`` pass-throughs).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.exec.cache import RunCache
from repro.exec.parallel import ParallelSweep, SweepPoint, grid_points
from repro.workloads.base import Workload

__all__ = ["SweepPoint", "sweep", "grid_points", "ParallelSweep"]


def sweep(
    workload: Workload,
    param_grid: dict[str, Iterable],
    configure: Callable[[dict], dict],
    seed: int = 7,
    verify: bool = True,
    unroll_factor: int = 1,
    workers: int = 1,
    cache: Optional[RunCache] = None,
    point_timeout: Optional[float] = None,
    retries: int = 0,
    strict: bool = False,
    faults=None,
    watchdog=None,
    artifact_store=None,
    pipeline=None,
    engine: str = "dynamic",
    retime: bool = False,
    on_point=None,
    checkpoint=None,
) -> list[SweepPoint]:
    """Run ``workload`` across the cartesian product of ``param_grid``.

    ``configure(params)`` maps one parameter point to the keyword
    arguments of `StandaloneAccelerator` (it may include a 'config'
    DeviceConfig).  Every point runs the same dataset (same seed), so
    differences are purely architectural.

    ``workers=N`` fans the grid out across processes; ``cache`` reuses
    results for already-seen configuration points.  Both default to the
    historical serial, uncached behaviour.  The robustness knobs
    (``point_timeout``, ``retries``, ``strict``, ``faults``,
    ``watchdog``) and the build knobs (``artifact_store``,
    ``pipeline`` — see `repro.build`) forward to `ParallelSweep`
    unchanged, as does the execution backend choice (``engine`` — see
    `repro.engine`), the ``on_point(done, total, point)`` progress
    callback, and ``checkpoint`` — a JSONL path recording completed
    points so an interrupted sweep resumes instead of restarting (see
    `repro.exec.checkpoint.SweepCheckpoint`).

    ``retime=True`` turns on incremental re-simulation: points sharing a
    datapath key run one full graph simulation (capturing a
    `ScheduleTrace`) and the rest are re-timed against their memory
    configuration — byte-identical results at a fraction of the cost for
    memory-only grids (see `repro.engine.retime`).
    """
    executor = ParallelSweep(workers=workers, cache=cache, verify=verify,
                             point_timeout=point_timeout, retries=retries,
                             strict=strict, faults=faults, watchdog=watchdog,
                             artifact_store=artifact_store, pipeline=pipeline,
                             engine=engine, retime=retime,
                             checkpoint=checkpoint)
    return executor.run(workload, param_grid, configure, seed=seed,
                        unroll_factor=unroll_factor, on_point=on_point)
