"""Needleman-Wunsch sequence alignment (MachSuite nw), scaled to 24-char
sequences.

Dynamic-programming matrix fill followed by traceback.  The paper notes
NW maps much of its runtime control to MUXes; the kernel is rich in
compare/select patterns and data-dependent branches.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Workload, WorkloadData

ALEN = 24
BLEN = 24
MATCH = 1
MISMATCH = -1
GAP = -1

SOURCE = f"""
void nw(int seqA[{ALEN}], int seqB[{BLEN}], int alignedA[{ALEN + BLEN}],
        int alignedB[{ALEN + BLEN}], int M[{(ALEN + 1) * (BLEN + 1)}],
        int ptr[{(ALEN + 1) * (BLEN + 1)}]) {{
  // Boundary conditions.
  for (int a = 0; a < {ALEN + 1}; a++) {{
    M[a * {BLEN + 1}] = a * {GAP};
    ptr[a * {BLEN + 1}] = 2;
  }}
  for (int b = 0; b < {BLEN + 1}; b++) {{
    M[b] = b * {GAP};
    ptr[b] = 1;
  }}
  ptr[0] = 0;

  // Matrix fill.
  for (int i = 1; i < {ALEN + 1}; i++) {{
    for (int j = 1; j < {BLEN + 1}; j++) {{
      int score;
      if (seqA[i - 1] == seqB[j - 1]) {{
        score = {MATCH};
      }} else {{
        score = {MISMATCH};
      }}
      int row_up = (i - 1) * {BLEN + 1};
      int row = i * {BLEN + 1};
      int match = M[row_up + j - 1] + score;
      int insert = M[row + j - 1] + {GAP};
      int del = M[row_up + j] + {GAP};
      int cell;
      int dir;
      if (match >= insert && match >= del) {{
        cell = match;
        dir = 0;
      }} else {{
        if (insert >= del) {{
          cell = insert;
          dir = 1;
        }} else {{
          cell = del;
          dir = 2;
        }}
      }}
      M[row + j] = cell;
      ptr[row + j] = dir;
    }}
  }}

  // Traceback.
  int a_idx = {ALEN};
  int b_idx = {BLEN};
  int a_str = {ALEN + BLEN} - 1;
  int b_str = {ALEN + BLEN} - 1;
  while (a_idx > 0 || b_idx > 0) {{
    int dir = ptr[a_idx * {BLEN + 1} + b_idx];
    if (dir == 0) {{
      alignedA[a_str] = seqA[a_idx - 1];
      alignedB[b_str] = seqB[b_idx - 1];
      a_idx--;
      b_idx--;
    }} else {{
      if (dir == 1) {{
        alignedA[a_str] = 45;
        alignedB[b_str] = seqB[b_idx - 1];
        b_idx--;
      }} else {{
        alignedA[a_str] = seqA[a_idx - 1];
        alignedB[b_str] = 45;
        a_idx--;
      }}
    }}
    a_str--;
    b_str--;
  }}
  // Pad the front with '_' (95).
  while (a_str >= 0) {{
    alignedA[a_str] = 95;
    a_str--;
  }}
  while (b_str >= 0) {{
    alignedB[b_str] = 95;
    b_str--;
  }}
}}
"""


def golden_nw(seq_a: np.ndarray, seq_b: np.ndarray):
    """Literal Python translation of the kernel."""
    rows, cols = ALEN + 1, BLEN + 1
    m = np.zeros((rows, cols), dtype=np.int32)
    ptr = np.zeros((rows, cols), dtype=np.int32)
    for a in range(rows):
        m[a, 0] = a * GAP
        ptr[a, 0] = 2
    for b in range(cols):
        m[0, b] = b * GAP
        ptr[0, b] = 1
    ptr[0, 0] = 0
    for i in range(1, rows):
        for j in range(1, cols):
            score = MATCH if seq_a[i - 1] == seq_b[j - 1] else MISMATCH
            match = m[i - 1, j - 1] + score
            insert = m[i, j - 1] + GAP
            delete = m[i - 1, j] + GAP
            if match >= insert and match >= delete:
                m[i, j], ptr[i, j] = match, 0
            elif insert >= delete:
                m[i, j], ptr[i, j] = insert, 1
            else:
                m[i, j], ptr[i, j] = delete, 2
    aligned_a = np.zeros(ALEN + BLEN, dtype=np.int32)
    aligned_b = np.zeros(ALEN + BLEN, dtype=np.int32)
    a_idx, b_idx = ALEN, BLEN
    a_str = b_str = ALEN + BLEN - 1
    while a_idx > 0 or b_idx > 0:
        direction = ptr[a_idx, b_idx]
        if direction == 0:
            aligned_a[a_str] = seq_a[a_idx - 1]
            aligned_b[b_str] = seq_b[b_idx - 1]
            a_idx -= 1
            b_idx -= 1
        elif direction == 1:
            aligned_a[a_str] = 45
            aligned_b[b_str] = seq_b[b_idx - 1]
            b_idx -= 1
        else:
            aligned_a[a_str] = seq_a[a_idx - 1]
            aligned_b[b_str] = 45
            a_idx -= 1
        a_str -= 1
        b_str -= 1
    aligned_a[: a_str + 1] = 95
    aligned_b[: b_str + 1] = 95
    return m, ptr, aligned_a, aligned_b


def make_data(rng: np.random.Generator) -> WorkloadData:
    bases = np.array([65, 67, 71, 84], dtype=np.int32)  # ACGT
    seq_a = bases[rng.integers(0, 4, ALEN)].astype(np.int32)
    seq_b = bases[rng.integers(0, 4, BLEN)].astype(np.int32)
    m, ptr, aligned_a, aligned_b = golden_nw(seq_a, seq_b)
    size = (ALEN + 1) * (BLEN + 1)
    return WorkloadData(
        inputs={
            "seqA": seq_a, "seqB": seq_b,
            "alignedA": np.zeros(ALEN + BLEN, dtype=np.int32),
            "alignedB": np.zeros(ALEN + BLEN, dtype=np.int32),
            "M": np.zeros(size, dtype=np.int32),
            "ptr": np.zeros(size, dtype=np.int32),
        },
        output_names=["alignedA", "alignedB"],
        golden={"alignedA": aligned_a, "alignedB": aligned_b},
    )


WORKLOAD = Workload(
    name="nw",
    source=SOURCE,
    func_name="nw",
    arg_order=["seqA", "seqB", "alignedA", "alignedB", "M", "ptr"],
    make_data=make_data,
    description=f"Needleman-Wunsch alignment of {ALEN}-char sequences",
)
