"""Ablation — compiler optimization level vs datapath cost (extension).

Not a paper table: quantifies the design decision DESIGN.md calls out —
that datapath structure is inherited from the compiler's IR.  Compares
-O1 (the paper's default pipeline) against -O2 (adds LICM + CSE) per
benchmark: functional units allocated, static leakage/area, dynamic
instructions, and simulated cycles.

Expected shape: -O2 never allocates more functional units, reduces
dynamic instructions for kernels with redundant address arithmetic, and
never produces wrong results (all runs verify).
"""

import numpy as np

from conftest import SEED, save_and_print
from repro.dse import format_table
from repro.frontend import compile_c
from repro.system.soc import StandaloneAccelerator
from repro.workloads import get_workload

BENCHES = ["gemm", "fft", "spmv", "stencil2d", "md_knn"]


def _run(name, opt_level):
    workload = get_workload(name)
    module = compile_c(workload.source, workload.func_name, opt_level=opt_level)
    acc = StandaloneAccelerator(module, workload.func_name, memory="spm",
                                spm_bytes=1 << 16)
    data = workload.make_data(np.random.default_rng(SEED))
    args, addresses = workload.stage(acc, data)
    result = acc.run(args)
    workload.verify(acc, addresses, data)
    return {
        "cycles": result.cycles,
        "fus": sum(result.fu_counts.values()),
        "leakage_mw": result.power.static_mw,
        "area_um2": result.area.datapath_um2,
        "dyn_insts": acc.unit.engine.stat_dyn_insts.value(),
    }


def test_ablation_opt_level(benchmark):
    def run():
        rows = []
        for name in BENCHES:
            o1 = _run(name, 1)
            o2 = _run(name, 2)
            rows.append(
                {
                    "benchmark": name,
                    "O1_fus": o1["fus"],
                    "O2_fus": o2["fus"],
                    "O1_cycles": o1["cycles"],
                    "O2_cycles": o2["cycles"],
                    "O1_dyn": int(o1["dyn_insts"]),
                    "O2_dyn": int(o2["dyn_insts"]),
                    "area_saving_pct": 100 * (o1["area_um2"] - o2["area_um2"]) / o1["area_um2"],
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_and_print(
        "ablation_passes",
        format_table(rows, title="Ablation: -O1 vs -O2 (LICM+CSE) datapath cost",
                     float_fmt="{:.2f}"),
    )

    for row in rows:
        assert row["O2_fus"] <= row["O1_fus"], row
        assert row["O2_dyn"] <= row["O1_dyn"], row
    # At least one kernel with redundant address math benefits measurably.
    assert any(r["O2_dyn"] < 0.95 * r["O1_dyn"] for r in rows)
