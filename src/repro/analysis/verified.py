"""Verified pass pipelines: golden-interpreter differential checking.

`PassManager(verify=True)` already re-verifies structural SSA invariants
after each changed pass, but a pass can be structurally valid and still
*wrong* — folding to the wrong constant, unrolling one iteration short.
`VerifiedPassManager` closes that hole: before any pass runs it executes
the function on the golden interpreter with deterministic synthesized
inputs, then re-executes after **every** pass (changed or not — a pass
that lies about its changed flag is exactly the bug class this catches)
and compares the return value and every argument buffer byte-for-byte.
The first divergence raises :class:`PassDivergenceError` naming the
offending pass.

Input synthesis is derived once from the *pre-pass* function (buffer
sizes keyed off the largest integer constant in the body, so loop
bounds and GEP offsets stay in range) and reused for every subsequent
run — both sides of each differential always see identical bytes.

Opt in via ``PipelineSpec(verify_each=True)``, ``build_module(...,
verify_each=True)``, or CLI ``--verify-each``; it is deliberately not
part of the artifact cache key, since a verified build produces the
same module as an unverified one (or no module at all).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.ir.interpreter import Interpreter, InterpreterError
from repro.ir.memory import MemoryError_, MemoryImage
from repro.ir.module import Function, Module
from repro.ir.types import ArrayType, FloatType, IntType, PointerType
from repro.ir.values import Constant
from repro.ir.verifier import verify_function
from repro.passes.pass_manager import FunctionPass, PassManager

#: Interpreter budget per reference run; kernels that exceed it are
#: treated as not-differentially-checkable (structural verify still runs).
MAX_REFERENCE_INSTRUCTIONS = 5_000_000

#: Synthesized buffer sizing (in elements of the pointee type).
MIN_BUFFER_ELEMS = 64
MAX_BUFFER_ELEMS = 1 << 15


class PassDivergenceError(RuntimeError):
    """A pass changed the observable behaviour of a function."""

    def __init__(self, pass_name: str, func_name: str, detail: str) -> None:
        super().__init__(
            f"pass '{pass_name}' diverged on function '{func_name}': {detail}"
        )
        self.pass_name = pass_name
        self.func_name = func_name
        self.detail = detail


@dataclass(frozen=True)
class _ArgPlan:
    """How to synthesize one argument: a buffer or a scalar."""

    buffer_bytes: Optional[int]  # None -> scalar
    elem_is_float: bool
    elem_bytes: int
    scalar_value: object = None


def _max_int_constant(func: Function) -> int:
    """Largest (signed) integer constant in the body — a proxy for the
    largest loop bound / index the kernel can reach."""
    largest = 0
    for inst in func.instructions():
        for op in inst.operands:
            if isinstance(op, Constant) and isinstance(op.type, IntType):
                largest = max(largest, abs(op.signed_value()))
    return largest


def plan_inputs(func: Function) -> list[_ArgPlan]:
    """Derive the deterministic input plan from the pre-pass function."""
    elems = min(max(_max_int_constant(func) + MIN_BUFFER_ELEMS,
                    MIN_BUFFER_ELEMS), MAX_BUFFER_ELEMS)
    plans: list[_ArgPlan] = []
    for arg in func.args:
        if isinstance(arg.type, PointerType):
            pointee = arg.type.pointee
            if isinstance(pointee, ArrayType):
                count = max(1, pointee.count)
                elem = pointee.element
                nbytes = elem.size_bytes() * count
            else:
                elem = pointee
                nbytes = elem.size_bytes() * elems
            plans.append(_ArgPlan(
                buffer_bytes=nbytes,
                elem_is_float=elem.is_float,
                elem_bytes=elem.size_bytes(),
            ))
        elif isinstance(arg.type, FloatType):
            plans.append(_ArgPlan(None, True, arg.type.size_bytes(), 1.5))
        else:
            # Small non-zero int: safe as a count, an index, or a divisor.
            plans.append(_ArgPlan(None, False, arg.type.size_bytes(), 4))
    return plans


def _fill_pattern(plan: _ArgPlan, index: int):
    if plan.elem_is_float:
        return ((index * 37) % 101) / 16.0 + 0.5
    return (index % 7) + 1


@dataclass
class _Outcome:
    return_value: object
    buffers: tuple[bytes, ...]


def _execute(module: Module, func_name: str, plans: list[_ArgPlan]) -> _Outcome:
    memory = MemoryImage(1 << 22, base=0x10000, name="verify")
    # Guard page below the first buffer: kernels that index a[i-1] on
    # the first iteration read (deterministic) slack instead of faulting.
    memory.alloc(4096)
    args: list = []
    buffer_addrs: list[tuple[int, int]] = []
    for plan in plans:
        if plan.buffer_bytes is None:
            args.append(plan.scalar_value)
            continue
        addr = memory.alloc(plan.buffer_bytes)
        elem_type = (FloatType(plan.elem_bytes * 8) if plan.elem_is_float
                     else IntType(plan.elem_bytes * 8))
        for i in range(plan.buffer_bytes // plan.elem_bytes):
            memory.write_value(addr + i * plan.elem_bytes,
                               _fill_pattern(plan, i), elem_type)
        args.append(addr)
        buffer_addrs.append((addr, plan.buffer_bytes))
    result = Interpreter(
        module, memory, max_instructions=MAX_REFERENCE_INSTRUCTIONS
    ).run(func_name, args)
    return _Outcome(
        return_value=result.return_value,
        buffers=tuple(memory.read(addr, size) for addr, size in buffer_addrs),
    )


def _compare(golden: _Outcome, candidate: _Outcome) -> Optional[str]:
    if golden.return_value != candidate.return_value:
        return (f"return value changed: {golden.return_value!r} -> "
                f"{candidate.return_value!r}")
    for i, (want, got) in enumerate(zip(golden.buffers, candidate.buffers)):
        if want != got:
            byte = next(j for j, (a, b) in enumerate(zip(want, got)) if a != b)
            return (f"pointer argument #{i} buffer differs "
                    f"(first at byte {byte} of {len(want)})")
    return None


def differential_check(
    before: Module,
    after: Module,
    func_name: str,
    plans: Optional[list[_ArgPlan]] = None,
) -> Optional[str]:
    """Execute both modules on identical inputs; describe any divergence.

    Returns None when the observable behaviour (return value + every
    argument buffer) matches, or a human-readable detail string.  Raises
    `InterpreterError` if the *before* module itself is not executable.
    """
    if plans is None:
        plans = plan_inputs(before.get_function(func_name))
    golden = _execute(before, func_name, plans)
    candidate = _execute(after, func_name, plans)
    return _compare(golden, candidate)


class VerifiedPassManager(PassManager):
    """A `PassManager` that differentially verifies after every pass.

    Drop-in replacement: `PipelineSpec.to_pass_manager` returns one when
    the spec has ``verify_each=True``.  Per-pass wall-clock timings land
    in ``pass_timings`` (also maintained by the base class) so the build
    pipeline can mirror them onto the ``build`` trace channel.
    """

    def __init__(self, passes: list[FunctionPass], verify: bool = True,
                 module: Optional[Module] = None) -> None:
        super().__init__(passes, verify=verify)
        self.module = module
        #: func names whose golden run failed (not differentially checked).
        self.unchecked: list[str] = []

    def run_function(self, func: Function) -> bool:
        module = self.module or func.parent
        plans = plan_inputs(func)
        golden: Optional[_Outcome] = None
        if module is not None:
            try:
                golden = _execute(module, func.name, plans)
            except (InterpreterError, MemoryError_):
                # Not executable under the synthesized inputs (e.g. data-
                # dependent loop blowing the budget, or accesses outside
                # the synthesized buffers): structural checks only.
                self.unchecked.append(func.name)
        changed_any = False
        for pass_ in self.passes:
            start = time.perf_counter()
            changed = pass_.run(func)
            self.pass_timings.append(
                (func.name, pass_.name, time.perf_counter() - start))
            self.history.append((func.name, pass_.name, changed))
            changed_any |= changed
            # Verify after *every* pass: a pass that corrupts the IR while
            # reporting changed=False is precisely what we're hunting.
            if self.verify:
                verify_function(func, module)
            if golden is not None:
                try:
                    candidate = _execute(module, func.name, plans)
                except (InterpreterError, MemoryError_) as exc:
                    raise PassDivergenceError(
                        pass_.name, func.name,
                        f"function no longer executes: {exc}") from exc
                detail = _compare(golden, candidate)
                if detail is not None:
                    raise PassDivergenceError(pass_.name, func.name, detail)
        return changed_any
