"""ZCU102-style FPGA platform reference model (Table III).

End-to-end time on the board decomposes into kernel compute time and
bulk transfer time (read + write over the AXI data movers to shared
DDR).  The model prices:

* compute — the HLS schedule estimate at the programmable-logic clock,
  with a floating-point IP correction: SDSoC's double-precision DSP
  cores are deeper than the simulator's generic 3-stage units, so
  double-heavy kernels run a few percent slower on the board (the
  discrepancy the paper reports for GEMM and FFT);
* bulk transfers — burst DMA at an effective bandwidth plus a fixed
  per-transfer setup cost and a cache-invalidation term proportional to
  the footprint (the paper attributes its transfer-time error to
  invalidation costs).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class FPGAResult:
    compute_us: float
    bulk_transfer_us: float

    @property
    def total_us(self) -> float:
        return self.compute_us + self.bulk_transfer_us


@dataclass
class FPGAPlatformModel:
    pl_clock_hz: float = 100e6          # programmable-logic clock
    dma_bandwidth_gbps: float = 16.0    # effective AXI HP port bandwidth
    dma_setup_us: float = 2.3           # driver + descriptor setup per transfer
    invalidation_ns_per_kb: float = 150.0  # cache maintenance on the ARM side
    fp_double_penalty: float = 0.035    # deeper FP IPs vs generic 3-stage units

    def compute_time_us(self, hls_cycles: int, fp_fraction: float = 0.0) -> float:
        seconds = hls_cycles / self.pl_clock_hz
        seconds *= 1.0 + self.fp_double_penalty * fp_fraction
        return seconds * 1e6

    def bulk_transfer_us(self, bytes_in: int, bytes_out: int, transfers: int = 2) -> float:
        total_bytes = bytes_in + bytes_out
        wire_us = total_bytes * 8 / (self.dma_bandwidth_gbps * 1e3)  # ns -> us
        setup_us = self.dma_setup_us * transfers
        invalidation_us = self.invalidation_ns_per_kb * (total_bytes / 1024.0) / 1e3
        return wire_us + setup_us + invalidation_us

    def run(
        self,
        hls_cycles: int,
        bytes_in: int,
        bytes_out: int,
        fp_fraction: float = 0.0,
        transfers: int = 2,
    ) -> FPGAResult:
        return FPGAResult(
            compute_us=self.compute_time_us(hls_cycles, fp_fraction),
            bulk_transfer_us=self.bulk_transfer_us(bytes_in, bytes_out, transfers),
        )
