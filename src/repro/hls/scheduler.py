"""HLS-style static performance model.

Models what an HLS tool reports after scheduling + co-simulation:

1. every basic block is list-scheduled against the same hardware
   profile and resource constraints the simulator uses (shared pricing,
   as in the paper's validation methodology);
2. loop initiation intervals are the max of the resource II and the
   recurrence II (loop-carried dependence chains);
3. dynamic block execution counts come from a functional run on the
   *same inputs* (the role of RTL co-simulation);
4. total cycles = for each maximal run of consecutive executions of a
   block: one full block latency plus (run_length - 1) x II.

This is an independent analytical model — it shares no scheduling code
with the runtime engine — so the validation error reported in Fig. 10's
reproduction measures genuine disagreement between the two models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import DeviceConfig
from repro.hw.profile import FU_NONE, HardwareProfile, fu_class_for
from repro.ir.instructions import Branch, Load, Phi, Store
from repro.ir.interpreter import Interpreter
from repro.ir.memory import MemoryImage
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import Instruction


@dataclass
class BlockSchedule:
    name: str
    latency: int                  # cycles for one isolated execution
    resource_ii: int
    recurrence_ii: int
    control_delay: int            # fetch-to-next-fetch latency (branch path)
    op_count: int

    @property
    def ii(self) -> int:
        return max(1, self.resource_ii, self.recurrence_ii, self.control_delay)


@dataclass
class HLSSchedule:
    function: str
    blocks: dict[str, BlockSchedule]
    total_cycles: int
    block_visits: dict[str, int] = field(default_factory=dict)


def _latency_of(inst: Instruction, profile: HardwareProfile, config: DeviceConfig,
                mem_read_latency: int, mem_write_latency: int) -> int:
    if isinstance(inst, Load):
        return mem_read_latency
    if isinstance(inst, Store):
        return mem_write_latency
    fu_class = fu_class_for(inst)
    if fu_class == FU_NONE:
        return 0
    if fu_class in config.latency_overrides:
        return config.latency_overrides[fu_class]
    return profile.spec_for(fu_class).latency


def _schedule_block(
    block: BasicBlock,
    profile: HardwareProfile,
    config: DeviceConfig,
    mem_read_latency: int,
    mem_write_latency: int,
) -> BlockSchedule:
    """Resource-constrained list scheduling of one block's DAG."""
    insts = block.instructions
    position = {inst: i for i, inst in enumerate(insts)}

    # Dependence edges within the block (SSA + conservative memory order).
    preds: dict[Instruction, list[Instruction]] = {inst: [] for inst in insts}
    last_store: Optional[Instruction] = None
    for inst in insts:
        for operand in inst.operands:
            if isinstance(operand, Instruction) and operand in position \
                    and position[operand] < position[inst]:
                preds[inst].append(operand)
        if isinstance(inst, Load) and last_store is not None:
            preds[inst].append(last_store)
        if isinstance(inst, Store):
            if last_store is not None:
                preds[inst].append(last_store)
            last_store = inst

    # FU pool sizes per class for this block (1-to-1 default = per-op).
    class_ops: dict[str, int] = {}
    for inst in insts:
        fu_class = fu_class_for(inst)
        if fu_class != FU_NONE:
            class_ops[fu_class] = class_ops.get(fu_class, 0) + 1

    def pool_size(fu_class: str, ops_in_block: int) -> int:
        limit = config.fu_limits.get(fu_class)
        return min(limit, ops_in_block) if limit is not None else ops_in_block

    # List scheduling by earliest-ready, tie-broken by program order.
    start: dict[Instruction, int] = {}
    finish: dict[Instruction, int] = {}
    usage: dict[tuple[str, int], int] = {}  # (resource, cycle) -> used
    mem_usage: dict[tuple[str, int], int] = {}

    def resource_free(fu_class: str, cycle: int, size: int) -> bool:
        return usage.get((fu_class, cycle), 0) < size

    for inst in insts:
        ready = 0
        for pred in preds[inst]:
            ready = max(ready, finish[pred])
        latency = _latency_of(inst, profile, config, mem_read_latency, mem_write_latency)
        cycle = ready
        if isinstance(inst, (Load, Store)):
            kind = "read" if isinstance(inst, Load) else "write"
            ports = config.read_ports if kind == "read" else config.write_ports
            while mem_usage.get((kind, cycle), 0) >= ports:
                cycle += 1
            mem_usage[(kind, cycle)] = mem_usage.get((kind, cycle), 0) + 1
        else:
            fu_class = fu_class_for(inst)
            if fu_class != FU_NONE:
                size = pool_size(fu_class, class_ops[fu_class])
                while not resource_free(fu_class, cycle, size):
                    cycle += 1
                usage[(fu_class, cycle)] = usage.get((fu_class, cycle), 0) + 1
        start[inst] = cycle
        finish[inst] = cycle + latency

    latency_total = max(finish.values()) if finish else 0

    # Resource II: the steady-state rate limit per iteration.
    resource_ii = 1
    for fu_class, ops in class_ops.items():
        size = pool_size(fu_class, ops)
        spec = profile.spec_for(fu_class)
        per_unit = 1 if spec.pipelined else max(
            1, _latency_of_class(fu_class, profile, config)
        )
        resource_ii = max(resource_ii, -(-ops * per_unit // size))
    loads = sum(1 for i in insts if isinstance(i, Load))
    stores = sum(1 for i in insts if isinstance(i, Store))
    resource_ii = max(resource_ii, -(-loads // config.read_ports))
    resource_ii = max(resource_ii, -(-stores // config.write_ports))

    # Recurrence II: the longest loop-carried dependence cycle, i.e. the
    # latency-weighted path from a header phi to its own back-edge value
    # (plus that value's latency).  The control recurrence (phi -> branch
    # condition -> next-block fetch) adds one fetch cycle.
    def longest_paths_from(source: Instruction) -> dict[Instruction, int]:
        lp: dict[Instruction, int] = {source: 0}
        for inst in insts:
            if inst is source:
                continue
            best = None
            for pred in preds[inst]:
                if pred in lp:
                    latency = _latency_of(
                        pred, profile, config, mem_read_latency, mem_write_latency
                    )
                    candidate = lp[pred] + latency
                    best = candidate if best is None else max(best, candidate)
            if best is not None:
                lp[inst] = best
        return lp

    recurrence_ii = 1
    is_self_loop = block in block.successors()
    if is_self_loop:
        term = block.terminator
        cond = term.condition if isinstance(term, Branch) and term.is_conditional else None
        for phi in block.phis():
            lp = longest_paths_from(phi)
            for value, pred_block in phi.incoming:
                if pred_block is block and isinstance(value, Instruction) and value in lp:
                    data_ii = lp[value] + _latency_of(
                        value, profile, config, mem_read_latency, mem_write_latency
                    )
                    recurrence_ii = max(recurrence_ii, data_ii)
            if isinstance(cond, Instruction) and cond in lp:
                control_ii = lp[cond] + _latency_of(
                    cond, profile, config, mem_read_latency, mem_write_latency
                ) + 1  # next-block fetch
                recurrence_ii = max(recurrence_ii, control_ii)

    # Control delay: time from block fetch until the next block can be
    # fetched (branch condition resolution + one fetch cycle).
    term = block.terminator
    control_delay = 1
    if isinstance(term, Branch) and term.is_conditional:
        cond = term.condition
        if isinstance(cond, Instruction) and cond in finish:
            control_delay = finish[cond] + 1

    return BlockSchedule(
        name=block.name,
        latency=max(1, latency_total),
        resource_ii=resource_ii,
        recurrence_ii=recurrence_ii,
        control_delay=control_delay,
        op_count=len(insts),
    )


def _latency_of_class(fu_class: str, profile: HardwareProfile, config: DeviceConfig) -> int:
    if fu_class in config.latency_overrides:
        return config.latency_overrides[fu_class]
    return profile.spec_for(fu_class).latency


def hls_cycle_estimate(
    module: Module,
    func_name: str,
    args: list,
    memory: MemoryImage,
    profile: HardwareProfile,
    config: Optional[DeviceConfig] = None,
    mem_read_latency: int = 2,
    mem_write_latency: int = 1,
) -> HLSSchedule:
    """Full HLS-style estimate for one kernel invocation.

    ``memory`` must hold the same staged inputs the simulator uses; it
    is copied before the functional co-simulation run so the caller's
    image is untouched.
    """
    config = config or DeviceConfig()
    func: Function = module.get_function(func_name)
    schedules = {
        block.name: _schedule_block(
            block, profile, config, mem_read_latency, mem_write_latency
        )
        for block in func.blocks
    }

    # Functional co-simulation for block visit counts and run lengths.
    shadow = MemoryImage(memory.size, base=memory.base, name="hls_cosim")
    shadow.write(memory.base, memory.read(memory.base, memory.size))
    visits: dict[str, int] = {}
    runs: list[tuple[str, int]] = []  # (block, consecutive run length)

    def block_hook(name: str) -> None:
        visits[name] = visits.get(name, 0) + 1
        if runs and runs[-1][0] == name:
            runs[-1] = (name, runs[-1][1] + 1)
        else:
            runs.append((name, 1))

    interp = Interpreter(module, shadow)
    interp.block_hook = lambda block: block_hook(block.name)
    interp.run(func_name, args)

    # Fetch-timestamped walk over the dynamic block sequence: blocks
    # overlap like the runtime engine's reservation queue — the next
    # block is fetched as soon as the branch resolves, while earlier
    # blocks may still be draining.  Total time is the latest finish.
    t_fetch = 0
    finish_max = 0
    for name, length in runs:
        sched = schedules[name]
        finish_max = max(finish_max, t_fetch + sched.latency)
        if length > 1:
            t_fetch += (length - 1) * sched.ii
            finish_max = max(finish_max, t_fetch + sched.latency)
        t_fetch += sched.control_delay
    total = finish_max
    return HLSSchedule(
        function=func_name,
        blocks=schedules,
        total_cycles=total,
        block_visits=visits,
    )
