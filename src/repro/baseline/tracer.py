"""Dynamic trace generation (Aladdin's instrumentation phase).

Runs the kernel functionally with the interpreter's trace hook and
writes one line per dynamic LLVM instruction to a trace file —
mirroring Aladdin's workflow, where an instrumented binary emits a
(gzipped) runtime trace that the simulator later parses.  Writing and
re-parsing a real file is deliberate: Table IV's preprocessing and
simulation-time comparison depends on these costs being real.
"""

from __future__ import annotations

import gzip
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.ir.interpreter import Interpreter, TraceRecord
from repro.ir.memory import MemoryImage
from repro.ir.module import Module


@dataclass
class TraceEntry:
    seq: int
    opcode: str
    name: str          # SSA result name ('' if none)
    operands: tuple    # SSA operand names (registers only)
    address: Optional[int]
    size: int
    block: str

    def to_line(self) -> str:
        ops = ",".join(self.operands)
        addr = "-" if self.address is None else str(self.address)
        return f"{self.seq};{self.opcode};{self.name};{ops};{addr};{self.size};{self.block}"

    @staticmethod
    def from_line(line: str) -> "TraceEntry":
        seq, opcode, name, ops, addr, size, block = line.rstrip("\n").split(";")
        return TraceEntry(
            seq=int(seq),
            opcode=opcode,
            name=name,
            operands=tuple(o for o in ops.split(",") if o),
            address=None if addr == "-" else int(addr),
            size=int(size),
            block=block,
        )


class TraceFile:
    """A dynamic trace on disk (gzip text, one entry per line)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def write(self, entries: list[TraceEntry]) -> None:
        with gzip.open(self.path, "wt") as handle:
            for entry in entries:
                handle.write(entry.to_line() + "\n")

    def read(self) -> list[TraceEntry]:
        with gzip.open(self.path, "rt") as handle:
            return [TraceEntry.from_line(line) for line in handle]

    def size_bytes(self) -> int:
        return self.path.stat().st_size


def generate_trace(
    module: Module,
    func_name: str,
    args: list,
    memory: MemoryImage,
    trace_path: Union[str, Path],
) -> TraceFile:
    """Instrumented functional run -> trace file (preprocessing phase)."""
    entries: list[TraceEntry] = []

    def hook(record: TraceRecord) -> None:
        inst = record.inst
        operand_names = tuple(
            op.name for op in inst.operands if getattr(op, "name", "")
        )
        entries.append(
            TraceEntry(
                seq=record.seq,
                opcode=inst.opcode,
                name=inst.name if inst.produces_value else "",
                operands=operand_names,
                address=record.address,
                size=record.size,
                block=record.block,
            )
        )

    shadow = MemoryImage(memory.size, base=memory.base, name="trace_shadow")
    shadow.write(memory.base, memory.read(memory.base, memory.size))
    interp = Interpreter(module, shadow, trace_hook=hook)
    interp.run(func_name, args)

    trace = TraceFile(trace_path)
    trace.write(entries)
    return trace
