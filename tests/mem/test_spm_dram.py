"""Scratchpad and DRAM timing/functional behaviour."""

import pytest

from repro.mem.dram import DRAM
from repro.mem.spm import Scratchpad
from repro.sim.packet import read_packet, write_packet
from repro.sim.ports import MasterPort


def _master(responses):
    return MasterPort("m", recv_timing_resp=responses.append)


def test_spm_functional_roundtrip(system):
    spm = Scratchpad("spm", system, base=0x1000, size=4096)
    responses = []
    master = _master(responses)
    master.bind(spm.make_port())
    master.send_functional(write_packet(0x1010, b"\xAA" * 8))
    resp = master.send_functional(read_packet(0x1010, 8))
    assert resp.data == b"\xAA" * 8


def test_spm_timing_latency(system):
    spm = Scratchpad("spm", system, base=0x1000, size=4096, latency_cycles=3)
    responses = []
    master = _master(responses)
    master.bind(spm.make_port())
    spm.image.write(0x1000, b"\x07" + bytes(7))
    master.send_timing_req(read_packet(0x1000, 8))
    system.run()
    assert len(responses) == 1
    assert responses[0].data[0] == 7
    assert system.cur_tick == system.clock.cycles_to_ticks(3)


def test_spm_port_conflicts_serialize(system):
    spm = Scratchpad("spm", system, base=0, size=4096, latency_cycles=1,
                     read_ports=1, write_ports=1)
    responses = []
    master = _master(responses)
    master.bind(spm.make_port())
    for i in range(4):
        master.send_timing_req(read_packet(i * 8, 8))
    system.run()
    assert len(responses) == 4
    assert spm.stat_conflicts.value() == 3  # only one read port
    ticks = sorted(r.resp_tick for r in responses)
    assert len(set(ticks)) == 4  # all served in different cycles


def test_spm_banking_allows_parallelism(system):
    spm = Scratchpad("spm", system, base=0, size=4096, latency_cycles=1,
                     read_ports=1, write_ports=1, banks=4, partitioning="cyclic")
    responses = []
    master = _master(responses)
    master.bind(spm.make_port())
    # Four accesses to four different banks: no conflicts.
    for i in range(4):
        master.send_timing_req(read_packet(i * 8, 8))
    system.run()
    assert spm.stat_conflicts.value() == 0


def test_spm_bank_mapping():
    from repro.sim.simobject import System

    system = System("s")
    cyclic = Scratchpad("c", system, base=0, size=1024, banks=4, word_bytes=8)
    assert [cyclic.bank_of(i * 8) for i in range(5)] == [0, 1, 2, 3, 0]
    block = Scratchpad("b", system, base=0, size=1024, banks=4, word_bytes=8,
                       partitioning="block")
    assert block.bank_of(0) == 0
    assert block.bank_of(1016) == 3


def test_spm_energy_accounting(system):
    spm = Scratchpad("spm", system, base=0, size=4096)
    master = _master([])
    master.bind(spm.make_port())
    master.send_timing_req(read_packet(0, 8))
    master.send_timing_req(write_packet(8, bytes(8)))
    system.run()
    assert spm.read_energy_pj() == pytest.approx(spm.sram.read_energy_pj)
    assert spm.write_energy_pj() == pytest.approx(spm.sram.write_energy_pj)
    assert spm.area_um2() > 0


def test_bad_partitioning_rejected(system):
    with pytest.raises(ValueError):
        Scratchpad("x", system, base=0, size=64, partitioning="diagonal")


def test_dram_read_write(system):
    dram = DRAM("dram", system, base=0x8000_0000, size=1 << 16)
    responses = []
    master = _master(responses)
    master.bind(dram.port)
    master.send_timing_req(write_packet(0x8000_0000, b"\x11" * 64))
    master.send_timing_req(read_packet(0x8000_0000, 64))
    system.run()
    assert len(responses) == 2
    read_resp = [r for r in responses if r.data is not None][0]
    assert read_resp.data == b"\x11" * 64


def test_dram_row_hit_faster(system):
    dram = DRAM("dram", system, base=0, size=1 << 16,
                latency_cycles=60, row_hit_latency_cycles=10, row_size=1024)
    responses = []
    master = _master(responses)
    master.bind(dram.port)
    master.send_timing_req(read_packet(0, 8))
    system.run()
    first = responses[0].resp_tick
    master.send_timing_req(read_packet(64, 8))  # same row
    system.run()
    second = responses[1].resp_tick - first
    assert second < first
    assert dram.stat_row_hits.value() == 1


def test_dram_bandwidth_serializes_bus(system):
    dram = DRAM("dram", system, base=0, size=1 << 16,
                latency_cycles=10, row_hit_latency_cycles=10, bytes_per_cycle=8)
    responses = []
    master = _master(responses)
    master.bind(dram.port)
    master.send_timing_req(read_packet(0, 64))       # 8 cycles of bus
    master.send_timing_req(read_packet(1 << 12, 64))
    system.run()
    t1, t2 = (r.resp_tick for r in responses)
    assert t2 - t1 >= system.clock.cycles_to_ticks(8)
