"""Hang detection for event-loop runs.

`SimWatchdog` plugs into ``EventQueue.run(watchdog=...)`` (duck-typed:
``begin`` / ``check`` / ``on_drain`` / ``interval``) and raises a
structured :class:`~repro.sim.eventq.SimulationHang` instead of letting
a broken configuration hang the process or exit silently:

* **deadlock** — the event queue drained while a runtime engine still
  reports in-flight work (a lost memory completion, a dropped wakeup).
* **livelock** — events keep firing but no instruction has committed
  for ``livelock_cycles`` engine cycles (a stalled port, an
  unsatisfiable dependence).
* **wallclock** — the run exceeded ``wall_clock_s`` seconds of host
  time (the per-point timeout of hardened sweeps).

Checks are batched every ``interval`` fired events, so an unwatched
hot loop pays nothing and a watched one pays ~1/interval of a clock
read.  The one hang class this cannot catch is a non-yielding infinite
loop *inside a single event callback* — the watchdog only runs between
events.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Union

from repro.sim.eventq import EventQueue, SimulationHang
from repro.sim.simobject import System


class SimWatchdog:
    """Deadlock / livelock / wall-clock monitor for one event-loop run."""

    #: Default commit-progress budget, in engine cycles.  Far above any
    #: legitimate inter-commit gap of the bundled workloads, far below
    #: "the process looks hung".
    DEFAULT_LIVELOCK_CYCLES = 50_000

    def __init__(
        self,
        engines: Optional[Sequence] = None,
        livelock_cycles: Optional[int] = DEFAULT_LIVELOCK_CYCLES,
        wall_clock_s: Optional[float] = None,
        interval: int = 256,
    ) -> None:
        self.engines = list(engines or [])
        self.livelock_cycles = livelock_cycles
        self.wall_clock_s = wall_clock_s
        self.interval = interval
        self._deadline: Optional[float] = None
        self._last_committed = -1
        self._last_commit_tick = 0

    def bind_system(self, system: System) -> "SimWatchdog":
        """Monitor every `RuntimeEngine` registered in ``system``."""
        from repro.core.runtime import RuntimeEngine

        self.engines = [obj for obj in system.objects.values()
                        if isinstance(obj, RuntimeEngine)]
        return self

    # -- EventQueue.run protocol -------------------------------------------
    def begin(self, queue: EventQueue) -> None:
        if self.wall_clock_s is not None:
            self._deadline = time.monotonic() + self.wall_clock_s
        self._last_committed = self._total_committed()
        self._last_commit_tick = queue.cur_tick

    def check(self, queue: EventQueue) -> None:
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise SimulationHang(
                "wallclock", queue.cur_tick, self._dump(),
                f"exceeded the wall-clock budget of {self.wall_clock_s}s",
            )
        if self.livelock_cycles is None or not self.engines:
            return
        committed = self._total_committed()
        if committed != self._last_committed:
            self._last_committed = committed
            self._last_commit_tick = queue.cur_tick
            return
        running = self._running_engines()
        if not running:
            # Nothing executing (e.g. a host-only phase): progress is
            # whatever the event queue is doing; restart the window.
            self._last_commit_tick = queue.cur_tick
            return
        elapsed = queue.cur_tick - self._last_commit_tick
        for engine in running:
            if elapsed > engine.clock.cycles_to_ticks(self.livelock_cycles):
                raise SimulationHang(
                    "livelock", queue.cur_tick, self._dump(),
                    f"no instruction commit for more than "
                    f"{self.livelock_cycles} cycles "
                    f"({len(running)} engine(s) still running)",
                )

    def on_drain(self, queue: EventQueue) -> None:
        running = self._running_engines()
        if running:
            raise SimulationHang(
                "deadlock", queue.cur_tick, self._dump(),
                "event queue drained while engines report in-flight work: "
                + "; ".join(engine.inflight_summary() for engine in running),
            )

    # -- internals ----------------------------------------------------------
    def _total_committed(self) -> int:
        return sum(getattr(engine, "committed", 0) for engine in self.engines)

    def _running_engines(self) -> list:
        return [engine for engine in self.engines
                if getattr(engine, "running", False)]

    def _dump(self) -> list[str]:
        lines: list[str] = []
        for engine in self._running_engines():
            lines.append(engine.inflight_summary())
            lines.extend(engine.inflight_dump())
        return lines

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<SimWatchdog engines={len(self.engines)} "
                f"livelock={self.livelock_cycles} wall={self.wall_clock_s}>")


def coerce_watchdog(value: Union[SimWatchdog, dict, bool, int, float, None],
                    system: Optional[System] = None) -> Optional[SimWatchdog]:
    """Normalize the accepted watchdog specs.

    ``None``/``False`` -> no watchdog; ``True`` -> defaults; an int ->
    a livelock budget in cycles; a dict -> `SimWatchdog` kwargs; an
    instance passes through.  Any form that arrives without engines is
    bound to ``system`` (specs stay picklable — `ParallelSweep` ships
    them to workers and binds in the worker).
    """
    if value is None or value is False:
        return None
    if isinstance(value, SimWatchdog):
        watchdog = value
    elif value is True:
        watchdog = SimWatchdog()
    elif isinstance(value, bool):  # pragma: no cover - covered by True/False
        watchdog = SimWatchdog()
    elif isinstance(value, (int, float)):
        watchdog = SimWatchdog(livelock_cycles=int(value))
    elif isinstance(value, dict):
        watchdog = SimWatchdog(**value)
    else:
        raise TypeError(
            f"cannot build a SimWatchdog from {type(value).__name__!r}"
        )
    if not watchdog.engines and system is not None:
        watchdog.bind_system(system)
    return watchdog


def watchdog_spec(value: Union[SimWatchdog, dict, bool, int, float, None]):
    """Reduce any watchdog form to a picklable spec (for process pools)."""
    if isinstance(value, SimWatchdog):
        return {
            "livelock_cycles": value.livelock_cycles,
            "wall_clock_s": value.wall_clock_s,
            "interval": value.interval,
        }
    return value
