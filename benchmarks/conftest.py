"""Shared helpers for the experiment benchmarks.

Every file in this directory regenerates one table or figure from the
paper's evaluation (see DESIGN.md's experiment index).  Each benchmark
prints the paper-style rows and also writes them to
``benchmarks/results/<experiment>.txt`` so the output survives pytest's
capture.  Run with::

    pytest benchmarks/ --benchmark-only

Dataset sizes are the scaled-down defaults documented in
`repro.workloads`; comparisons are always same-inputs-both-sides, so
the reported error/speedup *shapes* are meaningful even though absolute
cycle counts differ from the paper's testbed.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

RESULTS_DIR = Path(__file__).resolve().parent / "results"
RESULTS_DIR.mkdir(exist_ok=True)

SEED = 7


def save_and_print(experiment: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    banner = f"\n===== {experiment} =====\n{text}\n"
    print(banner)
    (RESULTS_DIR / f"{experiment}.txt").write_text(banner)


def stage_into(workload, mem, seed: int = SEED):
    """Stage a workload's dataset into a raw MemoryImage; return (args, data)."""
    data = workload.make_data(np.random.default_rng(seed))
    args = []
    for name in workload.arg_order:
        if name in data.inputs:
            args.append(mem.alloc_array(np.ascontiguousarray(data.inputs[name])))
        else:
            args.append(data.scalars[name])
    return args, data


@pytest.fixture
def rng():
    return np.random.default_rng(SEED)
