"""Verifier: each structural violation must be caught."""

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.instructions import BinaryOp, Branch, Phi, Ret
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import I1, I32, VOID
from repro.ir.values import Constant
from repro.ir.verifier import VerifierError, verify_function, verify_module


def _ok_function():
    f = Function("f", I32, [(I32, "x")])
    entry = f.add_block("entry")
    b = IRBuilder(entry)
    v = b.add(f.args[0], b.const(I32, 1))
    b.ret(v)
    return f


def test_valid_function_passes():
    verify_function(_ok_function())


def test_empty_function_rejected():
    with pytest.raises(VerifierError):
        verify_function(Function("f"))


def test_empty_block_rejected():
    f = Function("f")
    f.add_block("entry")
    with pytest.raises(VerifierError, match="empty block"):
        verify_function(f)


def test_missing_terminator():
    f = Function("f")
    block = f.add_block("entry")
    b = IRBuilder(block)
    b.add(b.const(I32, 1), b.const(I32, 2))
    with pytest.raises(VerifierError, match="terminator"):
        verify_function(f)


def test_mid_block_terminator():
    f = Function("f")
    block = f.add_block("entry")
    ret1, ret2 = Ret(), Ret()
    for inst in (ret1, ret2):
        inst.parent = block
        block.instructions.append(inst)
    with pytest.raises(VerifierError, match="middle"):
        verify_function(f)


def test_ret_type_mismatch():
    f = Function("f", I32, [])
    block = f.add_block("entry")
    b = IRBuilder(block)
    b.ret()  # void return from i32 function
    with pytest.raises(VerifierError, match="ret"):
        verify_function(f)


def test_duplicate_block_names():
    f = Function("f")
    b1 = f.add_block("x")
    b2 = f.add_block("x")
    builder = IRBuilder(b1)
    builder.ret()
    builder.position_at_end(b2)
    builder.ret()
    with pytest.raises(VerifierError, match="duplicate block"):
        verify_function(f)


def test_duplicate_ssa_names():
    f = Function("f")
    block = f.add_block("entry")
    b = IRBuilder(block)
    b.add(b.const(I32, 1), b.const(I32, 2), name="a")
    b.add(b.const(I32, 3), b.const(I32, 4), name="a")
    b.ret()
    with pytest.raises(VerifierError, match="duplicate SSA"):
        verify_function(f)


def test_use_before_definition_same_block():
    f = Function("f")
    block = f.add_block("entry")
    late = BinaryOp("add", Constant(I32, 1), Constant(I32, 2))
    late.name = "late"
    early = BinaryOp("add", late, Constant(I32, 3))
    early.name = "early"
    for inst in (early, late):
        inst.parent = block
        block.instructions.append(inst)
    ret = Ret()
    ret.parent = block
    block.instructions.append(ret)
    with pytest.raises(VerifierError, match="before definition"):
        verify_function(f)


def test_definition_must_dominate_use():
    f = Function("f")
    entry, left, right, merge = (
        f.add_block("entry"), f.add_block("left"),
        f.add_block("right"), f.add_block("merge"),
    )
    b = IRBuilder(entry)
    b.cbr(Constant(I1, 1), left, right)
    b.position_at_end(left)
    v = b.add(b.const(I32, 1), b.const(I32, 2))
    b.br(merge)
    b.position_at_end(right)
    b.br(merge)
    b.position_at_end(merge)
    b.add(v, b.const(I32, 1))  # v does not dominate merge
    b.ret()
    with pytest.raises(VerifierError, match="dominate"):
        verify_function(f)


def test_phi_incoming_must_match_preds():
    f = Function("f")
    entry, loop = f.add_block("entry"), f.add_block("loop")
    b = IRBuilder(entry)
    b.br(loop)
    b.position_at_end(loop)
    phi = b.phi(I32)
    phi.add_incoming(Constant(I32, 0), entry)  # missing the back edge
    b.br(loop)
    with pytest.raises(VerifierError, match="phi"):
        verify_function(f)


def test_phi_after_non_phi_rejected():
    f = Function("f")
    entry, loop = f.add_block("entry"), f.add_block("loop")
    b = IRBuilder(entry)
    b.br(loop)
    b.position_at_end(loop)
    v = b.add(b.const(I32, 1), b.const(I32, 2))
    phi = Phi(I32)
    phi.name = "p"
    phi.add_incoming(Constant(I32, 0), entry)
    phi.add_incoming(v, loop)
    phi.parent = loop
    loop.instructions.append(phi)
    loop.instructions.append(Branch(loop))
    loop.instructions[-1].parent = loop
    with pytest.raises(VerifierError, match="phi after non-phi"):
        verify_function(f)


def test_call_to_unknown_function():
    m = Module("m")
    f = Function("f", VOID, [])
    m.add_function(f)
    block = f.add_block("entry")
    b = IRBuilder(block)
    b.call("missing", VOID, [])
    b.ret()
    with pytest.raises(VerifierError, match="unknown function"):
        verify_module(m)


def test_call_arity_checked():
    m = Module("m")
    callee = Function("g", I32, [(I32, "x")])
    m.add_function(callee)
    cb = IRBuilder(callee.add_block("entry"))
    cb.ret(callee.args[0])
    f = Function("f", VOID, [])
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    b.call("g", I32, [])
    b.ret()
    with pytest.raises(VerifierError, match="arity"):
        verify_module(m)


def _module_with_callee():
    m = Module("m")
    callee = Function("g", I32, [(I32, "x")])
    m.add_function(callee)
    cb = IRBuilder(callee.add_block("entry"))
    cb.ret(callee.args[0])
    return m, callee


def test_call_argument_type_checked():
    m, _ = _module_with_callee()
    f = Function("f", VOID, [(I1, "c")])
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    b.call("g", I32, [f.args[0]])  # i1 where i32 expected
    b.ret()
    with pytest.raises(VerifierError, match="argument 0"):
        verify_module(m)


def test_call_return_type_checked():
    m, _ = _module_with_callee()
    f = Function("f", VOID, [(I32, "x")])
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    b.call("g", I1, [f.args[0]])  # callee returns i32, call typed i1
    b.ret()
    with pytest.raises(VerifierError, match="returns"):
        verify_module(m)


def test_phi_in_entry_block_rejected():
    f = Function("f", I32, [(I32, "x")])
    entry = f.add_block("entry")
    phi = Phi(I32)
    phi.name = "p"
    phi.parent = entry
    entry.instructions.append(phi)
    b = IRBuilder(entry)
    b.ret(f.args[0])
    with pytest.raises(VerifierError, match="entry"):
        verify_function(f)


def test_non_i1_branch_condition_rejected():
    f = Function("f", VOID, [(I32, "x")])
    entry, a, z = f.add_block("entry"), f.add_block("a"), f.add_block("z")
    b = IRBuilder(entry)
    br = b.cbr(Constant(I1, 1), a, z)
    br.operands[0] = f.args[0]  # smuggle an i32 condition past the builder
    b.position_at_end(a)
    b.ret()
    b.position_at_end(z)
    b.ret()
    with pytest.raises(VerifierError, match="i1"):
        verify_function(f)
