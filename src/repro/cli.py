"""Command-line interface: ``python -m repro <command>``.

Mirrors the day-to-day gem5-SALAM workflow from a shell:

* ``compile``   — mini-C -> textual IR (clang stand-in), with -O / unroll knobs
* ``elaborate`` — static datapath report: CDFG, FU counts, static power/area
* ``run``       — simulate a kernel on a workload from the registry
* ``workloads`` — list the bundled MachSuite-style benchmarks
* ``sweep``     — small port/FU design-space sweep with a Pareto summary

``run`` and ``sweep`` go through the `repro.exec` execution layer:
``--workers N`` fans sweep points out across processes and
``--cache-dir`` makes repeated configuration points near-free.

Examples::

    python -m repro compile kernel.c --unroll 4
    python -m repro compile kernel.c --passes mem2reg,unroll:4,constfold,dce
    python -m repro elaborate kernel.c --func saxpy --fu-limit fp_mul=2
    python -m repro run gemm --ports 8 --memory spm
    python -m repro sweep gemm_dse --unroll 8 --workers 4 --cache-dir .runcache
    python -m repro sweep gemm_dse --workers 4 --artifact-dir .artifacts
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _parse_fu_limits(entries: list[str]) -> dict[str, int]:
    limits: dict[str, int] = {}
    for entry in entries or []:
        name, __, count = entry.partition("=")
        if not count.isdigit():
            raise SystemExit(f"bad --fu-limit '{entry}' (expected CLASS=N)")
        limits[name] = int(count)
    return limits


def _read_source(path: str) -> str:
    source_path = Path(path)
    if not source_path.exists():
        raise SystemExit(f"no such file: {path}")
    return source_path.read_text()


def _artifact_store(args):
    """The --artifact-dir store (shared by every subcommand), or None."""
    path = getattr(args, "artifact_dir", None)
    if not path:
        return None
    from repro.build import ArtifactStore

    return ArtifactStore(path)


def _build_kernel(args, store=None):
    """The one compile path behind compile/elaborate: mini-C -> Artifact."""
    from repro.build import PipelineSpecError, build_module

    try:
        return build_module(
            _read_source(args.source),
            "module",
            pipeline=getattr(args, "passes", None),
            optimize=not getattr(args, "no_opt", False),
            opt_level=args.opt_level,
            unroll_factor=args.unroll,
            store=store,
        )
    except PipelineSpecError as err:
        raise SystemExit(f"bad --passes spec: {err}")


def _print_artifact(artifact, store) -> None:
    if store is None:
        return
    status = "store hit" if artifact.meta.get("cached") else "compiled"
    print(f"artifact        : {artifact.key[:12]} ({status})")


def cmd_compile(args: argparse.Namespace) -> int:
    from repro.ir.printer import print_module

    store = _artifact_store(args)
    artifact = _build_kernel(args, store)
    text = print_module(artifact.module)
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {args.output}")
        _print_artifact(artifact, store)
    else:
        print(text)
    return 0


def cmd_elaborate(args: argparse.Namespace) -> int:
    from repro.build import BuildPipeline
    from repro.core.config import DeviceConfig

    store = _artifact_store(args)
    artifact = _build_kernel(args, store)
    func_name = args.func or next(iter(artifact.module.functions))
    config = DeviceConfig(fu_limits=_parse_fu_limits(args.fu_limit))
    design = BuildPipeline().elaborate(artifact, func_name, config=config).payload
    iface = design.iface
    print(f"function        : {func_name}")
    _print_artifact(artifact, store)
    print(f"instructions    : {iface.cdfg.total_instructions()}")
    print(f"basic blocks    : {len(iface.cdfg.blocks)}")
    print(f"register bits   : {iface.cdfg.register_bits}")
    print("functional units:")
    for fu_class, count in sorted(iface.cdfg.fu_counts.items()):
        print(f"  {fu_class:12s} {count}")
    print(f"static leakage  : {iface.static.fu_leakage_mw + iface.static.register_leakage_mw:.4f} mW")
    print(f"datapath area   : {(iface.static.fu_area_um2 + iface.static.register_area_um2) / 1e3:.1f} kum^2")
    return 0


def cmd_workloads(args: argparse.Namespace) -> int:
    from repro.workloads import all_workload_names, get_workload

    for name in all_workload_names():
        print(f"{name:12s} {get_workload(name).description}")
    return 0


def _print_injected(context) -> None:
    """List the fault events that actually fired during a run."""
    injector = getattr(context, "fault_injector", None)
    if injector is None or not injector.injected:
        return
    for record in injector.injected:
        detail = {k: v for k, v in record.items()
                  if k not in ("tick", "kind", "target")}
        print(f"  fault @ tick {record['tick']:>8}: {record['kind']} "
              f"on {record['target']} {detail}")


def cmd_run(args: argparse.Namespace) -> int:
    from repro.core.config import DeviceConfig
    from repro.exec import FailureRecord, RunCache, SimContext
    from repro.faults import FaultConfigError, FaultPlan
    from repro.workloads import get_workload

    workload = get_workload(args.workload)
    config = DeviceConfig(
        clock_freq_hz=args.clock_mhz * 1e6,
        read_ports=args.ports,
        write_ports=max(1, args.ports // 2),
        fu_limits=_parse_fu_limits(args.fu_limit),
    )
    kwargs = dict(config=config, memory=args.memory, unroll_factor=args.unroll)
    if args.memory in ("spm", "ideal"):
        kwargs.update(spm_bytes=1 << 16, spm_read_ports=args.ports)
    cache = RunCache(args.cache_dir) if args.cache_dir else None
    store = _artifact_store(args)
    trace_cfg = None
    if args.trace or args.trace_out:
        from repro.trace import TraceConfig

        fmt = "text" if (args.trace_out or "").endswith((".txt", ".log")) else "chrome"
        trace_cfg = TraceConfig(channels=args.trace or "all",
                                out=args.trace_out, format=fmt)
    try:
        plan = FaultPlan.parse(args.inject or [], seed=args.seed)
    except FaultConfigError as err:
        raise SystemExit(f"bad --inject spec: {err}")
    context = SimContext(workload, seed=args.seed, cache=cache,
                         trace=trace_cfg, faults=plan,
                         timeout_s=args.point_timeout,
                         artifact_store=store, **kwargs)
    hardened = bool(plan) or args.point_timeout is not None
    try:
        result = context.run()
    except Exception as exc:  # noqa: BLE001 - reported as a FailureRecord
        if not hardened:
            raise
        failure = FailureRecord.from_exception(exc)
        print(f"workload        : {workload.name} ({workload.description})")
        print(f"FAILED          : {failure.summary()} [{failure.reason}]")
        _print_injected(context)
        return 1
    print(f"workload        : {workload.name} ({workload.description})")
    if plan:
        print(f"faults injected : {len(plan.events)} event(s) armed "
              "(results bypass the run cache)")
        _print_injected(context)
    if cache is not None and cache.hits:
        print("verified        : cached result (verified when first computed)")
    else:
        print("verified        : output matches the golden model")
    print(f"cycles          : {result.cycles}")
    print(f"runtime         : {result.runtime_ns / 1e3:.2f} us @ {args.clock_mhz} MHz")
    print(f"total power     : {result.power.total_mw:.3f} mW")
    print(f"datapath area   : {result.area.datapath_um2 / 1e3:.1f} kum^2")
    print(f"functional units: {dict(sorted(result.fu_counts.items()))}")
    print(f"stalled entries : {result.occupancy.entry_stall_fraction():.1%}")
    if trace_cfg is not None:
        if context.trace_hub is None:
            print("trace           : skipped (cache hit -- no simulation ran; "
                  "rerun without --cache-dir to capture a trace)")
        else:
            hub = context.trace_hub
            print(f"trace           : {hub.total_emitted} events on "
                  f"{','.join(trace_cfg.channels)} "
                  f"({hub.total_dropped} dropped)")
            if trace_cfg.out:
                from repro.trace import write_trace

                write_trace(hub, trace_cfg.out, trace_cfg.format)
                print(f"trace written   : {trace_cfg.out} ({trace_cfg.format})")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core.config import DeviceConfig
    from repro.dse import format_table, pareto_front, sweep
    from repro.exec import RunCache
    from repro.workloads import get_workload

    workload = get_workload(args.workload)

    def configure(params):
        return dict(
            config=DeviceConfig(read_ports=params["ports"],
                                write_ports=max(1, params["ports"] // 2)),
            memory="spm", spm_bytes=1 << 16, spm_read_ports=params["ports"],
            unroll_factor=args.unroll,
        )

    cache = RunCache(args.cache_dir) if args.cache_dir else None
    store = _artifact_store(args)
    points = sweep(workload, {"ports": args.ports}, configure, seed=args.seed,
                   workers=args.workers, cache=cache,
                   point_timeout=args.point_timeout, retries=args.retries,
                   strict=args.strict, artifact_store=store)
    healthy = [point for point in points if point.ok]
    front = pareto_front(healthy, objectives=lambda p: (p.runtime_us, p.power_mw))
    rows = []
    for point in points:
        row = point.record()
        row["pareto"] = "*" if point in front else ""
        rows.append(row)
    print(format_table(rows, title=f"{workload.name} port sweep"))
    failed = [point for point in points if not point.ok]
    for point in failed:
        print(f"failed point    : {point.params} -> {point.failure.summary()}")
    if cache is not None:
        print(f"run cache       : {cache.hits} hit(s), {cache.misses} miss(es)")
    if store is not None:
        print(f"artifact cache  : {store.hits} hit(s), "
              f"{store.misses} miss(es)")
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="gem5-SALAM reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile mini-C to textual IR")
    p_compile.add_argument("source")
    p_compile.add_argument("--output", "-o")
    p_compile.add_argument("--unroll", type=int, default=1)
    p_compile.add_argument("--opt-level", type=int, default=1, choices=[1, 2])
    p_compile.add_argument("--no-opt", action="store_true")
    p_compile.add_argument("--passes", metavar="SPEC",
                           help="explicit pass pipeline, e.g. "
                                "'mem2reg,unroll:4,constfold,dce' or a "
                                "preset 'o1'/'o2' (overrides --opt-level/"
                                "--unroll/--no-opt)")
    p_compile.add_argument("--artifact-dir", metavar="DIR",
                           help="content-addressed build-artifact store "
                                "(recompiles of the same kernel are free)")
    p_compile.set_defaults(handler=cmd_compile)

    p_elab = sub.add_parser("elaborate", help="static datapath report")
    p_elab.add_argument("source")
    p_elab.add_argument("--func")
    p_elab.add_argument("--unroll", type=int, default=1)
    p_elab.add_argument("--opt-level", type=int, default=1, choices=[1, 2])
    p_elab.add_argument("--fu-limit", action="append", metavar="CLASS=N")
    p_elab.add_argument("--passes", metavar="SPEC",
                        help="explicit pass pipeline (see 'compile --passes')")
    p_elab.add_argument("--artifact-dir", metavar="DIR",
                        help="content-addressed build-artifact store")
    p_elab.set_defaults(handler=cmd_elaborate)

    p_list = sub.add_parser("workloads", help="list bundled benchmarks")
    p_list.set_defaults(handler=cmd_workloads)

    p_run = sub.add_parser("run", help="simulate a bundled workload")
    p_run.add_argument("workload")
    p_run.add_argument("--memory", choices=["spm", "cache", "ideal"], default="spm")
    p_run.add_argument("--ports", type=int, default=2)
    p_run.add_argument("--unroll", type=int, default=1)
    p_run.add_argument("--clock-mhz", type=float, default=100.0)
    p_run.add_argument("--seed", type=int, default=7)
    p_run.add_argument("--fu-limit", action="append", metavar="CLASS=N")
    p_run.add_argument("--cache-dir", metavar="DIR",
                       help="content-addressed run cache (reruns are near-free)")
    p_run.add_argument("--trace", metavar="CHANNELS",
                       help="capture a trace of the listed channels "
                            "(comma-separated, or 'all'): compute,mem,dma,"
                            "irq,host,sched,faults")
    p_run.add_argument("--trace-out", metavar="FILE",
                       help="write the trace to FILE (Chrome trace-event "
                            "JSON, loadable in Perfetto; .txt/.log for "
                            "plain text)")
    p_run.add_argument("--inject", action="append", metavar="FAULTSPEC",
                       help="inject a deterministic fault, e.g. "
                            "'bit_flip@spm:access=1,addr=0x20000007,bit=6' "
                            "or 'port_stall@memctrl:tick=5000,cycles=200' "
                            "(kinds: bit_flip,mmr_corrupt,dma_drop,dma_delay,"
                            "port_stall,mem_drop; repeatable)")
    p_run.add_argument("--point-timeout", type=float, metavar="SECONDS",
                       help="abort the run after this much wall-clock time "
                            "and report the hang instead of spinning")
    p_run.add_argument("--artifact-dir", metavar="DIR",
                       help="content-addressed build-artifact store "
                            "(kernel compiles are cached across runs)")
    p_run.set_defaults(handler=cmd_run)

    p_sweep = sub.add_parser("sweep", help="port sweep with Pareto summary")
    p_sweep.add_argument("workload")
    p_sweep.add_argument("--ports", type=int, nargs="+", default=[1, 2, 4, 8])
    p_sweep.add_argument("--unroll", type=int, default=1)
    p_sweep.add_argument("--seed", type=int, default=7)
    p_sweep.add_argument("--workers", type=int, default=1,
                         help="fan the sweep out over N processes")
    p_sweep.add_argument("--cache-dir", metavar="DIR",
                         help="content-addressed run cache (reruns are near-free)")
    p_sweep.add_argument("--point-timeout", type=float, metavar="SECONDS",
                         help="per-point wall-clock budget; a point that "
                              "exceeds it becomes a failed row, not a hang")
    p_sweep.add_argument("--retries", type=int, default=0,
                         help="resubmit points lost to crashed workers up "
                              "to N times before running them serially")
    p_sweep.add_argument("--strict", action="store_true",
                         help="fail fast on the first failed point instead "
                              "of degrading gracefully")
    p_sweep.add_argument("--artifact-dir", metavar="DIR",
                         help="content-addressed build-artifact store; the "
                              "kernel is compiled once per sweep and hits "
                              "on reruns")
    p_sweep.set_defaults(handler=cmd_sweep)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
