"""Runtime engine: correctness across configurations, plus timing sanity."""

import numpy as np
import pytest

from repro.core.config import DeviceConfig
from repro.system.soc import StandaloneAccelerator

VECADD = """
void vecadd(double a[64], double b[64], double c[64]) {
  for (int i = 0; i < 64; i++) { c[i] = a[i] + b[i]; }
}
"""

REDUCE = """
double reduce(double a[64]) {
  double s = 0;
  for (int i = 0; i < 64; i++) { s += a[i]; }
  return s;
}
"""

BRANCHY = """
void clip(double a[64], double out[64]) {
  for (int i = 0; i < 64; i++) {
    double v = a[i];
    if (v > 0.5) { out[i] = 0.5; }
    else { if (v < -0.5) { out[i] = -0.5; } else { out[i] = v; } }
  }
}
"""


def _run_vecadd(rng, **kwargs):
    acc = StandaloneAccelerator(VECADD, "vecadd", spm_bytes=1 << 13, **kwargs)
    a = rng.uniform(-1, 1, 64)
    b = rng.uniform(-1, 1, 64)
    pa, pb, pc = acc.alloc_array(a), acc.alloc_array(b), acc.alloc(512)
    result = acc.run([pa, pb, pc])
    out = acc.read_array(pc, np.float64, 64)
    assert np.allclose(out, a + b)
    return result


@pytest.mark.parametrize("unroll", [1, 4, 16])
def test_correct_across_unrolling(rng, unroll):
    _run_vecadd(rng, unroll_factor=unroll)


@pytest.mark.parametrize("ports", [1, 2, 8])
def test_correct_across_port_counts(rng, ports):
    cfg = DeviceConfig(read_ports=ports, write_ports=ports)
    _run_vecadd(rng, config=cfg, unroll_factor=8)


def test_more_ports_never_slower(rng):
    cycles = {}
    for ports in (1, 4, 16):
        cfg = DeviceConfig(read_ports=ports, write_ports=ports)
        cycles[ports] = _run_vecadd(rng, config=cfg, unroll_factor=16).cycles
    assert cycles[4] <= cycles[1]
    assert cycles[16] <= cycles[4]


def test_unrolling_reduces_cycles(rng):
    base = _run_vecadd(rng, unroll_factor=1).cycles
    unrolled = _run_vecadd(rng, unroll_factor=8,
                           config=DeviceConfig(read_ports=8, write_ports=8)).cycles
    assert unrolled < base


def test_fu_limits_slow_execution(rng):
    fast = _run_vecadd(rng, unroll_factor=16,
                       config=DeviceConfig(read_ports=16, write_ports=16)).cycles
    limited = _run_vecadd(
        rng, unroll_factor=16,
        config=DeviceConfig(read_ports=16, write_ports=16,
                            fu_limits={"fp_add": 1}),
    ).cycles
    assert limited >= fast


def test_reduction_value_exact(rng):
    acc = StandaloneAccelerator(REDUCE, "reduce", spm_bytes=1 << 13)
    a = rng.uniform(-1, 1, 64)
    pa = acc.alloc_array(a)
    acc.run([pa])
    # Sequential-sum golden (order matters for FP).
    expected = 0.0
    for v in a:
        expected += v
    # The return value is not observable through memory; re-run via MMR path
    # is exercised elsewhere.  Here we check cycle accounting instead.
    assert acc.unit.engine.total_cycles > 64  # at least one cycle per element


def test_data_dependent_control(rng):
    acc = StandaloneAccelerator(BRANCHY, "clip", spm_bytes=1 << 13)
    a = rng.uniform(-1, 1, 64)
    pa, pout = acc.alloc_array(a), acc.alloc(512)
    acc.run([pa, pout])
    out = acc.read_array(pout, np.float64, 64)
    assert np.allclose(out, np.clip(a, -0.5, 0.5))


def test_branchy_runtime_depends_on_data():
    """Execute-in-execute: different data -> different dynamic inst counts."""
    all_mid = np.zeros(64)
    all_high = np.ones(64)
    counts = {}
    for name, data in (("mid", all_mid), ("high", all_high)):
        acc = StandaloneAccelerator(BRANCHY, "clip", spm_bytes=1 << 13)
        pa, pout = acc.alloc_array(data), acc.alloc(512)
        acc.run([pa, pout])
        counts[name] = acc.unit.engine.stat_dyn_insts.value()
    assert counts["mid"] != counts["high"]


def test_occupancy_accounting_consistent(rng):
    result = _run_vecadd(rng, unroll_factor=4)
    occ = result.occupancy
    assert occ.cycles >= occ.issue_cycles + occ.stall_cycles
    assert 0 <= occ.stall_fraction() <= 1
    assert 0 <= occ.issue_fraction() <= 1
    assert occ.issued_ops > 0
    mix = occ.issue_mix()
    assert "load" in mix and "store" in mix


def test_stall_sources_reported(rng):
    cfg = DeviceConfig(read_ports=1, write_ports=1)
    result = _run_vecadd(rng, config=cfg, unroll_factor=16)
    breakdown = result.occupancy.stall_breakdown()
    assert breakdown, "port-starved run must have stall cycles"
    assert abs(sum(breakdown.values()) - 1.0) < 1e-9


def test_energy_accumulates(rng):
    result = _run_vecadd(rng)
    assert result.power.fu_dynamic_pj > 0
    assert result.power.register_dynamic_pj > 0
    assert result.power.spm_read_pj > 0
    assert result.power.total_mw > 0


def test_reservation_window_limits_do_not_break(rng):
    cfg = DeviceConfig(reservation_window=8)
    _run_vecadd(rng, config=cfg, unroll_factor=4)


def test_small_queues_do_not_break(rng):
    cfg = DeviceConfig(read_queue_size=2, write_queue_size=1)
    _run_vecadd(rng, config=cfg, unroll_factor=4)


def test_engine_restart_rejected_while_running(rng):
    acc = StandaloneAccelerator(VECADD, "vecadd", spm_bytes=1 << 13)
    a = rng.uniform(-1, 1, 64)
    pa, pb, pc = acc.alloc_array(a), acc.alloc_array(a), acc.alloc(512)
    acc.unit.launch([pa, pb, pc])
    from repro.core.runtime import EngineError

    with pytest.raises(EngineError):
        acc.unit.engine.start([pa, pb, pc])
    acc.system.run()


def test_wrong_arity_rejected():
    acc = StandaloneAccelerator(VECADD, "vecadd", spm_bytes=1 << 13)
    from repro.core.runtime import EngineError

    with pytest.raises(EngineError):
        acc.unit.engine.start([1, 2])


def test_deprecated_error_alias_still_works():
    from repro.core.runtime import EngineError, RuntimeError_

    assert RuntimeError_ is EngineError
    assert issubclass(EngineError, RuntimeError)


def test_ideal_memory_not_slower_than_spm(rng):
    spm = _run_vecadd(rng, memory="spm").cycles
    ideal = _run_vecadd(rng, memory="ideal").cycles
    assert ideal <= spm
