"""Full-system layer: interrupt controller, host driver agent, SoC builders."""

from repro.system.interrupts import InterruptController
from repro.system.host import HostAgent, DriverProgram
from repro.system.soc import (
    StandaloneAccelerator,
    RunResult,
    run_standalone,
    build_soc,
    SoC,
)

__all__ = [
    "InterruptController",
    "HostAgent",
    "DriverProgram",
    "StandaloneAccelerator",
    "RunResult",
    "run_standalone",
    "build_soc",
    "SoC",
]
