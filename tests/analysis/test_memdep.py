"""Static memory-dependence analysis: aliasing, edges, footprints."""

from repro.analysis.memdep import (
    AliasKind,
    alloca_escapes,
    classify_accesses,
    collect_accesses,
    dependence_report,
    memdep_diagnostics,
    resolve_pointer,
    static_footprint,
    total_footprint_bytes,
)
from repro.frontend import compile_c
from repro.ir.builder import IRBuilder
from repro.ir.module import Function
from repro.ir.types import DOUBLE, I32, I64, VOID, ArrayType, PointerType


def _kernel(src, func):
    return compile_c(src, func).get_function(func)


def test_resolve_constant_gep_chain():
    f = Function("f", I32, [])
    b = IRBuilder(f.add_block("entry"))
    buf = b.alloca(ArrayType(I32, 8), name="buf")
    p = b.gep(buf, [0, 3], name="p")
    base, offset = resolve_pointer(p)
    assert base is buf
    assert offset == 3 * 4


def test_resolve_dynamic_index_loses_offset():
    f = Function("f", VOID, [(PointerType(DOUBLE), "a"), (I64, "i")])
    b = IRBuilder(f.add_block("entry"))
    p = b.gep(f.args[0], [f.args[1]], name="p")
    base, offset = resolve_pointer(p)
    assert base is f.args[0]
    assert offset is None


def test_classification_matrix():
    # Optimize so accesses resolve straight to the arguments.
    from repro.build import build_module

    module = build_module(
        """
        void k(double a[8], double b[8]) {
          a[0] = b[0];
          a[1] = b[1];
          a[0] = b[2];
        }
        """,
        "k",
    ).module
    func = module.get_function("k")
    stores = [a for a in collect_accesses(func) if a.is_store]
    loads = [a for a in collect_accesses(func) if not a.is_store]
    a0_stores = [s for s in stores if s.offset == 0]
    a1_stores = [s for s in stores if s.offset == 8]
    assert len(a0_stores) == 2 and len(a1_stores) == 1
    # Same base, same offset, same size: MUST alias (a[0] vs a[0]).
    assert classify_accesses(a0_stores[0], a0_stores[1]) is AliasKind.MUST
    # Same base, disjoint offsets: NO alias (a[0] vs a[1]).
    assert classify_accesses(a0_stores[0], a1_stores[0]) is AliasKind.NO
    # Distinct restrict arguments: NO alias; without restrict: MAY.
    assert classify_accesses(a0_stores[0], loads[0]) is AliasKind.NO
    assert classify_accesses(
        a0_stores[0], loads[0], assume_restrict=False) is AliasKind.MAY


def test_dependence_report_waw_edge():
    from repro.build import build_module

    module = build_module(
        "void k(double a[8]) { a[0] = 1.0; a[0] = 2.0; }", "k").module
    dep = dependence_report(module.get_function("k"))
    assert dep.edge_counts.get("WAW-must", 0) >= 1
    assert any(e.kind == "WAW" and e.alias is AliasKind.MUST
               for e in dep.edges)


def test_unrolled_kernel_reports_false_serialization():
    from repro.build import build_module

    src = """
    void k(double a[16], double b[16]) {
      for (int i = 0; i < 16; i++) { b[i] = a[i] * 2.0; }
    }
    """
    module = build_module(src, "k", unroll_factor=16).module
    dep = dependence_report(module.get_function("k"))
    # Full unrolling leaves 16 independent loads on %a (and stores on
    # %b) sharing one port: the classic false serialization.
    assert dep.false_serialization
    report = memdep_diagnostics(module.get_function("k"))
    assert any(d.code == "DEP202" for d in report)
    assert "dependence" in report.meta


def test_rolled_loop_no_false_serialization():
    from repro.build import build_module

    src = """
    void k(double a[16], double b[16]) {
      for (int i = 0; i < 16; i++) { b[i] = a[i] * 2.0; }
    }
    """
    module = build_module(src, "k", unroll_factor=1).module
    dep = dependence_report(module.get_function("k"))
    assert not dep.false_serialization


def test_alloca_escape_analysis():
    f = Function("f", VOID, [(PointerType(PointerType(I32)), "out")])
    b = IRBuilder(f.add_block("entry"))
    private = b.alloca(ArrayType(I32, 4), name="private")
    leaked = b.alloca(ArrayType(I32, 4), name="leaked")
    p = b.gep(leaked, [0, 0], name="p")
    b.store(p, f.args[0])  # address escapes through the out-param
    b.store(b.const(I32, 1), b.gep(private, [0, 0], name="q"))
    b.ret()
    assert not alloca_escapes(private)
    assert alloca_escapes(leaked)


def test_static_footprint_and_total():
    from repro.build import build_module

    module = build_module(
        """
        void k(double a[8], double b[4]) {
          for (int i = 0; i < 4; i++) { b[i] = a[i + 4]; }
        }
        """,
        "k",
        unroll_factor=4,
    ).module
    fp = static_footprint(module, "k")
    assert fp["%a"]["kind"] == "arg"
    # a[7] is the furthest access: 8 doubles = 64 bytes.
    assert fp["%a"]["bytes"] == 64
    assert fp["%b"]["bytes"] == 32
    assert total_footprint_bytes(module, "k") == 96


def test_memdep_note_always_present():
    func = _kernel("void k(int a[4]) { a[0] = 1; }", "k")
    report = memdep_diagnostics(func)
    assert any(d.code == "DEP201" for d in report)
    assert not report.has_errors
