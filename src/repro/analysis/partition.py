"""DEP204: sweep parameters outside the datapath/memory partition.

The incremental re-simulation machinery (`repro.engine.retime`) groups
sweep points by their datapath key and re-times everything within a
group.  A grid parameter that is classified in neither
`repro.exec.params.DATAPATH_PARAMS` nor `MEMORY_PARAMS` lands on the
datapath side *by default* — sound (every distinct value gets its own
full simulation), but silently: a sweep the user expected to be mostly
re-timed degrades to full re-simulation with no visible cause.  DEP204
makes that degradation loud: it names every parameter that (a) varies
across the sweep's points and (b) has no declared side — including
unknown `DeviceConfig` fields, reported as ``config.<field>``.
"""

from __future__ import annotations

import json

from repro.analysis.diagnostics import AnalysisReport, Location, Severity
from repro.exec.params import (
    CONFIG_DATAPATH_FIELDS,
    CONFIG_MEMORY_FIELDS,
    classify_param,
)


def _stamp(value) -> str:
    """A comparable fingerprint of one parameter value (dataclasses via
    their dict form; unserializable values via repr — only *distinctness*
    matters here, not stability across processes)."""
    import dataclasses

    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        value = dataclasses.asdict(value)
    try:
        return json.dumps(value, sort_keys=True, default=repr)
    except TypeError:
        return repr(value)


def _varying(points: list[dict]) -> list[str]:
    """Names of keys whose values differ across ``points`` (a key absent
    from some points counts as varying when present elsewhere with a
    non-default meaning — absence is stamped distinctly)."""
    names: list[str] = []
    seen: set[str] = set()
    for point in points:
        for name in point:
            if name not in seen:
                seen.add(name)
                names.append(name)
    missing = object()
    varying = []
    for name in names:
        stamps = {_stamp(point.get(name, missing)) if name in point
                  else "<absent>" for point in points}
        if len(stamps) > 1:
            varying.append(name)
    return varying


def check_sweep_partition(point_kwargs: list[dict],
                          subject: str = "sweep") -> AnalysisReport:
    """DEP204 over one sweep's accelerator-kwargs points.

    ``point_kwargs`` is the ``configure(params)`` output for every grid
    point.  Returns an `AnalysisReport` with one WARNING per varying
    unclassified parameter; ``meta["partition"]`` summarizes how every
    varying parameter was classified.
    """
    analysis = AnalysisReport(subject=subject)
    classified: dict[str, str] = {}
    with analysis.timed("partition"):
        for name in _varying(point_kwargs):
            if name == "config":
                configs = []
                for point in point_kwargs:
                    value = point.get("config")
                    if value is None:
                        configs.append({})
                    elif isinstance(value, dict):
                        configs.append(value)
                    else:
                        configs.append(value.to_dict())
                for field_name in _varying(configs):
                    if field_name in CONFIG_MEMORY_FIELDS:
                        classified[f"config.{field_name}"] = "memory"
                    elif field_name in CONFIG_DATAPATH_FIELDS:
                        classified[f"config.{field_name}"] = "datapath"
                    else:
                        classified[f"config.{field_name}"] = "unclassified"
                        _warn(analysis, f"config.{field_name}")
                continue
            side = classify_param(name)
            if side is None:
                classified[name] = "unclassified"
                _warn(analysis, name)
            else:
                classified[name] = side
    analysis.meta["partition"] = classified
    return analysis


def _warn(analysis: AnalysisReport, name: str) -> None:
    analysis.add(
        "DEP204",
        Severity.WARNING,
        Location(ref=name),
        f"sweep varies '{name}', which is in neither DATAPATH_PARAMS "
        f"nor MEMORY_PARAMS; every distinct value forces a full "
        f"re-simulation (no trace reuse)",
        hint="declare the parameter in repro.exec.params — memory-side "
             "if it can only change timing, datapath-side if it can "
             "change values, branches, or addresses",
    )


__all__ = ["check_sweep_partition"]
