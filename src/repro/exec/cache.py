"""Content-addressed cache of simulation runs.

A run is fully determined by its inputs: the kernel source, the entry
function, the device configuration, the compile-time unroll factor, the
dataset seed, and the memory-system keyword arguments.  `run_cache_key`
hashes a canonical JSON encoding of exactly that tuple, so two sweep
points that describe the same configuration map to the same key no
matter which process (or which run of the program) produced them.

`RunCache` stores `RunResult` payloads by key — always in memory,
optionally mirrored to a directory of ``<key>.json`` files so repeated
sweeps across program invocations are near-free.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Optional, Union

from repro.system.soc import RunResult


def _canonical(value):
    """Reduce ``value`` to JSON-encodable, deterministically-ordered data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {"__type__": type(value).__name__,
                **_canonical(dataclasses.asdict(value))}
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"cannot build a run-cache key from {type(value).__name__!r}; "
        "pass JSON-like values (or dataclasses of them)"
    )


def _digest(payload: dict) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def split_cache_key(source, func_name: str, *, seed: int = 7, pipeline=None,
                    **acc_kwargs) -> tuple[str, str]:
    """The two-level content address ``(datapath_key, memory_key)``.

    The datapath key covers everything that shapes the dynamic schedule
    *content* — kernel source (an IR `Module` is hashed via its printed
    text), entry function, dataset seed, pass pipeline, and the
    datapath-side kwargs per `repro.exec.params` (unclassified kwargs
    conservatively included).  The memory key covers only the
    memory-side kwargs.  Two sweep points with equal datapath keys are
    schedule-equivalent: one captured `ScheduleTrace` re-times both
    (see `repro.engine.retime`), which is why traces are
    content-addressed by the datapath key alone.

    A non-default ``pipeline`` (pass spec, see `repro.passes.pipeline`)
    changes which optimizations shaped the datapath, so it joins the
    datapath key; the default (None — the standard
    ``unroll_factor``-driven preset) is omitted so explicit-default and
    implicit-default callers agree.
    """
    from repro.exec.params import split_acc_kwargs
    from repro.ir.module import Module

    if isinstance(source, Module):
        from repro.ir.printer import print_module

        source = print_module(source)
    datapath_kwargs, memory_kwargs, _unclassified = split_acc_kwargs(acc_kwargs)
    datapath_payload = {
        "source": source,
        "func_name": func_name,
        "seed": seed,
        "kwargs": _canonical(datapath_kwargs),
    }
    if pipeline is not None:
        from repro.passes.pipeline import PipelineSpec

        datapath_payload["pipeline"] = PipelineSpec.parse(pipeline).canonical()
    memory_payload = {"kwargs": _canonical(memory_kwargs)}
    return _digest(datapath_payload), _digest(memory_payload)


def run_cache_key(source, func_name: str, *, seed: int = 7, pipeline=None,
                  **acc_kwargs) -> str:
    """Content hash of one simulation configuration.

    ``source`` is the kernel (mini-C text, or an IR `Module`, which is
    hashed via its printed text); ``acc_kwargs`` are the
    `StandaloneAccelerator` keyword arguments (config, memory,
    unroll_factor, SPM/cache/DRAM geometry, ...).  The flat key is the
    hash of the two-level ``(datapath_key, memory_key)`` pair from
    `split_cache_key`, so run-cache identity and trace-cache identity
    derive from one parameter partition (`repro.exec.params`).
    """
    datapath_key, memory_key = split_cache_key(
        source, func_name, seed=seed, pipeline=pipeline, **acc_kwargs)
    return _digest({"datapath": datapath_key, "memory": memory_key})


class RunCache:
    """Key -> `RunResult` store with hit/miss accounting.

    Results are held as their `to_dict` payloads and rehydrated on every
    `get`, so callers can never mutate a cached entry in place.  With a
    ``path`` the payloads are also written as ``<key>.json`` files and
    found again by later processes.

    The on-disk mirror is crash-safe: `put` writes to a temp file and
    atomically renames it into place (a killed process never leaves a
    half-written entry under a live key), and `_load` treats anything
    unreadable as a miss — the corrupt file is renamed to
    ``<key>.json.corrupt`` for post-mortem instead of poisoning reruns.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else None
        if self.path is not None:
            self.path.mkdir(parents=True, exist_ok=True)
        self._memory: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    # ------------------------------------------------------------------
    def _load(self, key: str) -> Optional[dict]:
        payload = self._memory.get(key)
        if payload is None and self.path is not None:
            entry = self.path / f"{key}.json"
            try:
                text = entry.read_text()
            except OSError:
                return None  # absent (or unreadable): plain miss
            try:
                payload = json.loads(text)
            except ValueError:
                self._quarantine(entry)
                return None
            if not isinstance(payload, dict):
                self._quarantine(entry)
                return None
            self._memory[key] = payload
        return payload

    def _quarantine(self, entry: Path) -> None:
        """Move a corrupt entry aside (``*.json.corrupt`` escapes the
        ``*.json`` glob, so it is invisible to lookups and __len__)."""
        self.quarantined += 1
        with contextlib.suppress(OSError):
            os.replace(entry, entry.parent / (entry.name + ".corrupt"))

    def get(self, key: str) -> Optional[RunResult]:
        payload = self._load(key)
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return RunResult.from_dict(payload)

    def put(self, key: str, result: RunResult) -> None:
        payload = result.to_dict()
        self._memory[key] = payload
        if self.path is not None:
            # Atomic publish: readers either see the old entry, no
            # entry, or the complete new one — never a partial write.
            # The temp name is unique per writer *thread*, not just per
            # process: the job server's worker threads share one cache,
            # and a pid-only suffix would let two threads interleave
            # writes into the same temp file.
            tmp = (self.path
                   / f"{key}.json.tmp{os.getpid()}.{threading.get_ident()}")
            tmp.write_text(json.dumps(payload, sort_keys=True))
            os.replace(tmp, self.path / f"{key}.json")

    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return self._load(key) is not None

    def __len__(self) -> int:
        if self.path is not None:
            on_disk = {entry.stem for entry in self.path.glob("*.json")}
            return len(on_disk | set(self._memory))
        return len(self._memory)

    def clear(self) -> None:
        self._memory.clear()
        if self.path is not None:
            for pattern in ("*.json", "*.json.corrupt", "*.json.tmp*"):
                for entry in self.path.glob(pattern):
                    entry.unlink()
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        where = f" at {self.path}" if self.path else ""
        return f"<RunCache {len(self)} entries{where} hits={self.hits} misses={self.misses}>"
