"""Global event queue for the discrete-event simulation kernel.

The design mirrors gem5's event queue: events carry an absolute tick and
a priority; the queue pops events in (tick, priority, sequence) order.
Ticks are integers (picoseconds by convention, so a 1 GHz clock has a
1000-tick period).  Simulation proceeds by draining the queue until it
is empty, a tick limit is reached, or an exit event fires.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional


class SimulationError(RuntimeError):
    """Raised for fatal conditions inside the simulation kernel."""


class SimulationHang(SimulationError):
    """A watchdog tripped: the simulation stopped making forward progress.

    ``reason`` is ``'deadlock'`` (the event queue drained while an engine
    still reports in-flight work), ``'livelock'`` (events keep firing but
    no instruction has committed for the configured budget), or
    ``'wallclock'`` (the run exceeded its wall-clock allowance).
    ``inflight`` carries the in-flight instruction dump captured at the
    moment the watchdog fired, so a hang is diagnosable post-mortem.
    """

    def __init__(self, reason: str, tick: int,
                 inflight: Optional[list] = None, details: str = "") -> None:
        self.reason = reason
        self.tick = tick
        self.inflight = list(inflight or [])
        self.details = details
        lines = [f"simulation hang ({reason}) at tick {tick}"]
        if details:
            lines.append(details)
        if self.inflight:
            lines.append("in-flight work:")
            lines.extend(f"  {entry}" for entry in self.inflight)
        super().__init__("\n".join(lines))


class Event:
    """A schedulable callback.

    Events are one-shot: firing (or cancelling) leaves them unscheduled,
    after which they may be scheduled again.  ``priority`` breaks ties at
    the same tick; lower runs first (gem5 convention).
    """

    # Priority bands, mirroring gem5's defaults.
    MINIMUM_PRI = -100
    DEFAULT_PRI = 0
    CPU_TICK_PRI = 50
    STAT_PRI = 90
    MAXIMUM_PRI = 100

    __slots__ = ("callback", "priority", "name", "_when", "_scheduled", "_gen")

    def __init__(
        self,
        callback: Callable[[], None],
        priority: int = DEFAULT_PRI,
        name: str = "",
    ) -> None:
        self.callback = callback
        self.priority = priority
        self.name = name or getattr(callback, "__qualname__", "event")
        self._when: int = -1
        self._scheduled = False
        self._gen = 0  # bumped on every (de)schedule; stale heap entries skip

    @property
    def when(self) -> int:
        """Tick this event is scheduled for (-1 if unscheduled)."""
        return self._when

    def scheduled(self) -> bool:
        return self._scheduled

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"@{self._when}" if self._scheduled else "idle"
        return f"<Event {self.name} {state}>"


class EventQueue:
    """Priority queue of :class:`Event` ordered by (tick, priority, seq)."""

    def __init__(self, name: str = "main") -> None:
        self.name = name
        self._heap: list[tuple[int, int, int, Event, int]] = []
        self._seq = 0
        self._cur_tick = 0
        self._exit_requested = False
        self._exit_message = ""
        self._events_fired = 0
        # Optional observer called as hook(event, tick) just before each
        # event fires (wired by System.attach_trace_hub).  One attribute
        # compare per event when unset.
        self.trace_hook: Optional[Callable[[Event, int], None]] = None

    # ------------------------------------------------------------------
    # Scheduling API
    # ------------------------------------------------------------------
    @property
    def cur_tick(self) -> int:
        return self._cur_tick

    @property
    def events_fired(self) -> int:
        return self._events_fired

    def schedule(self, event: Event, when: int) -> Event:
        """Schedule ``event`` at absolute tick ``when``."""
        if when < self._cur_tick:
            raise SimulationError(
                f"cannot schedule event '{event.name}' in the past "
                f"(when={when}, now={self._cur_tick})"
            )
        if event._scheduled:
            raise SimulationError(f"event '{event.name}' is already scheduled")
        event._when = when
        event._scheduled = True
        event._gen += 1
        self._seq += 1
        heapq.heappush(self._heap, (when, event.priority, self._seq, event, event._gen))
        return event

    def schedule_callback(
        self,
        callback: Callable[[], None],
        when: int,
        priority: int = Event.DEFAULT_PRI,
        name: str = "",
    ) -> Event:
        """Convenience: wrap ``callback`` in an Event and schedule it."""
        event = Event(callback, priority=priority, name=name)
        return self.schedule(event, when)

    def deschedule(self, event: Event) -> None:
        """Cancel a scheduled event (lazy removal)."""
        if not event._scheduled:
            raise SimulationError(f"event '{event.name}' is not scheduled")
        event._gen += 1  # invalidate the heap entry lazily
        event._scheduled = False

    def reschedule(self, event: Event, when: int) -> None:
        if event._scheduled:
            self.deschedule(event)
        self.schedule(event, when)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def empty(self) -> bool:
        self._drop_squashed()
        return not self._heap

    def _drop_squashed(self) -> None:
        while self._heap:
            __, __, __, event, gen = self._heap[0]
            if event._gen == gen and event._scheduled:
                return
            heapq.heappop(self._heap)

    def next_tick(self) -> Optional[int]:
        """Tick of the next live event, or None if the queue is empty."""
        self._drop_squashed()
        return self._heap[0][0] if self._heap else None

    def exit_simulation(self, message: str = "") -> None:
        """Request that :meth:`run` return after the current event."""
        self._exit_requested = True
        self._exit_message = message

    def run(self, max_tick: Optional[int] = None, max_events: Optional[int] = None,
            watchdog=None) -> str:
        """Drain the queue.

        Returns a human-readable exit cause: ``"empty"``, ``"max_tick"``,
        ``"max_events"`` or the message passed to :meth:`exit_simulation`.

        ``watchdog`` is any object implementing ``begin(queue)``,
        ``check(queue)`` and ``on_drain(queue)`` (duck-typed so the kernel
        needs no imports — see `repro.faults.watchdog.SimWatchdog`).
        ``check`` runs every ``watchdog.interval`` fired events and may
        raise :class:`SimulationHang`; ``on_drain`` runs when the queue
        empties and may do the same for drain-while-running deadlocks.
        """
        self._exit_requested = False
        fired = 0
        check_every = 0
        if watchdog is not None:
            watchdog.begin(self)
            check_every = max(1, int(getattr(watchdog, "interval", 256)))
        while True:
            self._drop_squashed()
            if not self._heap:
                if watchdog is not None:
                    watchdog.on_drain(self)
                return "empty"
            when = self._heap[0][0]
            if max_tick is not None and when > max_tick:
                self._cur_tick = max_tick
                return "max_tick"
            __, __, __, event, __ = heapq.heappop(self._heap)
            self._cur_tick = when
            event._scheduled = False
            event._when = -1
            if self.trace_hook is not None:
                self.trace_hook(event, when)
            event.callback()
            self._events_fired += 1
            fired += 1
            if watchdog is not None and fired % check_every == 0:
                watchdog.check(self)
            if self._exit_requested:
                return self._exit_message or "exit"
            if max_events is not None and fired >= max_events:
                return "max_events"

    def reset(self) -> None:
        """Clear all pending events and rewind time to tick 0."""
        self._heap.clear()
        self._cur_tick = 0
        self._seq = 0
        self._exit_requested = False
        self._exit_message = ""
        self._events_fired = 0
