"""Default 40 nm hardware profile.

Numbers are modelled after the open 40 nm characterization that Aladdin
and gem5-SALAM validated against Synopsys Design Compiler: double-
precision FP add/mul are 3-stage pipelined units (the paper notes SALAM
"approximates floating point operations using 3-stage FP adders and
multipliers"), integer logic is single cycle, division and special
functions are long-latency iterative units.  Users tune latencies per
device via the device config, exactly as in gem5-SALAM.
"""

from __future__ import annotations

from repro.hw.profile import (
    BITWISE,
    CONVERTER,
    FP_ADD,
    FP_CMP,
    FP_DIV,
    FP_MUL,
    FP_SPECIAL,
    FunctionalUnitSpec,
    HardwareProfile,
    INT_ADD,
    INT_DIV,
    INT_MUL,
    MUX,
    RegisterSpec,
    SHIFTER,
)

_DEFAULT_UNITS = {
    FP_ADD: FunctionalUnitSpec(
        FP_ADD, latency=3, area_um2=4184.0, leakage_mw=0.01372,
        dynamic_energy_pj=7.216,
    ),
    FP_MUL: FunctionalUnitSpec(
        FP_MUL, latency=3, area_um2=6115.0, leakage_mw=0.02016,
        dynamic_energy_pj=14.42,
    ),
    FP_DIV: FunctionalUnitSpec(
        FP_DIV, latency=16, area_um2=12208.0, leakage_mw=0.03940,
        dynamic_energy_pj=31.85, pipelined=False,
    ),
    FP_CMP: FunctionalUnitSpec(
        FP_CMP, latency=1, area_um2=1262.0, leakage_mw=0.00412,
        dynamic_energy_pj=1.82,
    ),
    FP_SPECIAL: FunctionalUnitSpec(
        FP_SPECIAL, latency=24, area_um2=24416.0, leakage_mw=0.0788,
        dynamic_energy_pj=63.7, pipelined=False,
    ),
    INT_ADD: FunctionalUnitSpec(
        INT_ADD, latency=1, area_um2=282.0, leakage_mw=0.00153,
        dynamic_energy_pj=0.5036,
    ),
    INT_MUL: FunctionalUnitSpec(
        INT_MUL, latency=2, area_um2=2418.0, leakage_mw=0.00797,
        dynamic_energy_pj=4.538,
    ),
    INT_DIV: FunctionalUnitSpec(
        INT_DIV, latency=12, area_um2=4010.0, leakage_mw=0.01310,
        dynamic_energy_pj=10.42, pipelined=False,
    ),
    BITWISE: FunctionalUnitSpec(
        BITWISE, latency=1, area_um2=113.0, leakage_mw=0.00061,
        dynamic_energy_pj=0.2024,
    ),
    SHIFTER: FunctionalUnitSpec(
        SHIFTER, latency=1, area_um2=206.0, leakage_mw=0.00108,
        dynamic_energy_pj=0.3514,
    ),
    MUX: FunctionalUnitSpec(
        MUX, latency=0, area_um2=94.0, leakage_mw=0.00049,
        dynamic_energy_pj=0.1612,
    ),
    CONVERTER: FunctionalUnitSpec(
        CONVERTER, latency=2, area_um2=1730.0, leakage_mw=0.00568,
        dynamic_energy_pj=2.861,
    ),
}


def default_profile(cycle_time_ns: float = 10.0) -> HardwareProfile:
    """The validated default profile shipped with the simulator."""
    return HardwareProfile(
        name="salam-40nm-default",
        units=dict(_DEFAULT_UNITS),
        register=RegisterSpec(),
        cycle_time_ns=cycle_time_ns,
    )
