"""DRAM model.

A single-channel DRAM with a fixed access latency plus a bandwidth
constraint: requests are serviced in order, each occupying the data bus
for ``size / bytes_per_cycle`` cycles.  A light-weight open-row model
discounts the latency of accesses that hit the most recently opened
row, which is enough to make sequential DMA bursts measurably faster
than scattered accesses (the behaviour Table III's bulk-transfer times
depend on).
"""

from __future__ import annotations

from typing import Optional

from repro.ir.memory import MemoryImage
from repro.sim.clock import ClockDomain
from repro.sim.packet import MemCmd, Packet
from repro.sim.ports import SlavePort
from repro.sim.simobject import AddrRange, SimObject, System


class DRAM(SimObject):
    def __init__(
        self,
        name: str,
        system: System,
        base: int,
        size: int,
        latency_cycles: int = 60,
        row_hit_latency_cycles: int = 18,
        bytes_per_cycle: int = 8,
        row_size: int = 1024,
        clock: Optional[ClockDomain] = None,
    ) -> None:
        super().__init__(name, system, clock)
        self.range = AddrRange(base, size)
        self.image = MemoryImage(size, base=base, name=f"{name}.image")
        self.latency_cycles = latency_cycles
        self.row_hit_latency_cycles = row_hit_latency_cycles
        self.bytes_per_cycle = bytes_per_cycle
        self.row_size = row_size
        self.port = SlavePort(
            f"{name}.port",
            recv_timing_req=self._recv_timing_req,
            recv_functional=self._recv_functional,
            owner=self,
        )
        self._bus_free_tick = 0
        self._open_row: Optional[int] = None
        self.stat_reads = self.stats.scalar("reads", "read requests served")
        self.stat_writes = self.stats.scalar("writes", "write requests served")
        self.stat_bytes = self.stats.scalar("bytes", "bytes transferred")
        self.stat_row_hits = self.stats.scalar("row_hits", "open-row hits")

    # -- functional ---------------------------------------------------------
    def _recv_functional(self, pkt: Packet) -> Packet:
        if pkt.cmd is MemCmd.READ:
            return pkt.make_response(data=self.image.read(pkt.addr, pkt.size))
        self.image.write(pkt.addr, pkt.data)
        return pkt.make_response()

    # -- timing --------------------------------------------------------------
    def _recv_timing_req(self, pkt: Packet) -> bool:
        pkt.req_tick = self.cur_tick
        if self._finj is not None:
            self._finj.on_access(self)
        if self._san is not None and pkt.agent is not None:
            self._san.record(pkt.agent, pkt.addr, pkt.size, pkt.is_write,
                             self.cur_tick)
        row = pkt.addr // self.row_size
        if row == self._open_row:
            latency = self.row_hit_latency_cycles
            self.stat_row_hits.inc()
        else:
            latency = self.latency_cycles
            self._open_row = row
        transfer_cycles = max(1, -(-pkt.size // self.bytes_per_cycle))
        start = max(self.clock_edge(latency), self._bus_free_tick)
        done = start + self.clock.cycles_to_ticks(transfer_cycles)
        self._bus_free_tick = done
        self.eventq.schedule_callback(
            lambda p=pkt: self._complete(p), done, name=f"{self.name}.resp"
        )
        return True

    def _complete(self, pkt: Packet) -> None:
        self.stat_bytes.inc(pkt.size)
        pkt.hops.append(self.name)
        if pkt.cmd is MemCmd.READ:
            self.stat_reads.inc()
            resp = pkt.make_response(data=self.image.read(pkt.addr, pkt.size))
        else:
            self.stat_writes.inc()
            self.image.write(pkt.addr, pkt.data)
            resp = pkt.make_response()
        resp.resp_tick = self.cur_tick
        self.port.send_timing_resp(resp)
