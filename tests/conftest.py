"""Shared fixtures."""

import sys
from pathlib import Path

import numpy as np
import pytest

# Allow running the tests without installation.
SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.hw.default_profile import default_profile  # noqa: E402
from repro.sim.simobject import System  # noqa: E402


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def profile():
    return default_profile()


@pytest.fixture
def system():
    return System("testsys", clock_freq_hz=1e9)
