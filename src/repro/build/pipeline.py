"""The staged build pipeline: ``parse → lower → optimize → elaborate``.

This is the front half of the paper's Fig. 2 flow, reified: each stage
is an explicit method that consumes and produces `Artifact`s, with
per-stage wall-clock timing recorded on the pipeline (and, when a
`TraceHub` is attached, emitted on the ``build`` trace channel).  The
stages:

* ``parse``     — mini-C source -> AST (`TranslationUnit`)
* ``lower``     — AST -> raw SSA `Module` (naive alloca codegen)
* ``optimize``  — raw `Module` -> optimized `Module`, driven by a
  declarative `PipelineSpec` ("mem2reg,unroll:4,constfold,dce")
* ``elaborate`` — optimized `Module` -> `ElaboratedDesign`
  (`LLVMInterface`: CDFG, FU mapping, static power/area)

`build_module` is the shared compile entry point every consumer routes
through (CLI, `StandaloneAccelerator`, `SimContext`, `Workload.build`,
`ParallelSweep`); with an `ArtifactStore` attached, a kernel that was
already compiled with the same (source, name, pipeline) is a cache hit
and skips the frontend entirely.  Module-level `STAGE_COUNTERS` count
stage invocations process-wide — the compile-once regression tests
assert on them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from typing import Optional, Union

from repro.build.artifact import (
    Artifact,
    ElaboratedDesign,
    artifact_key,
    module_fingerprint,
)
from repro.build.store import ArtifactStore
from repro.core.config import DeviceConfig
from repro.hw.profile import HardwareProfile
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.passes.pipeline import PipelineSpec


@dataclass
class StageCounters:
    """Process-wide tally of stage invocations (compile-once guards)."""

    parse: int = 0
    lower: int = 0
    optimize: int = 0
    elaborate: int = 0
    graph: int = 0
    trace: int = 0

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def compiles(self) -> int:
        """Frontend invocations (parse/lower run in lockstep)."""
        return self.parse


#: Every `BuildPipeline` in this process bumps these.
STAGE_COUNTERS = StageCounters()


class BuildPipeline:
    """One configured pipeline: a pass spec plus optional store/tracing.

    Stage methods can be called individually (each returns an
    `Artifact`), or via :meth:`build_module` /:meth:`build_design`,
    which chain them and consult the `ArtifactStore` first.
    """

    def __init__(
        self,
        pipeline: Union[str, PipelineSpec, None] = None,
        store: Optional[ArtifactStore] = None,
        trace_hub=None,
    ) -> None:
        self.spec = PipelineSpec.parse(pipeline)
        self.store = store
        self.trace_hub = trace_hub
        #: Stage -> seconds for the most recent build_module() call.
        self.timings: dict[str, float] = {}

    # -- stage plumbing ----------------------------------------------------
    def _record(self, stage: str, seconds: float, **detail) -> None:
        setattr(STAGE_COUNTERS, stage, getattr(STAGE_COUNTERS, stage) + 1)
        self.timings[stage] = self.timings.get(stage, 0.0) + seconds
        hub = self.trace_hub
        if hub is not None and hub.enabled("build"):
            hub.emit("build", "build.pipeline", stage, tick=0,
                     args=dict(detail, seconds=round(seconds, 6)))

    def _emit_pass_timings(self, manager) -> None:
        """Per-pass timings -> self.timings and the build trace channel."""
        hub = self.trace_hub
        emit = hub is not None and hub.enabled("build")
        for func_name, pass_name, seconds in manager.pass_timings:
            key = f"pass:{pass_name}"
            self.timings[key] = self.timings.get(key, 0.0) + seconds
            if emit:
                hub.emit("build", "build.pipeline", key, tick=0,
                         args={"func": func_name,
                               "seconds": round(seconds, 6)})

    # -- stages ------------------------------------------------------------
    def parse(self, source: str) -> Artifact:
        """Stage 1: mini-C source -> AST."""
        from repro.frontend.parser import parse_c

        start = time.perf_counter()
        unit = parse_c(source)
        self._record("parse", time.perf_counter() - start)
        return Artifact("ast", unit)

    def lower(self, ast: Artifact, name: str = "module") -> Artifact:
        """Stage 2: AST -> raw (unoptimized) SSA module."""
        from repro.frontend.codegen import lower_to_ir

        start = time.perf_counter()
        module = lower_to_ir(ast.payload, name)
        self._record("lower", time.perf_counter() - start, name=name)
        return Artifact("ir", module, meta=dict(ast.meta))

    def optimize(self, ir: Artifact) -> Artifact:
        """Stage 3: run the pass pipeline (in place), verify, fingerprint.

        With ``spec.verify_each`` the pass manager is a
        `VerifiedPassManager`: every pass is followed by a structural
        verify plus a golden-interpreter differential check, and the
        first divergence raises `PassDivergenceError` naming the pass.
        Per-pass wall-clock timings are mirrored onto the ``build``
        trace channel as ``pass:<name>`` events either way.
        """
        module = ir.payload if isinstance(ir, Artifact) else ir
        start = time.perf_counter()
        if self.spec:
            manager = self.spec.to_pass_manager(module=module)
            manager.run(module)
            verify_module(module)
            self._emit_pass_timings(manager)
        self._record("optimize", time.perf_counter() - start,
                     pipeline=self.spec.canonical())
        meta = dict(ir.meta if isinstance(ir, Artifact) else {})
        meta.update(pipeline=self.spec.canonical(),
                    fingerprint=module_fingerprint(module))
        return Artifact("opt-ir", module, meta=meta)

    def elaborate(
        self,
        opt_ir: Union[Artifact, Module],
        func_name: str,
        profile: Optional[HardwareProfile] = None,
        config: Optional[DeviceConfig] = None,
    ) -> Artifact:
        """Stage 4: optimized module -> statically elaborated design."""
        module = opt_ir.module if isinstance(opt_ir, Artifact) else opt_ir
        start = time.perf_counter()
        design = ElaboratedDesign.elaborate(module, func_name,
                                            profile=profile, config=config)
        self._record("elaborate", time.perf_counter() - start,
                     func_name=func_name)
        meta = dict(opt_ir.meta) if isinstance(opt_ir, Artifact) else {}
        meta["func_name"] = func_name
        return Artifact("design", design, meta=meta)

    def graph(self, design) -> Artifact:
        """Stage 5 (optional back half): elaborated design -> `SimGraph`.

        The lowering for the graph-compiled execution backend
        (`repro.engine`).  Store-aware: the key covers the module
        fingerprint, function, device config, hardware profile, and the
        graph format version, so a sweep re-running the same design
        point (`ParallelSweep`, run-cache misses with differing
        arguments) lowers once and reuses the flat arrays thereafter.
        """
        from repro.engine.graph import (
            GRAPH_FORMAT_VERSION,
            compile_graph,
            graph_key,
        )

        payload = design.payload if isinstance(design, Artifact) else design
        key = graph_key(payload)
        if self.store is not None:
            cached = self.store.get(key)
            if cached is not None:
                return cached
        start = time.perf_counter()
        sim_graph = compile_graph(payload)
        self._record("graph", time.perf_counter() - start,
                     func_name=payload.func_name)
        meta = dict(design.meta) if isinstance(design, Artifact) else {}
        meta["graph_version"] = GRAPH_FORMAT_VERSION
        artifact = Artifact("graph", sim_graph, key=key, meta=meta)
        if self.store is not None:
            self.store.put(key, artifact)
        return artifact

    def trace(self, datapath_key: str, trace=None) -> Optional[Artifact]:
        """Stage 6 (optional back half): the `ScheduleTrace` slot.

        The re-simulation sibling of :meth:`graph` — traces are build
        artifacts, content-addressed by the *datapath* half of the
        two-level run key (`repro.exec.cache.split_cache_key`), stored
        and shared exactly like compiled kernels and lowered graphs.

        Lookup mode (``trace=None``): return the stored ``trace``
        artifact for this datapath, or None.  Publish mode (``trace``
        a `ScheduleTrace`): wrap, count (a capture is a stage
        invocation — `STAGE_COUNTERS.trace`), store, return.
        Capturing costs nothing extra (it rides on a full graph run),
        so the recorded "stage time" is always ~0; the counter is what
        the compile-once guards and ``/v1/stats`` consume.
        """
        from repro.engine.retime import trace_cache_key

        key = trace_cache_key(datapath_key)
        if trace is None:
            if self.store is None:
                return None
            return self.store.get(key)
        start = time.perf_counter()
        trace.datapath_key = datapath_key
        self._record("trace", time.perf_counter() - start,
                     func_name=trace.func_name)
        artifact = Artifact("trace", trace, key=key,
                            meta={"func_name": trace.func_name,
                                  "n_dyn": trace.n_dyn,
                                  "blocks": len(trace.block_seq)})
        if self.store is not None:
            self.store.put(key, artifact)
        return artifact

    # -- chained entry points ----------------------------------------------
    def build_module(self, source: Union[str, Module, Artifact],
                     name: str = "module") -> Artifact:
        """parse+lower+optimize, store-aware: the shared compile path.

        A `Module` or ``opt-ir`` `Artifact` input is passed through
        untouched (already compiled elsewhere — e.g. shipped to a sweep
        worker by the parent process).
        """
        if isinstance(source, Artifact):
            return source if source.kind == "opt-ir" else self.optimize(source)
        if isinstance(source, Module):
            return Artifact("opt-ir", source,
                            meta={"prebuilt": True,
                                  "pipeline": self.spec.canonical()})
        key = artifact_key(source, name, self.spec)
        if self.store is not None:
            cached = self.store.get(key)
            if cached is not None:
                return cached
        self.timings.clear()
        artifact = self.optimize(self.lower(self.parse(source), name))
        artifact.key = key
        artifact.meta.update(name=name, timings=dict(self.timings),
                             cached=False)
        if self.store is not None:
            self.store.put(key, artifact)
        return artifact

    def build_design(
        self,
        source: Union[str, Module, Artifact],
        func_name: str,
        profile: Optional[HardwareProfile] = None,
        config: Optional[DeviceConfig] = None,
    ) -> ElaboratedDesign:
        """The full front half: compile (store-aware) then elaborate."""
        artifact = self.build_module(source, func_name)
        return self.elaborate(artifact, func_name,
                              profile=profile, config=config).payload


def resolve_spec(
    pipeline: Union[str, PipelineSpec, None] = None,
    *,
    optimize: bool = True,
    opt_level: int = 1,
    unroll_factor: int = 1,
    verify_each: bool = False,
) -> PipelineSpec:
    """Reduce the historical compile knobs to one declarative spec.

    An explicit ``pipeline`` wins; otherwise ``optimize``/``opt_level``/
    ``unroll_factor`` select the matching standard preset — so legacy
    call sites and ``--passes`` users land on the same cache keys.
    ``verify_each`` toggles the verified pipeline mode on the result
    (it does not participate in cache keys).
    """
    if pipeline is not None:
        spec = PipelineSpec.parse(pipeline)
    elif not optimize:
        spec = PipelineSpec()
    else:
        spec = PipelineSpec.standard(opt_level=opt_level,
                                     unroll_factor=unroll_factor)
    if verify_each and not spec.verify_each:
        spec = spec.with_verify_each()
    return spec


def build_module(
    source: Union[str, Module, Artifact],
    name: str = "module",
    *,
    pipeline: Union[str, PipelineSpec, None] = None,
    optimize: bool = True,
    opt_level: int = 1,
    unroll_factor: int = 1,
    verify_each: bool = False,
    store: Optional[ArtifactStore] = None,
    trace_hub=None,
) -> Artifact:
    """One-call compile through the staged pipeline (see `BuildPipeline`)."""
    spec = resolve_spec(pipeline, optimize=optimize, opt_level=opt_level,
                        unroll_factor=unroll_factor, verify_each=verify_each)
    return BuildPipeline(spec, store=store,
                         trace_hub=trace_hub).build_module(source, name)


def build_design(
    source: Union[str, Module, Artifact],
    func_name: str,
    *,
    pipeline: Union[str, PipelineSpec, None] = None,
    optimize: bool = True,
    opt_level: int = 1,
    unroll_factor: int = 1,
    verify_each: bool = False,
    profile: Optional[HardwareProfile] = None,
    config: Optional[DeviceConfig] = None,
    store: Optional[ArtifactStore] = None,
    trace_hub=None,
) -> ElaboratedDesign:
    """One-call compile + static elaboration."""
    spec = resolve_spec(pipeline, optimize=optimize, opt_level=opt_level,
                        unroll_factor=unroll_factor, verify_each=verify_each)
    return BuildPipeline(spec, store=store, trace_hub=trace_hub).build_design(
        source, func_name, profile=profile, config=config
    )
