"""Run cache: key content-addressing, hit/miss accounting, persistence,
and lossless RunResult serialization."""

import json

import pytest

from repro.core.config import DeviceConfig
from repro.exec import RunCache, SimContext, run_cache_key
from repro.frontend import compile_c
from repro.workloads import get_workload

SRC = "void f(double a[4]) { for (int i = 0; i < 4; i++) { a[i] = a[i] + 1.0; } }"


# -- keys --------------------------------------------------------------------
def test_key_is_deterministic():
    kwargs = dict(config=DeviceConfig(read_ports=4), unroll_factor=2, memory="spm")
    assert run_cache_key(SRC, "f", seed=7, **kwargs) == run_cache_key(
        SRC, "f", seed=7, **kwargs
    )


def test_key_depends_on_every_input():
    base = run_cache_key(SRC, "f", seed=7, unroll_factor=1, memory="spm")
    assert base != run_cache_key(SRC + " ", "f", seed=7, unroll_factor=1, memory="spm")
    assert base != run_cache_key(SRC, "g", seed=7, unroll_factor=1, memory="spm")
    assert base != run_cache_key(SRC, "f", seed=8, unroll_factor=1, memory="spm")
    assert base != run_cache_key(SRC, "f", seed=7, unroll_factor=2, memory="spm")
    assert base != run_cache_key(SRC, "f", seed=7, unroll_factor=1, memory="ideal")
    assert base != run_cache_key(
        SRC, "f", seed=7, unroll_factor=1, memory="spm",
        config=DeviceConfig(read_ports=8),
    )


def test_key_kwarg_order_is_irrelevant():
    assert run_cache_key(SRC, "f", memory="spm", spm_bytes=1 << 14) == run_cache_key(
        SRC, "f", spm_bytes=1 << 14, memory="spm"
    )


def test_key_accepts_module_source():
    module = compile_c(SRC, "f")
    key = run_cache_key(module, "f", seed=7)
    # Stable for the same module; distinct from the raw-source key
    # (printed IR is a different text than the mini-C input).
    assert key == run_cache_key(module, "f", seed=7)
    assert key != run_cache_key(SRC, "f", seed=7)


def test_key_rejects_unserializable_values():
    with pytest.raises(TypeError):
        run_cache_key(SRC, "f", callback=lambda: None)


# -- store -------------------------------------------------------------------
def _one_result():
    ctx = SimContext(get_workload("gemm_dse"), memory="spm",
                     spm_bytes=1 << 15, unroll_factor=2)
    return ctx.run()


def test_cache_miss_then_hit():
    cache = RunCache()
    result = _one_result()
    assert cache.get("k") is None
    assert cache.misses == 1
    cache.put("k", result)
    assert "k" in cache
    got = cache.get("k")
    assert cache.hits == 1
    assert got.cycles == result.cycles
    # Rehydrated on every get: mutating one copy never poisons the store.
    got.fu_counts["poison"] = 1
    assert "poison" not in cache.get("k").fu_counts


def test_cache_disk_persistence(tmp_path):
    result = _one_result()
    writer = RunCache(tmp_path / "runs")
    writer.put("deadbeef", result)
    assert (tmp_path / "runs" / "deadbeef.json").exists()
    # A separate cache instance (e.g. a later process) finds it.
    reader = RunCache(tmp_path / "runs")
    got = reader.get("deadbeef")
    assert got is not None
    assert json.dumps(got.to_dict(), sort_keys=True) == json.dumps(
        result.to_dict(), sort_keys=True
    )
    assert len(reader) == 1
    reader.clear()
    assert len(reader) == 0
    assert not (tmp_path / "runs" / "deadbeef.json").exists()


# -- corruption / crash safety ----------------------------------------------
def test_truncated_entry_is_a_miss_and_quarantined(tmp_path):
    result = _one_result()
    writer = RunCache(tmp_path / "runs")
    writer.put("deadbeef", result)
    entry = tmp_path / "runs" / "deadbeef.json"
    entry.write_text(entry.read_text()[:40])  # simulate a crash mid-write

    reader = RunCache(tmp_path / "runs")
    assert reader.get("deadbeef") is None
    assert reader.misses == 1
    assert reader.quarantined == 1
    # The corrupt file was moved aside for post-mortem, not deleted...
    assert not entry.exists()
    corrupt = tmp_path / "runs" / "deadbeef.json.corrupt"
    assert corrupt.exists()
    # ...and it is invisible to lookups and __len__.
    assert len(reader) == 0
    assert "deadbeef" not in reader


def test_non_dict_payload_is_quarantined(tmp_path):
    cache = RunCache(tmp_path / "runs")
    (tmp_path / "runs" / "feedf00d.json").write_text("[1, 2, 3]")
    assert cache.get("feedf00d") is None
    assert cache.quarantined == 1


def test_put_after_quarantine_recovers_the_key(tmp_path):
    result = _one_result()
    cache = RunCache(tmp_path / "runs")
    (tmp_path / "runs" / "deadbeef.json").write_text("{ nope")
    assert cache.get("deadbeef") is None
    cache.put("deadbeef", result)
    revived = RunCache(tmp_path / "runs")  # fresh instance: disk only
    assert revived.get("deadbeef").cycles == result.cycles


def test_put_is_atomic_and_leaves_no_temp_files(tmp_path):
    result = _one_result()
    cache = RunCache(tmp_path / "runs")
    cache.put("cafebabe", result)
    names = sorted(p.name for p in (tmp_path / "runs").iterdir())
    assert names == ["cafebabe.json"]
    # Overwrites are also atomic replacements, not truncate-then-write.
    cache.put("cafebabe", result)
    names = sorted(p.name for p in (tmp_path / "runs").iterdir())
    assert names == ["cafebabe.json"]


def test_clear_removes_quarantined_entries(tmp_path):
    result = _one_result()
    cache = RunCache(tmp_path / "runs")
    cache.put("deadbeef", result)
    (tmp_path / "runs" / "badc0de.json").write_text("{ nope")
    assert cache.get("badc0de") is None
    assert (tmp_path / "runs" / "badc0de.json.corrupt").exists()
    cache.clear()
    assert list((tmp_path / "runs").iterdir()) == []
    assert cache.quarantined == 0


# -- RunResult round trip ----------------------------------------------------
def test_runresult_json_round_trip_is_lossless():
    result = _one_result()
    payload = json.loads(json.dumps(result.to_dict()))
    from repro.system.soc import RunResult

    revived = RunResult.from_dict(payload)
    assert json.dumps(revived.to_dict(), sort_keys=True) == json.dumps(
        result.to_dict(), sort_keys=True
    )
    # Derived metrics survive, including the frozenset-keyed histogram.
    occ, rocc = result.occupancy, revived.occupancy
    assert rocc.stall_fraction() == occ.stall_fraction()
    assert rocc.issue_fraction() == occ.issue_fraction()
    assert rocc.entry_stall_fraction() == occ.entry_stall_fraction()
    assert rocc.stall_breakdown() == occ.stall_breakdown()
    assert rocc.issue_mix() == occ.issue_mix()
    assert rocc.stall_sources == occ.stall_sources
    assert revived.power.total_mw == result.power.total_mw
    assert revived.area.total_um2 == result.area.total_um2
