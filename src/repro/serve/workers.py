"""Job execution: spec -> simulation, off the event loop.

One function per job kind, all with the same shape
``(spec, state, publish) -> result dict``:

* ``compile`` — `build_module` through the shared `ArtifactStore`;
  returns the printed IR and the artifact key.
* ``run`` — one `SimContext` lifecycle through the shared `RunCache`;
  the result dict is byte-identical to a direct `SimContext.run`.
* ``sweep`` — a hardened `ParallelSweep` over a port grid; per-point
  progress (the new ``on_point`` callback) is published to the job's
  event log, which the SSE endpoint streams.  With a ``--state-dir``
  the sweep also journals completed points to a per-request checkpoint
  file, so a sweep interrupted by a crash resumes from its finished
  points instead of re-simulating them.
* ``analyze`` — IR lints + memory-dependence report as JSON.

`WorkerPool` owns N asyncio worker tasks that claim jobs from the
`JobQueue` and run these bodies in a `ThreadPoolExecutor`, so the
event loop keeps answering ``/healthz`` (and accepting submissions that
may dedup onto the running job) while simulations grind.  Anything a
body raises is folded into a per-job `FailureRecord` — a crashing job
marks itself ``failed``; the worker and the server keep serving.  The
pool also enforces the per-job retry policy (``retries`` /
``backoff_s`` in the spec: deterministic exponential backoff, capped)
and feeds outcomes to the server's `CircuitBreaker`.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Optional

from repro.exec.cache import RunCache, run_cache_key
from repro.exec.failures import FailureRecord
from repro.serve.jobs import JOB_KINDS, Job, JobQueue


class SpecError(ValueError):
    """A job spec the workers cannot execute (client error, HTTP 400)."""


#: Ceiling for the per-job exponential retry backoff.
RETRY_BACKOFF_CAP_S = 30.0


# ----------------------------------------------------------------------
# Spec handling
# ----------------------------------------------------------------------
def run_spec_kwargs(spec: dict) -> dict:
    """`StandaloneAccelerator` kwargs for a run/sweep spec.

    Mirrors ``repro run``'s defaults exactly, so a job submitted over
    HTTP and a CLI run of the same parameters share one run-cache key.
    """
    from repro.core.config import DeviceConfig

    ports = int(spec.get("ports", 2))
    memory = spec.get("memory", "spm")
    if memory not in ("spm", "cache", "ideal"):
        raise SpecError(f"bad memory '{memory}' (spm|cache|ideal)")
    config = DeviceConfig(
        clock_freq_hz=float(spec.get("clock_mhz", 100.0)) * 1e6,
        read_ports=ports,
        write_ports=max(1, ports // 2),
        fu_limits={str(k): int(v)
                   for k, v in (spec.get("fu_limits") or {}).items()},
    )
    kwargs = dict(config=config, memory=memory,
                  unroll_factor=int(spec.get("unroll", 1)))
    if memory in ("spm", "ideal"):
        kwargs.update(spm_bytes=int(spec.get("spm_bytes", 1 << 16)),
                      spm_read_ports=ports)
    return kwargs


def _spec_workload(spec: dict):
    from repro.workloads import get_workload

    name = spec.get("workload")
    if not name:
        raise SpecError("spec needs a 'workload' name")
    return get_workload(name)


def job_dedup_key(kind: str, spec: dict,
                  on_fallback: Optional[Callable[[str], None]] = None) -> str:
    """Content-addressed identity of one request.

    Run jobs reuse the run-cache key itself, so "identical request"
    and "identical cached result" are literally the same equivalence
    class; other kinds hash their canonical spec.  A spec too broken
    to key that way still gets a (unique-enough) hash — it will queue,
    fail in the worker, and report a proper `FailureRecord` — and the
    reason for the fallback is handed to ``on_fallback`` so the server
    can record it on the job's event log.  Only *expected* spec errors
    (unknown workload, malformed knob values) take the fallback;
    anything else is a server bug and propagates.
    """
    if kind == "run":
        try:
            workload = _spec_workload(spec)
            return "run:" + run_cache_key(
                workload.source, workload.func_name,
                seed=int(spec.get("seed", 7)), **run_spec_kwargs(spec))
        except (SpecError, KeyError, TypeError, ValueError) as exc:
            if on_fallback is not None:
                on_fallback(f"{type(exc).__name__}: {exc}")
    blob = json.dumps({"kind": kind, "spec": spec}, sort_keys=True,
                      separators=(",", ":"), default=str)
    return f"{kind}:" + hashlib.sha256(blob.encode("utf-8")).hexdigest()


def job_retry_policy(spec: dict) -> tuple[int, float]:
    """``(retries, backoff_s)`` from a job spec, defensively coerced."""
    try:
        retries = max(0, int(spec.get("retries", 0)))
    except (TypeError, ValueError):
        retries = 0
    try:
        backoff_s = max(0.0, float(spec.get("backoff_s", 0.5)))
    except (TypeError, ValueError):
        backoff_s = 0.5
    return retries, backoff_s


def retry_delay(backoff_s: float, attempt: int,
                cap_s: float = RETRY_BACKOFF_CAP_S) -> float:
    """Deterministic exponential backoff: ``backoff * 2^(attempt-1)``,
    capped — attempt 1 waits ``backoff_s``, 2 waits double, ..."""
    return min(backoff_s * (2 ** max(0, attempt - 1)), cap_s)


# ----------------------------------------------------------------------
# Job bodies
# ----------------------------------------------------------------------
def _job_compile(spec: dict, state: "ServerState", publish) -> dict:
    from repro.build import build_module
    from repro.ir.printer import print_module

    source = spec.get("source")
    if not source:
        workload = _spec_workload(spec)
        source, func = workload.source, workload.func_name
    else:
        func = spec.get("func", "module")
    publish("compiling")
    artifact = build_module(source, func,
                            pipeline=spec.get("passes"),
                            unroll_factor=int(spec.get("unroll", 1)),
                            store=state.artifact_store)
    return {
        "ir": print_module(artifact.module),
        "artifact_key": artifact.key,
        "store_hit": bool(artifact.meta.get("cached")),
    }


def _job_run(spec: dict, state: "ServerState", publish) -> dict:
    from repro.exec.context import SimContext

    workload = _spec_workload(spec)
    ctx = SimContext(workload, seed=int(spec.get("seed", 7)),
                     verify=bool(spec.get("verify", True)),
                     cache=state.run_cache,
                     artifact_store=state.artifact_store,
                     engine=spec.get("engine", "dynamic"),
                     timeout_s=spec.get("timeout_s"),
                     **run_spec_kwargs(spec))
    # Probe before building so a cache hit never pays a compile
    # (`in` is accounting-neutral; `run()` below does the counted get).
    will_hit = (state.run_cache is not None
                and ctx.cache_key() in state.run_cache)
    if not will_hit:
        publish("compiling")
        ctx.build()
        ctx.stage()
        publish("running", engine=ctx.engine)
    result = ctx.run()
    publish("cache_hit" if ctx.cache_hit else "ran",
            cycles=result.cycles)
    payload = result.to_dict()
    payload["__cache_hit__"] = ctx.cache_hit
    return payload


def _job_sweep(spec: dict, state: "ServerState", publish) -> dict:
    from repro.core.config import DeviceConfig
    from repro.dse import pareto_front
    from repro.exec.parallel import ParallelSweep

    workload = _spec_workload(spec)
    ports = [int(p) for p in spec.get("ports", [1, 2, 4, 8])]

    def configure(params):
        point_spec = dict(spec, ports=params["ports"])
        return run_spec_kwargs(point_spec)

    def on_point(done, total, point):
        publish("point", done=done, total=total, params=point.params,
                ok=point.ok, cycles=point.cycles)

    executor = ParallelSweep(
        workers=int(spec.get("sweep_workers", 1)),
        cache=state.run_cache,
        verify=bool(spec.get("verify", True)),
        point_timeout=spec.get("point_timeout"),
        retries=int(spec.get("retries", 0)),
        retry_backoff_s=float(spec.get("backoff_s", 0.1)),
        artifact_store=state.artifact_store,
        engine=spec.get("engine", "dynamic"),
        retime=bool(spec.get("retime", False)),
        checkpoint=state.sweep_checkpoint_path(spec),
    )
    publish("compiling")
    points = executor.run(workload, {"ports": ports}, configure,
                          seed=int(spec.get("seed", 7)),
                          unroll_factor=int(spec.get("unroll", 1)),
                          on_point=on_point)
    resumed = getattr(executor, "checkpoint_resumed", 0)
    if resumed:
        publish("checkpoint", resumed=resumed)
    healthy = [p for p in points if p.ok]
    front = pareto_front(healthy,
                         objectives=lambda p: (p.runtime_us, p.power_mw))
    rows = []
    for point in points:
        row = point.record()
        row["pareto"] = point in front
        rows.append(row)
    out = {"rows": rows, "failed": sum(1 for p in points if not p.ok),
           "resumed": resumed}
    if getattr(executor, "_retime_active", False):
        out["retime"] = {
            "datapath_groups": executor.datapath_groups,
            "trace_hits": executor.trace_hits,
            "trace_misses": executor.trace_misses,
            "trace_captures": executor.trace_captures,
            "retimed_points": executor.retimed_points,
            "warnings": [d.message for d in
                         executor.partition_report.diagnostics]
            if executor.partition_report is not None else [],
        }
    return out


def _job_analyze(spec: dict, state: "ServerState", publish) -> dict:
    from repro.analysis import AnalysisReport, lint_function
    from repro.analysis.memdep import memdep_diagnostics
    from repro.build import build_module

    scenario = spec.get("scenario")
    if scenario:
        # System-level concurrency lint (SYS301-306) of a scenario, the
        # same resolution rules as ``repro analyze --scenario``.
        from repro.cli import _analyze_scenario

        publish("linting scenario")
        report = _analyze_scenario(scenario)
        return json.loads(report.render_json())

    source = spec.get("source")
    if source:
        label = func = spec.get("func", "module")
        unroll = int(spec.get("unroll", 1))
    else:
        workload = _spec_workload(spec)
        source, func = workload.source, workload.func_name
        label = workload.name
        unroll = int(spec.get("unroll", workload.default_unroll))
    publish("compiling")
    artifact = build_module(source, func, unroll_factor=unroll,
                            pipeline=spec.get("passes"),
                            store=state.artifact_store)
    module = artifact.module
    publish("linting")
    report = AnalysisReport(subject=label)
    for function in module:
        if not function.blocks:
            continue
        lint_function(function, module, report=report)
        report.extend(memdep_diagnostics(function))
    return json.loads(report.render_json())


_BODIES: dict[str, Callable] = {
    "compile": _job_compile,
    "run": _job_run,
    "sweep": _job_sweep,
    "analyze": _job_analyze,
}
assert set(_BODIES) == set(JOB_KINDS)


class ServerState:
    """Everything the job bodies share: the caches and counters.

    Both caches default to in-memory instances, so even a bare
    ``repro serve`` dedups repeat compiles and runs across jobs;
    ``--cache-dir``/``--artifact-dir`` make them survive restarts, and
    ``--state-dir`` additionally gives sweep jobs durable per-request
    checkpoints (``<state-dir>/sweeps/``).
    """

    def __init__(self, run_cache: Optional[RunCache] = None,
                 artifact_store=None, state_dir=None) -> None:
        from repro.build.store import ArtifactStore

        self.run_cache = run_cache if run_cache is not None else RunCache()
        self.artifact_store = (artifact_store if artifact_store is not None
                               else ArtifactStore())
        self.state_dir = Path(state_dir) if state_dir is not None else None

    def sweep_checkpoint_path(self, spec: dict) -> Optional[Path]:
        """Durable checkpoint file for one sweep request, or None.

        Keyed by the request's dedup hash, so an identical sweep
        resubmitted after a crash (including the journal-recovered
        re-queue of the same job) lands on the same checkpoint file.
        """
        if self.state_dir is None:
            return None
        digest = job_dedup_key("sweep", spec).split(":", 1)[1]
        return self.state_dir / "sweeps" / f"{digest[:32]}.jsonl"

    def cache_stats(self) -> dict:
        from repro.build import STAGE_COUNTERS
        from repro.engine.retime import TRACE_COUNTERS

        stats = {
            "run_cache": {
                "entries": len(self.run_cache),
                "hits": self.run_cache.hits,
                "misses": self.run_cache.misses,
                "quarantined": self.run_cache.quarantined,
            },
            "stage_counters": STAGE_COUNTERS.snapshot(),
            "trace_cache": TRACE_COUNTERS.snapshot(),
        }
        store = self.artifact_store
        stats["artifact_store"] = {
            "entries": len(store),
            "hits": store.hits,
            "misses": store.misses,
            "quarantined": store.quarantined,
        }
        return stats


def execute_job(job: Job, state: ServerState) -> tuple[Optional[dict],
                                                       Optional[FailureRecord],
                                                       bool]:
    """Run one job body; returns ``(result, failure, cache_hit)``.

    Runs inside an executor thread.  ``job.publish`` is the only thing
    it touches concurrently with the event loop, and that is a bare
    list append (plus the lock-guarded journal sink).
    """
    body = _BODIES.get(job.kind)
    try:
        if body is None:
            raise SpecError(f"unknown job kind '{job.kind}' "
                            f"(expected one of {', '.join(JOB_KINDS)})")
        result = body(job.spec, state, job.publish)
        cache_hit = bool(result.pop("__cache_hit__", False))
        return result, None, cache_hit
    except Exception as exc:  # noqa: BLE001 - jobs fail, servers don't
        return None, FailureRecord.from_exception(exc), False


class WorkerPool:
    """N asyncio worker tasks draining the queue via executor threads.

    Beyond plain execution the pool enforces the durability policies:

    * a failed attempt whose job still has retry budget is re-queued
      with a deterministic exponential backoff instead of resolving;
    * final outcomes are reported to the `CircuitBreaker` (when one is
      attached) so repeat offenders start failing fast at submit time;
    * after each resolution the journal is compacted once it has
      accumulated ``snapshot_every`` appends.
    """

    def __init__(self, queue: JobQueue, state: ServerState,
                 workers: int = 2, poll_s: float = 0.02,
                 breaker=None) -> None:
        self.queue = queue
        self.state = state
        self.workers = max(1, int(workers))
        self.poll_s = poll_s
        self.breaker = breaker
        self._executor: Optional[ThreadPoolExecutor] = None
        self._tasks: list = []
        self._stopping = False

    async def start(self) -> None:
        import asyncio

        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve")
        self._tasks = [asyncio.create_task(self._worker_loop(i))
                       for i in range(self.workers)]

    async def _worker_loop(self, index: int) -> None:
        import asyncio

        loop = asyncio.get_running_loop()
        while not self._stopping:
            job = self.queue.claim()
            if job is None:
                await asyncio.sleep(self.poll_s)
                continue
            result, failure, cache_hit = await loop.run_in_executor(
                self._executor, execute_job, job, self.state)
            if failure is not None and not self._stopping:
                retries, backoff_s = job_retry_policy(job.spec)
                if job.attempts <= retries:
                    delay = retry_delay(backoff_s, job.attempts)
                    self.queue.requeue(job, delay_s=delay,
                                       reason=failure.reason)
                    continue
            if failure is not None:
                failure.attempts = job.attempts
            if self.breaker is not None and job.dedup_key is not None:
                if failure is not None:
                    self.breaker.record_failure(job.dedup_key)
                else:
                    self.breaker.record_success(job.dedup_key)
            self.queue.resolve(job, result=result, failure=failure,
                               cache_hit=cache_hit)
            journal = self.queue.journal
            if journal is not None and journal.should_compact():
                journal.compact(self.queue)

    async def stop(self) -> None:
        import asyncio

        self._stopping = True
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
