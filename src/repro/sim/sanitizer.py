"""Runtime access sanitizer (TSan-style, interval-granular).

Attached to a `System` via :meth:`System.attach_sanitizer`, the
sanitizer receives two event streams from the zero-overhead ``_san``
hooks spread through the memory system:

* ``record(agent, addr, size, is_write, tick)`` — a memory access by an
  attributed agent (the host, a DMA engine, an accelerator's memory
  controller), called from the SPM/DRAM/cache request paths.
* ``release(agent, key)`` / ``acquire(agent, key)`` — the two halves of
  every synchronization primitive the platform offers: MMR control
  writes (release) and the launch they trigger (acquire), interrupt
  raise/wait, DMA command/done handoffs, and stream-buffer token
  push/pop.

Ordering is tracked with per-agent vector clocks, so a conflict is
flagged whenever two agents touch overlapping bytes, at least one
writes, and no release/acquire chain orders the accesses — regardless
of how the event queue happened to interleave them.  That determinism
is what lets the scenario cross-validation harness treat a sanitizer
hit as ground truth for the static SYS304 rule.

Shadow state is an interval map bucketed by address, with one entry per
distinct (agent, range) pair per epoch, so tight accelerator loops that
re-touch the same scratchpad words stay O(distinct ranges), not
O(accesses).
"""

from __future__ import annotations

from typing import Hashable, Optional

_BUCKET_BYTES = 256


class AccessSanitizer:
    """Happens-before race detector over attributed memory accesses."""

    def __init__(self, max_reports: int = 64) -> None:
        self.max_reports = max_reports
        # agent -> vector clock {agent: epoch}; every agent starts at
        # epoch 1 so "never synchronized" (epoch 0) is distinguishable.
        self._vc: dict[str, dict[str, int]] = {}
        # sync key -> clock published by the last release(s).
        self._keys: dict[Hashable, dict[str, int]] = {}
        # bucket -> {(agent, lo, hi): (epoch, tick)} for writes/reads.
        self._writes: dict[int, dict[tuple, tuple[int, int]]] = {}
        self._reads: dict[int, dict[tuple, tuple[int, int]]] = {}
        self._reported: set = set()
        self.races: list[dict] = []
        self.num_records = 0
        self.num_syncs = 0

    # ------------------------------------------------------------------
    def _clock(self, agent: str) -> dict[str, int]:
        vc = self._vc.get(agent)
        if vc is None:
            vc = {agent: 1}
            self._vc[agent] = vc
        return vc

    # -- sync hooks ----------------------------------------------------
    def release(self, agent: str, key: Hashable) -> None:
        """Publish ``agent``'s history on ``key`` (the release half)."""
        self.num_syncs += 1
        vc = self._clock(agent)
        key_clock = self._keys.setdefault(key, {})
        for other, epoch in vc.items():
            if key_clock.get(other, 0) < epoch:
                key_clock[other] = epoch
        # Accesses after the release belong to a new epoch, which the
        # key clock does not cover.
        vc[agent] += 1

    def acquire(self, agent: str, key: Hashable) -> None:
        """Inherit the history published on ``key`` (the acquire half)."""
        self.num_syncs += 1
        key_clock = self._keys.get(key)
        if not key_clock:
            return
        vc = self._clock(agent)
        for other, epoch in key_clock.items():
            if vc.get(other, 0) < epoch:
                vc[other] = epoch

    # -- access recording ----------------------------------------------
    def record(self, agent: str, addr: int, size: int, is_write: bool,
               tick: int) -> None:
        self.num_records += 1
        vc = self._clock(agent)
        my_epoch = vc[agent]
        lo, hi = addr, addr + size
        first_bucket = lo // _BUCKET_BYTES
        last_bucket = (hi - 1) // _BUCKET_BYTES
        buckets = range(first_bucket, last_bucket + 1)
        # A write conflicts with unordered writes and reads; a read
        # conflicts only with unordered writes.
        against = (self._writes, self._reads) if is_write else (self._writes,)
        seen: set = set()
        for shadow in against:
            prior_is_write = shadow is self._writes
            for bucket in buckets:
                entries = shadow.get(bucket)
                if not entries:
                    continue
                for entry_key, (epoch, prior_tick) in entries.items():
                    other, other_lo, other_hi = entry_key
                    if other == agent or entry_key in seen:
                        continue
                    if other_lo >= hi or other_hi <= lo:
                        continue
                    seen.add(entry_key)
                    if vc.get(other, 0) >= epoch:
                        continue  # ordered before us — not a race
                    self._report(agent, other, is_write, prior_is_write,
                                 max(lo, other_lo), min(hi, other_hi),
                                 prior_tick, tick)
        store = self._writes if is_write else self._reads
        entry_key = (agent, lo, hi)
        for bucket in buckets:
            store.setdefault(bucket, {})[entry_key] = (my_epoch, tick)

    def _report(self, agent: str, other: str, is_write: bool,
                prior_is_write: bool, lo: int, hi: int,
                prior_tick: int, tick: int) -> None:
        pair = tuple(sorted((agent, other)))
        kind = ("write-write" if is_write and prior_is_write
                else "read-write")
        dedup = (pair, kind, lo // _BUCKET_BYTES)
        if dedup in self._reported or len(self.races) >= self.max_reports:
            return
        self._reported.add(dedup)
        self.races.append({
            "agents": list(pair),
            "kind": kind,
            "range": [lo, hi],
            "ticks": [prior_tick, tick],
        })

    # ------------------------------------------------------------------
    @property
    def clean(self) -> bool:
        return not self.races

    def summary(self) -> dict:
        return {
            "clean": self.clean,
            "races": list(self.races),
            "num_records": self.num_records,
            "num_syncs": self.num_syncs,
            "agents": sorted(self._vc),
        }


def attach(system, sanitizer: Optional[AccessSanitizer] = None) -> AccessSanitizer:
    """Attach a (new, unless given) sanitizer to ``system``."""
    return system.attach_sanitizer(sanitizer or AccessSanitizer())
