"""System/config lints: address maps, footprints, and DMA targets.

Rule codes:

======  ========  ==========================================================
SYS301  error     two memory regions (MMR/SPM/DRAM/...) overlap
SYS302  error     kernel static footprint exceeds its scratchpad size
SYS303  error     a DMA transfer touches bytes outside every mapped region
======  ========  ==========================================================

The lints run over a `SystemDescription` — a plain-data view of the
platform — so they work both on live simulator objects (via
:func:`describe_soc`, which duck-types anything carrying an
``AddrRange``-shaped ``.range`` and any DMA engine with a
``transfer_log``) and on configurations that were never instantiated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.analysis.diagnostics import AnalysisReport, Location, Severity


@dataclass(frozen=True)
class MemRegion:
    """One mapped address region ``[base, base+size)``."""

    name: str
    kind: str  # "spm" | "dram" | "mmr" | ...
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def overlaps(self, other: "MemRegion") -> bool:
        return self.base < other.end and other.base < self.end

    def contains(self, addr: int, size: int = 1) -> bool:
        return self.base <= addr and addr + size <= self.end

    def describe(self) -> str:
        return f"{self.name} ({self.kind}) [{self.base:#x}, {self.end:#x})"


@dataclass(frozen=True)
class DmaTransfer:
    """One programmed DMA copy: ``size`` bytes from ``src`` to ``dst``.

    Provenance fields (ticks, direction, engine kind) are excluded from
    equality so descriptions built from bare ``(src, dst, size)`` tuples
    compare equal to ones built from live transfer records.
    """

    name: str
    src: int
    dst: int
    size: int
    start_tick: int = field(default=-1, compare=False)
    end_tick: int = field(default=-1, compare=False)
    direction: str = field(default="mem_to_mem", compare=False)
    engine: str = field(default="block", compare=False)


@dataclass(frozen=True)
class KernelFootprint:
    """A kernel's static memory demand against a target region.

    ``region`` names the scratchpad the kernel's buffers live in; empty
    means "the largest SPM region" (the standalone-harness layout).
    """

    name: str
    bytes_needed: int
    region: str = ""
    exact: bool = True


@dataclass
class SystemDescription:
    """Plain-data platform view the system lints run over."""

    regions: list[MemRegion] = field(default_factory=list)
    transfers: list[DmaTransfer] = field(default_factory=list)
    kernels: list[KernelFootprint] = field(default_factory=list)
    # Optional per-agent access/ordering model (see
    # repro.analysis.concurrency); None when the platform was described
    # before any run, so there is no host op log to extract from.
    concurrency: Optional[object] = None

    def region_named(self, name: str) -> Optional[MemRegion]:
        for region in self.regions:
            if region.name == name:
                return region
        return None

    def to_dict(self) -> dict:
        return {
            "regions": [
                {"name": r.name, "kind": r.kind,
                 "base": r.base, "size": r.size}
                for r in self.regions
            ],
            "transfers": [
                {"name": t.name, "src": t.src, "dst": t.dst, "size": t.size,
                 "start_tick": t.start_tick, "end_tick": t.end_tick,
                 "direction": t.direction, "engine": t.engine}
                for t in self.transfers
            ],
            "kernels": [
                {"name": k.name, "bytes_needed": k.bytes_needed,
                 "region": k.region, "exact": k.exact}
                for k in self.kernels
            ],
            "concurrency": (
                self.concurrency.to_dict()
                if self.concurrency is not None
                and hasattr(self.concurrency, "to_dict")
                else None
            ),
        }


def _region_kind(obj) -> str:
    name = type(obj).__name__.lower()
    if "scratchpad" in name or "spm" in name:
        return "spm"
    if "dram" in name:
        return "dram"
    if "mmr" in name:
        return "mmr"
    return name


def describe_soc(platform) -> SystemDescription:
    """Build a `SystemDescription` from a live platform.

    Accepts anything owning a `System` (an `SoC`, a
    `StandaloneAccelerator`, or the `System` itself) and duck-types its
    object registry: every SimObject with an address-range ``.range``
    becomes a region; every DMA engine's ``transfer_log`` becomes
    transfer records.
    """
    system = getattr(platform, "system", platform)
    desc = SystemDescription()
    for obj in system.objects.values():
        rng = getattr(obj, "range", None)
        if rng is not None and hasattr(rng, "start") and hasattr(rng, "size"):
            desc.regions.append(MemRegion(
                name=obj.name, kind=_region_kind(obj),
                base=rng.start, size=rng.size,
            ))
        for entry in getattr(obj, "transfer_log", ()):
            # Live engines log TransferRecord objects with provenance;
            # hand-built descriptions may still use bare 3-tuples.
            src, dst, size = entry
            desc.transfers.append(DmaTransfer(
                obj.name, src, dst, size,
                start_tick=getattr(entry, "start_tick", -1),
                end_tick=getattr(entry, "end_tick", -1),
                direction=getattr(entry, "direction", "mem_to_mem"),
                engine=getattr(entry, "engine", "block"),
            ))
    return desc


def lint_system(
    desc: SystemDescription,
    report: Optional[AnalysisReport] = None,
) -> AnalysisReport:
    """Run SYS301-303 (and, when ``desc.concurrency`` is populated,
    SYS304-306) over a system description."""
    if report is None:
        report = AnalysisReport(subject="system")
    with report.timed("sys-overlap"):
        _check_overlaps(desc.regions, report)
    with report.timed("sys-footprint"):
        _check_footprints(desc, report)
    with report.timed("sys-dma"):
        _check_transfers(desc, report)
    if desc.concurrency is not None:
        from repro.analysis.concurrency import lint_concurrency

        with report.timed("sys-concurrency"):
            lint_concurrency(desc.concurrency, report)
    report.meta.setdefault("system", desc.to_dict())
    return report


def _check_overlaps(regions: list[MemRegion], report: AnalysisReport) -> None:
    ordered = sorted(regions, key=lambda r: (r.base, r.end, r.name))
    for i, first in enumerate(ordered):
        for second in ordered[i + 1:]:
            if second.base >= first.end:
                break  # sorted by base: nothing later can overlap `first`
            report.add(
                "SYS301", Severity.ERROR,
                Location(function=first.name, ref=second.name),
                f"address ranges overlap: {first.describe()} and "
                f"{second.describe()}",
                hint="a request in the shared window routes to whichever "
                     "device matched first — give every device a disjoint "
                     "window",
            )


def _check_footprints(desc: SystemDescription, report: AnalysisReport) -> None:
    spms = [r for r in desc.regions if r.kind == "spm"]
    for kernel in desc.kernels:
        if kernel.region:
            region = desc.region_named(kernel.region)
        else:
            region = max(spms, key=lambda r: r.size, default=None)
        if region is None:
            continue
        if kernel.bytes_needed > region.size:
            bound = "" if kernel.exact else " (lower bound)"
            report.add(
                "SYS302", Severity.ERROR,
                Location(function=kernel.name, ref=region.name),
                f"kernel static footprint {kernel.bytes_needed} B{bound} "
                f"exceeds {region.describe()} of {region.size} B",
                hint="grow the scratchpad, tile the kernel, or stream the "
                     "data through DMA in chunks",
            )


def _union_covers(regions: list[MemRegion], addr: int, size: int) -> bool:
    """Whether ``[addr, addr+size)`` lies inside the union of regions.

    A transfer may legitimately span two adjacent mapped regions (e.g. a
    copy straddling two banks), so coverage is checked against the
    merged region set, not any single region.
    """
    end = addr + size
    cursor = addr
    for region in sorted(regions, key=lambda r: r.base):
        if region.end <= cursor:
            continue
        if region.base > cursor:
            return False  # gap at [cursor, region.base)
        cursor = region.end
        if cursor >= end:
            return True
    return cursor >= end


def _check_transfers(desc: SystemDescription, report: AnalysisReport) -> None:
    for transfer in desc.transfers:
        for label, addr in (("source", transfer.src),
                            ("destination", transfer.dst)):
            if not _union_covers(desc.regions, addr, transfer.size):
                report.add(
                    "SYS303", Severity.ERROR,
                    Location(function=transfer.name),
                    f"DMA {label} [{addr:#x}, {addr + transfer.size:#x}) "
                    f"is not fully covered by the mapped regions",
                    hint="the transfer would fault (or silently wrap) at "
                         "simulation time — fix the programmed address or "
                         "map the region",
                )


def footprints_from_module(
    module,
    func_name: str,
    region: str = "",
) -> list[KernelFootprint]:
    """Kernel footprints for SYS302 from the static analysis."""
    from repro.analysis.memdep import static_footprint

    entries = static_footprint(module, func_name)
    total = sum(entry["bytes"] for entry in entries.values())
    exact = all(entry["exact"] for entry in entries.values())
    return [KernelFootprint(func_name, total, region, exact)]
