"""Natural-loop detection and trip counting."""

import pytest

from repro.frontend import compile_c
from repro.passes.loop_analysis import find_loops, trip_count


def _loops_of(source, func="f", unroll_factor=1, optimize=True):
    module = compile_c(source, func, optimize=optimize, unroll_factor=unroll_factor)
    return find_loops(module.get_function(func)), module


@pytest.mark.parametrize(
    "header,expected",
    [
        ("for (int i = 0; i < 10; i++)", 10),
        ("for (int i = 0; i < 10; i += 2)", 5),
        ("for (int i = 10; i > 0; i--)", 10),
        ("for (int i = 1; i <= 7; i++)", 7),
        ("for (int i = 0; i != 4; i++)", 4),
        ("for (int i = 5; i >= 0; i -= 1)", 6),
    ],
)
def test_trip_count_shapes(header, expected):
    loops, __ = _loops_of(f"void f(int a[64]) {{ {header} {{ a[0] += 1; }} }}")
    assert len(loops) == 1
    assert trip_count(loops[0]) == expected


def test_non_constant_bound_has_no_trip_count():
    loops, __ = _loops_of("void f(int a[64], int n) { for (int i = 0; i < n; i++) { a[0] += 1; } }")
    assert len(loops) == 1
    assert trip_count(loops[0]) is None


def test_nested_loops_found_innermost_first():
    src = """
    void f(int a[64]) {
      for (int i = 0; i < 4; i++) {
        for (int j = 0; j < 8; j++) { a[i] += j; }
      }
    }
    """
    loops, __ = _loops_of(src)
    assert len(loops) == 2
    assert len(loops[0].blocks) <= len(loops[1].blocks)
    inner, outer = loops
    assert trip_count(inner) == 8
    assert all(block in outer.blocks for block in inner.blocks)


def test_canonical_detection():
    loops, __ = _loops_of("void f(int a[8]) { for (int i = 0; i < 8; i++) { a[i] = i; } }")
    loop = loops[0]
    assert loop.is_canonical
    assert loop.induction is not None
    assert loop.exits_from_latch


def test_while_loop_with_data_dependent_exit():
    src = """
    int f(int a[64]) {
      int i = 0;
      while (a[i] != 0) { i++; }
      return i;
    }
    """
    loops, __ = _loops_of(src)
    assert len(loops) == 1
    assert trip_count(loops[0]) is None


def test_loop_with_break_is_not_canonical_for_unroll():
    src = """
    int f(int a[16]) {
      int found = -1;
      for (int i = 0; i < 16; i++) {
        if (a[i] == 7) { found = i; break; }
      }
      return found;
    }
    """
    loops, __ = _loops_of(src)
    # The break adds a second exit; full unrolling must not apply.
    for loop in loops:
        assert trip_count(loop) is None or not loop.exits_from_latch or len(loop.exits) > 1
