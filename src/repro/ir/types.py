"""IR type system.

Structural types in the LLVM style: ``void``, ``iN`` integers, ``float``
/ ``double``, typed pointers, and fixed-size arrays.  Types compare and
hash structurally so they can be freely constructed anywhere.
"""

from __future__ import annotations


class Type:
    """Base class for all IR types."""

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_int(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_scalar(self) -> bool:
        return self.is_int or self.is_float or self.is_pointer

    def size_bytes(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def bit_width(self) -> int:
        return self.size_bytes() * 8

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self):
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return str(self)


class VoidType(Type):
    def size_bytes(self) -> int:
        raise TypeError("void has no size")

    def __str__(self) -> str:
        return "void"


class LabelType(Type):
    """Type of basic-block labels (branch targets)."""

    def size_bytes(self) -> int:
        raise TypeError("label has no size")

    def __str__(self) -> str:
        return "label"


class IntType(Type):
    """An ``iN`` integer; values are N-bit two's-complement patterns."""

    def __init__(self, bits: int) -> None:
        if bits <= 0 or bits > 128:
            raise ValueError(f"unsupported integer width i{bits}")
        self.bits = bits

    def size_bytes(self) -> int:
        return max(1, (self.bits + 7) // 8)

    def bit_width(self) -> int:
        return self.bits

    @property
    def mask(self) -> int:
        return (1 << self.bits) - 1

    @property
    def min_signed(self) -> int:
        return -(1 << (self.bits - 1))

    @property
    def max_signed(self) -> int:
        return (1 << (self.bits - 1)) - 1

    def _key(self):
        return (self.bits,)

    def __str__(self) -> str:
        return f"i{self.bits}"


class FloatType(Type):
    """IEEE-754 binary32 (``float``) or binary64 (``double``)."""

    def __init__(self, bits: int) -> None:
        if bits not in (32, 64):
            raise ValueError(f"unsupported float width f{bits}")
        self.bits = bits

    def size_bytes(self) -> int:
        return self.bits // 8

    def bit_width(self) -> int:
        return self.bits

    def _key(self):
        return (self.bits,)

    def __str__(self) -> str:
        return "float" if self.bits == 32 else "double"


class PointerType(Type):
    """A typed pointer.  Pointers are 64-bit addresses."""

    POINTER_BYTES = 8

    def __init__(self, pointee: Type) -> None:
        if pointee.is_void:
            raise ValueError("pointer to void is not supported; use i8*")
        self.pointee = pointee

    def size_bytes(self) -> int:
        return self.POINTER_BYTES

    def _key(self):
        return (self.pointee,)

    def __str__(self) -> str:
        return f"{self.pointee}*"


class ArrayType(Type):
    """A fixed-length array ``[N x T]``."""

    def __init__(self, element: Type, count: int) -> None:
        if count < 0:
            raise ValueError(f"array length must be non-negative, got {count}")
        self.element = element
        self.count = count

    def size_bytes(self) -> int:
        return self.element.size_bytes() * self.count

    def _key(self):
        return (self.element, self.count)

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"


# Common singletons -----------------------------------------------------
VOID = VoidType()
LABEL = LabelType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
FLOAT = FloatType(32)
DOUBLE = FloatType(64)


def ptr_to(pointee: Type) -> PointerType:
    return PointerType(pointee)


def array_of(element: Type, count: int) -> ArrayType:
    return ArrayType(element, count)


_BY_NAME = {
    "void": VOID,
    "label": LABEL,
    "float": FLOAT,
    "double": DOUBLE,
}


def type_from_name(name: str) -> Type:
    """Parse a type token like ``i32``, ``double``, ``float*``, ``[4 x i32]``."""
    name = name.strip()
    if name.endswith("*"):
        return ptr_to(type_from_name(name[:-1]))
    if name in _BY_NAME:
        return _BY_NAME[name]
    if name.startswith("i") and name[1:].isdigit():
        return IntType(int(name[1:]))
    if name.startswith("[") and name.endswith("]"):
        body = name[1:-1]
        count_str, __, elem_str = body.partition(" x ")
        return array_of(type_from_name(elem_str), int(count_str))
    raise ValueError(f"unknown type name '{name}'")
