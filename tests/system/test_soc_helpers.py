"""Convenience helpers: run_standalone, summaries, cluster power."""

import numpy as np
import pytest

from repro.system.soc import StandaloneAccelerator, run_standalone

SRC = """
void negate(double a[16], double out[16]) {
  for (int i = 0; i < 16; i++) { out[i] = -a[i]; }
}
"""


def test_run_standalone_one_call(rng):
    data = rng.uniform(-1, 1, 16)
    holder = {}

    def stage(acc):
        holder["pa"] = acc.alloc_array(data)
        holder["pout"] = acc.alloc(128)
        holder["acc"] = acc
        return [holder["pa"], holder["pout"]]

    result = run_standalone(SRC, "negate", stage, memory="spm", spm_bytes=1 << 12)
    assert result.cycles > 0
    out = holder["acc"].read_array(holder["pout"], np.float64, 16)
    assert np.allclose(out, -data)


def test_compute_unit_summary(rng):
    acc = StandaloneAccelerator(SRC, "negate", spm_bytes=1 << 12)
    pa, pout = acc.alloc_array(rng.uniform(-1, 1, 16)), acc.alloc(128)
    acc.run([pa, pout])
    summary = acc.unit.summary()
    assert summary["function"] == "negate"
    assert summary["cycles"] > 0
    assert summary["invocations"] == 1
    assert summary["runtime_ns"] == summary["cycles"] * acc.config.cycle_time_ns


def test_unknown_memory_config_rejected():
    with pytest.raises(ValueError):
        StandaloneAccelerator(SRC, "negate", memory="holographic")


def test_incomplete_simulation_reported(rng):
    acc = StandaloneAccelerator(SRC, "negate", spm_bytes=1 << 12)
    pa, pout = acc.alloc_array(rng.uniform(-1, 1, 16)), acc.alloc(128)
    with pytest.raises(RuntimeError, match="before kernel completion"):
        acc.run([pa, pout], max_ticks=1)


def test_cluster_power_report_merges(rng):
    from repro.frontend import compile_c
    from repro.hw.default_profile import default_profile
    from repro.system.soc import build_soc
    from repro.core.mmr import ARGS_OFFSET, CTRL_IRQ_EN, CTRL_START

    soc = build_soc(dram_size=1 << 16)
    cluster = soc.add_cluster("cl")
    module = compile_c(SRC, "negate")
    units = []
    for i in range(2):
        unit = cluster.add_accelerator(
            f"acc{i}", module, "negate", default_profile(), private_spm_bytes=1 << 11
        )
        unit.comm.connect_irq(soc.irq.line(i))
        units.append(unit)
    soc.finalize()
    data = rng.uniform(-1, 1, 16)
    for unit in units:
        unit.private_spm.image.write_array(unit.private_spm.range.start, data)

    host = soc.host

    def driver(h):
        for unit in units:
            spm = unit.private_spm.range.start
            mmr = unit.comm.mmr.range.start
            yield h.write_mmr(mmr + ARGS_OFFSET, spm)
            yield h.write_mmr(mmr + ARGS_OFFSET + 8, spm + 256)
            yield h.write_mmr(mmr, CTRL_START | CTRL_IRQ_EN)
        yield h.wait_irq(0)
        yield h.wait_irq(1)

    host.run_driver(driver(host))
    soc.run(max_ticks=1_000_000_000)
    assert host.finished
    merged = cluster.power_report()
    singles = [u.power_report() for u in units]
    assert merged.fu_leakage_mw == pytest.approx(sum(s.fu_leakage_mw for s in singles))
    assert merged.total_mw > max(s.total_mw for s in singles)
