"""Module / Function / BasicBlock containers."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.ir.instructions import Branch, Phi
from repro.ir.types import Type, VOID
from repro.ir.values import Argument, Instruction


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    def __init__(self, name: str, parent: Optional["Function"] = None) -> None:
        self.name = name
        self.parent = parent
        self.instructions: list[Instruction] = []

    # -- structure -------------------------------------------------------
    def append(self, inst: Instruction) -> Instruction:
        if self.is_terminated:
            raise ValueError(f"block '{self.name}' already has a terminator")
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.insert(index, inst)
        return inst

    def remove(self, inst: Instruction) -> None:
        self.instructions.remove(inst)
        inst.parent = None

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def phis(self) -> list[Phi]:
        return [i for i in self.instructions if isinstance(i, Phi)]

    def non_phi_instructions(self) -> list[Instruction]:
        return [i for i in self.instructions if not isinstance(i, Phi)]

    # -- CFG -------------------------------------------------------------
    def successors(self) -> list["BasicBlock"]:
        term = self.terminator
        if isinstance(term, Branch):
            # Deduplicate (a conditional branch may target one block twice).
            seen: list[BasicBlock] = []
            for target in term.targets():
                if target not in seen:
                    seen.append(target)
            return seen
        return []

    def predecessors(self) -> list["BasicBlock"]:
        if self.parent is None:
            return []
        return [b for b in self.parent.blocks if self in b.successors()]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"


class Function:
    """A function: typed arguments plus an ordered list of basic blocks."""

    def __init__(self, name: str, return_type: Type = VOID, arg_specs: Optional[list[tuple[Type, str]]] = None) -> None:
        self.name = name
        self.return_type = return_type
        self.args: list[Argument] = [
            Argument(t, n, i) for i, (t, n) in enumerate(arg_specs or [])
        ]
        self.blocks: list[BasicBlock] = []
        self.parent: Optional["Module"] = None
        self._name_counter = 0

    # -- structure -------------------------------------------------------
    def add_block(self, name: str = "") -> BasicBlock:
        block = BasicBlock(name or self.unique_name("bb"), self)
        self.blocks.append(block)
        return block

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)
        block.parent = None

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function '{self.name}' has no blocks")
        return self.blocks[0]

    def block_named(self, name: str) -> BasicBlock:
        for block in self.blocks:
            if block.name == name:
                return block
        raise KeyError(f"no block named '{name}' in function '{self.name}'")

    def arg_named(self, name: str) -> Argument:
        for arg in self.args:
            if arg.name == name:
                return arg
        raise KeyError(f"no argument named '{name}' in function '{self.name}'")

    def unique_name(self, prefix: str = "t") -> str:
        self._name_counter += 1
        return f"{prefix}{self._name_counter}"

    def predecessor_map(self) -> dict:
        """block -> list of predecessor blocks, computed in one O(B+E) scan.

        Analyses over large (e.g. fully unrolled) functions must use
        this instead of per-block ``predecessors()`` calls, which are
        O(B) each.
        """
        preds: dict = {block: [] for block in self.blocks}
        for block in self.blocks:
            for succ in block.successors():
                if succ in preds:
                    preds[succ].append(block)
        return preds

    # -- traversal --------------------------------------------------------
    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def instruction_count(self) -> int:
        return sum(len(b) for b in self.blocks)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Function {self.name} ({len(self.blocks)} blocks)>"


class Module:
    """A compilation unit holding named functions."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: dict[str, Function] = {}

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise ValueError(f"duplicate function '{func.name}'")
        func.parent = self
        self.functions[func.name] = func
        return func

    def get_function(self, name: str) -> Function:
        if name not in self.functions:
            raise KeyError(f"no function '{name}' in module '{self.name}'")
        return self.functions[name]

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Module {self.name} ({len(self.functions)} functions)>"
