"""Unified simulation tracing & telemetry (`repro.trace`).

The observability layer over the whole platform: SimObjects emit
timestamped events onto named channels (``compute``, ``mem``, ``dma``,
``irq``, ``host``, ``sched``); a `TraceHub` buffers them in a bounded
ring with drop accounting; exporters render Chrome trace-event JSON
(Perfetto-loadable), plain text logs, and per-cycle occupancy/stall
timelines.  When no hub is attached every instrumentation site is a
single ``None`` check — untraced runs are cycle- and wall-clock
identical to the uninstrumented simulator.

Entry points: ``System.attach_trace_hub`` (any built system),
``SimContext(trace=...)`` / ``Simulation(system, trace=...)`` (the
execution layer), and ``python -m repro run ... --trace compute,mem
--trace-out trace.json`` (the CLI).
"""

from repro.trace.export import (
    chrome_trace,
    format_timeline,
    occupancy_timeline,
    to_chrome_json,
    to_text,
    write_trace,
)
from repro.trace.hub import (
    CHANNELS,
    DEFAULT_CAPACITY,
    TraceConfig,
    TraceError,
    TraceEvent,
    TraceHub,
    parse_channels,
)

__all__ = [
    "CHANNELS",
    "DEFAULT_CAPACITY",
    "TraceConfig",
    "TraceError",
    "TraceEvent",
    "TraceHub",
    "parse_channels",
    "chrome_trace",
    "to_chrome_json",
    "to_text",
    "occupancy_timeline",
    "format_timeline",
    "write_trace",
]
