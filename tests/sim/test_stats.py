"""Stats framework."""

import json

import pytest

from repro.sim.stats import (
    FormulaStat,
    ScalarStat,
    StatGroup,
    VectorStat,
    format_stats,
    stats_to_json,
)


def test_scalar_accumulates():
    stat = ScalarStat("x")
    stat.inc()
    stat.inc(4)
    assert stat.value() == 5
    stat.set(2)
    assert stat.value() == 2
    stat.reset()
    assert stat.value() == 0


def test_scalar_iadd():
    stat = ScalarStat("x")
    stat += 3
    stat += 0.5
    assert stat.value() == 3.5


def test_vector_keys():
    stat = VectorStat("v")
    stat.inc("a")
    stat.inc("a", 2)
    stat.inc("b")
    assert stat.get("a") == 3
    assert stat.get("missing") == 0
    assert stat.total() == 4
    assert set(stat.keys()) == {"a", "b"}


def test_formula_reflects_current_state():
    base = ScalarStat("base")
    formula = FormulaStat("double", lambda: base.value() * 2)
    base.inc(5)
    assert formula.value() == 10
    base.inc(5)
    assert formula.value() == 20


def test_group_registration_and_dump():
    group = StatGroup("dev")
    a = group.scalar("a")
    v = group.vector("v")
    a.inc(3)
    v.inc("x")
    dump = group.dump()
    assert dump["dev.a"] == 3
    assert dump["dev.v"] == {"x": 1}


def test_group_duplicate_rejected():
    group = StatGroup("dev")
    group.scalar("a")
    with pytest.raises(ValueError):
        group.scalar("a")


def test_nested_groups_walk():
    parent = StatGroup("sys")
    child = StatGroup("dev")
    parent.add_child(child)
    child.scalar("hits").inc(7)
    dump = parent.dump()
    assert dump["sys.dev.hits"] == 7


def test_group_reset_recurses():
    parent = StatGroup("sys")
    child = parent.add_child(StatGroup("dev"))
    stat = child.scalar("hits")
    stat.inc(7)
    parent.reset()
    assert stat.value() == 0


def test_format_stats_renders():
    text = format_stats({"a.b": 1.5, "a.v": {"k": 2}}, title="t")
    assert "t" in text
    assert "a.b" in text
    assert "a.v::k" in text


def test_format_stats_ints_align_like_floats():
    text = format_stats({"grp.int_stat": 42, "grp.float_stat": 42.0}, title="t")
    int_line = next(l for l in text.splitlines() if "int_stat" in l)
    float_line = next(l for l in text.splitlines() if "float_stat" in l)
    # Same alignment and precision rules: both render as '42' in column 56.
    assert int_line.split() == ["grp.int_stat", "42"]
    assert float_line.split() == ["grp.float_stat", "42"]
    assert int_line.index("42") == float_line.index("42")


def test_format_stats_large_ints_use_float_precision():
    text = format_stats({"g.big": 123_456_789}, title="t")
    assert "1.23457e+08" in text


def test_format_stats_non_numeric_falls_through():
    text = format_stats({"g.flag": True, "g.label": "spm"}, title="t")
    assert "True" in text
    assert "spm" in text


def test_group_to_dict_nests_children():
    parent = StatGroup("sys")
    parent.scalar("ticks").inc(9)
    child = parent.add_child(StatGroup("dev"))
    child.scalar("hits").inc(7)
    child.vector("kinds").inc("read", 2)
    assert parent.to_dict() == {
        "ticks": 9,
        "dev": {"hits": 7, "kinds": {"read": 2}},
    }


def test_stats_to_json_accepts_group_directly():
    group = StatGroup("dev")
    group.scalar("hits").inc(3)
    group.formula("double", lambda: 6)
    doc = json.loads(stats_to_json(group))
    assert doc == {"hits": 3, "double": 6}


def test_stats_to_json_is_deterministic():
    a = stats_to_json({"b": 1, "a": {"z": 2, "y": 3}})
    b = stats_to_json({"a": {"y": 3, "z": 2}, "b": 1})
    assert a == b  # sorted keys -> byte-identical output


def test_stats_to_json_serializes_embedded_stats():
    stat = ScalarStat("hits")
    stat.inc(4)
    doc = json.loads(stats_to_json({"nested": stat}))
    assert doc == {"nested": 4}


def test_stats_to_json_rejects_unknown_types():
    with pytest.raises(TypeError):
        stats_to_json({"bad": object()})
