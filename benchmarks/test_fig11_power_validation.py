"""Fig. 11 — power validation vs the Design-Compiler-style reference.

Same benchmark set as Fig. 10 minus Stencil3D (excluded in the paper
because Design Compiler ran out of memory).  SALAM's total power vs the
gate-level-style reference that additionally prices interconnect
muxing, clock tree, and glitching.

Expected shape (paper: avg ~3.25%): small underestimates, largest for
the mux/irregular-operator heavy kernels (MD, NW).
"""

import numpy as np

from conftest import SEED, save_and_print
from repro.dse import format_table
from repro.hls import rtl_power_reference
from repro.system.soc import StandaloneAccelerator
from repro.workloads import get_workload

BENCHES = ["fft", "gemm", "md_knn", "md_grid", "nw", "spmv", "stencil2d"]


def test_fig11(benchmark):
    def run():
        rows = []
        for name in BENCHES:
            workload = get_workload(name)
            acc = StandaloneAccelerator(
                workload.source, workload.func_name, memory="spm", spm_bytes=1 << 14
            )
            data = workload.make_data(np.random.default_rng(SEED))
            args, __ = workload.stage(acc, data)
            result = acc.run(args)
            salam_mw = result.power.total_mw
            reference_mw = rtl_power_reference(result.power, result.fu_counts)
            rows.append(
                {
                    "benchmark": name,
                    "salam_mW": salam_mw,
                    "reference_mW": reference_mw,
                    "error_pct": 100.0 * (salam_mw - reference_mw) / reference_mw,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    avg = float(np.mean([abs(r["error_pct"]) for r in rows]))
    rows.append({"benchmark": "AVERAGE |err|", "error_pct": avg})
    save_and_print(
        "fig11_power_validation",
        format_table(rows, title="Fig. 11: power validation (SALAM vs DC-style reference)",
                     float_fmt="{:+.3f}"),
    )

    assert avg < 8.0, f"average power error too large: {avg:.2f}%"
    by_name = {r["benchmark"]: abs(r["error_pct"]) for r in rows[:-1]}
    # Irregular kernels show the largest gap (the paper's observation).
    assert max(by_name["md_knn"], by_name["md_grid"], by_name["nw"]) >= max(
        by_name["gemm"], by_name["stencil2d"]
    )
