"""IR type system."""

import pytest

from repro.ir.types import (
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    DOUBLE,
    FLOAT,
    I1,
    I8,
    I32,
    I64,
    VOID,
    array_of,
    ptr_to,
    type_from_name,
)


def test_structural_equality():
    assert IntType(32) == I32
    assert IntType(32) != IntType(64)
    assert ptr_to(I32) == ptr_to(IntType(32))
    assert ptr_to(I32) != ptr_to(I64)
    assert array_of(I8, 4) == array_of(I8, 4)
    assert array_of(I8, 4) != array_of(I8, 5)


def test_types_hashable():
    seen = {I32, IntType(32), DOUBLE, ptr_to(DOUBLE)}
    assert len(seen) == 3


def test_sizes():
    assert I1.size_bytes() == 1
    assert I8.size_bytes() == 1
    assert I32.size_bytes() == 4
    assert I64.size_bytes() == 8
    assert FLOAT.size_bytes() == 4
    assert DOUBLE.size_bytes() == 8
    assert ptr_to(I8).size_bytes() == 8
    assert array_of(DOUBLE, 10).size_bytes() == 80
    assert array_of(array_of(I32, 4), 3).size_bytes() == 48


def test_bit_widths():
    assert I1.bit_width() == 1
    assert I32.bit_width() == 32
    assert DOUBLE.bit_width() == 64


def test_void_has_no_size():
    with pytest.raises(TypeError):
        VOID.size_bytes()


def test_int_type_bounds():
    assert I8.max_signed == 127
    assert I8.min_signed == -128
    assert I8.mask == 0xFF
    with pytest.raises(ValueError):
        IntType(0)
    with pytest.raises(ValueError):
        IntType(1000)


def test_float_width_validation():
    assert FloatType(32) == FLOAT
    with pytest.raises(ValueError):
        FloatType(16)


def test_pointer_to_void_rejected():
    with pytest.raises(ValueError):
        PointerType(VOID)


def test_predicates():
    assert I32.is_int and not I32.is_float
    assert DOUBLE.is_float and DOUBLE.is_scalar
    assert ptr_to(I32).is_pointer and ptr_to(I32).is_scalar
    assert array_of(I32, 2).is_array and not array_of(I32, 2).is_scalar
    assert VOID.is_void


def test_str_forms():
    assert str(I32) == "i32"
    assert str(DOUBLE) == "double"
    assert str(ptr_to(FLOAT)) == "float*"
    assert str(array_of(I32, 4)) == "[4 x i32]"


@pytest.mark.parametrize(
    "name,expected",
    [
        ("i32", I32),
        ("double", DOUBLE),
        ("float*", ptr_to(FLOAT)),
        ("i8**", ptr_to(ptr_to(I8))),
        ("[4 x i32]", array_of(I32, 4)),
        ("[2 x [3 x double]]", array_of(array_of(DOUBLE, 3), 2)),
    ],
)
def test_type_from_name_roundtrip(name, expected):
    assert type_from_name(name) == expected
    assert type_from_name(str(expected)) == expected


def test_type_from_name_rejects_garbage():
    with pytest.raises(ValueError):
        type_from_name("notatype")
