"""Memory timing models for the trace-based baseline.

The trace scheduler asks one question: "a memory access to address A
becomes ready at cycle T — when does its data arrive?"  The answer
couples the memory configuration into the schedule, which is exactly
how gem5-Aladdin's datapath derivation becomes entangled with cache
parameters (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass, field


class AladdinMemoryModel:
    """Interface: access(addr, size, is_write, ready_cycle) -> done_cycle."""

    def access(self, addr: int, size: int, is_write: bool, ready_cycle: int) -> int:
        raise NotImplementedError


@dataclass
class IdealMemory(AladdinMemoryModel):
    latency: int = 1

    def access(self, addr: int, size: int, is_write: bool, ready_cycle: int) -> int:
        return ready_cycle + self.latency


class SPMModel(AladdinMemoryModel):
    """Multi-ported scratchpad: fixed latency, limited accesses/cycle."""

    def __init__(self, latency: int = 1, read_ports: int = 2, write_ports: int = 1) -> None:
        self.latency = latency
        self.read_ports = read_ports
        self.write_ports = write_ports
        self._usage: dict[tuple[int, bool], int] = {}

    def access(self, addr: int, size: int, is_write: bool, ready_cycle: int) -> int:
        limit = self.write_ports if is_write else self.read_ports
        cycle = ready_cycle
        while self._usage.get((cycle, is_write), 0) >= limit:
            cycle += 1
        self._usage[(cycle, is_write)] = self._usage.get((cycle, is_write), 0) + 1
        return cycle + self.latency


class CacheModel(AladdinMemoryModel):
    """Set-associative cache with LRU, hit/miss latencies, line fills.

    Accesses are observed in trace order; temporal state (tags) evolves
    with the access stream, so changing size/line/assoc changes every
    subsequent latency — and therefore the derived datapath.
    """

    def __init__(
        self,
        size: int = 4096,
        line_size: int = 64,
        assoc: int = 4,
        hit_latency: int = 2,
        miss_latency: int = 22,
    ) -> None:
        if size % (line_size * assoc) != 0:
            raise ValueError("cache size must divide into line_size*assoc sets")
        self.size = size
        self.line_size = line_size
        self.assoc = assoc
        self.hit_latency = hit_latency
        self.miss_latency = miss_latency
        self.num_sets = size // (line_size * assoc)
        self._sets: list[dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._lru = 0
        self.hits = 0
        self.misses = 0

    def access(self, addr: int, size: int, is_write: bool, ready_cycle: int) -> int:
        line = addr // self.line_size
        set_index = line % self.num_sets
        tags = self._sets[set_index]
        self._lru += 1
        if line in tags:
            tags[line] = self._lru
            self.hits += 1
            return ready_cycle + self.hit_latency
        self.misses += 1
        if len(tags) >= self.assoc:
            victim = min(tags, key=tags.get)
            del tags[victim]
        tags[line] = self._lru
        return ready_cycle + self.miss_latency
