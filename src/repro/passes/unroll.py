"""Loop unrolling.

The ILP-tuning knob of the flow: the paper shapes accelerator datapaths
by applying clang unroll pragmas before the IR reaches the simulator.
`LoopUnroll` fully unrolls canonical counted loops whose trip count is
a compile-time constant, or partially unrolls by a factor (clamped to a
divisor of the trip count so no remainder loop is needed).  Loops are
processed innermost-first; per-loop factors come from ``#pragma unroll``
annotations stored on the latch branch (``branch.unroll_factor``, where
0 means "full"), falling back to ``default_factor``.

Unrolling requires rotated (bottom-tested) loops: a header carrying the
phis and a latch ending in ``update; icmp; br header, exit``.  The
frontend emits exactly this shape for counted ``for`` loops.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    BlockRef,
    Branch,
    Call,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Instruction, Value
from repro.passes.loop_analysis import Loop, find_loops, trip_count
from repro.passes.pass_manager import FunctionPass


class UnrollError(RuntimeError):
    pass


def clone_instruction(inst: Instruction, value_map: dict, block_map: dict) -> Instruction:
    """Clone one non-phi instruction, remapping operands and targets."""

    def val(operand: Value) -> Value:
        return value_map.get(operand, operand)

    if isinstance(inst, BinaryOp):
        clone = BinaryOp(inst.opcode, val(inst.lhs), val(inst.rhs))
    elif isinstance(inst, ICmp):
        clone = ICmp(inst.pred, val(inst.operands[0]), val(inst.operands[1]))
    elif isinstance(inst, FCmp):
        clone = FCmp(inst.pred, val(inst.operands[0]), val(inst.operands[1]))
    elif isinstance(inst, Select):
        clone = Select(val(inst.operands[0]), val(inst.operands[1]), val(inst.operands[2]))
    elif isinstance(inst, Cast):
        clone = Cast(inst.opcode, val(inst.src), inst.type)
    elif isinstance(inst, Alloca):
        clone = Alloca(inst.allocated_type)
    elif isinstance(inst, Load):
        clone = Load(val(inst.pointer))
    elif isinstance(inst, Store):
        clone = Store(val(inst.value), val(inst.pointer))
    elif isinstance(inst, GetElementPtr):
        clone = GetElementPtr(val(inst.pointer), [val(i) for i in inst.indices])
    elif isinstance(inst, Call):
        clone = Call(inst.callee, inst.type, [val(a) for a in inst.operands])
    elif isinstance(inst, Branch):
        if inst.is_conditional:
            clone = Branch(
                block_map.get(inst.true_target, inst.true_target),
                cond=val(inst.condition),
                if_false=block_map.get(inst.false_target, inst.false_target),
            )
        else:
            clone = Branch(block_map.get(inst.true_target, inst.true_target))
    elif isinstance(inst, Ret):
        clone = Ret(val(inst.return_value) if inst.return_value is not None else None)
    else:
        raise UnrollError(f"cannot clone instruction '{inst.opcode}'")
    return clone


def clone_region(
    func: Function,
    blocks: list[BasicBlock],
    seed_map: dict,
    suffix: str,
) -> tuple[list[BasicBlock], dict, dict]:
    """Clone ``blocks``, remapping intra-region values and branch targets.

    ``seed_map`` substitutes values up-front (header phi -> incoming
    value); substituted phis are *not* cloned.  Returns (new blocks,
    value map original->clone, block map).
    """
    block_map: dict[BasicBlock, BasicBlock] = {
        block: BasicBlock(func.unique_name(f"{block.name}.{suffix}."), func)
        for block in blocks
    }
    vmap = dict(seed_map)
    pairs: list[tuple[Instruction, Instruction]] = []
    phi_todo: list[tuple[Phi, Phi]] = []

    for block in blocks:
        new_block = block_map[block]
        for inst in block.instructions:
            if isinstance(inst, Phi):
                if inst in vmap:
                    continue  # substituted away by the seed
                clone: Instruction = Phi(inst.type)
                phi_todo.append((inst, clone))
            else:
                clone = clone_instruction(inst, vmap, block_map)
            if clone.produces_value:
                clone.name = func.unique_name(f"{inst.name}.{suffix}")
            clone.parent = new_block
            new_block.instructions.append(clone)
            pairs.append((inst, clone))
            vmap[inst] = clone

    for orig, clone in phi_todo:
        for value, pred in orig.incoming:
            clone.add_incoming(vmap.get(value, value), block_map.get(pred, pred))

    return [block_map[b] for b in blocks], vmap, block_map


class LoopUnroll(FunctionPass):
    name = "loop-unroll"

    def __init__(self, default_factor: int = 1, max_unrolled_insts: int = 200_000) -> None:
        self.default_factor = default_factor
        self.max_unrolled_insts = max_unrolled_insts

    def run(self, func: Function) -> bool:
        changed = False
        for _ in range(1000):  # re-discover loops after each transform
            loops = find_loops(func)
            target = self._pick_loop(loops)
            if target is None:
                break
            loop, factor = target
            self._unroll(func, loop, factor)
            changed = True
        return changed

    # ------------------------------------------------------------------
    def _pick_loop(self, loops: list[Loop]) -> Optional[tuple[Loop, int]]:
        for loop in loops:
            if not loop.is_canonical:
                continue
            term = loop.latch.terminator
            if getattr(term, "unroll_done", False):
                continue
            if self._contains_other_loop(loop, loops):
                continue
            count = trip_count(loop)
            if count is None:
                continue
            requested = getattr(term, "unroll_factor", self.default_factor)
            if requested == 0:  # pragma shorthand for "full"
                requested = count
            factor = self._effective_factor(requested, count, loop)
            if factor > 1:
                return loop, factor
            term.unroll_done = True  # nothing to do; never re-pick
        return None

    @staticmethod
    def _contains_other_loop(loop: Loop, loops: list[Loop]) -> bool:
        return any(other is not loop and other.header in loop.blocks for other in loops)

    def _effective_factor(self, requested: int, count: int, loop: Loop) -> int:
        requested = max(1, min(requested, count))
        body_size = sum(len(b) for b in loop.blocks)
        budget = max(1, self.max_unrolled_insts // max(1, body_size))
        requested = min(requested, budget)
        if requested >= count:
            return count
        while requested > 1 and count % requested != 0:
            requested -= 1
        return requested

    # ------------------------------------------------------------------
    def _unroll(self, func: Function, loop: Loop, factor: int) -> None:
        count = trip_count(loop)
        assert count is not None and factor >= 2
        full = factor >= count

        header, latch = loop.header, loop.latch
        orig_term = latch.terminator
        assert isinstance(orig_term, Branch) and orig_term.is_conditional
        continue_on_true = orig_term.true_target is header
        orig_cond = orig_term.condition
        exit_block = next(t for t in orig_term.targets() if t not in loop.blocks)

        back_values: dict[Phi, Value] = {}
        preheader_values: dict[Phi, Value] = {}
        for phi in header.phis():
            for value, pred in phi.incoming:
                if pred in loop.blocks:
                    back_values[phi] = value
                else:
                    preheader_values[phi] = value

        ordered = self._loop_rpo(loop)

        prev_latch = latch
        prev_vmap: dict = {}
        all_new_blocks: list[BasicBlock] = []
        last_vmap: dict = {}
        iterations = count if full else factor

        for k in range(1, iterations):
            seed = {
                phi: prev_vmap.get(back, back) for phi, back in back_values.items()
            }
            new_blocks, vmap, block_map = clone_region(func, ordered, seed, f"u{k}")
            self._replace_terminator(prev_latch, Branch(block_map[header]))
            all_new_blocks.extend(new_blocks)
            prev_latch = block_map[latch]
            prev_vmap = vmap
            last_vmap = vmap

        # Insert clones after the original latch, before rewiring (so
        # live-out fixes see a consistent block list).
        insert_at = func.blocks.index(latch) + 1
        func.blocks[insert_at:insert_at] = all_new_blocks

        if full:
            # Map each loop value to its final-iteration version for
            # uses outside the loop (phi -> value *during* last iter).
            if iterations > 1:
                final_map = dict(last_vmap)
            else:
                final_map = dict(preheader_values)
            self._fix_live_outs(func, loop, all_new_blocks, prev_latch, final_map)
            self._replace_terminator(prev_latch, Branch(exit_block))
            self._substitute_header_phis(func, header, preheader_values)
        else:
            final_map = dict(last_vmap)
            self._fix_live_outs(func, loop, all_new_blocks, prev_latch, final_map)
            # Last clone's latch becomes the new backedge to the original
            # header, preserving branch orientation.
            cond_clone = last_vmap.get(orig_cond, orig_cond)
            if continue_on_true:
                new_term = Branch(header, cond=cond_clone, if_false=exit_block)
            else:
                new_term = Branch(exit_block, cond=cond_clone, if_false=header)
            new_term.unroll_done = True
            self._replace_terminator(prev_latch, new_term)
            for phi in header.phis():
                for j, (value, pred) in enumerate(phi.incoming):
                    if pred in loop.blocks:
                        mapped = last_vmap.get(back_values[phi], back_values[phi])
                        phi.incoming[j] = (mapped, prev_latch)
                phi.operands = [v for v, __ in phi.incoming]

    @staticmethod
    def _loop_rpo(loop: Loop) -> list[BasicBlock]:
        """Loop blocks in reverse post-order from the header (back edge
        ignored), so cloning never sees a forward reference."""
        in_loop = set(map(id, loop.blocks))
        visited: set[int] = {id(loop.header)}
        postorder: list[BasicBlock] = []

        def dfs(block: BasicBlock) -> None:
            for succ in block.successors():
                if id(succ) in in_loop and id(succ) not in visited:
                    visited.add(id(succ))
                    dfs(succ)
            postorder.append(block)

        dfs(loop.header)
        ordered = list(reversed(postorder))
        # Defensive: include any loop block unreachable from the header
        # without the back edge (should not happen for natural loops).
        for block in loop.blocks:
            if id(block) not in visited:
                ordered.append(block)
        return ordered

    @staticmethod
    def _replace_terminator(block: BasicBlock, new_term: Branch) -> None:
        old = block.instructions.pop()
        assert old.is_terminator
        new_term.parent = block
        block.instructions.append(new_term)

    @staticmethod
    def _substitute_header_phis(func: Function, header: BasicBlock, values: dict) -> None:
        for phi in header.phis():
            replacement = values[phi]
            for block in func.blocks:
                for inst in block.instructions:
                    if inst is not phi:
                        inst.replace_operand(phi, replacement)
            header.instructions.remove(phi)

    @staticmethod
    def _fix_live_outs(func, loop, new_blocks, last_latch, final_map) -> None:
        inside = set(map(id, loop.blocks)) | set(map(id, new_blocks))
        for block in func.blocks:
            if id(block) in inside:
                continue
            for inst in block.instructions:
                if isinstance(inst, Phi):
                    for j, (value, pred) in enumerate(inst.incoming):
                        new_pred = (
                            last_latch
                            if pred is loop.latch and pred is not last_latch
                            else pred
                        )
                        # Loop-defined values reaching any outside phi flow
                        # through (or after) the final iteration, so they
                        # always remap to the final clone's version.
                        inst.incoming[j] = (final_map.get(value, value), new_pred)
                    inst.operands = [v for v, __ in inst.incoming]
                else:
                    for operand in list(inst.operands):
                        if operand in final_map:
                            inst.replace_operand(operand, final_map[operand])
