"""Fig. 12 — area validation vs the Design-Compiler-style reference.

Same set as Fig. 10 minus MD-Grid (excluded in the paper because custom
IPs blocked Design Compiler's area report).  Expected shape (paper:
avg ~2.24%): small single-digit underestimates from unmodelled
interconnect/control area.
"""

import numpy as np

from conftest import SEED, save_and_print
from repro.dse import format_table
from repro.hls import rtl_area_reference
from repro.system.soc import StandaloneAccelerator
from repro.workloads import get_workload

BENCHES = ["fft", "gemm", "md_knn", "nw", "spmv", "stencil2d", "stencil3d"]


def test_fig12(benchmark):
    def run():
        rows = []
        for name in BENCHES:
            workload = get_workload(name)
            acc = StandaloneAccelerator(
                workload.source, workload.func_name, memory="spm", spm_bytes=1 << 14
            )
            data = workload.make_data(np.random.default_rng(SEED))
            args, __ = workload.stage(acc, data)
            result = acc.run(args)
            salam_area = result.area.datapath_um2
            reference = rtl_area_reference(
                result.area,
                result.fu_counts,
                acc.unit.iface.static.register_bits,
                acc.profile,
            ) - result.area.spm_um2
            rows.append(
                {
                    "benchmark": name,
                    "salam_um2": salam_area,
                    "reference_um2": reference,
                    "error_pct": 100.0 * (salam_area - reference) / reference,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    avg = float(np.mean([abs(r["error_pct"]) for r in rows]))
    rows.append({"benchmark": "AVERAGE |err|", "error_pct": avg})
    save_and_print(
        "fig12_area_validation",
        format_table(rows, title="Fig. 12: area validation (SALAM vs DC-style reference)",
                     float_fmt="{:+.3f}"),
    )
    assert avg < 8.0, f"average area error too large: {avg:.2f}%"
    for row in rows[:-1]:
        assert row["error_pct"] < 0, "first-order model must underestimate synthesis area"
        assert abs(row["error_pct"]) < 15.0
