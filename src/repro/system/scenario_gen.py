"""Seeded scenario generation and static/dynamic cross-validation.

Emits randomized-but-lint-clean multi-accelerator topologies — elementwise
pipeline stages over private or shared scratchpads, or a two-way fanout —
plus deliberately racy variants of the same topologies.  Each generated
scenario carries its *plan*: the ordered list of host driver steps, with
the exact byte ranges every stage reads and writes.  From that one plan
we derive both

* the runnable platform (a `SoC` with compiled stage kernels and a host
  driver generator), and
* the static `ConcurrencyModel` the SYS304-306 lints check, *before*
  anything simulates.

`cross_validate` closes the loop: over many seeds it asserts that the
static verdict is never NEGATIVE when the runtime `AccessSanitizer`
observes a real race, that clean scenarios are clean both ways, and that
attaching the sanitizer never changes simulated timing or results.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import DeviceConfig
from repro.core.mmr import ARGS_OFFSET, CTRL_IRQ_EN, CTRL_START
from repro.build.pipeline import build_module
from repro.hw.default_profile import default_profile
from repro.system.soc import build_soc

TOPOLOGIES = ("chain_private", "chain_shared", "fanout")

#: Racy mutations applicable per topology.
MUTATIONS = {
    "chain_private": ("missing_wait", "early_start"),
    "chain_shared": ("missing_wait", "early_start"),
    "fanout": ("overlap_fanout", "early_start"),
}

_N_CHOICES = (8, 16, 24, 32)

_STAGE_SOURCE = """
void stage(double in[{n}], double out[{n}]) {{
  for (int i = 0; i < {n}; i++) {{
    out[i] = in[i] * 2.0 + 1.0;
  }}
}}
"""


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything `build` needs, derived deterministically from a seed."""

    seed: int
    topology: str
    stages: int
    n: int  # doubles per stage
    mutation: Optional[str] = None  # None = clean

    @property
    def racy(self) -> bool:
        return self.mutation is not None

    @property
    def name(self) -> str:
        suffix = f":{self.mutation}" if self.mutation else ""
        return f"gen:{self.seed}:{self.topology}{suffix}"


def generate(seed: int, racy: bool = False) -> ScenarioSpec:
    """Deterministic spec for ``seed`` (same seed -> same scenario)."""
    rng = random.Random(seed)
    topology = rng.choice(TOPOLOGIES)
    stages = rng.randint(2, 3) if topology.startswith("chain") else 2
    n = rng.choice(_N_CHOICES)
    mutation = rng.choice(MUTATIONS[topology]) if racy else None
    return ScenarioSpec(seed, topology, stages, n, mutation)


def parse_gen_spec(text: str) -> ScenarioSpec:
    """Parse a ``gen:SEED`` / ``gen:SEED:racy`` CLI form."""
    parts = text.split(":")
    if parts[0] != "gen" or len(parts) not in (2, 3):
        raise ValueError(f"bad generated-scenario spec '{text}' "
                         "(expected gen:SEED or gen:SEED:racy)")
    try:
        seed = int(parts[1])
    except ValueError:
        raise ValueError(f"bad seed in '{text}'")
    racy = len(parts) == 3
    if racy and parts[2] != "racy":
        raise ValueError(f"bad variant '{parts[2]}' in '{text}' "
                         "(only 'racy' is recognized)")
    return generate(seed, racy=racy)


# ----------------------------------------------------------------------
# Kernel compilation (memoized per stage length)
# ----------------------------------------------------------------------

_GEN_STORE = None
_STAGE_MODULES: dict = {}


def _stage_module(n: int):
    global _GEN_STORE
    if n not in _STAGE_MODULES:
        if _GEN_STORE is None:
            from repro.build.store import ArtifactStore

            _GEN_STORE = ArtifactStore()
        source = _STAGE_SOURCE.format(n=n)
        _STAGE_MODULES[n] = build_module(source, f"stage{n}",
                                         store=_GEN_STORE).module
    return _STAGE_MODULES[n]


# ----------------------------------------------------------------------
# Build: spec -> platform + plan
# ----------------------------------------------------------------------

class GeneratedScenario:
    """A built (but not yet simulated) generated scenario.

    ``plan`` is the host driver as data — a list of steps:

    * ``("dma", src, dst, size)``       blocking cluster-DMA copy
    * ``("start", i, args, reads, writes)``  program + start stage ``i``,
      whose launch will read/write the given ``(base, size)`` ranges
    * ``("wait", i)``                   block on stage ``i``'s IRQ line

    `static_model` and the runnable driver are both derived from it, so
    the lint and the simulation describe the same scenario by
    construction.
    """

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        self._ran = False
        rng = np.random.default_rng(spec.seed)
        self.input = rng.uniform(-1.0, 1.0, spec.n)

        self.soc = build_soc(dram_size=1 << 20)
        self.d_in = self.soc.dram.image.alloc_array(self.input)
        self.d_out = self.soc.dram.image.alloc(spec.n * 8)

        shared = 0 if spec.topology == "chain_private" else 1 << 13
        cluster = self.soc.add_cluster("cl", shared_spm_bytes=shared)
        self.cluster = cluster
        profile = default_profile()
        config = DeviceConfig(clock_freq_hz=100e6, read_ports=2, write_ports=2)

        nbytes = spec.n * 8
        num_units = spec.stages if spec.topology.startswith("chain") else 2
        kernel_n = spec.n if spec.topology.startswith("chain") else spec.n // 2
        module = _stage_module(kernel_n)
        self.units = []
        for i in range(num_units):
            private = nbytes * 2 if spec.topology == "chain_private" else 0
            unit = cluster.add_accelerator(
                f"s{i}", module, "stage", profile, config=config,
                private_spm_bytes=private,
            )
            if spec.topology != "chain_private":
                cluster.route_to_global(unit, cluster.shared_spm.range)
            unit.comm.connect_irq(self.soc.irq.line(i))
            self.units.append(unit)
        self.dma = cluster.dma
        self.soc.finalize()
        self.plan = self._make_plan()

    # -- plan construction -----------------------------------------------
    def _make_plan(self) -> list[tuple]:
        spec = self.spec
        nbytes = spec.n * 8
        rng = random.Random(spec.seed ^ 0x5CE11A)  # mutation placement
        plan: list[tuple] = []

        if spec.topology == "chain_private":
            bases = [u.private_spm.range.start for u in self.units]
            ins = [b for b in bases]
            outs = [b + nbytes for b in bases]
            plan.append(("dma", self.d_in, ins[0], nbytes))
            for i in range(spec.stages):
                plan.append(("start", i, [ins[i], outs[i]],
                             [(ins[i], nbytes)], [(outs[i], nbytes)]))
                plan.append(("wait", i))
                if i < spec.stages - 1:
                    plan.append(("dma", outs[i], ins[i + 1], nbytes))
            plan.append(("dma", outs[-1], self.d_out, nbytes))

        elif spec.topology == "chain_shared":
            base = self.cluster.shared_spm.range.start
            bufs = [base + i * nbytes for i in range(spec.stages + 1)]
            plan.append(("dma", self.d_in, bufs[0], nbytes))
            for i in range(spec.stages):
                plan.append(("start", i, [bufs[i], bufs[i + 1]],
                             [(bufs[i], nbytes)], [(bufs[i + 1], nbytes)]))
                plan.append(("wait", i))
            plan.append(("dma", bufs[-1], self.d_out, nbytes))

        else:  # fanout
            base = self.cluster.shared_spm.range.start
            s_in, s_out = base, base + nbytes
            half = nbytes // 2
            out1 = s_out + half
            if spec.mutation == "overlap_fanout":
                # Slide s1's output window back so the halves collide.
                out1 -= 8 * rng.randint(1, spec.n // 2)
            plan.append(("dma", self.d_in, s_in, nbytes))
            plan.append(("start", 0, [s_in, s_out],
                         [(s_in, half)], [(s_out, half)]))
            plan.append(("start", 1, [s_in + half, out1],
                         [(s_in + half, half)], [(out1, half)]))
            plan.append(("wait", 0))
            plan.append(("wait", 1))
            plan.append(("dma", s_out, self.d_out, nbytes))

        if spec.mutation == "missing_wait":
            victim = rng.randrange(spec.stages)
            plan = [s for s in plan if s != ("wait", victim)]
        elif spec.mutation == "early_start":
            # Hoist the first start above the DMA-in that fills its input.
            first_start = next(i for i, s in enumerate(plan)
                               if s[0] == "start")
            step = plan.pop(first_start)
            plan.insert(0, step)
        return plan

    # -- static side -----------------------------------------------------
    def static_model(self):
        """Plan-derived `ConcurrencyModel` — no simulation required."""
        from repro.analysis.concurrency import ConcurrencyModel

        model = ConcurrencyModel()
        host = self.soc.host.name
        model.add_agent(host, "host")
        pending_done: list[str] = []
        compute_label: dict[int, str] = {}
        for idx, step in enumerate(self.plan):
            kind = step[0]
            label = f"{host}@{idx}:{kind}"
            model.add_op(host, label, "host")
            for done in pending_done:
                model.add_edge(done, label)
            pending_done = []
            if kind == "dma":
                _, src, dst, size = step
                dlabel = f"{self.dma.name}@{idx}"
                model.add_op(self.dma.name, dlabel, "dma",
                             reads=[(src, size)], writes=[(dst, size)])
                model.add_edge(label, dlabel)
                model.add_wait(host, self.dma.name, "dma completion")
                pending_done.append(dlabel)
            elif kind == "start":
                _, i, _args, reads, writes = step
                clabel = f"{self.units[i].name}#0"
                model.add_op(self.units[i].name, clabel, "compute",
                             reads, writes)
                model.add_edge(label, clabel)
                compute_label[i] = clabel
            elif kind == "wait":
                i = step[1]
                if i in compute_label:
                    model.add_edge(compute_label[i], label)
                model.add_wait(host, self.units[i].name, f"irq {i}")
        return model

    def static_report(self):
        """Full SYS301-306 report, statically (pre-run)."""
        from repro.analysis.concurrency import describe_concurrency
        from repro.analysis.syslint import describe_soc, lint_system

        desc = describe_soc(self.soc)
        # Prefer the post-run extraction when a run already happened (the
        # two models should agree); otherwise use the plan-derived one.
        desc.concurrency = (describe_concurrency(self.soc) if self._ran
                            else self.static_model())
        return lint_system(desc)

    # -- dynamic side ----------------------------------------------------
    def golden(self) -> np.ndarray:
        x = self.input
        if self.spec.topology.startswith("chain"):
            for _ in range(self.spec.stages):
                x = x * 2.0 + 1.0
            return x
        return x * 2.0 + 1.0

    def _driver(self, h):
        for step in self.plan:
            kind = step[0]
            if kind == "dma":
                _, src, dst, size = step
                yield h.dma_copy(self.dma, src, dst, size)
            elif kind == "start":
                _, i, args, _reads, _writes = step
                mmr = self.units[i].comm.mmr.range.start
                for k, value in enumerate(args):
                    yield h.write_mmr(mmr + ARGS_OFFSET + 8 * k, value)
                yield h.write_mmr(mmr, CTRL_START | CTRL_IRQ_EN)
            elif kind == "wait":
                yield h.wait_irq(step[1])

    def run(self, sanitize: bool = False,
            max_tick: int = 2_000_000_000) -> dict:
        """Simulate once; returns stats + the sanitizer's verdict.

        Racy scenarios may compute garbage (that is the point) — the
        result reports ``verified`` but never raises for a mismatch.
        """
        if self._ran:
            raise RuntimeError("GeneratedScenario.run is single-shot; "
                               "build() a fresh one")
        self._ran = True
        sanitizer = None
        if sanitize:
            from repro.sim.sanitizer import AccessSanitizer

            sanitizer = self.soc.system.attach_sanitizer(AccessSanitizer())
        host = self.soc.host
        host.run_driver(self._driver(host))
        sim = self.soc.simulation()
        sim.run(max_tick=max_tick)
        out = self.soc.dram.image.read_array(self.d_out, np.float64,
                                             self.spec.n)
        verified = bool(host.finished
                        and np.allclose(out, self.golden(),
                                        rtol=1e-9, atol=1e-12))
        return {
            "scenario": self.spec.name,
            "finished": host.finished,
            "finish_tick": host.finish_tick if host.finished else None,
            "output": out.tolist(),
            "verified": verified,
            "sanitizer": sanitizer.summary() if sanitizer else None,
        }


def build(spec: ScenarioSpec) -> GeneratedScenario:
    return GeneratedScenario(spec)


# ----------------------------------------------------------------------
# Cross-validation harness
# ----------------------------------------------------------------------

def _static_rules(spec: ScenarioSpec) -> set[str]:
    report = build(spec).static_report()
    return {d.code for d in report.diagnostics}


def cross_validate(num_seeds: int = 26, base_seed: int = 0) -> dict:
    """Static-vs-sanitizer agreement over ``2 * num_seeds`` scenarios.

    For every seed, checks that

    * the clean variant is SYS304/305-free statically, sanitizer-clean
      dynamically, and byte/tick-identical with and without the
      sanitizer attached (the zero-overhead claim);
    * whenever the sanitizer observes a race in the racy variant, the
      static lint reported SYS304 (no static false negatives).

    Returns a summary dict; ``violations`` is empty iff everything held.
    """
    violations: list[str] = []
    races_observed = 0
    for seed in range(base_seed, base_seed + num_seeds):
        spec = generate(seed)
        rules = _static_rules(spec)
        if rules & {"SYS304", "SYS305"}:
            violations.append(f"{spec.name}: clean scenario flagged "
                              f"{sorted(rules & {'SYS304', 'SYS305'})}")
        plain = build(spec).run()
        sanitized = build(spec).run(sanitize=True)
        if not plain["verified"]:
            violations.append(f"{spec.name}: clean run failed verification")
        if not sanitized["sanitizer"]["clean"]:
            violations.append(f"{spec.name}: sanitizer flagged a clean "
                              "scenario")
        if (plain["finish_tick"] != sanitized["finish_tick"]
                or plain["output"] != sanitized["output"]):
            violations.append(f"{spec.name}: sanitize=True changed the "
                              "simulation")

        rspec = generate(seed, racy=True)
        rrules = _static_rules(rspec)
        rrun = build(rspec).run(sanitize=True)
        if rrun["sanitizer"]["races"]:
            races_observed += 1
            if "SYS304" not in rrules:
                violations.append(f"{rspec.name}: sanitizer saw a race "
                                  "but SYS304 did not fire (static false "
                                  "negative)")
    return {
        "seeds": num_seeds,
        "scenarios": 2 * num_seeds,
        "races_observed": races_observed,
        "violations": violations,
    }
