"""Mini-C lexer."""

import pytest

from repro.frontend.lexer import Lexer, LexerError


def kinds(source):
    return [(t.kind, t.text) for t in Lexer(source).tokens if t.kind != "eof"]


def test_basic_tokens():
    assert kinds("int x = 42;") == [
        ("keyword", "int"), ("ident", "x"), ("op", "="), ("int", "42"), ("punct", ";"),
    ]


def test_float_literals():
    tokens = Lexer("1.5 2e3 3.25f .5").tokens
    values = [t.value for t in tokens if t.kind == "float"]
    assert values == [1.5, 2000.0, 3.25, 0.5]


def test_hex_literal():
    token = Lexer("0xFF").tokens[0]
    assert token.kind == "int" and token.value == 255


def test_maximal_munch_operators():
    assert [t.text for t in Lexer("a<<=b<=c<d++").tokens[:-1]] == [
        "a", "<<=", "b", "<=", "c", "<", "d", "++",
    ]


def test_comments_stripped():
    source = """
    int a; // line comment
    /* block
       comment */ int b;
    """
    assert [t.text for t in Lexer(source).tokens if t.kind == "ident"] == ["a", "b"]


def test_unterminated_block_comment():
    with pytest.raises(LexerError):
        Lexer("/* never ends")


def test_pragma_extraction():
    tokens = Lexer("#pragma unroll 4\nfor").tokens
    assert tokens[0].kind == "pragma"
    assert tokens[0].text == "unroll 4"
    assert tokens[1].text == "for"


def test_other_directives_ignored():
    tokens = Lexer('#include "foo.h"\nint x;').tokens
    assert tokens[0].kind == "keyword"


def test_line_numbers():
    tokens = Lexer("a\nb\n\nc").tokens
    assert [t.line for t in tokens[:-1]] == [1, 2, 4]


def test_unexpected_character():
    with pytest.raises(LexerError):
        Lexer("int $bad;")
