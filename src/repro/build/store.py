"""Content-addressed store of build artifacts.

The compile-side sibling of `repro.exec.cache.RunCache`: keys are
SHA-256 hashes of (source, function, canonical pass-pipeline spec) —
see `repro.build.artifact.artifact_key` — and values are pickled
`Artifact`s.  Entries live in memory and, when a ``path`` is given, as
``<key>.art`` files on disk, so repeated sweeps across program
invocations skip the frontend entirely.

The on-disk mirror follows the same crash-safety discipline as
`RunCache`: `put` writes a temp file and atomically renames it into
place, and anything that fails to unpickle (truncated write, foreign
bytes, stale class layout) is renamed to ``<key>.art.corrupt`` and
treated as a miss instead of poisoning later builds.

`get` always rehydrates from the pickled bytes, so callers can never
mutate a stored module in place — every hit is a private copy.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import threading
from pathlib import Path
from typing import Optional, Union

from repro.build.artifact import Artifact


class ArtifactStore:
    """Key -> `Artifact` store with hit/miss/quarantine accounting."""

    SUFFIX = ".art"

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else None
        if self.path is not None:
            self.path.mkdir(parents=True, exist_ok=True)
        self._memory: dict[str, bytes] = {}
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    # ------------------------------------------------------------------
    def _entry(self, key: str) -> Optional[Path]:
        return None if self.path is None else self.path / f"{key}{self.SUFFIX}"

    def _load(self, key: str) -> Optional[Artifact]:
        blob = self._memory.get(key)
        entry = self._entry(key)
        if blob is None:
            if entry is None:
                return None
            try:
                blob = entry.read_bytes()
            except OSError:
                return None  # absent (or unreadable): plain miss
        try:
            artifact = pickle.loads(blob)
        except Exception:  # noqa: BLE001 - any unpickling failure is corruption
            self._quarantine(key, entry)
            return None
        if not isinstance(artifact, Artifact) or artifact.key != key:
            # Readable pickle, wrong contents (e.g. a renamed entry).
            self._quarantine(key, entry)
            return None
        self._memory.setdefault(key, blob)
        return artifact

    def _quarantine(self, key: str, entry: Optional[Path]) -> None:
        """Move a corrupt entry aside (``*.art.corrupt`` escapes the
        ``*.art`` glob) and forget its in-memory bytes."""
        self.quarantined += 1
        self._memory.pop(key, None)
        if entry is not None:
            with contextlib.suppress(OSError):
                os.replace(entry, entry.parent / (entry.name + ".corrupt"))

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Artifact]:
        artifact = self._load(key)
        if artifact is None:
            self.misses += 1
            return None
        self.hits += 1
        artifact.meta = dict(artifact.meta, cached=True)
        return artifact

    def put(self, key: str, artifact: Artifact) -> None:
        blob = pickle.dumps(artifact)
        self._memory[key] = blob
        entry = self._entry(key)
        if entry is not None:
            # Atomic publish: readers see the old entry, no entry, or
            # the complete new one — never a partial write.  The temp
            # name is unique per writer thread, not just per process:
            # the job server's workers share one store.
            tmp = (entry.parent
                   / f"{entry.name}.tmp{os.getpid()}.{threading.get_ident()}")
            tmp.write_bytes(blob)
            os.replace(tmp, entry)

    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return self._load(key) is not None

    def __len__(self) -> int:
        if self.path is not None:
            on_disk = {entry.name[: -len(self.SUFFIX)]
                       for entry in self.path.glob(f"*{self.SUFFIX}")}
            return len(on_disk | set(self._memory))
        return len(self._memory)

    def clear(self) -> None:
        self._memory.clear()
        if self.path is not None:
            for pattern in (f"*{self.SUFFIX}", f"*{self.SUFFIX}.corrupt",
                            f"*{self.SUFFIX}.tmp*"):
                for entry in self.path.glob(pattern):
                    entry.unlink()
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        where = f" at {self.path}" if self.path else ""
        return (f"<ArtifactStore {len(self)} entries{where} "
                f"hits={self.hits} misses={self.misses}>")
