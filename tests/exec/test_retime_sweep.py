"""Retime mode of ParallelSweep: grouped capture + replay over a grid.

A retimed sweep must be indistinguishable from a full one in its rows
(byte-identical results) and fully distinguishable in its provenance
(engine_used / retimed columns, trace counters, datapath grouping) —
with automatic full-simulation fallback for points retiming cannot
soundly serve.
"""

import json

from repro.core.config import DeviceConfig
from repro.dse import sweep
from repro.exec.parallel import ParallelSweep
from repro.workloads import get_workload

GEMM_DSE = get_workload("gemm_dse")
GRID = {"ports": [1, 2, 4]}


def _configure(params):
    p = params["ports"]
    return dict(config=DeviceConfig(read_ports=p,
                                    write_ports=max(1, p // 2)),
                memory="spm", spm_bytes=1 << 16, spm_read_ports=p)


def _rows(points):
    return json.dumps([p.result.to_dict() for p in points], sort_keys=True)


def test_retimed_sweep_rows_match_full_simulation():
    full = ParallelSweep(verify=False, engine="graph").run(
        GEMM_DSE, GRID, _configure)
    executor = ParallelSweep(verify=False, retime=True)
    retimed = executor.run(GEMM_DSE, GRID, _configure)
    assert _rows(retimed) == _rows(full)
    # One datapath group: the first point captures, the rest replay.
    assert executor.datapath_groups == 1
    assert executor.trace_captures == 1
    assert executor.trace_hits == 2 and executor.trace_misses == 1
    assert executor.retimed_points == 2
    assert [p.retimed for p in retimed] == [False, True, True]
    assert retimed[0].engine_used == "graph"
    assert all(p.engine_used == "retime" for p in retimed[1:])


def test_engine_retime_is_equivalent_to_the_retime_flag():
    executor = ParallelSweep(verify=False, engine="retime")
    points = executor.run(GEMM_DSE, GRID, _configure)
    assert executor.retimed_points == 2
    assert all(p.ok for p in points)


def test_record_carries_stable_provenance_columns():
    points = ParallelSweep(verify=False, retime=True).run(
        GEMM_DSE, GRID, _configure)
    for point in points:
        row = point.record()
        assert "engine_used" in row and "fallback_reason" in row
        assert "retimed" in row
    # The columns exist on plain sweeps too (stable schema).
    plain = ParallelSweep(verify=False).run(
        GEMM_DSE, {"ports": [2]}, _configure)
    row = plain[0].record()
    assert row["engine_used"] == "dynamic"
    assert row["retimed"] is False


def test_faulty_point_falls_back_to_full_simulation():
    flip = "bit_flip@spm:access=1,addr=0x20000007,bit=6"
    executor = ParallelSweep(
        verify=False, retime=True,
        faults=lambda p: flip if p["ports"] == 2 else None)
    points = executor.run(GEMM_DSE, GRID, _configure)
    by_ports = {p.params["ports"]: p for p in points}
    assert by_ports[2].retimed is False
    assert by_ports[2].engine_used == "dynamic"
    assert by_ports[2].fallback_reason  # reason is recorded, not silent
    assert by_ports[4].retimed is True  # healthy points still replay


def test_datapath_grid_splits_into_groups():
    grid = {"ports": [1, 2], "unroll": [1, 2]}

    def configure(params):
        cfg = _configure(params)
        cfg["unroll_factor"] = params["unroll"]
        return cfg

    executor = ParallelSweep(verify=False, retime=True)
    points = executor.run(GEMM_DSE, grid, configure)
    # Two unroll factors -> two datapath groups -> two captures.
    assert executor.datapath_groups == 2
    assert executor.trace_captures == 2
    assert executor.retimed_points == 2
    assert all(p.ok for p in points)


def test_partition_report_flags_unclassified_grid_axes():
    def configure(params):
        cfg = _configure(params)
        cfg["burst"] = params["ports"]  # not a real accelerator kwarg
        return cfg

    executor = ParallelSweep(verify=False, retime=True, strict=False)
    executor.run(GEMM_DSE, {"ports": [1, 2]}, configure)
    report = executor.partition_report
    assert report is not None
    assert [d.code for d in report.diagnostics] == ["DEP204"]
    assert "burst" in report.diagnostics[0].message


def test_dse_sweep_passes_retime_through():
    points = sweep(GEMM_DSE, GRID, _configure, verify=False, retime=True)
    assert [p.retimed for p in points] == [False, True, True]
