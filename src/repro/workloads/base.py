"""Workload abstraction shared by all benchmark kernels."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np


@dataclass
class WorkloadData:
    """Staged arrays for one run: inputs, outputs, golden outputs."""

    inputs: dict[str, np.ndarray]
    output_names: list[str]
    golden: dict[str, np.ndarray]
    # Arrays written in place (e.g. FFT) appear in both inputs and golden.
    scalars: dict[str, object] = field(default_factory=dict)


@dataclass
class Workload:
    """A benchmark kernel: source + data + golden + verification."""

    name: str
    source: str
    func_name: str
    arg_order: list[str]                      # argument name -> staged array/scalar
    make_data: Callable[[np.random.Generator], WorkloadData]
    description: str = ""
    default_unroll: int = 1

    def stage(self, acc, data: WorkloadData) -> tuple[list, dict[str, int]]:
        """Allocate arrays in accelerator memory, build the arg list.

        Returns (args, addresses) where ``addresses`` maps array names to
        their staged base addresses (for later verification).
        """
        addresses: dict[str, int] = {}
        args = []
        for arg_name in self.arg_order:
            if arg_name in data.inputs:
                addr = acc.alloc_array(data.inputs[arg_name])
                addresses[arg_name] = addr
                args.append(addr)
            elif arg_name in data.scalars:
                args.append(data.scalars[arg_name])
            else:
                raise KeyError(f"{self.name}: no staged value for argument '{arg_name}'")
        return args, addresses

    def verify(self, acc, addresses: dict[str, int], data: WorkloadData,
               rtol: float = 1e-6, atol: float = 1e-9) -> None:
        """Compare staged output arrays against the golden model."""
        for name in data.output_names:
            expected = data.golden[name]
            actual = acc.read_array(addresses[name], expected.dtype, expected.size)
            if not np.allclose(actual, expected.ravel(), rtol=rtol, atol=atol):
                bad = np.argmax(
                    ~np.isclose(actual, expected.ravel(), rtol=rtol, atol=atol)
                )
                raise AssertionError(
                    f"{self.name}: output '{name}' mismatch at index {bad}: "
                    f"got {actual[bad]!r}, expected {expected.ravel()[bad]!r}"
                )

    def build(self, *, pipeline=None, unroll_factor: Optional[int] = None,
              store=None, trace_hub=None, verify_each: bool = False):
        """Compile this workload's kernel through the staged pipeline.

        Returns a `repro.build.Artifact` (``.module`` holds the IR).
        Honours ``default_unroll`` unless an explicit ``unroll_factor``
        (or full ``pipeline`` spec) overrides it, so the module built
        here matches what the simulator elaborates — callers that used
        to hand-roll ``compile_c(self.source, self.name)`` were silently
        dropping both the function name and the unroll default.
        """
        from repro.build.pipeline import build_module

        factor = self.default_unroll if unroll_factor is None else unroll_factor
        return build_module(self.source, self.func_name, pipeline=pipeline,
                            unroll_factor=factor, store=store,
                            trace_hub=trace_hub, verify_each=verify_each)

    def module(self, **build_kwargs):
        """The compiled kernel `Module` (shorthand for ``build().module``)."""
        return self.build(**build_kwargs).module

    def run_golden_interp(self, rng: Optional[np.random.Generator] = None):
        """Convenience: run functionally via the interpreter and verify.

        Used by tests to check that the compiled kernel computes what the
        golden model says, independent of any timing model.
        """
        from repro.ir.interpreter import Interpreter
        from repro.ir.memory import MemoryImage

        rng = rng or np.random.default_rng(7)
        data = self.make_data(rng)
        module = self.module()
        mem = MemoryImage(1 << 22, base=0x10000)
        addresses = {}
        args = []
        for arg_name in self.arg_order:
            if arg_name in data.inputs:
                addr = mem.alloc_array(np.ascontiguousarray(data.inputs[arg_name]))
                addresses[arg_name] = addr
                args.append(addr)
            else:
                args.append(data.scalars[arg_name])
        Interpreter(module, mem).run(self.func_name, args)
        for name in data.output_names:
            expected = data.golden[name]
            actual = mem.read_array(addresses[name], expected.dtype, expected.size)
            if not np.allclose(actual, expected.ravel(), rtol=1e-6, atol=1e-9):
                raise AssertionError(f"{self.name}: interpreter output '{name}' mismatch")
        return data
