"""HLS block scheduler unit-level behaviour."""

from repro.core.config import DeviceConfig
from repro.frontend import compile_c
from repro.hls.scheduler import _schedule_block
from repro.hw.default_profile import default_profile


def _block_schedules(source, func="f", config=None, unroll=1):
    module = compile_c(source, func, unroll_factor=unroll)
    profile = default_profile()
    config = config or DeviceConfig()
    return {
        block.name: _schedule_block(block, profile, config, 2, 1)
        for block in module.get_function(func).blocks
    }


def test_chain_latency_accumulates():
    # a*b then +c then *d: three dependent FP ops at 3 cycles each.
    src = "double f(double a, double b, double c, double d) { return (a * b + c) * d; }"
    schedules = _block_schedules(src)
    entry = next(iter(schedules.values()))
    assert entry.latency >= 9


def test_independent_ops_overlap():
    src_dependent = "double f(double a, double b) { return ((a * b) * a) * b; }"
    src_parallel = "double f(double a, double b) { return (a * a) * (b * b); }"
    dep = next(iter(_block_schedules(src_dependent).values())).latency
    par = next(iter(_block_schedules(src_parallel).values())).latency
    assert par < dep


def test_port_constraint_lengthens_schedule():
    src = """
    double f(double p[8]) {
      return p[0] + p[1] + p[2] + p[3] + p[4] + p[5] + p[6] + p[7];
    }
    """
    free = _block_schedules(src, config=DeviceConfig(read_ports=8))
    tight = _block_schedules(src, config=DeviceConfig(read_ports=1))
    assert next(iter(tight.values())).latency > next(iter(free.values())).latency


def test_fu_limit_raises_resource_ii():
    src = """
    void f(double a[16], double out[16]) {
      for (int i = 0; i < 16; i++) { out[i] = a[i] * 2.0; }
    }
    """
    free = _block_schedules(src, unroll=8)
    limited = _block_schedules(
        src, unroll=8, config=DeviceConfig(fu_limits={"fp_mul": 1})
    )
    free_ii = max(s.resource_ii for s in free.values())
    limited_ii = max(s.resource_ii for s in limited.values())
    assert limited_ii > free_ii


def test_loop_recurrence_ii_reflects_accumulator():
    src = """
    double f(double a[32]) {
      double s = 0;
      for (int i = 0; i < 32; i++) { s += a[i]; }
      return s;
    }
    """
    schedules = _block_schedules(src)
    loop_blocks = [s for name, s in schedules.items() if "loop" in name]
    # The fadd accumulation chain (latency 3) bounds the recurrence.
    assert any(s.recurrence_ii >= 3 for s in loop_blocks)


def test_control_delay_includes_condition_path():
    src = """
    void f(int a[8]) {
      for (int i = 0; i < 8; i++) { a[i] = i; }
    }
    """
    schedules = _block_schedules(src)
    loop = [s for name, s in schedules.items() if "loop.body" in name or "latch" in name]
    assert any(s.control_delay >= 2 for s in loop)  # add + icmp + fetch
