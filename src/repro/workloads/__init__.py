"""MachSuite-style benchmark kernels.

Each workload bundles: mini-C source for the accelerated kernel, a
dataset generator, a NumPy golden model, and staging helpers that place
inputs in accelerator memory and verify outputs.  Dataset sizes are
scaled down from stock MachSuite so a Python cycle-level simulator
finishes in seconds (documented per workload); every experiment uses
the same inputs on every simulator/reference, so comparisons remain
apples-to-apples.
"""

from repro.workloads.base import Workload, WorkloadData
from repro.workloads.registry import all_workload_names, get_workload
from repro.workloads import cnn

__all__ = [
    "Workload",
    "WorkloadData",
    "get_workload",
    "all_workload_names",
    "cnn",
]
