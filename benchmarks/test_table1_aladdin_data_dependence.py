"""Table I — Aladdin datapath vs. data-dependent execution.

SPMV-CRS with a value-triggered bit shift, run on two datasets (one
containing trigger values, one not).  The trace-based baseline derives
a different functional-unit inventory for each dataset; gem5-SALAM's
statically elaborated CDFG is identical for both.

Expected shape (paper): FADD count changes between datasets and the
Int-Shifter appears only with the trigger dataset, while the static
datapath is fixed.
"""

import numpy as np

from conftest import SEED, save_and_print
from repro.baseline import generate_trace, simulate_trace
from repro.core.config import DeviceConfig
from repro.core.llvm_interface import LLVMInterface
from repro.dse import format_table
from repro.frontend import compile_c
from repro.hw.default_profile import default_profile
from repro.ir.memory import MemoryImage
from repro.workloads.spmv import SPMV_SHIFT, make_data_shift


def _aladdin_units(module, trigger, tmp_path, profile):
    data = make_data_shift(trigger)(np.random.default_rng(SEED))
    mem = MemoryImage(1 << 18, base=0x10000)
    args = []
    for name in SPMV_SHIFT.arg_order:
        if name in data.inputs:
            args.append(mem.alloc_array(np.ascontiguousarray(data.inputs[name])))
        else:
            args.append(data.scalars[name])
    trace = generate_trace(module, SPMV_SHIFT.func_name, args, mem,
                           tmp_path / f"spmv_{trigger}.gz")
    return simulate_trace(trace, profile).datapath


def test_table1(benchmark, tmp_path):
    profile = default_profile()
    module = compile_c(SPMV_SHIFT.source, SPMV_SHIFT.func_name)

    def run():
        rows = []
        for dataset, trigger in (("1 (no trigger)", False), ("2 (trigger)", True)):
            datapath = _aladdin_units(module, trigger, tmp_path, profile)
            rows.append(
                {
                    "simulator": "Aladdin (trace)",
                    "dataset": dataset,
                    "FMUL": datapath.units("fp_mul"),
                    "FADD": datapath.units("fp_add"),
                    "IntShifter": datapath.units("shifter"),
                }
            )
        iface = LLVMInterface(module, SPMV_SHIFT.func_name, profile, DeviceConfig())
        for dataset in ("1 (no trigger)", "2 (trigger)"):
            rows.append(
                {
                    "simulator": "SALAM (static CDFG)",
                    "dataset": dataset,
                    "FMUL": iface.cdfg.fu_counts.get("fp_mul", 0),
                    "FADD": iface.cdfg.fu_counts.get("fp_add", 0),
                    "IntShifter": iface.cdfg.fu_counts.get("shifter", 0),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_and_print(
        "table1_aladdin_data_dependence",
        format_table(rows, title="Table I: datapath FUs vs input data (SPMV-CRS + shift)"),
    )

    aladdin = [r for r in rows if r["simulator"].startswith("Aladdin")]
    salam = [r for r in rows if r["simulator"].startswith("SALAM")]
    # Aladdin's datapath moves with the data...
    assert aladdin[0]["IntShifter"] == 0 and aladdin[1]["IntShifter"] >= 1
    assert aladdin[1]["FADD"] > aladdin[0]["FADD"]
    # ...SALAM's does not.
    assert salam[0] == {**salam[1], "dataset": salam[0]["dataset"]}
    assert salam[0]["IntShifter"] >= 1  # shift is part of the static datapath
