"""CFG simplification.

Three cleanups that matter after unrolling and branch folding:

1. remove unreachable blocks (fixing phis that referenced them);
2. merge a block into its unique predecessor when that predecessor
   branches unconditionally to it and it is the predecessor's only
   successor ("straight-line fusion");
3. fold single-incoming phis into plain values.
"""

from __future__ import annotations

from repro.ir.dominance import DominatorTree
from repro.ir.instructions import Branch, Phi
from repro.ir.module import BasicBlock, Function
from repro.passes.pass_manager import FunctionPass


class SimplifyCFG(FunctionPass):
    name = "simplify-cfg"

    def run(self, func: Function) -> bool:
        changed = False
        while True:
            round_changed = (
                self._remove_unreachable(func)
                | self._fold_single_incoming_phis(func)
                | self._merge_straight_line(func)
            )
            changed |= round_changed
            if not round_changed:
                return changed

    # ------------------------------------------------------------------
    @staticmethod
    def _remove_unreachable(func: Function) -> bool:
        dt = DominatorTree(func)
        dead = [b for b in func.blocks if not dt.is_reachable(b)]
        if not dead:
            return False
        dead_ids = set(map(id, dead))
        for block in func.blocks:
            if id(block) in dead_ids:
                continue
            for phi in block.phis():
                phi.incoming = [
                    (v, p) for v, p in phi.incoming if id(p) not in dead_ids
                ]
                phi.operands = [v for v, __ in phi.incoming]
        for block in dead:
            func.remove_block(block)
        return True

    @staticmethod
    def _fold_single_incoming_phis(func: Function) -> bool:
        changed = False
        for block in func.blocks:
            for phi in list(block.phis()):
                if len(phi.incoming) != 1:
                    continue
                value = phi.incoming[0][0]
                for other_block in func.blocks:
                    for inst in other_block.instructions:
                        if inst is not phi:
                            inst.replace_operand(phi, value)
                block.remove(phi)
                changed = True
        return changed

    @staticmethod
    def _merge_straight_line(func: Function) -> bool:
        changed = False
        pred_map = func.predecessor_map()
        merged: set[int] = set()
        for block in list(func.blocks):
            if id(block) in merged:
                continue
            term = block.terminator
            if not isinstance(term, Branch) or term.is_conditional:
                continue
            succ = term.true_target
            if succ is block or succ is func.entry:
                continue
            if len(pred_map.get(succ, ())) != 1:
                continue
            merged.add(id(succ))
            if succ.phis():
                continue
            # Splice successor's instructions into this block.
            block.instructions.pop()  # drop the br
            for inst in succ.instructions:
                inst.parent = block
                block.instructions.append(inst)
            succ.instructions = []
            # Phis in the successor's successors referenced `succ` as a
            # predecessor; they now see `block`.
            new_term = block.terminator
            if isinstance(new_term, Branch):
                for target in new_term.targets():
                    for phi in target.phis():
                        phi.incoming = [
                            (v, block if p is succ else p) for v, p in phi.incoming
                        ]
            func.remove_block(succ)
            changed = True
        return changed
