"""Fig. 4 — total power breakdown with private SPM.

Stacked percentage contributions (dynamic FU / registers / SPM read /
SPM write, static FU / registers / SPM) for several MachSuite kernels
run with private scratchpads.  Expected shape: every category non-zero,
percentages summing to 100, FP-heavy kernels dominated by dynamic FU
power, SPM leakage visible for the SPM-resident benchmarks.
"""

import numpy as np
import pytest

from conftest import SEED, save_and_print
from repro.dse import format_table
from repro.system.soc import StandaloneAccelerator
from repro.workloads import get_workload

BENCHES = ["fft", "gemm", "md_knn", "nw", "spmv", "stencil2d", "stencil3d"]


def _run_one(name):
    workload = get_workload(name)
    acc = StandaloneAccelerator(
        workload.source, workload.func_name, memory="spm", spm_bytes=1 << 14
    )
    data = workload.make_data(np.random.default_rng(SEED))
    args, addresses = workload.stage(acc, data)
    result = acc.run(args)
    workload.verify(acc, addresses, data)
    return result


def test_fig4(benchmark):
    def run():
        rows = []
        for name in BENCHES:
            result = _run_one(name)
            row = {"benchmark": name, "total_mW": result.power.total_mw}
            row.update(
                {k: v for k, v in result.power.breakdown_percent().items()}
            )
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_and_print(
        "fig4_power_breakdown",
        format_table(rows, title="Fig. 4: % total power contribution (private SPM)",
                     float_fmt="{:.2f}"),
    )

    for row in rows:
        shares = [v for k, v in row.items() if k not in ("benchmark", "total_mW")]
        assert sum(shares) == pytest.approx(100.0, abs=0.1)
        assert row["dynamic_functional_units"] > 0
        assert row["static_spm"] > 0
        assert row["total_mW"] > 0
    # FP-heavy MD-KNN spends proportionally more in FUs than integer NW.
    by_name = {r["benchmark"]: r for r in rows}
    assert (
        by_name["md_knn"]["dynamic_functional_units"]
        > by_name["nw"]["dynamic_functional_units"]
    )
