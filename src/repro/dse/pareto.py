"""Pareto-front extraction for (time, power) trade-off studies."""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


def pareto_front(
    points: Sequence[T],
    objectives: Callable[[T], tuple[float, ...]],
) -> list[T]:
    """Minimizing Pareto front: points no other point dominates.

    A point dominates another if it is <= in every objective and < in
    at least one.
    """
    front: list[T] = []
    values = [objectives(p) for p in points]
    for i, candidate in enumerate(points):
        dominated = False
        for j, other in enumerate(points):
            if i == j:
                continue
            if all(a <= b for a, b in zip(values[j], values[i])) and any(
                a < b for a, b in zip(values[j], values[i])
            ):
                dominated = True
                break
        if not dominated:
            front.append(candidate)
    return front
