"""Dynamic LLVM runtime engine (Sec. III-B).

The execute-in-execute core of gem5-SALAM: the statically elaborated
CDFG is instantiated basic-block-by-basic-block into a reservation
queue at runtime; dynamic instances resolve their dependencies against
in-flight producers; compute operations occupy functional units for
their configured latencies; memory operations flow through read/write
queues into the accelerator memory controller; and branch instructions,
once their condition resolves against *real data*, immediately trigger
the fetch of the next basic block — which is what gives loop pipelining
and exact data-dependent control.

Timing model notes (documented deviations / choices):

* Results are computed at issue time (from real register values) but
  become architecturally visible at commit, ``latency`` cycles later;
  zero-latency operations (phis, muxes, wiring casts, branches) commit
  in the same cycle, modelling combinational chaining.
* A new dynamic instance of a static instruction waits for the previous
  instance of the same instruction to commit (no register renaming in
  the datapath), as described in the paper.
* Loads and stores disambiguate at runtime: an access waits for every
  earlier overlapping (or not-yet-resolved) conflicting access.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.core.config import DeviceConfig
from repro.core.llvm_interface import LLVMInterface
from repro.core.occupancy import OccupancyTracker
from repro.hw.profile import FU_NONE
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.module import BasicBlock
from repro.ir.semantics import (
    bytes_to_value,
    eval_binop,
    eval_cast,
    eval_fcmp,
    eval_icmp,
    eval_intrinsic,
    gep_address,
    signed_operand,
    value_to_bytes,
)
from repro.ir.values import Argument, Constant, Instruction, Value
from repro.mem.memctrl import AcceleratorMemController, MemRequest
from repro.sim.eventq import Event
from repro.sim.simobject import SimObject, System

# DynInst states.
WAITING = 0
READY = 1
ISSUED = 2
COMMITTED = 3


class EngineError(RuntimeError):
    """Fatal condition inside the runtime engine (bad operand, unsupported
    instruction, launch protocol violation)."""


#: Deprecated alias, kept for callers that imported the old name.
RuntimeError_ = EngineError


class DynInst:
    """A dynamic instance of a static CDFG node."""

    __slots__ = (
        "node", "seq", "state", "pending", "dependents", "operand_values",
        "result", "addr", "issue_cycle", "commit_cycle", "mem_request",
    )

    def __init__(self, node, seq: int) -> None:
        self.node = node
        self.seq = seq
        self.state = WAITING
        self.pending = 0
        self.dependents: list[DynInst] = []
        self.operand_values: dict[int, object] = {}
        self.result = None
        self.addr: Optional[int] = None
        self.issue_cycle = -1
        self.commit_cycle = -1
        self.mem_request: Optional[MemRequest] = None

    def __lt__(self, other: "DynInst") -> bool:
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DynInst #{self.seq} {self.node.inst.opcode} s{self.state}>"


class _FUAllocator:
    """Tracks functional-unit availability.

    Dedicated units (1-to-1 default) allow one issue per cycle when
    pipelined, or one outstanding op when not.  Pooled classes allow
    ``limit`` issues per cycle (pipelined) or ``limit`` outstanding ops
    (non-pipelined).
    """

    def __init__(self, iface: LLVMInterface, issued_stat=None,
                 stalled_stat=None) -> None:
        self.iface = iface
        self._dedicated_last_issue: dict[tuple[str, int], int] = {}
        self._dedicated_busy_until: dict[tuple[str, int], int] = {}
        self._pool_issues: dict[str, tuple[int, int]] = {}  # class -> (cycle, count)
        self._pool_inflight: dict[str, int] = {}
        self.inflight_by_class: dict[str, int] = {}
        # Per-class issue accounting (engine-owned VectorStats).  Every
        # acquire attempt on a real FU class lands in exactly one of the
        # two; FU_NONE ops never consume a unit and are not counted.
        self.issued_stat = issued_stat
        self.stalled_stat = stalled_stat

    def _spec(self, fu_class: str):
        return self.iface.profile.spec_for(fu_class)

    def _stalled(self, fu_class: str) -> bool:
        if self.stalled_stat is not None:
            self.stalled_stat.inc(fu_class)
        return False

    def try_acquire(self, node, cycle: int) -> bool:
        fu_class = node.fu_class
        if fu_class == FU_NONE:
            return True
        spec = self._spec(fu_class)
        latency = self.iface.latency_for_class(fu_class)
        if node.fu_instance is not None:  # dedicated unit
            key = (fu_class, node.fu_instance)
            if spec.pipelined:
                if self._dedicated_last_issue.get(key, -1) >= cycle:
                    return self._stalled(fu_class)
                self._dedicated_last_issue[key] = cycle
            else:
                if self._dedicated_busy_until.get(key, -1) >= cycle:
                    return self._stalled(fu_class)
                self._dedicated_busy_until[key] = cycle + max(1, latency) - 1
        else:  # pooled
            limit = self.iface.cdfg.fu_counts.get(fu_class, 0)
            if spec.pipelined:
                stamp, count = self._pool_issues.get(fu_class, (-1, 0))
                if stamp != cycle:
                    count = 0
                if count >= limit:
                    return self._stalled(fu_class)
                self._pool_issues[fu_class] = (cycle, count + 1)
            else:
                if self._pool_inflight.get(fu_class, 0) >= limit:
                    return self._stalled(fu_class)
                self._pool_inflight[fu_class] = self._pool_inflight.get(fu_class, 0) + 1
        self.inflight_by_class[fu_class] = self.inflight_by_class.get(fu_class, 0) + 1
        if self.issued_stat is not None:
            self.issued_stat.inc(fu_class)
        return True

    def release(self, node) -> None:
        fu_class = node.fu_class
        if fu_class == FU_NONE:
            return
        spec = self._spec(fu_class)
        if node.fu_instance is None and not spec.pipelined:
            self._pool_inflight[fu_class] -= 1
        self.inflight_by_class[fu_class] -= 1

    def busy_units(self) -> dict[str, int]:
        result = {}
        for fu_class, inflight in self.inflight_by_class.items():
            if inflight <= 0:
                continue
            units = self.iface.cdfg.fu_counts.get(fu_class, 0)
            result[fu_class] = min(inflight, units) if units else inflight
        return result


class RuntimeEngine(SimObject):
    """The runtime scheduler / compute unit core."""

    def __init__(
        self,
        name: str,
        system: System,
        iface: LLVMInterface,
        memctrl: AcceleratorMemController,
        clock=None,
        trace: bool = False,
    ) -> None:
        super().__init__(name, system, clock)
        self.iface = iface
        self.config: DeviceConfig = iface.config
        self.memctrl = memctrl
        self.trace = trace
        self.occupancy = OccupancyTracker()
        # Optional per-cycle instruction log (attach via
        # repro.core.debug.attach_trace); None costs one compare per
        # issue/commit.
        self.pipeline_trace = None

        self._seq = 0
        self._args: dict[Argument, object] = {}
        self._rename: dict[Value, DynInst] = {}
        self._ready: list[DynInst] = []          # heap by seq
        self._staged: list[DynInst] = []         # become ready next cycle (fetch)
        self._wake: list[DynInst] = []           # woken by commits (same cycle)
        self._window = 0                          # waiting+ready (not yet issued)
        self._mem_window: list[DynInst] = []      # outstanding memory ops
        self._fetch_queue: list[tuple[BasicBlock, Optional[BasicBlock]]] = []
        self._fetch_cursor = 0
        # Per-cycle FU issue accounting (issued/stalled acquire attempts
        # per class), surfaced through format_stats as
        # ``...engine.fu_issued::<class>`` / ``...engine.fu_issue_stalls::<class>``.
        self.stat_fu_issued = self.stats.vector(
            "fu_issued", "FU acquisitions per class")
        self.stat_fu_stalls = self.stats.vector(
            "fu_issue_stalls", "FU acquire attempts blocked per class")
        self._fu = _FUAllocator(iface, issued_stat=self.stat_fu_issued,
                                stalled_stat=self.stat_fu_stalls)
        self._inflight_compute = 0
        self._outstanding_reads = 0
        self._outstanding_writes = 0
        self._ret_seen = False
        self._running = False
        self._tick_event: Optional[Event] = None
        self._on_done: Optional[Callable[[], None]] = None
        self.start_cycle = -1
        self.end_cycle = -1
        # Monotonic commit counter; watchdogs read it to detect livelock
        # (engines are rebuilt per run, so it never needs resetting).
        self.committed = 0

        # Dynamic energy accounting (pJ).
        self.fu_energy_pj = 0.0
        self.register_energy_pj = 0.0

        self.stat_dyn_insts = self.stats.scalar("dynamic_instructions")
        self.stat_cycles = self.stats.scalar("active_cycles")
        self.stat_blocks = self.stats.scalar("blocks_fetched")
        self.stat_loads = self.stats.scalar("loads")
        self.stat_stores = self.stats.scalar("stores")

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def start(self, arg_values: list, on_done: Optional[Callable[[], None]] = None) -> None:
        """Begin execution of the accelerated function."""
        if self._running:
            raise EngineError(f"{self.name}: already running")
        func = self.iface.func
        if len(arg_values) != len(func.args):
            raise EngineError(
                f"{self.name}: expected {len(func.args)} arguments, got {len(arg_values)}"
            )
        self._args = dict(zip(func.args, arg_values))
        self._on_done = on_done
        self._running = True
        self._ret_seen = False
        self.start_cycle = self.cur_cycle
        self._fetch_queue.append((func.entry, None))
        self._schedule_tick()

    @property
    def running(self) -> bool:
        return self._running

    @property
    def total_cycles(self) -> int:
        if self.start_cycle < 0:
            return 0
        end = self.end_cycle if self.end_cycle >= 0 else self.cur_cycle
        return end - self.start_cycle

    def runtime_ns(self) -> float:
        return self.total_cycles * self.config.cycle_time_ns

    # ------------------------------------------------------------------
    # Hang diagnosis (consumed by repro.faults.watchdog.SimWatchdog)
    # ------------------------------------------------------------------
    def inflight_summary(self) -> str:
        """One-line progress snapshot of the engine's in-flight state."""
        return (
            f"{self.name}: window={self._window} "
            f"reads={self._outstanding_reads} writes={self._outstanding_writes} "
            f"compute={self._inflight_compute} committed={self.committed} "
            f"cycle={self.cur_cycle}"
        )

    def inflight_dump(self, limit: int = 32) -> list[str]:
        """Human-readable lines for every not-yet-committed instruction.

        Covers the ready heap, the fetch/wake staging lists, and the
        memory window — the queues a hang report needs to explain *what*
        the engine was waiting on.  If a `PipelineTrace` is attached its
        most recent records are appended for scheduling history.
        """
        state_names = {WAITING: "waiting", READY: "ready", ISSUED: "issued"}
        lines: list[str] = []
        seen: set[int] = set()
        for label, group in (("ready", self._ready), ("staged", self._staged),
                             ("wake", self._wake), ("mem", self._mem_window)):
            for dyn in group:
                if dyn.seq in seen or dyn.state == COMMITTED:
                    continue
                seen.add(dyn.seq)
                where = f" addr={dyn.addr:#x}" if dyn.addr is not None else ""
                state = state_names.get(dyn.state, f"s{dyn.state}")
                lines.append(
                    f"#{dyn.seq} {dyn.node.inst.opcode} "
                    f"[{state}/{label}] pending={dyn.pending}{where}"
                )
                if len(lines) >= limit:
                    lines.append("... (dump truncated)")
                    return lines
        if self.pipeline_trace is not None and self.pipeline_trace.events:
            lines.append("recent pipeline events:")
            for event in self.pipeline_trace.events[-8:]:
                lines.append(
                    f"cycle {event.cycle} {event.kind} #{event.seq} "
                    f"{event.opcode} {event.detail}".rstrip()
                )
        return lines

    def _schedule_tick(self) -> None:
        if self._tick_event is not None and self._tick_event.scheduled():
            return
        self._tick_event = Event(self._tick, priority=Event.CPU_TICK_PRI, name=f"{self.name}.tick")
        self.schedule_in_cycles(self._tick_event, 1)

    # ------------------------------------------------------------------
    # Fetch (reservation queue filling)
    # ------------------------------------------------------------------
    def _pump_fetch(self) -> None:
        while self._fetch_queue and self._window < self.config.reservation_window:
            block, pred = self._fetch_queue[0]
            insts = block.instructions
            if self._fetch_cursor == 0:
                self.stat_blocks.inc()
            while self._fetch_cursor < len(insts) and self._window < self.config.reservation_window:
                self._fetch_inst(insts[self._fetch_cursor], pred)
                self._fetch_cursor += 1
            if self._fetch_cursor >= len(insts):
                self._fetch_queue.pop(0)
                self._fetch_cursor = 0
            else:
                return

    def _fetch_inst(self, inst: Instruction, pred: Optional[BasicBlock]) -> None:
        node = self.iface.cdfg.node_for(inst)
        dyn = DynInst(node, self._seq)
        self._seq += 1
        self.stat_dyn_insts.inc()

        operands = self._operands_for(inst, pred)
        for index, operand in enumerate(operands):
            self._bind_operand(dyn, index, operand)
        # Same-destination-register hazard: wait for the previous dynamic
        # instance of this static instruction.
        if inst.produces_value:
            previous = self._rename.get(inst)
            if previous is not None and previous.state != COMMITTED:
                dyn.pending += 1
                previous.dependents.append(dyn)
            self._rename[inst] = dyn
        if node.is_memory:
            self._mem_window.append(dyn)
        self._window += 1
        if dyn.pending == 0:
            dyn.state = READY
            self._staged.append(dyn)

    @staticmethod
    def _operands_for(inst: Instruction, pred: Optional[BasicBlock]) -> list[Value]:
        if isinstance(inst, Phi):
            if pred is None:
                raise EngineError(f"phi {inst.ref} in entry block")
            return [inst.incoming_for(pred)]
        if isinstance(inst, Branch) and inst.is_conditional:
            return [inst.condition]
        if isinstance(inst, Branch):
            return []
        return list(inst.operands)

    def _bind_operand(self, dyn: DynInst, index: int, operand: Value) -> None:
        if isinstance(operand, Constant):
            dyn.operand_values[index] = operand.value
        elif isinstance(operand, Argument):
            dyn.operand_values[index] = self._args[operand]
        elif isinstance(operand, Instruction):
            producer = self._rename.get(operand)
            if producer is None:
                # Defined in a block not yet executed on this path —
                # legal only for values that are never actually used;
                # treat as zero.
                dyn.operand_values[index] = 0
            elif producer.state == COMMITTED:
                dyn.operand_values[index] = producer.result
            else:
                dyn.pending += 1
                producer.dependents.append((dyn, index))
                return
        else:
            raise EngineError(f"cannot bind operand {operand!r}")
        self._maybe_resolve_addr(dyn, index)

    @staticmethod
    def _maybe_resolve_addr(dyn: DynInst, index: int) -> None:
        # Resolve a memory op's address as soon as the address operand
        # lands, so disambiguation does not over-serialize on stores
        # whose *data* is still in flight.
        if dyn.node.is_load and index == 0:
            dyn.addr = dyn.operand_values[0]
        elif dyn.node.is_store and index == 1:
            dyn.addr = dyn.operand_values[1]

    # ------------------------------------------------------------------
    # The per-cycle tick
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self._tick_event = None
        cycle = self.cur_cycle
        self.stat_cycles.inc()

        # Newly fetched / newly woken instructions become schedulable.
        self._pump_fetch()
        for dyn in self._staged:
            heapq.heappush(self._ready, dyn)
        self._staged = []
        for dyn in self._wake:
            heapq.heappush(self._ready, dyn)
        self._wake = []

        issued_classes: list[str] = []
        issued_kinds: set[str] = set()
        issued_total = 0
        retry: list[DynInst] = []
        while self._ready:
            dyn = heapq.heappop(self._ready)
            outcome = self._try_issue(dyn, cycle, issued_classes, issued_kinds)
            if not outcome:
                retry.append(dyn)
                continue
            issued_total += 1
            # Zero-latency commits chain combinationally within the cycle.
            for woken in self._wake:
                heapq.heappush(self._ready, woken)
            self._wake = []
        for dyn in retry:
            heapq.heappush(self._ready, dyn)

        self.memctrl.pump()

        outstanding = set()
        if self._outstanding_reads:
            outstanding.add("load")
        if self._outstanding_writes:
            outstanding.add("store")
        if self._inflight_compute:
            outstanding.add("compute")
        blocked_kinds: dict[str, int] = {}
        for dyn in retry:
            if dyn.node.is_load:
                kind = "load"
            elif dyn.node.is_store:
                kind = "store"
            else:
                kind = "compute"
            blocked_kinds[kind] = blocked_kinds.get(kind, 0) + 1
        self.occupancy.record_cycle(
            issued=issued_classes,
            outstanding_kinds=frozenset(outstanding),
            busy_units=self._fu.busy_units(),
            issued_kinds=frozenset(issued_kinds),
            blocked_kinds=blocked_kinds,
            issued_total=issued_total,
        )
        hub = self._thub
        if hub is not None:
            # Sec. III-C2's per-cycle scheduling log: what issued, what
            # stalled (and why), what is still in flight.
            hub.emit(
                "sched", self.name, "cycle", self.clock.cycles_to_ticks(cycle),
                dur=self.clock.period,
                args={"issued": issued_total, "blocked": dict(blocked_kinds),
                      "outstanding": sorted(outstanding)},
            )

        if self._finished():
            self._complete()
            return
        self._schedule_tick()

    def _finished(self) -> bool:
        return (
            self._ret_seen
            and not self._ready
            and not self._staged
            and not self._wake
            and not self._fetch_queue
            and self._window == 0
            and self._inflight_compute == 0
            and self._outstanding_reads == 0
            and self._outstanding_writes == 0
        )

    def _complete(self) -> None:
        self.end_cycle = self.cur_cycle
        self._running = False
        self._mem_window.clear()
        if self._on_done is not None:
            done, self._on_done = self._on_done, None
            done()

    # ------------------------------------------------------------------
    # Issue
    # ------------------------------------------------------------------
    def _try_issue(self, dyn: DynInst, cycle: int, issued_classes, issued_kinds) -> bool:
        node = dyn.node
        inst = node.inst

        if node.is_load:
            return self._issue_load(dyn, issued_kinds)
        if node.is_store:
            return self._issue_store(dyn, issued_kinds)

        if node.is_compute and not self._fu.try_acquire(node, cycle):
            return False

        dyn.state = ISSUED
        dyn.issue_cycle = cycle
        self._window -= 1
        if self.pipeline_trace is not None:
            self._trace_issue(dyn)

        if node.is_compute:
            spec = self.iface.profile.spec_for(node.fu_class)
            self.fu_energy_pj += spec.dynamic_energy_pj
            issued_classes.append(node.fu_class)
            issued_kinds.add("fp" if node.fu_class.startswith("fp_") else "int")
            self._register_read_energy(inst)
            self._inflight_compute += 1

        result = self._execute(dyn)
        latency = self.iface.latency_for_class(node.fu_class) if node.is_compute else 0

        if node.is_branch:
            target = self._branch_target(dyn)
            self._fetch_queue.append((target, inst.parent))
        elif node.is_ret:
            self._ret_seen = True

        if latency == 0:
            if node.is_compute:
                self._commit_compute(dyn, result)
            else:
                self._commit(dyn, result)
        else:
            self.eventq.schedule_callback(
                lambda d=dyn, r=result: self._commit_compute(d, r),
                self.clock_edge(latency),
                name=f"{self.name}.commit",
            )
        return True

    def _commit_compute(self, dyn: DynInst, result) -> None:
        self._inflight_compute -= 1
        self._fu.release(dyn.node)
        self._commit(dyn, result)

    def _commit(self, dyn: DynInst, result) -> None:
        dyn.state = COMMITTED
        dyn.result = result
        dyn.commit_cycle = self.cur_cycle
        self.committed += 1
        if self.pipeline_trace is not None or self._thub is not None:
            self._trace_commit(dyn, result)
        if dyn.node.result_bits:
            self.register_energy_pj += (
                dyn.node.result_bits * self.iface.profile.register.write_energy_pj_per_bit
            )
        for entry in dyn.dependents:
            if isinstance(entry, tuple):
                dependent, index = entry
                dependent.operand_values[index] = result
                self._maybe_resolve_addr(dependent, index)
            else:
                dependent = entry
            dependent.pending -= 1
            if dependent.pending == 0 and dependent.state == WAITING:
                dependent.state = READY
                self._wake.append(dependent)
        dyn.dependents.clear()

    # ------------------------------------------------------------------
    # Tracing (pipeline log + hub; both optional, both cycle-neutral)
    # ------------------------------------------------------------------
    def _trace_issue(self, dyn: DynInst) -> None:
        detail = f"addr={dyn.addr:#x}" if dyn.addr is not None else ""
        self.pipeline_trace.record(
            dyn.issue_cycle, "issue", dyn.seq, dyn.node.inst.opcode, detail
        )

    def _trace_commit(self, dyn: DynInst, result) -> None:
        if self.pipeline_trace is not None:
            self.pipeline_trace.record(
                dyn.commit_cycle, "commit", dyn.seq, dyn.node.inst.opcode,
                "" if result is None else f"-> {result!r}"[:40],
            )
        hub = self._thub
        if hub is not None:
            # One span per dynamic instruction, issue edge -> commit edge.
            period = self.clock.period
            args = {"seq": dyn.seq}
            if dyn.addr is not None:
                args["addr"] = dyn.addr
            hub.emit(
                "compute", self.name, dyn.node.inst.opcode,
                dyn.issue_cycle * period,
                dur=(dyn.commit_cycle - dyn.issue_cycle) * period,
                args=args,
            )

    def _register_read_energy(self, inst: Instruction) -> None:
        bits = 0
        for operand in inst.operands:
            if isinstance(operand, (Instruction, Argument)) and operand.type.is_scalar:
                bits += operand.type.bit_width()
        self.register_energy_pj += bits * self.iface.profile.register.read_energy_pj_per_bit

    # ------------------------------------------------------------------
    # Execution semantics (execute-in-execute)
    # ------------------------------------------------------------------
    def _execute(self, dyn: DynInst):
        inst = dyn.node.inst
        vals = dyn.operand_values
        if isinstance(inst, BinaryOp):
            return eval_binop(inst.opcode, inst.type, vals[0], vals[1])
        if isinstance(inst, ICmp):
            return eval_icmp(inst.pred, inst.operands[0].type, vals[0], vals[1])
        if isinstance(inst, FCmp):
            return eval_fcmp(inst.pred, vals[0], vals[1])
        if isinstance(inst, Select):
            return vals[1] if vals[0] else vals[2]
        if isinstance(inst, Cast):
            return eval_cast(inst.opcode, inst.src.type, inst.type, vals[0])
        if isinstance(inst, GetElementPtr):
            indices = [
                signed_operand(vals[i + 1], idx.type)
                for i, idx in enumerate(inst.indices)
            ]
            return gep_address(inst, vals[0], indices)
        if isinstance(inst, Phi):
            return vals[0]
        if isinstance(inst, Call):
            if not inst.is_intrinsic:
                raise EngineError(
                    f"{self.name}: call to '@{inst.callee}' survived inlining; "
                    "accelerator functions must be fully inlined"
                )
            args = [vals[i] for i in range(len(inst.operands))]
            return eval_intrinsic(inst.callee, inst.type, args)
        if isinstance(inst, (Branch, Ret)):
            return None
        if isinstance(inst, Alloca):
            raise EngineError(
                f"{self.name}: alloca reached the datapath; arrays must live in "
                "SPM/DRAM and scalars should have been promoted by mem2reg"
            )
        raise EngineError(f"{self.name}: cannot execute '{inst.opcode}'")

    def _branch_target(self, dyn: DynInst) -> BasicBlock:
        inst = dyn.node.inst
        assert isinstance(inst, Branch)
        if not inst.is_conditional:
            return inst.true_target
        return inst.true_target if dyn.operand_values[0] else inst.false_target

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def _conflicts(self, dyn: DynInst) -> bool:
        """Runtime disambiguation: earlier conflicting accesses in flight."""
        addr = dyn.addr
        size = dyn.node.inst.type.size_bytes() if dyn.node.is_load else dyn.node.inst.value.type.size_bytes()
        strict = self.memctrl.is_strict(addr)
        for other in self._mem_window:
            if other.seq >= dyn.seq:
                break
            if other.state == COMMITTED:
                continue
            # Strictly-ordered device regions (stream FIFOs): accesses
            # must *enter the request queue* in program order, but may
            # pipeline — the FIFO services them in arrival order.
            if strict and other.addr is not None and other.addr == addr:
                if other.state == ISSUED:
                    continue  # already queued ahead of us, order preserved
                return True   # earlier access not queued yet: wait
            # Loads only conflict with earlier stores.
            if dyn.node.is_load and other.node.is_load:
                continue
            if other.addr is None:
                return True  # unresolved earlier address: conservative
            other_size = (
                other.node.inst.type.size_bytes()
                if other.node.is_load
                else other.node.inst.value.type.size_bytes()
            )
            if addr < other.addr + other_size and other.addr < addr + size:
                return True
        return False

    def _issue_load(self, dyn: DynInst, issued_kinds: set) -> bool:
        inst = dyn.node.inst
        if dyn.addr is None:
            dyn.addr = dyn.operand_values[0]
        if self._conflicts(dyn):
            return False
        if self._outstanding_reads >= self.config.read_queue_size:
            return False
        dyn.state = ISSUED
        dyn.issue_cycle = self.cur_cycle
        self._window -= 1
        if self.pipeline_trace is not None:
            self._trace_issue(dyn)
        self._outstanding_reads += 1
        self.stat_loads.inc()
        issued_kinds.add("load")
        size = inst.type.size_bytes()
        dyn.mem_request = self.memctrl.enqueue_read(
            dyn.addr, size, lambda req, d=dyn: self._load_done(d, req)
        )
        return True

    def _load_done(self, dyn: DynInst, request: MemRequest) -> None:
        self._outstanding_reads -= 1
        value = bytes_to_value(request.result, dyn.node.inst.type)
        self._mem_window.remove(dyn)
        self._commit(dyn, value)
        self._schedule_tick()

    def _issue_store(self, dyn: DynInst, issued_kinds: set) -> bool:
        inst = dyn.node.inst
        if dyn.addr is None:
            dyn.addr = dyn.operand_values[1]
        if self._conflicts(dyn):
            return False
        if self._outstanding_writes >= self.config.write_queue_size:
            return False
        dyn.state = ISSUED
        dyn.issue_cycle = self.cur_cycle
        self._window -= 1
        if self.pipeline_trace is not None:
            self._trace_issue(dyn)
        self._outstanding_writes += 1
        self.stat_stores.inc()
        issued_kinds.add("store")
        data = value_to_bytes(dyn.operand_values[0], inst.value.type)
        dyn.mem_request = self.memctrl.enqueue_write(
            dyn.addr, data, lambda req, d=dyn: self._store_done(d)
        )
        return True

    def _store_done(self, dyn: DynInst) -> None:
        self._outstanding_writes -= 1
        self._mem_window.remove(dyn)
        self._commit(dyn, None)
        self._schedule_tick()
