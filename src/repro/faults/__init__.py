"""Deterministic fault injection and simulation hardening.

Three pieces, layered from data to enforcement:

* :mod:`repro.faults.plan` — `FaultPlan`/`FaultEvent`, the declarative
  seed-deterministic description of *what* goes wrong (bit flips,
  dropped/delayed DMA transfers, stalled ports, MMR corruption) and
  *when* (at a tick, or on the Nth access).
* :mod:`repro.faults.injector` — `FaultInjector`, which arms a plan
  against a built `System` through zero-overhead ``_finj`` hooks (the
  `_thub` single-pointer-compare pattern from `repro.trace`) and logs
  every injection on the ``faults`` trace channel.
* :mod:`repro.faults.watchdog` — `SimWatchdog`, which turns the hangs
  faults (or plain bugs) cause into structured `SimulationHang` errors
  carrying the in-flight instruction dump.

Quick start::

    from repro.exec import SimContext
    from repro.faults import FaultPlan
    from repro.workloads import get_workload

    plan = FaultPlan.parse(["bit_flip@spm:access=1,addr=0x20000007,bit=6"])
    ctx = SimContext(get_workload("gemm_dse"), memory="spm", faults=plan,
                     watchdog=True)
    ctx.run()   # raises: the golden model catches the flipped input
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FAULT_KINDS,
    FaultConfigError,
    FaultEvent,
    FaultPlan,
    parse_faultspec,
)
from repro.faults.watchdog import SimWatchdog, coerce_watchdog, watchdog_spec
from repro.sim.eventq import SimulationHang

__all__ = [
    "FAULT_KINDS",
    "FaultConfigError",
    "FaultEvent",
    "FaultPlan",
    "parse_faultspec",
    "FaultInjector",
    "SimWatchdog",
    "coerce_watchdog",
    "watchdog_spec",
    "SimulationHang",
]
