"""Declarative pass-pipeline specs: parsing, canonical form, realization."""

import pytest

from repro.frontend import compile_c
from repro.ir.printer import print_module
from repro.passes import PassStep, PipelineSpec, PipelineSpecError

SRC = """
void scale(double a[32], double b[32]) {
  for (int i = 0; i < 32; i++) { b[i] = a[i] * 3.0; }
}
"""


# -- parsing ----------------------------------------------------------------
def test_parse_simple_spec():
    spec = PipelineSpec.parse("mem2reg,unroll:4,constfold,dce")
    assert spec.steps == (
        PassStep("mem2reg"), PassStep("unroll", 4),
        PassStep("constfold"), PassStep("dce"),
    )


def test_canonical_round_trips():
    for text in ("mem2reg,unroll:4,constfold,dce", "o1", "o2", "o1:8",
                 "inline,mem2reg,dce", "none", "unroll:2,dce"):
        spec = PipelineSpec.parse(text)
        assert PipelineSpec.parse(spec.canonical()) == spec


def test_whitespace_and_case_normalized():
    messy = PipelineSpec.parse("  MEM2REG , Unroll:4,DCE ")
    assert messy == PipelineSpec.parse("mem2reg,unroll:4,dce")


def test_parse_is_idempotent_on_specs():
    spec = PipelineSpec.parse("mem2reg,dce")
    assert PipelineSpec.parse(spec) is spec


def test_empty_spellings_mean_no_passes():
    for text in (None, "", "  ", "none", "NONE"):
        spec = PipelineSpec.parse(text)
        assert spec.steps == ()
        assert not spec
        assert spec.canonical() == "none"


def test_unroll_by_one_collapses():
    assert (PipelineSpec.parse("unroll:1").canonical()
            == PipelineSpec.parse("unroll").canonical() == "unroll")


# -- presets ----------------------------------------------------------------
def test_presets_match_standard_pipeline():
    assert PipelineSpec.parse("o1") == PipelineSpec.standard(1, 1)
    assert PipelineSpec.parse("o2") == PipelineSpec.standard(2, 1)
    assert PipelineSpec.parse("o1:4") == PipelineSpec.standard(1, 4)
    assert PipelineSpec.parse("o2:8") == PipelineSpec.standard(2, 8)


def test_preset_expands_in_canonical_form():
    canonical = PipelineSpec.parse("o1:4").canonical()
    assert "o1" not in canonical
    assert "unroll:4" in canonical


def test_o2_is_a_superset_of_o1():
    o1, o2 = PipelineSpec.parse("o1"), PipelineSpec.parse("o2")
    names1 = {step.name for step in o1.steps}
    names2 = {step.name for step in o2.steps}
    assert names1 < names2
    assert {"licm", "cse"} <= names2 - names1


# -- errors -----------------------------------------------------------------
@pytest.mark.parametrize("bad", [
    "bogus", "mem2reg,bogus,dce",      # unknown pass
    "unroll:0", "unroll:-2", "unroll:x", "unroll:",  # bad unroll arg
    "dce:2", "mem2reg:4",              # argument on an argless pass
    "mem2reg,,dce", ",dce",            # empty pass name
])
def test_bad_specs_rejected(bad):
    with pytest.raises(PipelineSpecError):
        PipelineSpec.parse(bad)


def test_non_string_spec_rejected():
    with pytest.raises(PipelineSpecError):
        PipelineSpec.parse(42)


def test_bad_opt_level_rejected():
    with pytest.raises(PipelineSpecError):
        PipelineSpec.standard(opt_level=3)


# -- realization ------------------------------------------------------------
def test_spec_reproduces_legacy_compile():
    # compile_c's optimize path and the equivalent explicit spec must
    # produce byte-identical IR (they share one cache key downstream).
    legacy = compile_c(SRC, optimize=True, unroll_factor=4, opt_level=1)
    spec = PipelineSpec.standard(1, 4)
    explicit = compile_c(SRC, passes=spec.canonical())
    assert print_module(explicit) == print_module(legacy)


def test_explicit_passes_actually_run():
    raw = compile_c(SRC, passes="none")
    opt = compile_c(SRC, passes="mem2reg,constfold,dce")
    # mem2reg promotes the allocas away.
    assert "alloca" in print_module(raw)
    assert "alloca" not in print_module(opt)


def test_inline_skipped_without_module():
    pm = PipelineSpec.parse("inline,mem2reg").to_pass_manager(module=None)
    names = [type(p).__name__ for p in pm.passes]
    assert "InlineFunctions" not in names
    assert "Mem2Reg" in names


def test_unroll_step_carries_factor():
    pm = PipelineSpec.parse("unroll:4").to_pass_manager()
    (unroll,) = pm.passes
    assert unroll.default_factor == 4
