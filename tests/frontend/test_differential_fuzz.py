"""Differential fuzzing: random mini-C expressions vs a Python oracle.

Hypothesis builds random expression trees over three int parameters;
each tree is rendered both as mini-C source (compiled + interpreted at
-O1 and -O2) and as a Python evaluator with C's two's-complement
semantics.  Any disagreement is a compiler, pass, or interpreter bug —
this is the harness that guards the whole front half of the flow.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import compile_c
from repro.ir.interpreter import Interpreter
from repro.ir.memory import MemoryImage
from repro.ir.semantics import to_signed, wrap_int
from repro.ir.types import I32

MASK = 0xFFFFFFFF


def _wrap(value: int) -> int:
    return to_signed(wrap_int(value, I32), I32)


# --- expression tree -------------------------------------------------------
class Node:
    def render(self) -> str:
        raise NotImplementedError

    def evaluate(self, env) -> int:
        raise NotImplementedError


class Var(Node):
    def __init__(self, name):
        self.name = name

    def render(self):
        return self.name

    def evaluate(self, env):
        return env[self.name]


class Lit(Node):
    def __init__(self, value):
        self.value = value

    def render(self):
        return str(self.value)

    def evaluate(self, env):
        return self.value


class Bin(Node):
    OPS = {
        "+": lambda a, b: _wrap(a + b),
        "-": lambda a, b: _wrap(a - b),
        "*": lambda a, b: _wrap(a * b),
        "&": lambda a, b: _wrap(a & b),
        "|": lambda a, b: _wrap(a | b),
        "^": lambda a, b: _wrap(a ^ b),
    }

    def __init__(self, op, lhs, rhs):
        self.op, self.lhs, self.rhs = op, lhs, rhs

    def render(self):
        return f"({self.lhs.render()} {self.op} {self.rhs.render()})"

    def evaluate(self, env):
        return self.OPS[self.op](self.lhs.evaluate(env), self.rhs.evaluate(env))


class Ternary(Node):
    def __init__(self, pred, cond_l, cond_r, if_true, if_false):
        self.pred = pred
        self.cond_l, self.cond_r = cond_l, cond_r
        self.if_true, self.if_false = if_true, if_false

    def render(self):
        return (
            f"(({self.cond_l.render()} {self.pred} {self.cond_r.render()}) "
            f"? {self.if_true.render()} : {self.if_false.render()})"
        )

    def evaluate(self, env):
        table = {
            "<": lambda a, b: a < b,
            ">": lambda a, b: a > b,
            "==": lambda a, b: a == b,
            "!=": lambda a, b: a != b,
        }
        taken = table[self.pred](self.cond_l.evaluate(env), self.cond_r.evaluate(env))
        return (self.if_true if taken else self.if_false).evaluate(env)


def _nodes(depth):
    leaf = st.one_of(
        st.sampled_from(["a", "b", "c"]).map(Var),
        st.integers(-100, 100).map(Lit),
    )
    if depth == 0:
        return leaf
    sub = _nodes(depth - 1)
    return st.one_of(
        leaf,
        st.builds(Bin, st.sampled_from(list(Bin.OPS)), sub, sub),
        st.builds(
            Ternary, st.sampled_from(["<", ">", "==", "!="]), sub, sub, sub, sub
        ),
    )


expressions = _nodes(3)
small_ints = st.integers(-1000, 1000)


def _compile_and_run(source, args, opt_level):
    module = compile_c(source, opt_level=opt_level)
    mem = MemoryImage(1 << 12)
    raw = Interpreter(module, mem).run("f", [v & MASK for v in args]).return_value
    return to_signed(raw, I32)


@settings(max_examples=60, deadline=None)
@given(expressions, small_ints, small_ints, small_ints)
def test_random_expression_matches_oracle(tree, a, b, c):
    source = f"int f(int a, int b, int c) {{ return {tree.render()}; }}"
    expected = tree.evaluate({"a": a, "b": b, "c": c})
    assert _compile_and_run(source, [a, b, c], opt_level=1) == expected
    assert _compile_and_run(source, [a, b, c], opt_level=2) == expected


@settings(max_examples=25, deadline=None)
@given(expressions, small_ints, small_ints, small_ints,
       st.integers(min_value=1, max_value=8))
def test_random_expression_in_loop_accumulation(tree, a, b, c, trips):
    """The same expression inside a counted loop, with and without full
    unrolling — loop transforms must not change arithmetic."""
    source = f"""
    int f(int a, int b, int c) {{
      int s = 0;
      for (int i = 0; i < {trips}; i++) {{
        s += {tree.render()} + i;
      }}
      return s;
    }}
    """
    env = {"a": a, "b": b, "c": c}
    expected = 0
    for i in range(trips):
        expected = _wrap(expected + _wrap(tree.evaluate(env) + i))
    rolled = _compile_and_run(source, [a, b, c], opt_level=1)
    module = compile_c(source, unroll_factor=trips, opt_level=2)
    mem = MemoryImage(1 << 12)
    unrolled = to_signed(
        Interpreter(module, mem).run("f", [v & MASK for v in (a, b, c)]).return_value,
        I32,
    )
    assert rolled == expected
    assert unrolled == expected
