"""ParallelSweep: grid expansion, parallel-vs-serial equivalence, caching.

The acceptance bar: a GEMM unroll x memory sweep through
``ParallelSweep(workers=4)`` produces byte-identical
``SweepPoint.record()`` rows to the serial path, and a second run of the
same grid is served entirely from the run cache.
"""

import json

from repro.core.config import DeviceConfig
from repro.dse import sweep
from repro.exec import ParallelSweep, RunCache, grid_points
from repro.workloads import get_workload

GRID = {"memory": ["spm", "ideal"], "unroll": [1, 2]}


def _configure(params):
    return dict(
        config=DeviceConfig(read_ports=2, write_ports=2),
        memory=params["memory"],
        spm_bytes=1 << 15,
        unroll_factor=params["unroll"],
    )


#: Provenance columns record what ran *this invocation* (a cache hit
#: runs nothing, so engine_used is "" by design); byte-identity is
#: asserted over the result columns.
PROVENANCE = ("engine_used", "fallback_reason", "retimed")


def _rows(points):
    return [json.dumps({k: v for k, v in p.record().items()
                        if k not in PROVENANCE}, sort_keys=True)
            for p in points]


def test_grid_points_cartesian_order():
    assert grid_points({"a": [1, 2], "b": ["x"]}) == [
        {"a": 1, "b": "x"},
        {"a": 2, "b": "x"},
    ]
    assert grid_points({}) == [{}]


def test_parallel_matches_serial_byte_identical():
    workload = get_workload("gemm_dse")
    serial = ParallelSweep(workers=1).run(workload, GRID, _configure, seed=7)
    parallel = ParallelSweep(workers=4).run(workload, GRID, _configure, seed=7)
    assert len(serial) == len(grid_points(GRID))
    assert _rows(parallel) == _rows(serial)
    # Grid order is preserved regardless of completion order.
    assert [p.params for p in parallel] == grid_points(GRID)


def test_second_sweep_hits_cache_for_every_point():
    workload = get_workload("gemm_dse")
    cache = RunCache()
    executor = ParallelSweep(workers=4, cache=cache)
    first = executor.run(workload, GRID, _configure, seed=7)
    points = len(first)
    assert cache.misses == points and cache.hits == 0
    second = executor.run(workload, GRID, _configure, seed=7)
    assert cache.hits == points, "second run must be served from the cache"
    assert cache.misses == points
    assert _rows(second) == _rows(first)


def test_cache_is_config_sensitive():
    workload = get_workload("gemm_dse")
    cache = RunCache()
    executor = ParallelSweep(workers=1, cache=cache)
    executor.run(workload, {"memory": ["spm"], "unroll": [1]}, _configure, seed=7)
    executor.run(workload, {"memory": ["spm"], "unroll": [2]}, _configure, seed=7)
    assert cache.hits == 0 and cache.misses == 2
    # Different seed -> different dataset -> different key.
    executor.run(workload, {"memory": ["spm"], "unroll": [1]}, _configure, seed=8)
    assert cache.hits == 0 and cache.misses == 3


def test_sweep_shim_signature_still_works():
    workload = get_workload("gemm_dse")
    cache = RunCache()
    via_shim = sweep(workload, GRID, _configure, seed=7, workers=2, cache=cache)
    direct = ParallelSweep(workers=1).run(workload, GRID, _configure, seed=7)
    assert _rows(via_shim) == _rows(direct)
    record = via_shim[0].record()
    for key in ("memory", "unroll", "cycles", "runtime_us", "power_mw",
                "stall_fraction", "issue_fraction"):
        assert key in record
