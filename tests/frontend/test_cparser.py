"""Mini-C parser: AST structure and error reporting."""

import pytest

from repro.frontend import c_ast as ast
from repro.frontend.parser import CParseError, parse_c


def _one_function(source):
    unit = parse_c(source)
    assert len(unit.functions) == 1
    return unit.functions[0]


def test_function_signature():
    f = _one_function("double f(double a[16], int n, float *p) { return 0; }")
    assert f.name == "f"
    assert f.return_type.base == "double"
    assert [p.name for p in f.params] == ["a", "n", "p"]
    assert f.params[0].type.pointers == 1       # array param decays
    assert f.params[2].type.pointers == 1


def test_multidim_array_param_keeps_inner_dims():
    f = _one_function("void f(double a[8][16]) { }")
    assert f.params[0].type.pointers == 1
    assert f.params[0].type.array_dims == [16]


def test_operator_precedence():
    f = _one_function("int f() { return 1 + 2 * 3; }")
    ret = f.body.body[0]
    assert isinstance(ret.value, ast.BinOp) and ret.value.op == "+"
    assert isinstance(ret.value.rhs, ast.BinOp) and ret.value.rhs.op == "*"


def test_comparison_binds_looser_than_shift():
    f = _one_function("int f(int a) { return a << 1 < 8; }")
    expr = f.body.body[0].value
    assert expr.op == "<"
    assert expr.lhs.op == "<<"


def test_ternary():
    f = _one_function("int f(int a) { return a > 0 ? a : -a; }")
    expr = f.body.body[0].value
    assert isinstance(expr, ast.Conditional)


def test_for_loop_parts():
    f = _one_function("void f() { for (int i = 0; i < 4; i++) { } }")
    loop = f.body.body[0]
    assert isinstance(loop, ast.For)
    assert isinstance(loop.init, ast.VarDecl)
    assert isinstance(loop.cond, ast.BinOp)
    assert isinstance(loop.step, ast.IncDec)


def test_for_loop_empty_parts():
    f = _one_function("void f() { for (;;) { break; } }")
    loop = f.body.body[0]
    assert loop.init is None and loop.cond is None and loop.step is None


def test_pragma_attaches_to_next_loop():
    source = """
    void f() {
      #pragma unroll 4
      for (int i = 0; i < 8; i++) { }
      for (int j = 0; j < 8; j++) { }
    }
    """
    f = _one_function(source)
    first, second = f.body.body
    assert first.unroll == 4
    assert second.unroll is None


def test_pragma_unroll_full():
    f = _one_function("void f() {\n#pragma unroll\nfor (int i = 0; i < 8; i++) { } }")
    assert f.body.body[0].unroll == 0


def test_if_else_chain():
    f = _one_function("int f(int a) { if (a > 0) return 1; else if (a < 0) return -1; else return 0; }")
    stmt = f.body.body[0]
    assert isinstance(stmt, ast.If)
    assert isinstance(stmt.otherwise, ast.If)


def test_do_while():
    f = _one_function("void f() { do { } while (0); }")
    assert isinstance(f.body.body[0], ast.DoWhile)


def test_multi_declarator():
    f = _one_function("void f() { int a = 1, b = 2; }")
    compound = f.body.body[0]
    assert isinstance(compound, ast.Compound)
    assert [d.name for d in compound.body] == ["a", "b"]


def test_index_chain():
    f = _one_function("int f(int a[4][4]) { return a[1][2]; }")
    expr = f.body.body[0].value
    assert isinstance(expr, ast.IndexExpr)
    assert isinstance(expr.base, ast.IndexExpr)


def test_cast_expression():
    f = _one_function("double f(int a) { return (double)a / 2; }")
    expr = f.body.body[0].value
    assert expr.op == "/"
    assert isinstance(expr.lhs, ast.CastExpr)


def test_parenthesized_not_cast():
    f = _one_function("int f(int a) { return (a) + 1; }")
    expr = f.body.body[0].value
    assert isinstance(expr.lhs, ast.Ident)


@pytest.mark.parametrize(
    "bad",
    [
        "int f( { }",
        "int f() { return 1 }",       # missing semicolon
        "int f() { for int i; }",
        "int f() { 1 +; }",
        "int () { }",                 # missing name
    ],
)
def test_syntax_errors(bad):
    with pytest.raises(CParseError):
        parse_c(bad)
