"""Static analysis: dataflow framework, IR lints, dependence analysis.

The paper's central argument is that *static* elaboration of the CDFG
captures true data dependences that trace-based tools approximate.  This
package is the static-analysis layer that argument rests on:

* `repro.analysis.dataflow`    — generic worklist dataflow framework
  (forward/backward, meet-over-predecessors) with liveness and
  reaching-definitions instances.
* `repro.analysis.diagnostics` — `Diagnostic` / `AnalysisReport` plus
  text and JSON renderers; every analysis reports through it.
* `repro.analysis.lint`        — the IR lint driver and rule catalog
  (dead stores, unreachable blocks, uninitialized reads, constant
  branches, no-exit loops, out-of-bounds GEPs).
* `repro.analysis.memdep`      — static memory-dependence analysis over
  GEP chains: must/may/no-alias classification and the per-kernel
  dependence report.
* `repro.analysis.syslint`     — system/config lints: overlapping
  MMR/SPM/DRAM ranges, kernel footprints vs. SPM size, DMA transfers
  into unmapped ranges.
* `repro.analysis.concurrency` — system-level concurrency analysis:
  per-agent access model, happens-before over host/IRQ/DMA/stream
  ordering edges, race (SYS304), static-deadlock (SYS305), and
  start-before-fill (SYS306) rules.
* `repro.analysis.verified`    — verified pass pipelines: golden
  interpreter differential checks after every pass, pinpointing the
  offending pass on divergence.

Everything surfaces through ``python -m repro analyze``.
"""

from repro.analysis.concurrency import (
    AgentOp,
    ConcurrencyModel,
    describe_concurrency,
    lint_concurrency,
)
from repro.analysis.dataflow import (
    DataflowAnalysis,
    DataflowResult,
    LivenessAnalysis,
    ReachingDefinitions,
)
from repro.analysis.diagnostics import (
    AnalysisReport,
    Diagnostic,
    Location,
    Severity,
)
from repro.analysis.lint import LintRule, all_rules, lint_function, lint_module
from repro.analysis.memdep import (
    AliasKind,
    DependenceReport,
    MemAccess,
    classify_accesses,
    dependence_report,
    resolve_pointer,
    static_footprint,
)
from repro.analysis.partition import check_sweep_partition
from repro.analysis.syslint import (
    DmaTransfer,
    KernelFootprint,
    MemRegion,
    SystemDescription,
    describe_soc,
    lint_system,
)
from repro.analysis.verified import (
    PassDivergenceError,
    VerifiedPassManager,
    differential_check,
)

__all__ = [
    "AgentOp",
    "AliasKind",
    "AnalysisReport",
    "ConcurrencyModel",
    "DataflowAnalysis",
    "DataflowResult",
    "DependenceReport",
    "Diagnostic",
    "DmaTransfer",
    "KernelFootprint",
    "LintRule",
    "LivenessAnalysis",
    "Location",
    "MemAccess",
    "MemRegion",
    "check_sweep_partition",
    "PassDivergenceError",
    "ReachingDefinitions",
    "Severity",
    "SystemDescription",
    "VerifiedPassManager",
    "all_rules",
    "classify_accesses",
    "dependence_report",
    "describe_concurrency",
    "describe_soc",
    "lint_concurrency",
    "differential_check",
    "lint_function",
    "lint_module",
    "lint_system",
    "resolve_pointer",
    "static_footprint",
]
