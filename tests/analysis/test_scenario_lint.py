"""SYS304-306 over full scenarios: live extraction + seeded defects."""

import numpy as np
import pytest

from repro.analysis.concurrency import describe_concurrency
from repro.analysis.syslint import describe_soc, lint_system
from repro.core.config import DeviceConfig
from repro.core.mmr import ARGS_OFFSET, CTRL_IRQ_EN, CTRL_START
from repro.build.pipeline import build_module
from repro.hw.default_profile import default_profile
from repro.system.soc import build_soc

SRC = """
void stage(double in[16], double out[16]) {
  for (int i = 0; i < 16; i++) { out[i] = in[i] * 2.0 + 1.0; }
}
"""


def _one_acc_soc():
    soc = build_soc(dram_size=1 << 20)
    cluster = soc.add_cluster("cl")
    unit = cluster.add_accelerator(
        "acc", build_module(SRC, "stage").module, "stage",
        default_profile(),
        config=DeviceConfig(clock_freq_hz=100e6),
        private_spm_bytes=1 << 12,
    )
    unit.comm.connect_irq(soc.irq.line(0))
    soc.finalize()
    return soc, cluster, unit


def _start(h, mmr, args):
    for i, value in enumerate(args):
        yield h.write_mmr(mmr + ARGS_OFFSET + 8 * i, value)
    yield h.write_mmr(mmr, CTRL_START | CTRL_IRQ_EN)


def _run(soc, driver):
    soc.host.run_driver(driver(soc.host))
    soc.simulation().run(max_tick=1_000_000_000)


def test_well_synchronized_driver_lints_clean():
    soc, cluster, unit = _one_acc_soc()
    d_in = soc.dram.image.alloc_array(np.arange(16.0))
    d_out = soc.dram.image.alloc(128)
    spm = unit.private_spm.range.start

    def driver(h):
        yield h.dma_copy(cluster.dma, d_in, spm, 128)
        yield from _start(h, unit.comm.mmr.range.start, [spm, spm + 128])
        yield h.wait_irq(0)
        yield h.dma_copy(cluster.dma, spm + 128, d_out, 128)

    _run(soc, driver)
    assert soc.host.finished
    report = soc.lint()
    assert not report.has_errors
    assert not any(d.code == "SYS306" for d in report)


def test_missing_wait_trips_sys304():
    """DMA drains the accelerator's output without waiting for its IRQ."""
    soc, cluster, unit = _one_acc_soc()
    d_in = soc.dram.image.alloc_array(np.arange(16.0))
    d_out = soc.dram.image.alloc(128)
    spm = unit.private_spm.range.start

    def driver(h):
        yield h.dma_copy(cluster.dma, d_in, spm, 128)
        yield from _start(h, unit.comm.mmr.range.start, [spm, spm + 128])
        # no wait_irq(0): the copy below races the accelerator's stores
        yield h.dma_copy(cluster.dma, spm + 128, d_out, 128)

    _run(soc, driver)
    report = soc.lint()
    hits = [d for d in report if d.code == "SYS304"]
    assert hits, report.render_text()
    assert any("acc" in d.message and "cl.dma" in d.message for d in hits)


def test_early_start_trips_sys304_and_sys306():
    """START written before the DMA that fills the input scratchpad."""
    soc, cluster, unit = _one_acc_soc()
    d_in = soc.dram.image.alloc_array(np.arange(16.0))
    d_out = soc.dram.image.alloc(128)
    spm = unit.private_spm.range.start

    def driver(h):
        yield from _start(h, unit.comm.mmr.range.start, [spm, spm + 128])
        yield h.dma_copy(cluster.dma, d_in, spm, 128)
        yield h.wait_irq(0)
        yield h.dma_copy(cluster.dma, spm + 128, d_out, 128)

    _run(soc, driver)
    report = soc.lint()
    codes = {d.code for d in report}
    assert "SYS304" in codes, report.render_text()
    assert "SYS306" in codes, report.render_text()


def test_describe_concurrency_none_before_any_run():
    soc, _cluster, _unit = _one_acc_soc()
    assert describe_concurrency(soc) is None
    # ... which keeps the pre-run lint at SYS301-303 only.
    assert not soc.lint().has_errors


@pytest.mark.parametrize("name", ["private_spm", "shared_spm", "stream"])
def test_cnn_scenarios_lint_clean(name):
    """All three Fig. 16 integration styles are SYS301-306 clean."""
    from repro.system.cnn_scenarios import SCENARIOS

    result = SCENARIOS[name]()
    assert result.verified
    report = result.soc.lint()
    assert not report.has_errors, report.render_text()
    assert not any(d.code == "SYS306" for d in report), report.render_text()


def test_cnn_scenario_model_exposed_in_description():
    from repro.system.cnn_scenarios import run_private_spm

    result = run_private_spm()
    desc = describe_soc(result.soc)
    desc.concurrency = describe_concurrency(result.soc)
    model = desc.concurrency
    assert model is not None
    # Three accelerators, the host, and the cluster DMA all participate.
    kinds = set(model.agents.values())
    assert {"host", "accelerator", "dma"} <= kinds
    assert any(op.kind == "compute" for op in model.ops)
    data = desc.to_dict()
    assert data["concurrency"]["agents"] == model.agents
    report = lint_system(desc)
    assert not report.has_errors
