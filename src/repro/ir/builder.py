"""IRBuilder: convenient construction of IR, in the llvmlite style.

The builder is positioned at the end of a basic block; every ``emit``
method appends an instruction there and returns it as the SSA value.
Temporary names are generated from the owning function's counter so
they are unique module-wide after printing.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.module import BasicBlock, Function
from repro.ir.types import IntType, Type, I64
from repro.ir.values import Constant, Instruction, Value

IndexLike = Union[Value, int]


class IRBuilder:
    def __init__(self, block: Optional[BasicBlock] = None) -> None:
        self.block = block

    @property
    def function(self) -> Function:
        if self.block is None or self.block.parent is None:
            raise ValueError("builder is not positioned inside a function")
        return self.block.parent

    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block

    def _emit(self, inst: Instruction, name: str = "") -> Instruction:
        if self.block is None:
            raise ValueError("builder has no insertion block")
        if inst.produces_value and not inst.name:
            inst.name = name or self.function.unique_name()
        self.block.append(inst)
        return inst

    def _as_index(self, value: IndexLike) -> Value:
        if isinstance(value, int):
            return Constant(I64, value)
        return value

    # -- arithmetic -------------------------------------------------------
    def binop(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> Instruction:
        return self._emit(BinaryOp(opcode, lhs, rhs), name)

    def add(self, a, b, name=""):
        return self.binop("add", a, b, name)

    def sub(self, a, b, name=""):
        return self.binop("sub", a, b, name)

    def mul(self, a, b, name=""):
        return self.binop("mul", a, b, name)

    def sdiv(self, a, b, name=""):
        return self.binop("sdiv", a, b, name)

    def srem(self, a, b, name=""):
        return self.binop("srem", a, b, name)

    def and_(self, a, b, name=""):
        return self.binop("and", a, b, name)

    def or_(self, a, b, name=""):
        return self.binop("or", a, b, name)

    def xor(self, a, b, name=""):
        return self.binop("xor", a, b, name)

    def shl(self, a, b, name=""):
        return self.binop("shl", a, b, name)

    def lshr(self, a, b, name=""):
        return self.binop("lshr", a, b, name)

    def ashr(self, a, b, name=""):
        return self.binop("ashr", a, b, name)

    def fadd(self, a, b, name=""):
        return self.binop("fadd", a, b, name)

    def fsub(self, a, b, name=""):
        return self.binop("fsub", a, b, name)

    def fmul(self, a, b, name=""):
        return self.binop("fmul", a, b, name)

    def fdiv(self, a, b, name=""):
        return self.binop("fdiv", a, b, name)

    # -- comparisons and select --------------------------------------------
    def icmp(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> Instruction:
        return self._emit(ICmp(pred, lhs, rhs), name)

    def fcmp(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> Instruction:
        return self._emit(FCmp(pred, lhs, rhs), name)

    def select(self, cond: Value, a: Value, b: Value, name: str = "") -> Instruction:
        return self._emit(Select(cond, a, b), name)

    # -- casts --------------------------------------------------------------
    def cast(self, opcode: str, value: Value, to_type: Type, name: str = "") -> Instruction:
        return self._emit(Cast(opcode, value, to_type), name)

    def zext(self, v, t, name=""):
        return self.cast("zext", v, t, name)

    def sext(self, v, t, name=""):
        return self.cast("sext", v, t, name)

    def trunc(self, v, t, name=""):
        return self.cast("trunc", v, t, name)

    def sitofp(self, v, t, name=""):
        return self.cast("sitofp", v, t, name)

    def fptosi(self, v, t, name=""):
        return self.cast("fptosi", v, t, name)

    def fpext(self, v, t, name=""):
        return self.cast("fpext", v, t, name)

    def fptrunc(self, v, t, name=""):
        return self.cast("fptrunc", v, t, name)

    def bitcast(self, v, t, name=""):
        return self.cast("bitcast", v, t, name)

    # -- memory ---------------------------------------------------------------
    def alloca(self, allocated_type: Type, name: str = "") -> Instruction:
        return self._emit(Alloca(allocated_type), name)

    def load(self, pointer: Value, name: str = "") -> Instruction:
        return self._emit(Load(pointer), name)

    def store(self, value: Value, pointer: Value) -> Instruction:
        return self._emit(Store(value, pointer))

    def gep(self, pointer: Value, indices: Sequence[IndexLike], name: str = "") -> Instruction:
        idx_values = [self._as_index(i) for i in indices]
        return self._emit(GetElementPtr(pointer, idx_values), name)

    # -- control flow -----------------------------------------------------------
    def br(self, target: BasicBlock) -> Instruction:
        return self._emit(Branch(target))

    def cbr(self, cond: Value, if_true: BasicBlock, if_false: BasicBlock) -> Instruction:
        return self._emit(Branch(if_true, cond=cond, if_false=if_false))

    def ret(self, value: Optional[Value] = None) -> Instruction:
        return self._emit(Ret(value))

    def phi(self, type_: Type, name: str = "") -> Phi:
        phi = Phi(type_)
        self._emit(phi, name)
        return phi

    def call(self, callee: str, return_type: Type, args: Sequence[Value], name: str = "") -> Instruction:
        return self._emit(Call(callee, return_type, args), name)

    # -- constants -----------------------------------------------------------------
    @staticmethod
    def const(type_: Type, value) -> Constant:
        return Constant(type_, value)

    @staticmethod
    def const_int(value: int, bits: int = 32) -> Constant:
        return Constant(IntType(bits), value)
