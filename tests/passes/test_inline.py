"""Function inlining."""

import numpy as np
import pytest

from repro.frontend import compile_c, lower_to_ir, parse_c
from repro.ir.instructions import Call
from repro.ir.interpreter import Interpreter
from repro.ir.memory import MemoryImage
from repro.ir.verifier import verify_module
from repro.passes import InlineError, InlineFunctions, Mem2Reg


def _no_local_calls(func):
    return not any(
        isinstance(i, Call) and not i.is_intrinsic for i in func.instructions()
    )


def _run(module, func, args=()):
    return Interpreter(module, MemoryImage(1 << 14, base=0x100)).run(
        func, list(args)
    ).return_value


def test_simple_call_inlined():
    src = """
    int helper(int x) { return x * 3 + 1; }
    int f(int a) { return helper(a) + helper(a + 1); }
    """
    module = lower_to_ir(parse_c(src))
    expected = _run(module, "f", [5])
    InlineFunctions(module).run(module.get_function("f"))
    verify_module(module)
    assert _no_local_calls(module.get_function("f"))
    assert _run(module, "f", [5]) == expected == (16 + 19)


def test_nested_calls_inlined_transitively():
    src = """
    int inner(int x) { return x + 1; }
    int middle(int x) { return inner(x) * 2; }
    int f(int a) { return middle(a); }
    """
    module = lower_to_ir(parse_c(src))
    InlineFunctions(module).run(module.get_function("f"))
    verify_module(module)
    assert _no_local_calls(module.get_function("f"))
    assert _run(module, "f", [4]) == 10


def test_callee_with_control_flow():
    src = """
    int clamp(int x) { if (x > 10) { return 10; } return x; }
    int f(int a, int b) { return clamp(a) + clamp(b); }
    """
    module = lower_to_ir(parse_c(src))
    InlineFunctions(module).run(module.get_function("f"))
    verify_module(module)
    assert _run(module, "f", [3, 25]) == 13
    assert _run(module, "f", [100, 100]) == 20


def test_callee_with_loop():
    src = """
    int tri(int n) { int s = 0; for (int i = 1; i <= n; i++) { s += i; } return s; }
    int f(int a) { return tri(a) * 10; }
    """
    module = lower_to_ir(parse_c(src))
    InlineFunctions(module).run(module.get_function("f"))
    verify_module(module)
    assert _run(module, "f", [4]) == 100


def test_void_callee_with_side_effects():
    src = """
    void bump(int p[4], int i) { p[i] = p[i] + 1; }
    void f(int p[4]) { bump(p, 0); bump(p, 0); bump(p, 3); }
    """
    module = lower_to_ir(parse_c(src))
    InlineFunctions(module).run(module.get_function("f"))
    verify_module(module)
    mem = MemoryImage(1 << 12, base=0x100)
    addr = mem.alloc_array(np.zeros(4, dtype=np.int32))
    Interpreter(module, mem).run("f", [addr])
    assert list(mem.read_array(addr, np.int32, 4)) == [2, 0, 0, 1]


def test_recursion_rejected():
    src = """
    int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
    int f(int a) { return fact(a); }
    """
    module = lower_to_ir(parse_c(src))
    with pytest.raises(InlineError):
        InlineFunctions(module, require_complete=True).run(module.get_function("f"))


def test_recursion_tolerated_when_incomplete_allowed():
    src = """
    int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
    int f(int a) { return fact(a); }
    """
    module = lower_to_ir(parse_c(src))
    InlineFunctions(module, require_complete=False).run(module.get_function("f"))
    assert _run(module, "f", [5]) == 120  # still functionally correct


def test_compile_c_inlines_by_default():
    src = """
    double sq(double x) { return x * x; }
    double f(double a) { return sq(a) + sq(a + 1.0); }
    """
    module = compile_c(src)
    assert _no_local_calls(module.get_function("f"))
    assert _run(module, "f", [2.0]) == 4.0 + 9.0


def test_inlined_kernel_runs_on_simulator():
    from repro.system.soc import StandaloneAccelerator

    src = """
    double mac(double a, double b, double acc) { return acc + a * b; }
    void dot(double x[16], double y[16], double out[1]) {
      double s = 0;
      for (int i = 0; i < 16; i++) { s = mac(x[i], y[i], s); }
      out[0] = s;
    }
    """
    acc = StandaloneAccelerator(src, "dot", spm_bytes=1 << 12)
    rng = np.random.default_rng(1)
    x, y = rng.uniform(-1, 1, 16), rng.uniform(-1, 1, 16)
    px, py, po = acc.alloc_array(x), acc.alloc_array(y), acc.alloc(8)
    acc.run([px, py, po])
    expected = 0.0
    for a, b in zip(x, y):
        expected += a * b
    assert acc.read_array(po, np.float64, 1)[0] == expected
