"""Static memory-dependence analysis over GEP chains.

The paper's claim-2 argument is that static elaboration of the CDFG
captures *true* data dependences where trace-based tools (Aladdin)
approximate: two stores to `a[0]` and `a[1]` never conflict no matter
what the trace interleaves.  This module is that reasoning in analyzable
form: every load/store is resolved to an abstract location — a root
object (argument or alloca) plus a constant byte offset when the whole
GEP chain folds — and pairs are classified MUST / MAY / NO alias, from
which per-kernel RAW/WAR/WAW dependence edges follow.

A second consumer is the unrolling story: full unrolling turns loop
accesses into many constant-offset accesses on the same base.  When a
block holds many *pairwise-independent* accesses to one base, the
in-order scratchpad port serializes what the dataflow graph allows in
parallel — exactly the false serialization SPM partitioning removes —
and the report calls those bases out.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.diagnostics import (
    AnalysisReport,
    Location,
    Severity,
)
from repro.ir.instructions import Alloca, Call, Cast, GetElementPtr, Load, Store
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import ArrayType, PointerType
from repro.ir.values import Argument, Constant, Instruction, Value

#: Listing caps so fully-unrolled kernels (thousands of accesses) keep
#: reports readable and pair classification bounded.
MAX_LISTED_EDGES = 200
MAX_PAIRS = 200_000

#: Bases with at least this many pairwise-independent same-block accesses
#: are reported as false-serialization candidates.
FALSE_SERIAL_THRESHOLD = 4


class AliasKind(enum.Enum):
    NO = "no"
    MAY = "may"
    MUST = "must"

    def __str__(self) -> str:
        return self.value


def resolve_pointer(ptr: Value) -> tuple[Optional[Value], Optional[int]]:
    """Resolve a pointer to ``(root, byte_offset)``.

    Walks GEP and bitcast chains back to the root object (an `Argument`
    or `Alloca`, or None when the chain bottoms out in something opaque
    like inttoptr).  The offset is the accumulated constant byte offset,
    or None when any index along the chain is non-constant.
    """
    offset: Optional[int] = 0
    current = ptr
    for _ in range(256):  # chains are short; guard against cycles anyway
        if isinstance(current, GetElementPtr):
            step = _gep_offset(current)
            if step is None:
                offset = None
            elif offset is not None:
                offset += step
            current = current.pointer
        elif isinstance(current, Cast) and current.opcode == "bitcast":
            current = current.src
        elif isinstance(current, (Argument, Alloca)):
            return current, offset
        else:
            return None, None
    return None, None  # pragma: no cover - cycle guard


def const_index(value: Value) -> Optional[int]:
    """The integer behind an index operand, looking through extensions.

    The frontend widens every array index with ``sext i32 ... to i64``
    before the GEP, so on unoptimized IR constant indices arrive wrapped
    in a Cast rather than as bare Constants.
    """
    if isinstance(value, Cast) and value.opcode in ("sext", "zext"):
        src = value.src
        if isinstance(src, Constant):
            return src.value if value.opcode == "zext" else src.signed_value()
        return None
    if isinstance(value, Constant):
        return value.signed_value()
    return None


def _gep_offset(gep: GetElementPtr) -> Optional[int]:
    """Constant byte offset contributed by one GEP, or None if dynamic.

    Mirrors the interpreter's address arithmetic: the first index
    strides over the pointee; later indices walk into array types.
    """
    current = gep.pointer.type
    total = 0
    for i, index in enumerate(gep.indices):
        if i == 0:
            assert isinstance(current, PointerType)
            stride = current.pointee.size_bytes()
            current = current.pointee
        else:
            if not isinstance(current, ArrayType):
                return None
            stride = current.element.size_bytes()
            current = current.element
        value = const_index(index)
        if value is None:
            return None
        total += value * stride
    return total


def alloca_escapes(alloca: Alloca) -> bool:
    """True if the alloca's address can be observed outside direct
    load/store/GEP use — stored somewhere, passed to a call, or cast to
    an integer.  Non-escaping allocas cannot alias anything else."""
    func = alloca.parent.parent if alloca.parent else None
    if func is None:
        return True
    derived: set[Value] = {alloca}
    changed = True
    while changed:
        changed = False
        for inst in func.instructions():
            if inst in derived:
                continue
            if isinstance(inst, (GetElementPtr, Cast)) and any(
                op in derived for op in inst.operands
            ):
                if isinstance(inst, Cast) and inst.opcode == "ptrtoint":
                    return True
                derived.add(inst)
                changed = True
    for inst in func.instructions():
        if isinstance(inst, Store) and inst.value in derived:
            return True
        if isinstance(inst, Call) and any(op in derived for op in inst.operands):
            return True
    return False


@dataclass
class MemAccess:
    """One load or store, resolved to its abstract location."""

    inst: Instruction
    base: Optional[Value]
    offset: Optional[int]
    size: int
    is_store: bool
    block: BasicBlock
    index: int  # program-order position within the function

    @property
    def kind(self) -> str:
        return "store" if self.is_store else "load"

    def describe(self) -> str:
        base = "?" if self.base is None else f"%{self.base.name}"
        off = "?" if self.offset is None else str(self.offset)
        return f"{self.kind} {base}+{off} ({self.size}B)"


def collect_accesses(func: Function) -> list[MemAccess]:
    accesses: list[MemAccess] = []
    index = 0
    for block in func.blocks:
        for inst in block.instructions:
            if isinstance(inst, Load):
                base, offset = resolve_pointer(inst.pointer)
                accesses.append(MemAccess(
                    inst, base, offset, inst.type.size_bytes(),
                    False, block, index))
            elif isinstance(inst, Store):
                base, offset = resolve_pointer(inst.pointer)
                accesses.append(MemAccess(
                    inst, base, offset, inst.value.type.size_bytes(),
                    True, block, index))
            index += 1
    return accesses


def classify_accesses(
    a: MemAccess,
    b: MemAccess,
    assume_restrict: bool = True,
    escape_cache: Optional[dict] = None,
) -> AliasKind:
    """Classify two accesses' locations: MUST / MAY / NO alias.

    ``assume_restrict`` mirrors the accelerator contract that distinct
    pointer arguments name disjoint buffers (true for every shipped
    workload, where the host maps each argument to its own region).
    """
    if a.base is not None and b.base is not None and a.base is not b.base:
        a_alloca = isinstance(a.base, Alloca)
        b_alloca = isinstance(b.base, Alloca)
        if a_alloca and b_alloca:
            return AliasKind.NO
        if a_alloca or b_alloca:
            alloca = a.base if a_alloca else b.base
            if escape_cache is not None:
                escaped = escape_cache.get(alloca)
                if escaped is None:
                    escaped = alloca_escapes(alloca)
                    escape_cache[alloca] = escaped
            else:
                escaped = alloca_escapes(alloca)
            return AliasKind.MAY if escaped else AliasKind.NO
        # two distinct pointer arguments
        return AliasKind.NO if assume_restrict else AliasKind.MAY
    if a.base is None or b.base is None:
        return AliasKind.MAY
    # same base object
    if a.offset is None or b.offset is None:
        return AliasKind.MAY
    if a.offset == b.offset and a.size == b.size:
        return AliasKind.MUST
    if a.offset < b.offset + b.size and b.offset < a.offset + a.size:
        return AliasKind.MAY  # partial overlap
    return AliasKind.NO


@dataclass
class DependenceEdge:
    """A dependence between two accesses (earlier -> later program order)."""

    kind: str  # "RAW" | "WAR" | "WAW"
    alias: AliasKind
    src: MemAccess
    dst: MemAccess

    def describe(self) -> str:
        return (f"{self.kind}[{self.alias}] "
                f"{self.src.describe()} -> {self.dst.describe()}")


@dataclass
class BaseStats:
    """Per-base-object access statistics."""

    name: str
    loads: int = 0
    stores: int = 0
    must_edges: int = 0
    may_edges: int = 0
    independent_pairs: int = 0


@dataclass
class DependenceReport:
    """Per-kernel static dependence summary."""

    function: str
    accesses: list[MemAccess] = field(default_factory=list)
    edges: list[DependenceEdge] = field(default_factory=list)
    edge_counts: dict[str, int] = field(default_factory=dict)
    base_stats: dict[str, BaseStats] = field(default_factory=dict)
    false_serialization: list[str] = field(default_factory=list)
    pairs_examined: int = 0
    truncated: bool = False

    def to_dict(self) -> dict:
        return {
            "function": self.function,
            "num_accesses": len(self.accesses),
            "edge_counts": dict(sorted(self.edge_counts.items())),
            "pairs_examined": self.pairs_examined,
            "truncated": self.truncated,
            "bases": {
                name: {
                    "loads": s.loads,
                    "stores": s.stores,
                    "must_edges": s.must_edges,
                    "may_edges": s.may_edges,
                    "independent_pairs": s.independent_pairs,
                }
                for name, s in sorted(self.base_stats.items())
            },
            "false_serialization": list(self.false_serialization),
            "edges": [e.describe() for e in self.edges[:MAX_LISTED_EDGES]],
        }


def _edge_kind(src: MemAccess, dst: MemAccess) -> Optional[str]:
    if src.is_store and dst.is_store:
        return "WAW"
    if src.is_store and not dst.is_store:
        return "RAW"
    if not src.is_store and dst.is_store:
        return "WAR"
    return None  # load/load pairs carry no dependence


def dependence_report(
    func: Function, assume_restrict: bool = True
) -> DependenceReport:
    """Classify every load/store pair in ``func`` and summarize.

    Pairs are grouped by base object first — cross-base pairs resolve
    in O(1) via `classify_accesses` rules and only same-base pairs need
    offset comparison, which keeps fully-unrolled kernels tractable.
    """
    report = DependenceReport(func.name)
    report.accesses = collect_accesses(func)
    escape_cache: dict = {}
    counts = {"RAW-must": 0, "RAW-may": 0, "WAR-must": 0, "WAR-may": 0,
              "WAW-must": 0, "WAW-may": 0}

    by_base: dict[Optional[Value], list[MemAccess]] = {}
    for acc in report.accesses:
        by_base.setdefault(acc.base, []).append(acc)
        if acc.base is not None:
            stats = report.base_stats.setdefault(
                f"%{acc.base.name}", BaseStats(f"%{acc.base.name}"))
            if acc.is_store:
                stats.stores += 1
            else:
                stats.loads += 1

    # Unknown-base accesses may alias everything: pair them with all.
    unknown = by_base.pop(None, [])
    groups = list(by_base.items())
    if unknown:
        groups.append((None, unknown + [a for accs in by_base.values() for a in accs]))

    for base, accs in groups:
        accs = sorted(accs, key=lambda a: a.index)
        stats = (report.base_stats.get(f"%{base.name}")
                 if base is not None else None)
        for i, first in enumerate(accs):
            for second in accs[i + 1:]:
                if base is None and first.base is not None and second.base is not None:
                    continue  # both known: already handled in their group
                report.pairs_examined += 1
                if report.pairs_examined > MAX_PAIRS:
                    report.truncated = True
                    break
                alias = classify_accesses(
                    first, second, assume_restrict, escape_cache)
                if alias is AliasKind.NO:
                    # Independent accesses still share the SPM port —
                    # load/load pairs included — so count them all.
                    if stats is not None and first.block is second.block:
                        stats.independent_pairs += 1
                    continue
                kind = _edge_kind(first, second)
                if kind is None:
                    continue
                counts[f"{kind}-{alias}"] += 1
                if stats is not None:
                    if alias is AliasKind.MUST:
                        stats.must_edges += 1
                    else:
                        stats.may_edges += 1
                if len(report.edges) < MAX_LISTED_EDGES:
                    report.edges.append(
                        DependenceEdge(kind, alias, first, second))
            if report.truncated:
                break
        if report.truncated:
            break

    report.edge_counts = {k: v for k, v in counts.items() if v}
    for name, stats in sorted(report.base_stats.items()):
        if stats.independent_pairs >= FALSE_SERIAL_THRESHOLD and stats.must_edges == 0:
            report.false_serialization.append(name)
    return report


def memdep_diagnostics(
    func: Function, assume_restrict: bool = True
) -> AnalysisReport:
    """Run the dependence analysis and phrase findings as diagnostics.

    DEP201 (note): per-kernel dependence summary.
    DEP202 (warning): false serialization — many pairwise-independent
    same-base accesses that a single SPM port would serialize; SPM
    partitioning (banking) would break the false dependence.
    """
    analysis = AnalysisReport(subject=func.name)
    with analysis.timed("memdep"):
        dep = dependence_report(func, assume_restrict)
    analysis.meta["dependence"] = dep.to_dict()
    summary = ", ".join(f"{k}={v}" for k, v in sorted(dep.edge_counts.items()))
    analysis.add(
        "DEP201",
        Severity.NOTE,
        Location(function=func.name),
        f"{len(dep.accesses)} memory accesses, "
        f"{dep.pairs_examined} pairs examined"
        + (f"; {summary}" if summary else "; no dependences"),
    )
    for base in dep.false_serialization:
        stats = dep.base_stats[base]
        analysis.add(
            "DEP202",
            Severity.WARNING,
            Location(function=func.name, ref=base),
            f"{stats.independent_pairs} pairwise-independent access pairs "
            f"on {base} share one port after unrolling (false serialization)",
            hint="partition the scratchpad backing this array (SPM banking) "
                 "so independent accesses issue in parallel",
        )
    return analysis


def static_footprint(module: Module, func_name: str) -> dict[str, dict]:
    """Per-root static footprint: max constant offset+size touched.

    For pointer arguments the footprint is a lower bound (exact only if
    every access folded to a constant offset — ``exact`` says which);
    for allocas the allocated size is authoritative.
    """
    func = module.functions[func_name]
    footprint: dict[str, dict] = {}
    for arg in func.args:
        if arg.type.is_pointer:
            footprint[f"%{arg.name}"] = {
                "kind": "arg", "bytes": 0, "exact": True}
    for inst in func.instructions():
        if isinstance(inst, Alloca):
            footprint[f"%{inst.name}"] = {
                "kind": "alloca",
                "bytes": inst.allocated_type.size_bytes(),
                "exact": True,
            }
    for acc in collect_accesses(func):
        if acc.base is None or isinstance(acc.base, Alloca):
            continue
        entry = footprint.get(f"%{acc.base.name}")
        if entry is None:
            continue
        if acc.offset is None:
            entry["exact"] = False
        else:
            entry["bytes"] = max(entry["bytes"], acc.offset + acc.size)
    return footprint


def total_footprint_bytes(module: Module, func_name: str) -> int:
    """Sum of all per-root footprints — the kernel's static SPM demand."""
    return sum(e["bytes"] for e in static_footprint(module, func_name).values())
