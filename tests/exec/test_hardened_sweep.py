"""Hardened ParallelSweep: failure isolation, strict mode, retry-safe
pool degradation, and failed-row serialization."""

import json

import pytest

from repro.core.config import DeviceConfig
from repro.core.occupancy import OccupancyTracker
from repro.exec import FailureRecord, ParallelSweep, SweepPointError
from repro.exec.parallel import SweepPoint
from repro.workloads import get_workload

PORTS = [1, 2, 4, 8]

# Point-selective faults: ports==2 crashes (verify mismatch), ports==4
# livelocks (unbounded port stall, caught by the sweep watchdog).
FLIP_SPEC = "bit_flip@spm:access=1,addr=0x20000007,bit=6"
STALL_SPEC = "port_stall@memctrl:tick=50000"


def _configure(params):
    return dict(
        config=DeviceConfig(read_ports=params["ports"],
                            write_ports=max(1, params["ports"] // 2)),
        memory="spm", spm_bytes=1 << 16, spm_read_ports=params["ports"],
    )


def _faults(params):
    if params["ports"] == 2:
        return FLIP_SPEC
    if params["ports"] == 4:
        return STALL_SPEC
    return None


def _run_hardened(**kwargs):
    executor = ParallelSweep(faults=_faults,
                             watchdog={"livelock_cycles": 20000}, **kwargs)
    return executor.run(get_workload("gemm_dse"), {"ports": PORTS}, _configure)


# -- the acceptance scenario -------------------------------------------------
def test_sweep_isolates_crashing_and_hanging_points():
    clean = ParallelSweep(workers=1).run(
        get_workload("gemm_dse"), {"ports": PORTS}, _configure)
    points = _run_hardened(workers=1)
    assert [p.ok for p in points] == [True, False, False, True]
    crash, hang = points[1].failure, points[2].failure
    assert crash.error_type == "AssertionError"
    assert crash.reason == "crash"
    assert hang.error_type == "SimulationHang"
    assert hang.reason == "hang"
    # Every healthy row is byte-identical to the clean serial sweep.
    for clean_point, point in zip(clean, points):
        if point.ok:
            assert json.dumps(point.result.to_dict(), sort_keys=True) == \
                json.dumps(clean_point.result.to_dict(), sort_keys=True)


def test_parallel_failures_match_serial_failures():
    serial = _run_hardened(workers=1)
    parallel = _run_hardened(workers=2)
    for s, p in zip(serial, parallel):
        assert s.ok == p.ok
        if s.ok:
            assert json.dumps(p.result.to_dict(), sort_keys=True) == \
                json.dumps(s.result.to_dict(), sort_keys=True)
        else:
            assert p.failure.error_type == s.failure.error_type
            assert p.failure.reason == s.failure.reason


def test_strict_mode_raises_on_first_failure():
    executor = ParallelSweep(faults=_faults, strict=True,
                             watchdog={"livelock_cycles": 20000})
    with pytest.raises(SweepPointError) as excinfo:
        executor.run(get_workload("gemm_dse"), {"ports": PORTS}, _configure)
    assert excinfo.value.params == {"ports": 2}
    assert excinfo.value.failure.error_type == "AssertionError"


def test_failed_points_skip_cache_and_healthy_points_use_it(tmp_path):
    from repro.exec import RunCache

    cache = RunCache(tmp_path / "runs")
    points = _run_hardened(workers=1, cache=cache)
    # Only the two healthy points were cached.
    assert len(cache) == 2
    again = _run_hardened(workers=1, cache=cache)
    assert cache.hits == 2
    for first, second in zip(points, again):
        assert first.ok == second.ok


# -- failure records ---------------------------------------------------------
def test_failure_record_round_trip():
    try:
        raise ValueError("boom at point 3")
    except ValueError as exc:
        record = FailureRecord.from_exception(exc, attempts=2)
    assert record.error_type == "ValueError"
    assert record.reason == "crash"
    assert record.attempts == 2
    assert any("boom at point 3" in line for line in record.traceback_tail)
    revived = FailureRecord.from_dict(json.loads(json.dumps(record.to_dict())))
    assert revived == record
    assert "ValueError: boom at point 3 (attempt 2)" == record.summary()


def test_failure_record_classifies_hangs():
    from repro.sim.eventq import SimulationHang

    hang = FailureRecord.from_exception(SimulationHang("livelock", 100))
    assert hang.reason == "hang"
    timeout = FailureRecord.from_exception(SimulationHang("wallclock", 100))
    assert timeout.reason == "timeout"


# -- failed-row serialization ------------------------------------------------
def test_failed_sweep_point_serializes_a_valid_row():
    failure = FailureRecord("RuntimeError", "it broke")
    point = SweepPoint(params={"ports": 4}, failure=failure)
    assert not point.ok
    row = point.record()
    assert row["status"] == "failed"
    assert row["error"].startswith("RuntimeError: it broke")
    assert row["cycles"] == 0
    assert row["runtime_us"] == 0.0
    assert row["power_mw"] == 0.0
    assert row["stall_fraction"] == 0.0
    # Every value is CSV/JSON-safe.
    json.dumps(row)


def test_zero_cycle_occupancy_fractions_are_defined():
    tracker = OccupancyTracker()
    assert tracker.stall_fraction() == 0.0
    assert tracker.issue_fraction() == 0.0
    assert tracker.fu_occupancy("fp_mul", 2) == 0.0
    # Idle-only trackers (cycles ticked, nothing active) are also safe.
    idle = OccupancyTracker(cycles=10, idle_cycles=10)
    assert idle.stall_fraction() == 0.0
    assert idle.issue_fraction() == 0.0
