"""Aladdin-style trace-based baseline."""

import numpy as np
import pytest

from repro.baseline import (
    CacheModel,
    SPMModel,
    build_datapath,
    generate_trace,
    simulate_trace,
)
from repro.baseline.gem5_aladdin import IdealMemory
from repro.baseline.tracer import TraceEntry, TraceFile
from repro.frontend import compile_c
from repro.ir.memory import MemoryImage
from repro.workloads import get_workload


def _trace_for(workload_name, tmp_path, seed=7, unroll=1, source_patch=None):
    w = get_workload(workload_name)
    source = source_patch(w.source) if source_patch else w.source
    module = compile_c(source, w.func_name, unroll_factor=unroll)
    data = w.make_data(np.random.default_rng(seed))
    mem = MemoryImage(1 << 18, base=0x10000)
    args = []
    for name in w.arg_order:
        if name in data.inputs:
            args.append(mem.alloc_array(np.ascontiguousarray(data.inputs[name])))
        else:
            args.append(data.scalars[name])
    return generate_trace(module, w.func_name, args, mem,
                          tmp_path / f"{workload_name}.gz")


def test_trace_file_roundtrip(tmp_path):
    entries = [
        TraceEntry(0, "load", "v", ("p",), 0x100, 8, "entry"),
        TraceEntry(1, "fadd", "s", ("v", "a"), None, 0, "loop"),
        TraceEntry(2, "store", "", ("s", "q"), 0x200, 8, "loop"),
    ]
    trace = TraceFile(tmp_path / "t.gz")
    trace.write(entries)
    loaded = trace.read()
    assert loaded == entries
    assert trace.size_bytes() > 0


def test_trace_generation_does_not_touch_memory(tmp_path):
    w = get_workload("gemm")
    module = compile_c(w.source, "gemm")
    data = w.make_data(np.random.default_rng(1))
    mem = MemoryImage(1 << 16, base=0x10000)
    args = [mem.alloc_array(np.ascontiguousarray(data.inputs[n])) for n in w.arg_order]
    snapshot = mem.read(mem.base, 1 << 16)
    generate_trace(module, "gemm", args, mem, tmp_path / "g.gz")
    assert mem.read(mem.base, 1 << 16) == snapshot


def test_schedule_respects_dependences(tmp_path, profile):
    trace = _trace_for("gemm", tmp_path)
    entries = trace.read()
    dp = build_datapath(entries, profile)
    # Cycles are at least the sequential depth of one accumulation chain:
    # 16 fadds of latency 3 in the inner loop.
    assert dp.cycles >= 16 * 3
    assert dp.dynamic_ops > 0


def test_table1_datapath_follows_data(tmp_path, profile):
    """The Table I pathology: FU inventory changes with the dataset."""
    from repro.workloads.spmv import SPMV_SHIFT, make_data_shift

    units = {}
    for trigger in (False, True):
        module = compile_c(SPMV_SHIFT.source, "spmv_shift")
        data = make_data_shift(trigger)(np.random.default_rng(3))
        mem = MemoryImage(1 << 18, base=0x10000)
        args = []
        for name in SPMV_SHIFT.arg_order:
            if name in data.inputs:
                args.append(mem.alloc_array(np.ascontiguousarray(data.inputs[name])))
            else:
                args.append(data.scalars[name])
        trace = generate_trace(module, "spmv_shift", args, mem,
                               tmp_path / f"s{trigger}.gz")
        units[trigger] = simulate_trace(trace, profile).datapath
    assert units[False].units("shifter") == 0
    assert units[True].units("shifter") >= 1
    assert units[True].units("fp_add") > units[False].units("fp_add")


def test_table2_datapath_follows_memory(tmp_path, profile):
    """The Table II pathology: FU counts change with the memory model."""
    trace = _trace_for("gemm", tmp_path, unroll=16)
    entries = trace.read()
    counts = {}
    for label, model in [
        ("small_cache", CacheModel(size=256)),
        ("big_cache", CacheModel(size=16384)),
        ("spm", SPMModel(read_ports=2, write_ports=1)),
    ]:
        counts[label] = build_datapath(entries, profile, memory_model=model).fu_counts
    totals = {k: sum(v.values()) for k, v in counts.items()}
    assert len(set(totals.values())) >= 2, f"FU counts should vary: {totals}"
    # Port-limited SPM exposes far less concurrency than a bursty cache.
    assert totals["spm"] < max(totals["small_cache"], totals["big_cache"])


def test_cache_model_hit_miss_latencies():
    cache = CacheModel(size=256, line_size=64, assoc=1, hit_latency=2, miss_latency=20)
    t_miss = cache.access(0, 8, False, 0)
    t_hit = cache.access(8, 8, False, 0)
    assert t_miss == 20
    assert t_hit == 2
    assert cache.hits == 1 and cache.misses == 1


def test_cache_model_eviction():
    cache = CacheModel(size=128, line_size=64, assoc=1)
    cache.access(0, 8, False, 0)        # set 0
    cache.access(128, 8, False, 0)      # set 0, evicts
    t = cache.access(0, 8, False, 0)    # miss again
    assert cache.misses == 3


def test_spm_model_port_serialization():
    spm = SPMModel(latency=1, read_ports=2, write_ports=1)
    done = [spm.access(0, 8, False, 0) for __ in range(4)]
    assert done == [1, 1, 2, 2]  # two per cycle


def test_ideal_memory():
    assert IdealMemory(latency=3).access(0, 8, True, 10) == 13


def test_simulate_trace_reports_costs(tmp_path, profile):
    trace = _trace_for("spmv", tmp_path)
    result = simulate_trace(trace, profile)
    assert result.cycles > 0
    assert result.dynamic_energy_pj > 0
    assert result.leakage_mw > 0
    assert result.load_seconds > 0
    assert result.schedule_seconds > 0
    assert result.total_power_mw(10.0) > 0
