"""Fig. 10 — timing validation vs the HLS reference.

Eight MachSuite benchmarks: SALAM's simulated cycle count against the
independent HLS-style schedule estimate on the same IR and inputs.

Expected shape (paper: avg ~1%): single-digit-percent errors, with the
regular, data-independent kernels (FFT / GEMM / Stencil2D) showing the
smallest error and FP-heavy MD among the largest.
"""

import numpy as np

from conftest import SEED, save_and_print, stage_into
from repro.dse import format_table
from repro.hls import hls_cycle_estimate
from repro.ir.memory import MemoryImage
from repro.system.soc import StandaloneAccelerator
from repro.workloads import get_workload

BENCHES = ["fft", "gemm", "md_knn", "md_grid", "nw", "spmv", "stencil2d", "stencil3d"]


def measure(name):
    workload = get_workload(name)
    acc = StandaloneAccelerator(
        workload.source, workload.func_name, memory="spm", spm_bytes=1 << 16
    )
    data = workload.make_data(np.random.default_rng(SEED))
    args, addresses = workload.stage(acc, data)
    result = acc.run(args)
    workload.verify(acc, addresses, data)

    mem = MemoryImage(1 << 16, base=acc.SPM_BASE)
    hls_args, __ = stage_into(workload, mem)
    schedule = hls_cycle_estimate(
        acc.module, workload.func_name, hls_args, mem, acc.profile, acc.config
    )
    return result.cycles, schedule.total_cycles


def test_fig10(benchmark):
    def run():
        rows = []
        for name in BENCHES:
            salam, hls = measure(name)
            rows.append(
                {
                    "benchmark": name,
                    "salam_cycles": salam,
                    "hls_cycles": hls,
                    "error_pct": 100.0 * (salam - hls) / hls,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    avg = float(np.mean([abs(r["error_pct"]) for r in rows]))
    rows.append({"benchmark": "AVERAGE |err|", "error_pct": avg})
    save_and_print(
        "fig10_timing_validation",
        format_table(rows, title="Fig. 10: performance validation (SALAM vs HLS reference)",
                     float_fmt="{:+.2f}"),
    )

    assert avg < 10.0, f"average timing error too large: {avg:.2f}%"
    by_name = {r["benchmark"]: abs(r.get("error_pct", 0)) for r in rows[:-1]}
    regular = np.mean([by_name["fft"], by_name["gemm"], by_name["stencil2d"]])
    assert regular < avg, "regular kernels must validate best (paper's observation)"
    for row in rows[:-1]:
        assert abs(row["error_pct"]) < 15.0, row
